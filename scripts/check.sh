#!/usr/bin/env bash
# Repo check: the tier-1 build + test gate, then a ThreadSanitizer build of
# the concurrency-bearing tests (avd::runtime + the shared EventLog).
#
#   scripts/check.sh            # full tier-1 + TSan runtime tests
#   scripts/check.sh --tsan-only
#
# The TSan pass builds into build-tsan/ (kept out of git by .gitignore) with
# -DAVD_SANITIZE=thread and runs only the test binaries whose code runs
# worker threads; a single reported race fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
TSAN_ONLY=0
[[ "${1:-}" == "--tsan-only" ]] && TSAN_ONLY=1

if [[ "$TSAN_ONLY" -eq 0 ]]; then
  echo "== tier-1: build =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  echo "== tier-1: ctest =="
  (cd build && ctest --output-on-failure -j "$JOBS")
fi

echo "== TSan: configure + build (build-tsan/) =="
cmake -B build-tsan -S . -DAVD_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_runtime test_soc

echo "== TSan: runtime tests =="
# halt_on_error: any data race fails the run (and hence this script).
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
./build-tsan/tests/test_runtime
./build-tsan/tests/test_soc --gtest_filter='EventLog.*'

echo "== all checks passed =="
