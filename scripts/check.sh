#!/usr/bin/env bash
# Repo check: the tier-1 build + test gate, then a ThreadSanitizer build of
# the concurrency-bearing tests (avd::runtime, avd::obs — including the
# labeled registry, trace sampler, flight recorder, ops server and sample
# profiler suites — and the shared EventLog), then a profiling smoke test
# that fails on an empty or invalid merged trace, a missing flight bundle,
# or a missing collapsed profile, then a curl sweep of every live ops
# endpoint against a serving process.
#
#   scripts/check.sh            # full tier-1 + TSan + profiling smoke
#   scripts/check.sh --tsan-only
#   scripts/check.sh --chaos-only   # just the chaos lane (fault injection +
#                                   # admission + overload suites under TSan)
#
# The TSan pass builds into build-tsan/ (kept out of git by .gitignore) with
# -DAVD_SANITIZE=thread and runs only the test binaries whose code runs
# worker threads; a single reported race fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
TSAN_ONLY=0
CHAOS_ONLY=0
[[ "${1:-}" == "--tsan-only" ]] && TSAN_ONLY=1
[[ "${1:-}" == "--chaos-only" ]] && CHAOS_ONLY=1

# The chaos lane: every fault-injection, admission and overload-path test,
# under ThreadSanitizer. Deliberately its own lane (and its own CI job) —
# these suites drive the StreamServer through source stalls/errors/garbage,
# queue saturation, watchdog fires and ladder transitions, which is exactly
# where a concurrency bug would hide.
CHAOS_FILTER='FaultInjectionTest.*:Admission.*'
run_chaos_lane() {
  echo "== TSan: chaos lane (fault injection + admission) =="
  ./build-tsan/tests/test_runtime --gtest_filter="$CHAOS_FILTER"
}

if [[ "$CHAOS_ONLY" -eq 1 ]]; then
  echo "== chaos: configure + build (build-tsan/) =="
  cmake -B build-tsan -S . -DAVD_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-tsan -j "$JOBS" --target test_runtime
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  run_chaos_lane
  echo "== chaos lane passed =="
  exit 0
fi

if [[ "$TSAN_ONLY" -eq 0 ]]; then
  echo "== tier-1: build =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  echo "== tier-1: ctest =="
  (cd build && ctest --output-on-failure -j "$JOBS")
fi

echo "== TSan: configure + build (build-tsan/) =="
cmake -B build-tsan -S . -DAVD_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_runtime test_soc test_obs test_detect

echo "== TSan: runtime tests =="
# halt_on_error: any data race fails the run (and hence this script).
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
./build-tsan/tests/test_runtime --gtest_filter="-$CHAOS_FILTER"
run_chaos_lane
./build-tsan/tests/test_soc --gtest_filter='EventLog.*'
./build-tsan/tests/test_obs
# The pooled scanners: block-grid levels/bands and the batched dark scan on
# a shared ThreadPool must be race-free and deterministic
# (MultiModelScanTest and DarkScanPool cover pool-vs-reference).
./build-tsan/tests/test_detect --gtest_filter='MultiModelScanTest.*:WindowAnchorPositions.*:DarkScanPool.*'

echo "== smoke: profile_pipeline =="
# The example traces a full serving run and exits non-zero itself if the
# merged Chrome trace is empty, invalid JSON, missing a layer's spans, or
# missing the per-frame flow arcs / connected frame-trace chains. It also
# forces an SLO breach and validates the flight-recorder bundle the server
# dumps next to the trace.
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target profile_pipeline frame_slo_monitor
SMOKE_DIR="$(mktemp -d -t avd_smoke_XXXX)"
SMOKE_TRACE="$SMOKE_DIR/pipeline_profile.json"
SMOKE_JSONL="$SMOKE_DIR/frame_slo_telemetry.jsonl"
trap 'kill "${OPS_PID:-}" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
./build/examples/profile_pipeline "$SMOKE_TRACE" >/dev/null
[[ -s "$SMOKE_TRACE" ]] || { echo "smoke: trace file empty"; exit 1; }
ls "$SMOKE_DIR"/flight_bundle_*.json >/dev/null 2>&1 \
  || { echo "smoke: no flight bundle dumped"; exit 1; }
[[ -s "$SMOKE_DIR/pipeline_profile.collapsed" ]] \
  || { echo "smoke: no collapsed profile written"; exit 1; }

echo "== smoke: frame_slo_monitor =="
# Exits non-zero itself if health states or the telemetry JSONL sink are
# wrong; quick end-to-end coverage of the SLO monitoring path.
./build/examples/frame_slo_monitor "$SMOKE_JSONL" >/dev/null
[[ -s "$SMOKE_JSONL" ]] || { echo "smoke: telemetry sink empty"; exit 1; }

echo "== smoke: live introspection (curl sweep) =="
# live_introspection validates every ops endpoint in-process (strict JSON
# parsing, the /healthz 200 -> 503 flip, detect stacks in /profilez) and
# lingers so an EXTERNAL scraper sees the same payloads over the wire.
# While it serves, curl each endpoint; afterwards re-validate the curl
# captures with the example's own --parse / --parse-collapsed linters.
cmake --build build -j "$JOBS" --target live_introspection
OPS_PORT_FILE="$SMOKE_DIR/ops_port"
./build/examples/live_introspection \
  --port-file "$OPS_PORT_FILE" --linger-seconds 20 \
  >"$SMOKE_DIR/live_introspection.log" 2>&1 &
OPS_PID=$!
# Fail fast and loud on port-file problems: the sweep is useless without a
# live listener, and the two failure shapes need different fixes — a dead
# process (ops listener failed to bind, example crashed) vs a live process
# that never published its port (port-file plumbing broke).
for _ in $(seq 1 200); do
  [[ -s "$OPS_PORT_FILE" ]] && break
  if ! kill -0 "$OPS_PID" 2>/dev/null; then
    echo "smoke: live_introspection exited before publishing its ops port" \
         "(ops listener bind failure or startup crash — log follows)"
    cat "$SMOKE_DIR/live_introspection.log"
    exit 1
  fi
  sleep 0.1
done
[[ -s "$OPS_PORT_FILE" ]] || {
  echo "smoke: live_introspection is running but $OPS_PORT_FILE never" \
       "appeared within 20s (port-file plumbing broke — log follows)"
  cat "$SMOKE_DIR/live_introspection.log"
  kill "$OPS_PID" 2>/dev/null; exit 1; }
OPS_PORT="$(cat "$OPS_PORT_FILE")"
[[ "$OPS_PORT" =~ ^[0-9]+$ ]] || {
  echo "smoke: ops port file holds '$OPS_PORT', not a port number"
  kill "$OPS_PID" 2>/dev/null; exit 1; }
OPS_URL="http://127.0.0.1:$OPS_PORT"
curl -fsS -D "$SMOKE_DIR/metricsz.head" -o "$SMOKE_DIR/metricsz.txt" \
  "$OPS_URL/metricsz"
grep -qi '^content-type: text/plain; version=0.0.4' "$SMOKE_DIR/metricsz.head" \
  || { echo "smoke: /metricsz content type is not the Prometheus exposition"
       cat "$SMOKE_DIR/metricsz.head"; exit 1; }
grep -q '^process_uptime_seconds ' "$SMOKE_DIR/metricsz.txt" \
  || { echo "smoke: /metricsz lacks process_uptime_seconds"; exit 1; }
curl -fsS -o "$SMOKE_DIR/metricsz.json"  "$OPS_URL/metricsz.json"
curl -fsS -o "$SMOKE_DIR/healthz.json"   "$OPS_URL/healthz"
curl -fsS -o "$SMOKE_DIR/tracez.json"    "$OPS_URL/tracez"
curl -fsS -o "$SMOKE_DIR/flightz.json"   "$OPS_URL/flightz"
curl -fsS -o "$SMOKE_DIR/statusz.json"   "$OPS_URL/statusz"
curl -fsS -o "$SMOKE_DIR/profilez.collapsed" "$OPS_URL/profilez?seconds=1.0"
curl -fsS -o "$SMOKE_DIR/profilez.json" \
  "$OPS_URL/profilez?seconds=0.3&format=json"
wait "$OPS_PID" || { echo "smoke: live_introspection self-check failed"
                     cat "$SMOKE_DIR/live_introspection.log"; exit 1; }
for payload in metricsz.json healthz.json tracez.json flightz.json \
               statusz.json profilez.json; do
  ./build/examples/live_introspection --parse "$SMOKE_DIR/$payload" \
    || { echo "smoke: curl capture $payload failed the strict parser"; exit 1; }
done
./build/examples/live_introspection \
  --parse-collapsed "$SMOKE_DIR/profilez.collapsed" \
  || { echo "smoke: curled /profilez stacks invalid or empty"; exit 1; }

if [[ "$TSAN_ONLY" -eq 0 && "${AVD_SKIP_BENCH_DIFF:-0}" -ne 1 ]]; then
  echo "== bench_diff: headline perf vs checked-in BENCH/ baseline =="
  # Runs the headline benchmarks into a temp dir and fails on a >15%
  # regression (5-point absolute slack for the obs overhead percentages)
  # against the committed trajectory in BENCH/. Skip on known-noisy boxes
  # with AVD_SKIP_BENCH_DIFF=1; re-baseline intentional perf changes with
  #   scripts/bench_diff BENCH "$dir" --update
  cmake --build build -j "$JOBS" --target \
    scan_throughput dark_scan_throughput runtime_scaling obs_overhead \
    overload_soak many_stream_soak
  BENCH_OUT="$(mktemp -d -t avd_bench_XXXX)"
  trap 'kill "${OPS_PID:-}" 2>/dev/null || true; rm -rf "$SMOKE_DIR" "$BENCH_OUT"' EXIT
  # many_stream_soak must run at its default 256 streams here: the checked-in
  # baseline was recorded at that scale and admitted_fps scales with stream
  # count (the reduced-stream CI lane is a separate job with no baseline).
  for b in scan_throughput dark_scan_throughput runtime_scaling obs_overhead \
           overload_soak many_stream_soak; do
    AVD_BENCH_DIR="$BENCH_OUT" "./build/bench/$b" >/dev/null
  done
  scripts/bench_diff BENCH "$BENCH_OUT"
fi

echo "== all checks passed =="
