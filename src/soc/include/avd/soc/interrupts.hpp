// PL-to-PS interrupt model (paper Fig. 6).
//
// "DMA cores and detection modules generate interrupt requests and inform PS
// of their completed assigned task as part of the communication between PL
// and PS."
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "avd/soc/event_log.hpp"

namespace avd::soc {

/// One IRQ line from a PL component into the PS GIC.
struct IrqLine {
  int id = 0;
  std::string source;
  bool masked = false;
  bool pending = false;
  TimePoint raised_at;
  std::uint64_t total_raised = 0;
};

/// Interrupt controller: lines are registered once, raised by components,
/// and serviced by the PS with a fixed entry latency.
class InterruptController {
 public:
  /// `service_latency`: time from raise to handler entry (GIC + context).
  explicit InterruptController(Duration service_latency = Duration::from_ns(500))
      : service_latency_(service_latency) {}

  /// Register a line; returns its id.
  int add_line(std::string source);

  void mask(int id, bool masked);
  [[nodiscard]] bool is_masked(int id) const { return line(id).masked; }
  [[nodiscard]] bool is_pending(int id) const { return line(id).pending; }
  [[nodiscard]] std::uint64_t raise_count(int id) const {
    return line(id).total_raised;
  }

  /// Assert a line at `now`. Masked lines record the raise but do not
  /// become pending.
  void raise(int id, TimePoint now, EventLog* log = nullptr);

  /// Service (acknowledge) one pending line; returns the handler-entry time
  /// or nullopt-like {false, ...} when nothing is pending.
  struct Service {
    bool handled = false;
    int id = -1;
    std::string source;
    TimePoint handler_entry;
  };
  Service service_next(TimePoint now);

  /// Pending line count.
  [[nodiscard]] int pending_count() const;
  [[nodiscard]] std::size_t line_count() const { return lines_.size(); }

 private:
  [[nodiscard]] const IrqLine& line(int id) const;
  [[nodiscard]] IrqLine& line(int id);

  Duration service_latency_;
  std::vector<IrqLine> lines_;
};

}  // namespace avd::soc
