// AXI DMA core model (paper Fig. 6: "AXI DMA cores are required to manage
// the conversion between the memory mapped and stream data").
//
// Register layout follows the Xilinx AXI DMA programming model (subset):
//   0x00 MM2S_DMACR   control   (bit0 RS, bit2 soft reset, bit12 IOC IrqEn)
//   0x04 MM2S_DMASR   status    (bit0 halted, bit1 idle, bit12 IOC Irq, W1C)
//   0x18 MM2S_SA      source address
//   0x28 MM2S_LENGTH  length in bytes; the write starts the transfer
//   0x30 S2MM_DMACR / 0x34 S2MM_DMASR / 0x48 S2MM_DA / 0x58 S2MM_LENGTH
//
// Transfer duration comes from the platform TransferPath the core is bound
// to; completion raises the core's IRQ line at the modelled finish time.
#pragma once

#include <optional>

#include "avd/soc/axi.hpp"
#include "avd/soc/axi_lite.hpp"
#include "avd/soc/interrupts.hpp"

namespace avd::soc {

/// Register offsets (byte).
namespace dma_reg {
inline constexpr std::uint32_t kMm2sCr = 0x00;
inline constexpr std::uint32_t kMm2sSr = 0x04;
inline constexpr std::uint32_t kMm2sSa = 0x18;
inline constexpr std::uint32_t kMm2sLength = 0x28;
inline constexpr std::uint32_t kS2mmCr = 0x30;
inline constexpr std::uint32_t kS2mmSr = 0x34;
inline constexpr std::uint32_t kS2mmDa = 0x48;
inline constexpr std::uint32_t kS2mmLength = 0x58;
}  // namespace dma_reg

/// Control/status bits.
namespace dma_bit {
inline constexpr std::uint32_t kRunStop = 1u << 0;    // DMACR.RS
inline constexpr std::uint32_t kReset = 1u << 2;      // DMACR.Reset
inline constexpr std::uint32_t kIocIrqEn = 1u << 12;  // DMACR.IOC_IrqEn
inline constexpr std::uint32_t kHalted = 1u << 0;     // DMASR.Halted
inline constexpr std::uint32_t kIdle = 1u << 1;       // DMASR.Idle
inline constexpr std::uint32_t kIocIrq = 1u << 12;    // DMASR.IOC_Irq (W1C)
}  // namespace dma_bit

/// One completed or in-flight transfer.
struct DmaTransfer {
  bool mm2s = true;  ///< direction: memory->stream (read) vs stream->memory
  std::uint32_t address = 0;
  std::uint32_t bytes = 0;
  TimePoint started;
  TimePoint completes;
};

class DmaCore final : public AxiLiteDevice {
 public:
  /// `path`: the AXI route this core's bursts take (e.g. HP port -> DDR).
  /// `irq_line`: line id in `irq` raised at each transfer completion; pass
  /// a negative id to disable interrupts entirely.
  DmaCore(std::string name, TransferPath path, InterruptController* irq,
          int irq_line, EventLog* log = nullptr);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::uint32_t window_bytes() const override { return 0x60; }

  std::uint32_t read(std::uint32_t offset, TimePoint now) override;
  void write(std::uint32_t offset, std::uint32_t value, TimePoint now) override;

  /// Last transfer issued on either channel (empty before the first).
  [[nodiscard]] const std::optional<DmaTransfer>& last_transfer() const {
    return last_;
  }
  /// Whether the given channel is idle at `now`.
  [[nodiscard]] bool idle(bool mm2s, TimePoint now) const;

  [[nodiscard]] const TransferPath& path() const { return path_; }

 private:
  struct Channel {
    std::uint32_t cr = 0;
    std::uint32_t sr = dma_bit::kHalted;
    std::uint32_t addr = 0;
    std::optional<DmaTransfer> active;
  };

  void start_transfer(Channel& ch, bool mm2s, std::uint32_t bytes,
                      TimePoint now);
  void refresh(Channel& ch, TimePoint now);
  [[nodiscard]] Channel& channel(bool mm2s) { return mm2s ? mm2s_ : s2mm_; }
  [[nodiscard]] const Channel& channel(bool mm2s) const {
    return mm2s ? mm2s_ : s2mm_;
  }

  std::string name_;
  TransferPath path_;
  InterruptController* irq_;
  int irq_line_;
  EventLog* log_;
  Channel mm2s_;
  Channel s2mm_;
  std::optional<DmaTransfer> last_;
};

}  // namespace avd::soc
