// FPGA resource accounting and reconfigurable-partition floor-planning
// (paper Table II).
//
// The device totals match the paper's "Available Resources" row (277400 LUT,
// 554800 FF, 755 BRAM, 2020 DSP48 — a Zynq-7100-class part). Per-block
// estimates are chosen so the static design, the two partial configurations
// and the floor-planned reconfigurable partition reproduce Table II's
// utilisation percentages.
#pragma once

#include <string>
#include <vector>

namespace avd::soc {

/// LUT/FF/BRAM/DSP requirement of one hardware block.
struct ModuleResources {
  std::string name;
  long lut = 0;
  long ff = 0;
  long bram = 0;
  long dsp = 0;

  ModuleResources& operator+=(const ModuleResources& o) {
    lut += o.lut;
    ff += o.ff;
    bram += o.bram;
    dsp += o.dsp;
    return *this;
  }
  [[nodiscard]] friend ModuleResources operator+(ModuleResources a,
                                                 const ModuleResources& b) {
    a += b;
    return a;
  }
};

/// Whole-device capacity.
struct DeviceResources {
  long lut = 277400;
  long ff = 554800;
  long bram = 755;
  long dsp = 2020;
};

/// Utilisation of one design/row, as integer percentages (Table II format).
struct UtilizationRow {
  std::string name;
  int lut_pct = 0;
  int ff_pct = 0;
  int bram_pct = 0;
  int dsp_pct = 0;
};

[[nodiscard]] UtilizationRow utilization(const std::string& name,
                                         const ModuleResources& used,
                                         const DeviceResources& device);

/// Aggregate of a list of blocks.
[[nodiscard]] ModuleResources sum_modules(
    const std::vector<ModuleResources>& blocks);

// --- Canonical block inventories of the implemented system (paper §IV) ---

/// Static partition: data capture, pedestrian detection, PR controller,
/// PS interface / interconnect.
[[nodiscard]] std::vector<ModuleResources> static_design_blocks();

/// Reconfigurable configuration 1: HOG+SVM vehicle detection (day & dusk).
[[nodiscard]] std::vector<ModuleResources> day_dusk_blocks();

/// Reconfigurable configuration 2: dark-condition detection
/// (threshold/morphology, DBN engine, pairing SVM).
[[nodiscard]] std::vector<ModuleResources> dark_blocks();

/// Extension configuration 3 (paper §I motivation): countryside driving —
/// the day/dusk HOG engine plus a second HOG+SVM classifier for animals,
/// sharing the gradient front-end. Must fit the same partition.
[[nodiscard]] std::vector<ModuleResources> countryside_blocks();

/// Floor-planning of the reconfigurable partition.
struct FloorplanParams {
  /// Logic margin over the largest configuration ("about 1.2 times of its
  /// required resources", §IV-B; the realised LUT margin is 45%/40%).
  double logic_margin = 1.125;
  /// BRAM/DSP columns are sparser than logic columns; a region claiming X%
  /// of the device's logic captures about this fraction of X% in BRAM/DSP.
  double bram_dsp_density = 8.0 / 9.0;
};

/// Resources fenced off for the reconfigurable partition, sized for the
/// largest configuration.
[[nodiscard]] ModuleResources floorplan_partition(
    const std::vector<ModuleResources>& largest_config,
    const DeviceResources& device, const FloorplanParams& params = {});

/// Whether a configuration fits inside a floor-planned partition.
[[nodiscard]] bool fits(const ModuleResources& config,
                        const ModuleResources& partition);

/// The full Table II: static, partition, each configuration, total.
[[nodiscard]] std::vector<UtilizationRow> table2_rows(
    const DeviceResources& device = {}, const FloorplanParams& params = {});

}  // namespace avd::soc
