// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Real partial-reconfiguration flows verify bitstream integrity before
// letting a single frame reach the ICAP — a corrupted configuration can
// physically damage the fabric. The reconfiguration controller uses this to
// model that check.
#pragma once

#include <cstdint>
#include <span>

namespace avd::soc {

/// CRC-32 of a byte span (init 0xFFFFFFFF, final xor 0xFFFFFFFF).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental interface: feed chunks, then finalize.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data);
  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }
  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace avd::soc
