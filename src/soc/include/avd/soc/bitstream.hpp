// Partial bitstream model.
//
// A partial bitstream's size is proportional to the configuration frames of
// the reconfigurable region, i.e. to the region's share of the device
// (paper: 8 MB partial bit files for the vehicle-detection partition).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "avd/soc/resources.hpp"

namespace avd::soc {

struct PartialBitstream {
  std::string config_name;     ///< "day-dusk" or "dark"
  std::uint64_t bytes = 0;

  /// Optional configuration frames. When present (attach_payload), the
  /// reconfiguration controller verifies `crc` before driving the ICAP — a
  /// corrupted partial bitstream must never reach the fabric.
  std::vector<std::uint8_t> payload;
  std::uint32_t crc = 0;

  [[nodiscard]] double megabytes() const {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  }
  [[nodiscard]] bool has_payload() const { return !payload.empty(); }

  /// Fill `payload` with `bytes` deterministic pseudo-random configuration
  /// words (seeded by `seed`) and record their CRC-32.
  void attach_payload(std::uint64_t seed);

  /// True when the payload matches the recorded CRC (or no payload exists).
  [[nodiscard]] bool verify_integrity() const;
};

struct BitstreamParams {
  /// Full-device configuration size. Sized so the paper's 45%-of-logic
  /// partition yields the reported 8 MB partial files.
  std::uint64_t full_device_bytes = 18641920;  // ~17.8 MiB
};

/// Size of the partial bitstream reconfiguring `partition` on `device`.
[[nodiscard]] PartialBitstream make_partial_bitstream(
    const std::string& config_name, const ModuleResources& partition,
    const DeviceResources& device, const BitstreamParams& params = {});

}  // namespace avd::soc
