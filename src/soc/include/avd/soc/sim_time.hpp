// Simulated time for the Zynq SoC model.
//
// All timing is integer picoseconds: every clock of interest on the platform
// (100 MHz ICAP/PCAP, 125 MHz detection fabric, 533 MHz DDR) has an integral
// period in ps, so simulated timestamps are exact and platform-independent.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace avd::soc {

/// A span of simulated time, in picoseconds.
struct Duration {
  std::uint64_t ps = 0;

  [[nodiscard]] static constexpr Duration from_ps(std::uint64_t v) { return {v}; }
  [[nodiscard]] static constexpr Duration from_ns(std::uint64_t v) {
    return {v * 1000ULL};
  }
  [[nodiscard]] static constexpr Duration from_us(std::uint64_t v) {
    return {v * 1000000ULL};
  }
  [[nodiscard]] static constexpr Duration from_ms(std::uint64_t v) {
    return {v * 1000000000ULL};
  }
  /// `n` cycles of a clock given in MHz (period must divide 1e6 ps evenly for
  /// exactness; non-divisible clocks round the period down to the ps).
  [[nodiscard]] static constexpr Duration cycles(std::uint64_t n,
                                                 std::uint64_t mhz) {
    return {n * (1000000ULL / mhz)};
  }

  [[nodiscard]] constexpr double as_ns() const { return static_cast<double>(ps) / 1e3; }
  [[nodiscard]] constexpr double as_us() const { return static_cast<double>(ps) / 1e6; }
  [[nodiscard]] constexpr double as_ms() const { return static_cast<double>(ps) / 1e9; }
  [[nodiscard]] constexpr double as_seconds() const {
    return static_cast<double>(ps) / 1e12;
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return {a.ps + b.ps};
  }
  friend constexpr Duration operator*(Duration a, std::uint64_t k) {
    return {a.ps * k};
  }
  constexpr Duration& operator+=(Duration o) {
    ps += o.ps;
    return *this;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;
};

/// An absolute simulated timestamp (ps since simulation start).
struct TimePoint {
  std::uint64_t ps = 0;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return {t.ps + d.ps};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return {a.ps - b.ps};
  }
  constexpr TimePoint& operator+=(Duration d) {
    ps += d.ps;
    return *this;
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  [[nodiscard]] constexpr double as_ms() const {
    return static_cast<double>(ps) / 1e9;
  }
};

/// Throughput in MB/s of `bytes` moved in `elapsed` (0 if elapsed is zero).
[[nodiscard]] constexpr double throughput_mbps(std::uint64_t bytes,
                                               Duration elapsed) {
  if (elapsed.ps == 0) return 0.0;
  return static_cast<double>(bytes) / (static_cast<double>(elapsed.ps) / 1e12) /
         1e6;
}

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.as_us() << "us";
}
inline std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << t.as_ms() << "ms";
}

}  // namespace avd::soc
