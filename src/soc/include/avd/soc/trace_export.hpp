// Export to the Chrome trace-event JSON format (chrome://tracing,
// ui.perfetto.dev). Two inputs merge onto one timeline:
//
//  * EventLog entries become instant ("i") events — the simulation's ILA
//    capture: reconfiguration windows, IRQs, worker lifecycle.
//  * obs::SpanRecord entries become complete ("X") events — the wall-clock
//    begin/end of real work (HOG extraction, SVM scan, DBN scan, pipeline
//    stages) recorded by obs::ScopedSpan. Trace ids and numeric span args
//    are emitted under "args"; spans sharing a trace_id additionally get
//    flow events ("s"/"t"/"f", id = trace_id) so one frame's journey across
//    worker threads renders as a linked arc in Perfetto.
//
// Spans group under process `span_pid` with one row per (source, recording
// thread); events group under process `event_pid` with one row per source.
// Note the timebases: span timestamps are wall-clock nanoseconds since
// tracer start, EventLog timestamps are whatever the log's writers used
// (simulated picoseconds for the SoC model, wall-clock for the runtime
// server log) — the two processes keep them visually separate.
#pragma once

#include <span>
#include <string>

#include "avd/obs/trace.hpp"
#include "avd/soc/event_log.hpp"

namespace avd::soc {

/// Serialise `log` as a Chrome trace JSON document (returned, not written).
[[nodiscard]] std::string to_chrome_trace(const EventLog& log);

/// Options for the merged span + event export.
struct MergedTraceOptions {
  int span_pid = 1;   ///< process id grouping span rows
  int event_pid = 2;  ///< process id grouping event-log rows
};

/// Merged export: EventLog instants plus obs spans in one document.
[[nodiscard]] std::string to_chrome_trace(const EventLog& log,
                                          std::span<const obs::SpanRecord> spans,
                                          const MergedTraceOptions& options = {});

/// Write the trace to `path`. Throws std::runtime_error on I/O failure.
void write_chrome_trace(const EventLog& log, const std::string& path);

/// Write the merged trace to `path`. Throws std::runtime_error on I/O failure.
void write_chrome_trace(const EventLog& log,
                        std::span<const obs::SpanRecord> spans,
                        const std::string& path,
                        const MergedTraceOptions& options = {});

}  // namespace avd::soc
