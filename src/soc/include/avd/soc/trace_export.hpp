// Event-log export to the Chrome trace-event JSON format
// (chrome://tracing, Perfetto). Each event-log source becomes a "thread"
// row; events become instants. The simulation's equivalent of dumping an
// ILA capture into a waveform viewer.
#pragma once

#include <string>

#include "avd/soc/event_log.hpp"

namespace avd::soc {

/// Serialise `log` as a Chrome trace JSON document (returned, not written).
[[nodiscard]] std::string to_chrome_trace(const EventLog& log);

/// Write the trace to `path`. Throws std::runtime_error on I/O failure.
void write_chrome_trace(const EventLog& log, const std::string& path);

}  // namespace avd::soc
