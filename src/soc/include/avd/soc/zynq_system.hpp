// Full Fig. 6 system assembly: the PS control plane, the AXI-Lite register
// fabric on GP0, the five AXI DMA cores, both detection modules and the PR
// controller, plus the high-performance-port bandwidth budget.
//
// This is the control-plane companion to the detection pipelines: it models
// what the ARM software actually does per frame — program the DMA registers,
// kick the accelerators, service the completion interrupts — and what that
// costs relative to the 20 ms frame budget.
#pragma once

#include <memory>

#include "avd/soc/dma_core.hpp"
#include "avd/soc/hw_pipeline.hpp"
#include "avd/soc/zynq.hpp"

namespace avd::soc {

/// Video traffic description for the bandwidth budget.
struct VideoFormat {
  img::Size frame{1920, 1080};
  int bytes_per_pixel = 2;  ///< YCbCr 4:2:2 over AXI-Stream
  double fps = 50.0;

  [[nodiscard]] std::uint64_t bytes_per_frame() const {
    return static_cast<std::uint64_t>(frame.area()) * bytes_per_pixel;
  }
  [[nodiscard]] double bandwidth_mbps() const {
    return static_cast<double>(bytes_per_frame()) * fps / 1e6;
  }
};

/// Accelerator control registers (one block per detection module):
///   0x00 CTRL   bit0 start (self-clearing), bit1 enable
///   0x04 STATUS bit0 done (W1C)
///   0x08 MODEL  0 = day SVM, 1 = dusk SVM (block-RAM select, §III-A)
///   0x0C PARAM  free-form parameter word (e.g. threshold)
class DetectionModuleRegs final : public AxiLiteDevice {
 public:
  DetectionModuleRegs(std::string name, HwPipelineModel timing,
                      InterruptController* irq, int irq_line,
                      EventLog* log = nullptr);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::uint32_t window_bytes() const override { return 0x10; }
  std::uint32_t read(std::uint32_t offset, TimePoint now) override;
  void write(std::uint32_t offset, std::uint32_t value, TimePoint now) override;

  [[nodiscard]] std::uint32_t model_select() const { return model_; }
  [[nodiscard]] std::uint32_t param() const { return param_; }
  /// Completion time of the most recent start (start time + frame time).
  [[nodiscard]] TimePoint done_at() const { return done_at_; }
  void set_frame_size(img::Size size) { frame_size_ = size; }

 private:
  std::string name_;
  HwPipelineModel timing_;
  InterruptController* irq_;
  int irq_line_;
  EventLog* log_;
  img::Size frame_size_ = kHdtvFrame;
  std::uint32_t model_ = 0;
  std::uint32_t param_ = 0;
  bool enabled_ = false;
  bool done_ = false;
  TimePoint done_at_;
};

/// Fixed base addresses of the Fig. 6 register map (GP0 window).
namespace sysmap {
inline constexpr std::uint32_t kPedestrianInDma = 0x4040'0000;
inline constexpr std::uint32_t kPedestrianOutDma = 0x4041'0000;
inline constexpr std::uint32_t kVehicleInDma = 0x4042'0000;
inline constexpr std::uint32_t kVehicleOutDma = 0x4043'0000;
inline constexpr std::uint32_t kPrDma = 0x4044'0000;
inline constexpr std::uint32_t kPedestrianModule = 0x43C0'0000;
inline constexpr std::uint32_t kVehicleModule = 0x43C1'0000;
}  // namespace sysmap

/// Timing/accounting of one software-driven frame cycle.
struct FrameCycleReport {
  int register_accesses = 0;      ///< AXI-Lite reads+writes issued
  Duration control_time;          ///< bus time of those accesses
  Duration input_dma_time;        ///< frame-in transfer (slower of the two)
  Duration detect_time;           ///< accelerator busy time (max of the two)
  Duration output_dma_time;       ///< result transfer
  int irqs_serviced = 0;
  TimePoint frame_done;           ///< all results in PS DDR

  [[nodiscard]] Duration total_latency(TimePoint frame_start) const {
    return frame_done - frame_start;
  }
};

/// One HP-port lane of the bandwidth budget.
struct HpStream {
  std::string name;
  double mbps = 0.0;
  int hp_port = 0;
};

struct HpBudget {
  double port_capacity_mbps = 0.0;
  std::vector<HpStream> streams;

  /// Aggregate load of one port.
  [[nodiscard]] double port_load(int port) const;
  /// True when every port stays under capacity.
  [[nodiscard]] bool feasible() const;
  [[nodiscard]] double worst_utilization() const;
};

/// The assembled system.
class ZynqSystem {
 public:
  explicit ZynqSystem(ZynqPlatform platform = default_platform(),
                      VideoFormat video = {});

  /// Software frame cycle at `frame_start`: program both input DMAs, start
  /// both detection modules, program the output DMAs when detection is done,
  /// service all completion IRQs. Mirrors the driver flow Fig. 6 implies.
  FrameCycleReport process_frame(TimePoint frame_start);

  /// Select the vehicle SVM model (0 = day, 1 = dusk): a register write,
  /// not a reconfiguration.
  void select_vehicle_model(std::uint32_t model, TimePoint now);

  /// Drive a partial reconfiguration through the PR DMA core's registers
  /// (the register-level view of ReconfigController::reconfigure): program
  /// source address and length, let the DMA stream the bitstream into the
  /// ICAP, service the completion interrupt. Returns the interrupt handler
  /// entry time (reconfiguration complete).
  TimePoint reconfigure(std::uint32_t bitstream_bytes, TimePoint now);

  /// Bandwidth budget of the HP ports for the configured video format
  /// (input streams on HP0/HP1, results on HP2, as in Fig. 6).
  [[nodiscard]] HpBudget hp_budget() const;

  /// Whether the per-frame software cycle fits the fps budget.
  [[nodiscard]] bool meets_frame_budget();

  [[nodiscard]] const EventLog& log() const { return log_; }
  [[nodiscard]] InterruptController& irq() { return irq_; }
  [[nodiscard]] AxiLiteInterconnect& bus() { return bus_; }
  [[nodiscard]] const VideoFormat& video() const { return video_; }
  [[nodiscard]] DetectionModuleRegs& vehicle_module() { return *vehicle_mod_; }
  [[nodiscard]] DetectionModuleRegs& pedestrian_module() {
    return *pedestrian_mod_;
  }

 private:
  /// Register write helper that accumulates control-plane time.
  void ctrl_write(std::uint32_t address, std::uint32_t value, TimePoint& now,
                  FrameCycleReport& report);

  ZynqPlatform platform_;
  VideoFormat video_;
  EventLog log_;
  InterruptController irq_;
  AxiLiteInterconnect bus_;
  std::unique_ptr<DmaCore> ped_in_, ped_out_, veh_in_, veh_out_, pr_dma_;
  std::unique_ptr<DetectionModuleRegs> pedestrian_mod_, vehicle_mod_;
};

}  // namespace avd::soc
