// First-order FPGA power model.
//
// The paper's argument for partial reconfiguration is resource headroom:
// "the adaptive detection could be done at no extra cost of resource
// utilization, resulting in more free resources available on the hardware
// for the other complex features of ADS" (§V). This model quantifies the
// companion power story: only the loaded configuration toggles, so the PR
// design's dynamic power follows the *active* configuration, while an
// everything-static alternative pays for both pipelines (or needs clock
// gating, which still pays leakage + clock-tree power).
//
// Coefficients are first-order 28 nm-class numbers; the bench reports
// ratios, not absolute watts.
#pragma once

#include "avd/soc/resources.hpp"

namespace avd::soc {

struct PowerCoefficients {
  double mw_per_klut = 1.8;        ///< dynamic, at full activity
  double mw_per_kff = 0.6;
  double mw_per_bram = 2.2;
  double mw_per_dsp = 1.4;
  double clock_tree_mw_per_klut = 0.25;  ///< paid even when clock-gated data is idle
  double leakage_mw_per_klut = 0.55;     ///< paid for any configured logic
  double activity = 0.25;          ///< average toggle rate of active logic
};

/// Power of a set of configured blocks.
/// `active_fraction` in [0,1]: 1 = processing every cycle, 0 = clock-gated.
struct PowerEstimate {
  double dynamic_mw = 0.0;
  double clock_mw = 0.0;
  double leakage_mw = 0.0;

  [[nodiscard]] double total_mw() const {
    return dynamic_mw + clock_mw + leakage_mw;
  }
};

[[nodiscard]] PowerEstimate estimate_power(const ModuleResources& configured,
                                           double active_fraction,
                                           const PowerCoefficients& k = {});

/// Scenario comparison for the A4 ablation: the PR design (static partition
/// + one loaded configuration) vs an everything-static design carrying both
/// pipelines, in a given operating mode.
struct DesignPower {
  std::string scenario;
  PowerEstimate power;
  ModuleResources configured;  ///< logic configured on the fabric
};

/// Power of the paper's PR design with `active_config` loaded
/// ("day-dusk" or "dark").
[[nodiscard]] DesignPower pr_design_power(const std::string& active_config,
                                          const PowerCoefficients& k = {});

/// Power of the all-static alternative (both pipelines always configured);
/// the idle pipeline is clock-gated but keeps leakage + clock tree.
[[nodiscard]] DesignPower static_design_power(const std::string& active_config,
                                              const PowerCoefficients& k = {});

}  // namespace avd::soc
