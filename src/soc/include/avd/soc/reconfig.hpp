// Reconfiguration controllers (paper §IV-A, Fig. 7).
//
// All four methods share one interface; they differ in the transfer path the
// bitstream takes. The paper's PR controller additionally requires the
// partial bitstreams to be staged in the PL-side DDR before the first
// reconfiguration (done once, off the critical path).
#pragma once

#include <map>
#include <optional>

#include "avd/soc/bitstream.hpp"
#include "avd/soc/event_log.hpp"
#include "avd/soc/zynq.hpp"

namespace avd::soc {

/// Outcome of one reconfiguration.
struct ReconfigResult {
  ReconfigMethod method;
  std::string config_name;
  TimePoint start;
  TimePoint end;               ///< interrupt raised to the PS at this time
  TransferRecord transfer;

  [[nodiscard]] Duration duration() const { return end - start; }
  [[nodiscard]] double throughput_mbps() const { return transfer.throughput(); }
};

/// A reconfiguration controller bound to one delivery method on a platform.
class ReconfigController {
 public:
  ReconfigController(ZynqPlatform platform, ReconfigMethod method);

  /// Stage a partial bitstream into the method's source memory. For the
  /// PL-DMA method this models the one-time PS-DDR -> PL-DDR copy (via an HP
  /// port); for the others staging is free (bitstreams already live in PS
  /// DDR). Staging must happen before reconfigure() of that config.
  /// Returns the staging transfer time.
  Duration stage(const PartialBitstream& bitstream);

  /// Perform a partial reconfiguration starting at `now`. Throws if the
  /// bitstream was never staged. Records events in the log.
  ReconfigResult reconfigure(TimePoint now, const PartialBitstream& bitstream);

  [[nodiscard]] ReconfigMethod method() const { return method_; }
  [[nodiscard]] const ZynqPlatform& platform() const { return platform_; }
  [[nodiscard]] const EventLog& log() const { return log_; }
  [[nodiscard]] EventLog& log() { return log_; }
  [[nodiscard]] bool staged(const std::string& config_name) const {
    return staged_.count(config_name) != 0;
  }
  /// Name of the configuration currently loaded in the partition (empty
  /// before the first reconfiguration).
  [[nodiscard]] const std::string& active_config() const { return active_; }

 private:
  ZynqPlatform platform_;
  ReconfigMethod method_;
  TransferPath path_;
  std::map<std::string, PartialBitstream> staged_;
  std::string active_;
  EventLog log_;
};

/// Model every method on the same bitstream: the §IV-A comparison table
/// (HWICAP 19 / PCAP 145 / ZyCAP 382 / ours 390 MB/s).
struct MethodComparisonRow {
  ReconfigMethod method;
  double throughput_mbps = 0.0;
  Duration reconfig_time;
  double pct_of_ceiling = 0.0;
};
[[nodiscard]] std::vector<MethodComparisonRow> compare_methods(
    const ZynqPlatform& platform, const PartialBitstream& bitstream);

}  // namespace avd::soc
