// AXI transfer-path model.
//
// The four reconfiguration methods the paper compares (§IV-A) differ only in
// *topology*: which bus segments a configuration word traverses between its
// staging memory and the configuration port. Each segment contributes a
// per-transaction (per-burst) latency and a bandwidth ceiling; a path's
// throughput emerges from the composition, not from a tuned constant
// (DESIGN.md §7).
#pragma once

#include <string>
#include <vector>

#include "avd/soc/sim_time.hpp"

namespace avd::soc {

/// One hop in a transfer path: a port, interconnect, bridge or memory
/// controller.
struct BusSegment {
  std::string name;
  Duration txn_latency;      ///< arbitration/decode latency per burst
  double bandwidth_mbps = 0; ///< sustained payload bandwidth ceiling
};

/// A complete path from staging memory to sink, traversed by bursts.
struct TransferPath {
  std::string name;
  std::vector<BusSegment> segments;
  std::uint32_t burst_bytes = 256;  ///< payload per burst transaction
  Duration setup;                   ///< one-time driver/descriptor setup

  /// Slowest segment bandwidth along the path (MB/s).
  [[nodiscard]] double bottleneck_mbps() const;
  /// Sum of per-burst segment latencies.
  [[nodiscard]] Duration burst_overhead() const;
};

/// Result of one modelled transfer.
struct TransferRecord {
  std::string path_name;
  std::uint64_t bytes = 0;
  std::uint64_t bursts = 0;
  Duration elapsed;        ///< includes setup
  Duration payload_time;   ///< bytes / bottleneck bandwidth
  Duration overhead_time;  ///< setup + per-burst latencies

  [[nodiscard]] double throughput() const {  // MB/s
    return throughput_mbps(bytes, elapsed);
  }
  /// Fraction of the elapsed time spent moving payload (path efficiency).
  [[nodiscard]] double efficiency() const {
    return elapsed.ps ? static_cast<double>(payload_time.ps) / elapsed.ps : 0.0;
  }
};

/// Non-overlapped burst model: each burst pays every segment's transaction
/// latency plus payload time at the bottleneck bandwidth. This matches the
/// store-and-forward behaviour of the Zynq PS interconnect for configuration
/// traffic (bursts are not pipelined across the PCAP bridge).
[[nodiscard]] TransferRecord model_transfer(const TransferPath& path,
                                            std::uint64_t bytes);

}  // namespace avd::soc
