// Canonical Zynq-7000 platform description: the bus segments of the PS and
// PL sides, and the four bitstream-delivery topologies of paper §IV-A.
//
// Segment parameters come from public Zynq-7000 characteristics:
//  * ICAPE2 and PCAP are both 32-bit at 100 MHz -> 400 MB/s ceiling [1].
//  * The PS central interconnect adds heavy per-burst arbitration (the reason
//    PCAP saturates at ~145 MB/s instead of 400 [1]).
//  * AXI-Lite register writes through a PS general-purpose port are
//    single-word, non-burst transactions (the reason AXI HWICAP manages only
//    ~19 MB/s [1]).
//  * AXI HP ports bypass the central interconnect into the DDR controller
//    (ZyCAP's 382 MB/s [19]).
//  * A PL-side DDR controller is dedicated — no sharing with the PS at all
//    (the paper's PR controller, 390 MB/s).
#pragma once

#include "avd/soc/axi.hpp"

namespace avd::soc {

/// Clock frequencies of the modelled platform (MHz).
struct ZynqClocks {
  std::uint64_t icap_mhz = 100;    ///< ICAPE2 / PCAP configuration clock
  std::uint64_t fabric_mhz = 125;  ///< detection pipelines (paper §V)
  std::uint64_t ddr_mhz = 533;     ///< DDR3 data clock
};

/// Named bus segments of the platform. All four reconfiguration paths are
/// assembled from these shared pieces.
struct ZynqPlatform {
  ZynqClocks clocks;

  BusSegment ps_gp_port;             ///< PS general-purpose master port
  BusSegment axi_lite_peripheral;    ///< AXI-Lite peripheral interconnect
  BusSegment ps_central_interconnect;
  BusSegment ps_ddr_controller;      ///< shared PS DDR3 controller
  BusSegment pl_ddr_controller;      ///< dedicated PL DDR3 controller
  BusSegment axi_hp_port;            ///< high-performance slave port
  BusSegment pl_axi_interconnect;    ///< PL-side memory interconnect
  BusSegment pcap_bridge;            ///< PCAP DMA bridge
  BusSegment icap_primitive;         ///< ICAPE2 primitive + ICAP manager
};

/// Platform with the calibrated default segment parameters (DESIGN.md §7).
[[nodiscard]] ZynqPlatform default_platform();

/// Same calibration, but bandwidth ceilings derived from the given clocks
/// (e.g. an overclocked ICAP). Clock frequencies must be positive.
[[nodiscard]] ZynqPlatform default_platform(const ZynqClocks& clocks);

/// Which delivery mechanism a reconfiguration uses.
enum class ReconfigMethod {
  AxiHwicap,      ///< Xilinx AXI HWICAP: PS GP port, word-by-word (~19 MB/s)
  Pcap,           ///< PS PCAP DMA through the central interconnect (~145 MB/s)
  ZyCap,          ///< ZyCAP [19]: PL DMA reading PS DDR via an HP port (~382 MB/s)
  PlDmaIcap,      ///< the paper's PR controller: PL DMA from PL DDR (~390 MB/s)
};

[[nodiscard]] const char* to_string(ReconfigMethod m);

/// The transfer path of a method on a platform.
[[nodiscard]] TransferPath reconfig_path(const ZynqPlatform& platform,
                                         ReconfigMethod method);

/// Theoretical configuration-port ceiling: 32 bit x icap clock (400 MB/s at
/// the default 100 MHz).
[[nodiscard]] double config_port_ceiling_mbps(const ZynqPlatform& platform);

}  // namespace avd::soc
