// Frame scheduler: models the 50 fps capture loop and which frames each
// detection engine actually processes.
//
// Paper §IV-B: "the reconfiguration time is measured as 20ms which is
// equivalent to missing one frame in a sequence of 50fps. However, during
// this reconfiguration time, the pedestrian detection module continues its
// work."  The scheduler reproduces exactly this accounting: the vehicle
// engine skips frames that overlap a reconfiguration window; the static
// pedestrian engine never skips.
#pragma once

#include <string>
#include <vector>

#include "avd/soc/sim_time.hpp"

namespace avd::soc {

struct FrameSchedulerConfig {
  double fps = 50.0;

  [[nodiscard]] Duration frame_period() const {
    return Duration::from_ps(static_cast<std::uint64_t>(1e12 / fps));
  }
};

/// Per-frame processing record.
struct FrameRecord {
  int index = 0;
  TimePoint capture_time;
  bool vehicle_processed = false;
  bool pedestrian_processed = false;
  std::string vehicle_config;  ///< configuration active for this frame
};

class FrameScheduler {
 public:
  explicit FrameScheduler(FrameSchedulerConfig config = {})
      : config_(config) {}

  /// Declare a reconfiguration window [start, start+duration): vehicle frames
  /// whose period overlaps it are dropped.
  void add_reconfig_window(TimePoint start, Duration duration,
                           std::string new_config);

  /// Capture time of frame `index`.
  [[nodiscard]] TimePoint frame_time(int index) const {
    return TimePoint{} + config_.frame_period() * static_cast<std::uint64_t>(index);
  }

  /// Schedule `n_frames` frames starting at t=0 with `initial_config` loaded.
  [[nodiscard]] std::vector<FrameRecord> schedule(
      int n_frames, const std::string& initial_config) const;

  /// Record of a single frame under the windows declared so far. Because a
  /// reconfiguration window always opens strictly after the frame that
  /// triggered it was captured, the record of frame `index` is final once
  /// every window triggered at or before `index` has been declared — this is
  /// what lets the streaming runtime schedule frames incrementally and still
  /// match a batch schedule() bit for bit.
  [[nodiscard]] FrameRecord record_at(int index,
                                      const std::string& initial_config) const;

  /// Count of vehicle frames dropped across a schedule.
  [[nodiscard]] static int dropped_vehicle_frames(
      const std::vector<FrameRecord>& records);

  [[nodiscard]] const FrameSchedulerConfig& config() const { return config_; }

 private:
  struct Window {
    TimePoint start;
    TimePoint end;
    std::string new_config;
  };

  FrameSchedulerConfig config_;
  std::vector<Window> windows_;  // kept sorted by start
};

}  // namespace avd::soc
