// Hardware-throughput model of the streaming detection pipelines.
//
// The paper's accelerators are fully pipelined line-scanning engines: one
// pixel per fabric clock after an initial pipeline-fill latency. At 125 MHz
// this sustains 50 fps on 1080x1920 frames (paper §V) with headroom.
#pragma once

#include <string>
#include <vector>

#include "avd/image/geometry.hpp"
#include "avd/soc/sim_time.hpp"

namespace avd::soc {

/// One pipeline stage: initiation interval 1, some fill latency, and line
/// buffers that occupy BRAM (the "intermediate temporary storage" of Fig. 2).
struct PipelineStage {
  std::string name;
  std::uint64_t fill_latency_cycles = 0;  ///< cycles before first output
  int line_buffers = 0;                   ///< full-width line buffers required
};

/// A streaming accelerator processing `pixels_per_cycle` px per fabric clock.
struct HwPipelineModel {
  std::string name;
  std::uint64_t fabric_mhz = 125;
  int pixels_per_cycle = 1;
  std::vector<PipelineStage> stages;
  /// Per-frame software/DMA overhead (descriptor setup, interrupt service).
  Duration per_frame_overhead = Duration::from_us(30);

  /// Total pipeline-fill latency (sum over stages).
  [[nodiscard]] std::uint64_t fill_latency_cycles() const;
  /// Wall-clock to process one frame of `size` pixels.
  [[nodiscard]] Duration frame_time(img::Size size) const;
  /// Sustained frames per second on frames of `size`.
  [[nodiscard]] double max_fps(img::Size size) const;
  /// Whether the pipeline meets `fps` on `size` frames.
  [[nodiscard]] bool meets_rate(img::Size size, double fps) const;
};

/// The three vehicle pipelines plus the pedestrian pipeline, with stage
/// structure mirroring Figs. 2 and 4.
[[nodiscard]] HwPipelineModel day_dusk_pipeline_model();
[[nodiscard]] HwPipelineModel dark_pipeline_model();
[[nodiscard]] HwPipelineModel pedestrian_pipeline_model();

/// HDTV frame size used throughout the paper.
inline constexpr img::Size kHdtvFrame{1920, 1080};
inline constexpr double kTargetFps = 50.0;

}  // namespace avd::soc
