// AXI-Lite control plane (paper Fig. 6).
//
// "All AXI DMA cores and detection modules are controlled by the PS through
// their AXI-Lite interfaces which is connected to PS general-purpose port of
// AXI-GP-0. Processing system initiates the DMA data transfer by writing to
// its registers and defining the size of data."
//
// This header models that register fabric: devices expose 32-bit registers
// at word-aligned offsets; an interconnect decodes addresses and routes
// accesses, charging the GP-port transaction latency per access.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "avd/soc/event_log.hpp"

namespace avd::soc {

/// A memory-mapped peripheral with 32-bit registers.
class AxiLiteDevice {
 public:
  virtual ~AxiLiteDevice() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Size of the register window in bytes.
  [[nodiscard]] virtual std::uint32_t window_bytes() const = 0;

  /// Word-aligned register read/write. `offset` is in bytes relative to the
  /// device base. Implementations throw std::out_of_range for bad offsets.
  virtual std::uint32_t read(std::uint32_t offset, TimePoint now) = 0;
  virtual void write(std::uint32_t offset, std::uint32_t value,
                     TimePoint now) = 0;
};

/// Simple address decoder: devices are mapped at fixed base addresses.
/// Every access pays the GP-port + peripheral-interconnect latency, which is
/// what the model returns so callers can advance simulated time.
class AxiLiteInterconnect {
 public:
  /// `access_latency`: time one register access occupies the GP port
  /// (default matches the calibrated platform: 150 ns port + 50 ns fabric).
  explicit AxiLiteInterconnect(Duration access_latency = Duration::from_ns(200))
      : access_latency_(access_latency) {}

  /// Map a device at `base`. Windows must not overlap. The interconnect
  /// does not own the device.
  void attach(std::uint32_t base, AxiLiteDevice* device);

  struct AccessResult {
    std::uint32_t value = 0;   ///< read data (0 for writes)
    Duration latency;          ///< bus time consumed
  };

  /// Routed read/write; throws std::out_of_range when no device is mapped
  /// at the address.
  AccessResult read(std::uint32_t address, TimePoint now);
  AccessResult write(std::uint32_t address, std::uint32_t value, TimePoint now);

  [[nodiscard]] std::size_t device_count() const { return map_.size(); }
  [[nodiscard]] Duration access_latency() const { return access_latency_; }

 private:
  struct Mapping {
    std::uint32_t base;
    AxiLiteDevice* device;
  };
  /// Device whose window contains `address`; throws if none.
  [[nodiscard]] const Mapping& resolve(std::uint32_t address) const;

  Duration access_latency_;
  std::map<std::uint32_t, Mapping> map_;  // keyed by base
};

}  // namespace avd::soc
