// Timestamped event log: the simulation's equivalent of the paper's ARM
// performance counters + Vivado ILA traces used to measure reconfiguration.
#pragma once

#include <string>
#include <vector>

#include "avd/soc/sim_time.hpp"

namespace avd::soc {

struct Event {
  TimePoint time;
  std::string source;   ///< component that emitted the event
  std::string message;
};

class EventLog {
 public:
  void record(TimePoint t, std::string source, std::string message) {
    events_.push_back({t, std::move(source), std::move(message)});
  }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// All events from a given source, in order.
  [[nodiscard]] std::vector<Event> from(const std::string& source) const;

  /// Multi-line human-readable dump.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Event> events_;
};

}  // namespace avd::soc
