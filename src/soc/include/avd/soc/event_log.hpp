// Timestamped event log: the simulation's equivalent of the paper's ARM
// performance counters + Vivado ILA traces used to measure reconfiguration.
//
// Thread safety: record() may be called concurrently from multiple threads
// (the avd::runtime worker pools log into shared stage logs); it is guarded
// by an internal mutex. Every read accessor (events(), from(), to_string(),
// size()) takes the same mutex and returns a snapshot by value, so readers
// are safe against concurrent record() — a snapshot is simply only as
// complete as the moment it was taken.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "avd/soc/sim_time.hpp"

namespace avd::soc {

struct Event {
  TimePoint time;
  std::string source;   ///< component that emitted the event
  std::string message;
};

class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog& other) : events_(other.snapshot()) {}
  EventLog(EventLog&& other) noexcept : events_(other.take()) {}
  EventLog& operator=(const EventLog& other) {
    if (this != &other) {
      std::vector<Event> copy = other.snapshot();
      std::lock_guard<std::mutex> lock(mutex_);
      events_ = std::move(copy);
    }
    return *this;
  }
  EventLog& operator=(EventLog&& other) noexcept {
    if (this != &other) {
      std::vector<Event> taken = other.take();
      std::lock_guard<std::mutex> lock(mutex_);
      events_ = std::move(taken);
    }
    return *this;
  }

  void record(TimePoint t, std::string source, std::string message) {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back({t, std::move(source), std::move(message)});
  }

  /// Locked snapshot of all events recorded so far. Returned by value: a
  /// reference into the live vector would be invalidated by a concurrent
  /// record() despite the class's thread-safety contract.
  [[nodiscard]] std::vector<Event> events() const { return snapshot(); }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
  }

  /// All events from a given source, in order.
  [[nodiscard]] std::vector<Event> from(const std::string& source) const;

  /// Multi-line human-readable dump.
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::vector<Event> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }
  [[nodiscard]] std::vector<Event> take() noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(events_);
  }

  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

}  // namespace avd::soc
