#include "avd/soc/bitstream.hpp"

#include <cmath>

#include "avd/soc/crc.hpp"

namespace avd::soc {

void PartialBitstream::attach_payload(std::uint64_t seed) {
  payload.resize(bytes);
  // xorshift64* stream: fast, deterministic, no <random> allocation churn.
  std::uint64_t state = seed | 1ull;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    payload[i] = static_cast<std::uint8_t>((state * 0x2545F4914F6CDD1Dull) >> 56);
  }
  crc = crc32(payload);
}

bool PartialBitstream::verify_integrity() const {
  if (!has_payload()) return true;  // size-only model: nothing to check
  return crc32(payload) == crc;
}

PartialBitstream make_partial_bitstream(const std::string& config_name,
                                        const ModuleResources& partition,
                                        const DeviceResources& device,
                                        const BitstreamParams& params) {
  // Configuration frames scale with the region's logic share of the device.
  const double region_fraction =
      static_cast<double>(partition.lut) / static_cast<double>(device.lut);
  const auto bytes = static_cast<std::uint64_t>(
      std::llround(region_fraction * static_cast<double>(params.full_device_bytes)));
  return {config_name, bytes};
}

}  // namespace avd::soc
