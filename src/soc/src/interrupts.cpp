#include "avd/soc/interrupts.hpp"

#include <stdexcept>

namespace avd::soc {

int InterruptController::add_line(std::string source) {
  IrqLine l;
  l.id = static_cast<int>(lines_.size());
  l.source = std::move(source);
  lines_.push_back(std::move(l));
  return lines_.back().id;
}

const IrqLine& InterruptController::line(int id) const {
  if (id < 0 || id >= static_cast<int>(lines_.size()))
    throw std::out_of_range("InterruptController: bad line id");
  return lines_[static_cast<std::size_t>(id)];
}

IrqLine& InterruptController::line(int id) {
  return const_cast<IrqLine&>(
      static_cast<const InterruptController*>(this)->line(id));
}

void InterruptController::mask(int id, bool masked) {
  line(id).masked = masked;
}

void InterruptController::raise(int id, TimePoint now, EventLog* log) {
  IrqLine& l = line(id);
  ++l.total_raised;
  if (l.masked) return;
  if (!l.pending) {
    l.pending = true;
    l.raised_at = now;
  }
  if (log) log->record(now, l.source, "IRQ raised");
}

InterruptController::Service InterruptController::service_next(TimePoint now) {
  // Lowest id wins (fixed priority), matching a GIC with static priorities.
  for (IrqLine& l : lines_) {
    if (!l.pending) continue;
    l.pending = false;
    Service s;
    s.handled = true;
    s.id = l.id;
    s.source = l.source;
    s.handler_entry = std::max(now, l.raised_at) + service_latency_;
    return s;
  }
  return {};
}

int InterruptController::pending_count() const {
  int n = 0;
  for (const IrqLine& l : lines_) n += l.pending;
  return n;
}

}  // namespace avd::soc
