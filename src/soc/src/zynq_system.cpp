#include "avd/soc/zynq_system.hpp"

#include <algorithm>
#include <stdexcept>

namespace avd::soc {

// --- DetectionModuleRegs ---

DetectionModuleRegs::DetectionModuleRegs(std::string name,
                                         HwPipelineModel timing,
                                         InterruptController* irq, int irq_line,
                                         EventLog* log)
    : name_(std::move(name)),
      timing_(std::move(timing)),
      irq_(irq),
      irq_line_(irq_line),
      log_(log) {}

std::uint32_t DetectionModuleRegs::read(std::uint32_t offset, TimePoint now) {
  switch (offset) {
    case 0x00:
      return enabled_ ? 0x2u : 0x0u;
    case 0x04:
      if (!done_ && done_at_.ps != 0 && now >= done_at_) done_ = true;
      return done_ ? 0x1u : 0x0u;
    case 0x08:
      return model_;
    case 0x0C:
      return param_;
    default:
      throw std::out_of_range(name_ + ": bad register offset");
  }
}

void DetectionModuleRegs::write(std::uint32_t offset, std::uint32_t value,
                                TimePoint now) {
  switch (offset) {
    case 0x00:
      enabled_ = (value & 0x2u) != 0;
      if (value & 0x1u) {  // start
        if (!enabled_)
          throw std::logic_error(name_ + ": started while disabled");
        done_ = false;
        done_at_ = now + timing_.frame_time(frame_size_);
        if (log_) log_->record(now, name_, "frame processing started");
        if (irq_ && irq_line_ >= 0) irq_->raise(irq_line_, done_at_, log_);
      }
      return;
    case 0x04:
      if (value & 0x1u) done_ = false;  // W1C
      return;
    case 0x08:
      if (value > 1)
        throw std::invalid_argument(name_ + ": bad model select");
      model_ = value;
      if (log_)
        log_->record(now, name_,
                     std::string("model select -> ") +
                         (value == 0 ? "day" : "dusk"));
      return;
    case 0x0C:
      param_ = value;
      return;
    default:
      throw std::out_of_range(name_ + ": bad register offset");
  }
}

// --- HpBudget ---

double HpBudget::port_load(int port) const {
  double load = 0.0;
  for (const HpStream& s : streams)
    if (s.hp_port == port) load += s.mbps;
  return load;
}

bool HpBudget::feasible() const {
  for (const HpStream& s : streams)
    if (port_load(s.hp_port) > port_capacity_mbps) return false;
  return true;
}

double HpBudget::worst_utilization() const {
  double worst = 0.0;
  for (const HpStream& s : streams)
    worst = std::max(worst, port_load(s.hp_port) / port_capacity_mbps);
  return worst;
}

// --- ZynqSystem ---

namespace {

// Frame traffic rides an HP port into the shared PS DDR controller.
TransferPath frame_dma_path(const ZynqPlatform& p, const char* name) {
  TransferPath path;
  path.name = name;
  path.segments = {p.axi_hp_port, p.ps_ddr_controller};
  path.burst_bytes = 1024;
  path.setup = Duration::from_us(1);
  return path;
}

}  // namespace

ZynqSystem::ZynqSystem(ZynqPlatform platform, VideoFormat video)
    : platform_(std::move(platform)), video_(video) {
  const int ped_in_irq = irq_.add_line("pedestrian-in-dma");
  const int ped_out_irq = irq_.add_line("pedestrian-out-dma");
  const int veh_in_irq = irq_.add_line("vehicle-in-dma");
  const int veh_out_irq = irq_.add_line("vehicle-out-dma");
  const int pr_irq = irq_.add_line("pr-dma");
  const int ped_mod_irq = irq_.add_line("pedestrian-detection");
  const int veh_mod_irq = irq_.add_line("vehicle-detection");

  ped_in_ = std::make_unique<DmaCore>(
      "pedestrian-in-dma", frame_dma_path(platform_, "hp0-in"), &irq_,
      ped_in_irq, &log_);
  ped_out_ = std::make_unique<DmaCore>(
      "pedestrian-out-dma", frame_dma_path(platform_, "hp2-out"), &irq_,
      ped_out_irq, &log_);
  veh_in_ = std::make_unique<DmaCore>(
      "vehicle-in-dma", frame_dma_path(platform_, "hp1-in"), &irq_,
      veh_in_irq, &log_);
  veh_out_ = std::make_unique<DmaCore>(
      "vehicle-out-dma", frame_dma_path(platform_, "hp2-out"), &irq_,
      veh_out_irq, &log_);
  pr_dma_ = std::make_unique<DmaCore>(
      "pr-dma", reconfig_path(platform_, ReconfigMethod::PlDmaIcap), &irq_,
      pr_irq, &log_);

  pedestrian_mod_ = std::make_unique<DetectionModuleRegs>(
      "pedestrian-detection", pedestrian_pipeline_model(), &irq_, ped_mod_irq,
      &log_);
  vehicle_mod_ = std::make_unique<DetectionModuleRegs>(
      "vehicle-detection", day_dusk_pipeline_model(), &irq_, veh_mod_irq,
      &log_);
  pedestrian_mod_->set_frame_size(video_.frame);
  vehicle_mod_->set_frame_size(video_.frame);

  bus_.attach(sysmap::kPedestrianInDma, ped_in_.get());
  bus_.attach(sysmap::kPedestrianOutDma, ped_out_.get());
  bus_.attach(sysmap::kVehicleInDma, veh_in_.get());
  bus_.attach(sysmap::kVehicleOutDma, veh_out_.get());
  bus_.attach(sysmap::kPrDma, pr_dma_.get());
  bus_.attach(sysmap::kPedestrianModule, pedestrian_mod_.get());
  bus_.attach(sysmap::kVehicleModule, vehicle_mod_.get());
}

void ZynqSystem::ctrl_write(std::uint32_t address, std::uint32_t value,
                            TimePoint& now, FrameCycleReport& report) {
  const auto res = bus_.write(address, value, now);
  now += res.latency;
  report.control_time += res.latency;
  ++report.register_accesses;
}

FrameCycleReport ZynqSystem::process_frame(TimePoint frame_start) {
  using namespace dma_reg;
  using namespace sysmap;
  FrameCycleReport report;
  TimePoint now = frame_start;

  const auto frame_bytes = static_cast<std::uint32_t>(video_.bytes_per_frame());
  // Detection results are compact: a few hundred candidate boxes.
  constexpr std::uint32_t kResultBytes = 4096;

  // 1. Program the two input DMAs (stream the captured frame into both
  //    detection modules). Run/stop + IRQ enable, then address, then length
  //    (the length write starts the engine).
  for (std::uint32_t base : {kPedestrianInDma, kVehicleInDma}) {
    ctrl_write(base + kMm2sCr, dma_bit::kRunStop | dma_bit::kIocIrqEn, now,
               report);
    ctrl_write(base + kMm2sSa, 0x1000'0000, now, report);
    ctrl_write(base + kMm2sLength, frame_bytes, now, report);
  }

  // 2. Start both accelerators (they consume the stream as it arrives; the
  //    model serialises conservatively: detect after input lands).
  const TimePoint input_done =
      std::max(ped_in_->last_transfer()->completes,
               veh_in_->last_transfer()->completes);
  report.input_dma_time = input_done - frame_start;
  now = std::max(now, input_done);
  for (std::uint32_t base : {kPedestrianModule, kVehicleModule})
    ctrl_write(base + 0x00, 0x3, now, report);  // enable + start

  const TimePoint detect_done =
      std::max(pedestrian_mod_->done_at(), vehicle_mod_->done_at());
  report.detect_time = detect_done - now;
  now = std::max(now, detect_done);

  // 3. Stream the results back to PS DDR.
  for (std::uint32_t base : {kPedestrianOutDma, kVehicleOutDma}) {
    ctrl_write(base + kS2mmCr, dma_bit::kRunStop | dma_bit::kIocIrqEn, now,
               report);
    ctrl_write(base + kS2mmDa, 0x2000'0000, now, report);
    ctrl_write(base + kS2mmLength, kResultBytes, now, report);
  }
  const TimePoint out_done =
      std::max(ped_out_->last_transfer()->completes,
               veh_out_->last_transfer()->completes);
  report.output_dma_time = out_done - now;
  now = std::max(now, out_done);

  // 4. Service every pending completion interrupt.
  while (true) {
    const auto svc = irq_.service_next(now);
    if (!svc.handled) break;
    now = std::max(now, svc.handler_entry);
    ++report.irqs_serviced;
  }

  report.frame_done = now;
  return report;
}

void ZynqSystem::select_vehicle_model(std::uint32_t model, TimePoint now) {
  (void)bus_.write(sysmap::kVehicleModule + 0x08, model, now);
}

TimePoint ZynqSystem::reconfigure(std::uint32_t bitstream_bytes,
                                  TimePoint now) {
  using namespace dma_reg;
  // The PS programs the PR DMA exactly like any other AXI DMA core: run +
  // IRQ enable, source (the staged bitstream in PL DDR), then length.
  (void)bus_.write(sysmap::kPrDma + kMm2sCr,
                   dma_bit::kRunStop | dma_bit::kIocIrqEn, now);
  (void)bus_.write(sysmap::kPrDma + kMm2sSa, 0x3000'0000, now);
  (void)bus_.write(sysmap::kPrDma + kMm2sLength, bitstream_bytes, now);
  log_.record(now, "pr-dma", "partial reconfiguration started");

  // Wait for the completion interrupt; the PR DMA's line carries it.
  while (true) {
    const auto svc = irq_.service_next(now);
    if (!svc.handled) break;
    now = std::max(now, svc.handler_entry);
    if (svc.source == "pr-dma") {
      // Acknowledge in the status register (W1C).
      (void)bus_.write(sysmap::kPrDma + kMm2sSr, dma_bit::kIocIrq, now);
      log_.record(now, "pr-dma", "partial reconfiguration complete");
      return now;
    }
  }
  return now;
}

HpBudget ZynqSystem::hp_budget() const {
  HpBudget budget;
  budget.port_capacity_mbps = platform_.axi_hp_port.bandwidth_mbps;
  const double in_mbps = video_.bandwidth_mbps();
  // Results are negligible but accounted: 4 KiB per frame per module.
  const double out_mbps = 2.0 * 4096.0 * video_.fps / 1e6;
  budget.streams = {
      {"pedestrian-frame-in", in_mbps, 0},
      {"vehicle-frame-in", in_mbps, 1},
      {"detection-results-out", out_mbps, 2},
  };
  return budget;
}

bool ZynqSystem::meets_frame_budget() {
  // Probe far in the future so any in-flight transfers have drained.
  const TimePoint probe{1'000'000'000'000'000ull};  // 1000 s
  const FrameCycleReport report = process_frame(probe);
  const Duration period =
      Duration::from_ps(static_cast<std::uint64_t>(1e12 / video_.fps));
  return report.total_latency(probe) <= period * 2;  // 2-frame pipeline depth
}

}  // namespace avd::soc
