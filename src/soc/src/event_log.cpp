#include "avd/soc/event_log.hpp"

#include <sstream>

namespace avd::soc {

std::vector<Event> EventLog::from(const std::string& source) const {
  std::vector<Event> out;
  std::vector<Event> all = snapshot();
  for (Event& e : all)
    if (e.source == source) out.push_back(std::move(e));
  return out;
}

std::string EventLog::to_string() const {
  std::ostringstream os;
  for (const Event& e : snapshot())
    os << '[' << e.time.as_ms() << " ms] " << e.source << ": " << e.message
       << '\n';
  return os.str();
}

}  // namespace avd::soc
