#include "avd/soc/hw_pipeline.hpp"

namespace avd::soc {

std::uint64_t HwPipelineModel::fill_latency_cycles() const {
  std::uint64_t total = 0;
  for (const PipelineStage& s : stages) total += s.fill_latency_cycles;
  return total;
}

Duration HwPipelineModel::frame_time(img::Size size) const {
  const auto pixels = static_cast<std::uint64_t>(size.area());
  const std::uint64_t cycles =
      pixels / static_cast<std::uint64_t>(pixels_per_cycle) +
      fill_latency_cycles();
  return Duration::cycles(cycles, fabric_mhz) + per_frame_overhead;
}

double HwPipelineModel::max_fps(img::Size size) const {
  const Duration t = frame_time(size);
  return t.ps ? 1e12 / static_cast<double>(t.ps) : 0.0;
}

bool HwPipelineModel::meets_rate(img::Size size, double fps) const {
  return max_fps(size) >= fps;
}

HwPipelineModel day_dusk_pipeline_model() {
  HwPipelineModel m;
  m.name = "hog-svm-vehicle";
  // Fig. 2: gradient/histogram generation, HOG memory, block normaliser,
  // normalised-HOG memory, SVM classifier. Fill latencies reflect the line
  // buffers each stage must accumulate before producing output (a HOG cell
  // needs 8 lines; a block needs one extra cell row).
  m.stages = {
      {"gradient", 2 * 1920 + 4, 2},          // 3x3 centred masks
      {"cell-histogram", 8 * 1920, 8},        // one cell row
      {"hog-memory", 1920, 1},
      {"block-normalizer", 8 * 1920 + 32, 8}, // one extra cell row + divider
      {"normalized-hog-memory", 1920, 1},
      {"svm-classifier", 64, 0},              // dot-product tree
  };
  return m;
}

HwPipelineModel dark_pipeline_model() {
  HwPipelineModel m;
  m.name = "dark-vehicle";
  // Fig. 4: threshold (per-pixel), downsample, closing (3x3 dilate + erode
  // on the 640-wide downsampled stream), sliding DBN, matching.
  m.stages = {
      {"split-threshold", 8, 0},
      {"downsample", 3 * 1920, 3},
      {"closing-dilate", 640 + 2, 1},
      {"closing-erode", 640 + 2, 1},
      {"dbn-l1", 9 * 640, 9},   // 9x9 window
      {"dbn-l2", 24, 0},
      {"dbn-l3", 12, 0},
      {"merge-compare", 640, 1},
  };
  return m;
}

HwPipelineModel pedestrian_pipeline_model() {
  HwPipelineModel m;
  m.name = "hog-svm-pedestrian";
  m.stages = {
      {"gradient", 2 * 1920 + 4, 2},
      {"cell-histogram", 8 * 1920, 8},
      {"hog-memory", 1920, 1},
      {"block-normalizer", 8 * 1920 + 32, 8},
      {"normalized-hog-memory", 1920, 1},
      {"svm-classifier", 64, 0},
  };
  return m;
}

}  // namespace avd::soc
