#include "avd/soc/axi_lite.hpp"

#include <stdexcept>

namespace avd::soc {

void AxiLiteInterconnect::attach(std::uint32_t base, AxiLiteDevice* device) {
  if (device == nullptr)
    throw std::invalid_argument("AxiLiteInterconnect: null device");
  if (base % 4 != 0)
    throw std::invalid_argument("AxiLiteInterconnect: unaligned base");
  const std::uint32_t end = base + device->window_bytes();
  for (const auto& [b, m] : map_) {
    const std::uint32_t m_end = b + m.device->window_bytes();
    if (base < m_end && b < end)
      throw std::invalid_argument(
          "AxiLiteInterconnect: window overlaps device '" +
          m.device->name() + "'");
  }
  map_[base] = {base, device};
}

const AxiLiteInterconnect::Mapping& AxiLiteInterconnect::resolve(
    std::uint32_t address) const {
  auto it = map_.upper_bound(address);
  if (it == map_.begin())
    throw std::out_of_range("AxiLiteInterconnect: unmapped address");
  --it;
  const Mapping& m = it->second;
  if (address >= m.base + m.device->window_bytes())
    throw std::out_of_range("AxiLiteInterconnect: unmapped address");
  return m;
}

AxiLiteInterconnect::AccessResult AxiLiteInterconnect::read(
    std::uint32_t address, TimePoint now) {
  const Mapping& m = resolve(address);
  return {m.device->read(address - m.base, now), access_latency_};
}

AxiLiteInterconnect::AccessResult AxiLiteInterconnect::write(
    std::uint32_t address, std::uint32_t value, TimePoint now) {
  const Mapping& m = resolve(address);
  m.device->write(address - m.base, value, now);
  return {0, access_latency_};
}

}  // namespace avd::soc
