#include "avd/soc/axi.hpp"

#include <algorithm>
#include <stdexcept>

namespace avd::soc {

double TransferPath::bottleneck_mbps() const {
  double bw = 0.0;
  for (const BusSegment& s : segments) {
    if (s.bandwidth_mbps <= 0.0) continue;
    bw = bw == 0.0 ? s.bandwidth_mbps : std::min(bw, s.bandwidth_mbps);
  }
  return bw;
}

Duration TransferPath::burst_overhead() const {
  Duration d;
  for (const BusSegment& s : segments) d += s.txn_latency;
  return d;
}

TransferRecord model_transfer(const TransferPath& path, std::uint64_t bytes) {
  if (path.burst_bytes == 0)
    throw std::invalid_argument("model_transfer: zero burst size");
  if (path.segments.empty())
    throw std::invalid_argument("model_transfer: empty path");
  const double bw = path.bottleneck_mbps();
  if (bw <= 0.0)
    throw std::invalid_argument("model_transfer: no bandwidth ceiling on path");

  TransferRecord rec;
  rec.path_name = path.name;
  rec.bytes = bytes;
  rec.bursts = (bytes + path.burst_bytes - 1) / path.burst_bytes;

  // Payload time at the bottleneck: bytes / (bw MB/s) seconds -> ps.
  // bw MB/s == bw bytes/us, so time_ps = bytes / bw * 1e6.
  rec.payload_time =
      Duration::from_ps(static_cast<std::uint64_t>(
          static_cast<double>(bytes) / bw * 1e6));
  rec.overhead_time = path.setup + path.burst_overhead() * rec.bursts;
  rec.elapsed = rec.payload_time + rec.overhead_time;
  return rec;
}

}  // namespace avd::soc
