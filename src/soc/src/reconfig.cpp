#include "avd/soc/reconfig.hpp"

#include <sstream>
#include <stdexcept>

#include "avd/obs/metrics.hpp"
#include "avd/obs/trace.hpp"

namespace avd::soc {

ReconfigController::ReconfigController(ZynqPlatform platform,
                                       ReconfigMethod method)
    : platform_(std::move(platform)),
      method_(method),
      path_(reconfig_path(platform_, method)) {}

Duration ReconfigController::stage(const PartialBitstream& bitstream) {
  staged_[bitstream.config_name] = bitstream;
  if (method_ != ReconfigMethod::PlDmaIcap) return Duration{};

  // One-time PS DDR -> PL DDR copy through an HP port. This is the price of
  // keeping the PS and its interconnect out of the reconfiguration itself.
  TransferPath staging;
  staging.name = "bitstream-staging";
  staging.segments = {platform_.axi_hp_port, platform_.ps_ddr_controller,
                      platform_.pl_ddr_controller};
  staging.burst_bytes = 1024;
  staging.setup = Duration::from_us(1);
  const TransferRecord rec = model_transfer(staging, bitstream.bytes);
  log_.record({0}, "pr-controller",
              "staged '" + bitstream.config_name + "' to PL DDR (" +
                  std::to_string(rec.elapsed.as_ms()) + " ms)");
  return rec.elapsed;
}

ReconfigResult ReconfigController::reconfigure(TimePoint now,
                                               const PartialBitstream& bitstream) {
  const obs::ScopedSpan span("reconfigure", "soc/reconfig");
  const auto it = staged_.find(bitstream.config_name);
  if (it == staged_.end())
    throw std::logic_error("ReconfigController: bitstream '" +
                           bitstream.config_name + "' not staged");
  // Integrity gate: a corrupted partial bitstream must never reach the
  // ICAP (it could physically damage the fabric).
  if (!bitstream.verify_integrity()) {
    log_.record(now, "pr-controller",
                "REJECTED '" + bitstream.config_name +
                    "': bitstream CRC mismatch");
    throw std::runtime_error("ReconfigController: CRC mismatch in '" +
                             bitstream.config_name + "'");
  }

  ReconfigResult result;
  result.method = method_;
  result.config_name = bitstream.config_name;
  result.start = now;
  result.transfer = model_transfer(path_, bitstream.bytes);
  result.end = now + result.transfer.elapsed;
  active_ = bitstream.config_name;

  // The reconfiguration window on the simulated timeline: the fabric
  // partition is open (and the vehicle engine dark) from start to end.
  log_.record(result.start, "pr-controller",
              "PR window open: loading '" + bitstream.config_name + "'");

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("soc.reconfig.count").inc();
  registry.counter("soc.reconfig.bytes_streamed").inc(bitstream.bytes);
  registry.gauge(std::string("soc.reconfig.throughput_mbps.") +
                 to_string(method_))
      .set(result.throughput_mbps());
  registry.histogram("soc.reconfig.window_ns")
      .record_ns(static_cast<std::uint64_t>(result.transfer.elapsed.ps / 1000u));

  std::ostringstream msg;
  msg << "reconfigured to '" << bitstream.config_name << "' via "
      << to_string(method_) << " in " << result.transfer.elapsed.as_ms()
      << " ms (" << result.transfer.throughput() << " MB/s); IRQ to PS";
  log_.record(result.end, "pr-controller", msg.str());
  return result;
}

std::vector<MethodComparisonRow> compare_methods(
    const ZynqPlatform& platform, const PartialBitstream& bitstream) {
  std::vector<MethodComparisonRow> rows;
  const double ceiling = config_port_ceiling_mbps(platform);
  for (ReconfigMethod m :
       {ReconfigMethod::AxiHwicap, ReconfigMethod::Pcap, ReconfigMethod::ZyCap,
        ReconfigMethod::PlDmaIcap}) {
    ReconfigController ctrl(platform, m);
    ctrl.stage(bitstream);
    const ReconfigResult r = ctrl.reconfigure({0}, bitstream);
    rows.push_back({m, r.throughput_mbps(), r.duration(),
                    100.0 * r.throughput_mbps() / ceiling});
  }
  return rows;
}

}  // namespace avd::soc
