#include "avd/soc/crc.hpp"

#include <array>

namespace avd::soc {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) {
  std::uint32_t c = state_;
  for (std::uint8_t b : data) c = kTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  state_ = c;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

}  // namespace avd::soc
