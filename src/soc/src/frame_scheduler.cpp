#include "avd/soc/frame_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace avd::soc {

void FrameScheduler::add_reconfig_window(TimePoint start, Duration duration,
                                         std::string new_config) {
  if (duration.ps == 0)
    throw std::invalid_argument("FrameScheduler: zero-length window");
  const Window w{start, start + duration, std::move(new_config)};
  for (const Window& other : windows_) {
    if (w.start < other.end && other.start < w.end)
      throw std::invalid_argument(
          "FrameScheduler: overlapping reconfiguration windows");
  }
  windows_.push_back(w);
  std::sort(windows_.begin(), windows_.end(),
            [](const Window& a, const Window& b) { return a.start < b.start; });
}

FrameRecord FrameScheduler::record_at(int index,
                                      const std::string& initial_config) const {
  FrameRecord rec;
  rec.index = index;
  rec.capture_time = frame_time(index);
  rec.pedestrian_processed = true;  // static partition never stalls

  const TimePoint frame_start = rec.capture_time;

  // Configuration active at this frame: the newest window that completed
  // before the frame started. A frame is dropped iff a reconfiguration is
  // in progress at its capture instant — the engine drains the previous
  // frame before the window opens, so a 20 ms window costs exactly the one
  // frame captured inside it (paper §IV-B).
  rec.vehicle_config = initial_config;
  bool busy_at_capture = false;
  for (const Window& w : windows_) {
    if (w.end <= frame_start) {
      rec.vehicle_config = w.new_config;
    } else if (w.start <= frame_start && frame_start < w.end) {
      busy_at_capture = true;
    }
  }
  rec.vehicle_processed = !busy_at_capture;
  return rec;
}

std::vector<FrameRecord> FrameScheduler::schedule(
    int n_frames, const std::string& initial_config) const {
  std::vector<FrameRecord> records;
  records.reserve(static_cast<std::size_t>(std::max(0, n_frames)));
  for (int i = 0; i < n_frames; ++i)
    records.push_back(record_at(i, initial_config));
  return records;
}

int FrameScheduler::dropped_vehicle_frames(
    const std::vector<FrameRecord>& records) {
  return static_cast<int>(
      std::count_if(records.begin(), records.end(),
                    [](const FrameRecord& r) { return !r.vehicle_processed; }));
}

}  // namespace avd::soc
