#include "avd/soc/zynq.hpp"

#include <stdexcept>

namespace avd::soc {

ZynqPlatform default_platform() { return default_platform(ZynqClocks{}); }

ZynqPlatform default_platform(const ZynqClocks& clocks) {
  if (clocks.icap_mhz == 0 || clocks.fabric_mhz == 0 || clocks.ddr_mhz == 0)
    throw std::invalid_argument("default_platform: zero clock frequency");
  ZynqPlatform p;
  p.clocks = clocks;
  const double icap_bw =
      4.0 * static_cast<double>(p.clocks.icap_mhz);  // 32-bit port, MB/s
  const double ddr_bw = 4.0 * static_cast<double>(p.clocks.ddr_mhz) * 2.0;

  // Latencies are per burst transaction; bandwidths are payload ceilings.
  p.ps_gp_port = {"ps-gp-port", Duration::from_ns(150), icap_bw};
  p.axi_lite_peripheral = {"axi-lite-peripheral", Duration::from_ns(50),
                           icap_bw};
  p.ps_central_interconnect = {"ps-central-interconnect",
                               Duration::from_ns(180), 1200.0};
  p.ps_ddr_controller = {"ps-ddr-controller", Duration::from_ns(50), ddr_bw};
  p.pl_ddr_controller = {"pl-ddr-controller", Duration::from_ns(30), ddr_bw};
  p.axi_hp_port = {"axi-hp-port", Duration::from_ns(30), 1200.0};
  p.pl_axi_interconnect = {"pl-axi-interconnect", Duration::from_ns(20),
                           1600.0};
  p.pcap_bridge = {"pcap-bridge", Duration::from_ns(40), icap_bw};
  p.icap_primitive = {"icape2", Duration::from_ns(10), icap_bw};
  return p;
}

const char* to_string(ReconfigMethod m) {
  switch (m) {
    case ReconfigMethod::AxiHwicap:
      return "axi-hwicap";
    case ReconfigMethod::Pcap:
      return "pcap";
    case ReconfigMethod::ZyCap:
      return "zycap";
    case ReconfigMethod::PlDmaIcap:
      return "pr-controller";
  }
  throw std::invalid_argument("to_string: bad ReconfigMethod");
}

TransferPath reconfig_path(const ZynqPlatform& p, ReconfigMethod method) {
  TransferPath path;
  path.name = to_string(method);
  switch (method) {
    case ReconfigMethod::AxiHwicap:
      // CPU register writes: one 32-bit word per AXI-Lite transaction, no
      // DMA setup. The per-word port latency dominates completely.
      path.segments = {p.ps_gp_port, p.axi_lite_peripheral, p.icap_primitive};
      path.burst_bytes = 4;
      path.setup = Duration::from_ns(0);
      break;
    case ReconfigMethod::Pcap:
      // PCAP's internal DMA issues short bursts from PS DDR through the
      // central interconnect to the PCAP bridge.
      path.segments = {p.ps_central_interconnect, p.ps_ddr_controller,
                       p.pcap_bridge};
      path.burst_bytes = 64;
      path.setup = Duration::from_us(2);  // devcfg driver + DMA programming
      break;
    case ReconfigMethod::ZyCap:
      // PL DMA master reads PS DDR through an HP port (bypassing the central
      // interconnect) and feeds the ICAP.
      path.segments = {p.axi_hp_port, p.ps_ddr_controller,
                       p.pl_axi_interconnect, p.icap_primitive};
      path.burst_bytes = 1024;
      path.setup = Duration::from_us(1);  // PL DMA descriptor
      break;
    case ReconfigMethod::PlDmaIcap:
      // The paper's PR controller: bitstreams staged in the dedicated PL
      // DDR; PL DMA streams them straight into the ICAP manager. No PS
      // involvement after the trigger.
      path.segments = {p.pl_ddr_controller, p.pl_axi_interconnect,
                       p.icap_primitive};
      path.burst_bytes = 1024;
      path.setup = Duration::from_us(1);
      break;
  }
  return path;
}

double config_port_ceiling_mbps(const ZynqPlatform& platform) {
  return 4.0 * static_cast<double>(platform.clocks.icap_mhz);
}

}  // namespace avd::soc
