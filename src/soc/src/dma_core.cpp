#include "avd/soc/dma_core.hpp"

#include <sstream>
#include <stdexcept>

namespace avd::soc {

DmaCore::DmaCore(std::string name, TransferPath path, InterruptController* irq,
                 int irq_line, EventLog* log)
    : name_(std::move(name)),
      path_(std::move(path)),
      irq_(irq),
      irq_line_(irq_line),
      log_(log) {}

void DmaCore::refresh(Channel& ch, TimePoint now) {
  if (ch.active && now >= ch.active->completes) {
    ch.sr |= dma_bit::kIdle;
    ch.sr |= dma_bit::kIocIrq;
    ch.active.reset();
  }
}

bool DmaCore::idle(bool mm2s, TimePoint now) const {
  const Channel& ch = channel(mm2s);
  return !ch.active || now >= ch.active->completes;
}

void DmaCore::start_transfer(Channel& ch, bool mm2s, std::uint32_t bytes,
                             TimePoint now) {
  if ((ch.cr & dma_bit::kRunStop) == 0)
    throw std::logic_error(name_ + ": LENGTH written while channel stopped");
  if (ch.active && now < ch.active->completes)
    throw std::logic_error(name_ + ": LENGTH written while transfer active");
  if (bytes == 0) throw std::invalid_argument(name_ + ": zero-length DMA");

  const TransferRecord rec = model_transfer(path_, bytes);
  DmaTransfer t;
  t.mm2s = mm2s;
  t.address = ch.addr;
  t.bytes = bytes;
  t.started = now;
  t.completes = now + rec.elapsed;
  ch.active = t;
  ch.sr &= ~dma_bit::kIdle;
  last_ = t;

  if (log_) {
    std::ostringstream msg;
    msg << (mm2s ? "MM2S" : "S2MM") << " transfer of " << bytes
        << " B started (" << rec.throughput() << " MB/s, done at "
        << t.completes.as_ms() << " ms)";
    log_->record(now, name_, msg.str());
  }
  // Completion interrupt, delivered at the modelled finish time.
  if (irq_ && irq_line_ >= 0 && (ch.cr & dma_bit::kIocIrqEn))
    irq_->raise(irq_line_, t.completes, log_);
}

std::uint32_t DmaCore::read(std::uint32_t offset, TimePoint now) {
  using namespace dma_reg;
  const bool mm2s = offset < kS2mmCr;
  Channel& ch = channel(mm2s);
  refresh(ch, now);
  switch (offset) {
    case kMm2sCr:
    case kS2mmCr:
      return ch.cr;
    case kMm2sSr:
    case kS2mmSr: {
      std::uint32_t sr = ch.sr;
      if (!ch.active) sr |= dma_bit::kIdle;
      if ((ch.cr & dma_bit::kRunStop) == 0) sr |= dma_bit::kHalted;
      else sr &= ~dma_bit::kHalted;
      return sr;
    }
    case kMm2sSa:
    case kS2mmDa:
      return ch.addr;
    case kMm2sLength:
    case kS2mmLength:
      return last_ && last_->mm2s == mm2s ? last_->bytes : 0;
    default:
      throw std::out_of_range(name_ + ": bad register offset");
  }
}

void DmaCore::write(std::uint32_t offset, std::uint32_t value, TimePoint now) {
  using namespace dma_reg;
  const bool mm2s = offset < kS2mmCr;
  Channel& ch = channel(mm2s);
  refresh(ch, now);
  switch (offset) {
    case kMm2sCr:
    case kS2mmCr:
      if (value & dma_bit::kReset) {
        ch = Channel{};
        return;
      }
      ch.cr = value;
      return;
    case kMm2sSr:
    case kS2mmSr:
      // Write-1-to-clear interrupt bits.
      ch.sr &= ~(value & dma_bit::kIocIrq);
      return;
    case kMm2sSa:
    case kS2mmDa:
      ch.addr = value;
      return;
    case kMm2sLength:
    case kS2mmLength:
      start_transfer(ch, mm2s, value, now);
      return;
    default:
      throw std::out_of_range(name_ + ": bad register offset");
  }
}

}  // namespace avd::soc
