#include "avd/soc/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace avd::soc {
namespace {

// Minimal JSON string escaping for the fields we emit.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// A comma-separating JSON array writer.
class EventArray {
 public:
  explicit EventArray(std::ostringstream& os) : os_(os) {}
  std::ostringstream& next() {
    if (!first_) os_ << ',';
    first_ = false;
    return os_;
  }

 private:
  std::ostringstream& os_;
  bool first_ = true;
};

void emit_thread_name(EventArray& array, int pid, int tid,
                      const std::string& name) {
  array.next() << R"({"name":"thread_name","ph":"M","pid":)" << pid
               << ",\"tid\":" << tid << R"(,"args":{"name":")" << escape(name)
               << "\"}}";
}

void emit_process_name(EventArray& array, int pid, const std::string& name) {
  array.next() << R"({"name":"process_name","ph":"M","pid":)" << pid
               << R"(,"tid":0,"args":{"name":")" << escape(name) << "\"}}";
}

void emit_instants(EventArray& array, const std::vector<Event>& events,
                   int pid) {
  // Stable thread ids per source, in order of first appearance.
  std::map<std::string, int> tid_of;
  int next_tid = 1;
  for (const Event& e : events)
    if (tid_of.emplace(e.source, next_tid).second) ++next_tid;

  for (const auto& [source, tid] : tid_of)
    emit_thread_name(array, pid, tid, source);
  // Chrome trace timestamps are microseconds; EventLog times are ps.
  for (const Event& e : events) {
    array.next() << R"({"name":")" << escape(e.message)
                 << R"(","ph":"i","s":"t","pid":)" << pid
                 << ",\"tid\":" << tid_of[e.source]
                 << ",\"ts\":" << (e.time.ps / 1000000ull) << '}';
  }
}

void format_us(char (&buf)[32], std::uint64_t ns) {
  // Microsecond timestamps with nanosecond precision kept as fractions.
  std::snprintf(buf, sizeof buf, "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000u),
                static_cast<unsigned>(ns % 1000u));
}

void emit_spans(EventArray& array, std::span<const obs::SpanRecord> spans,
                int pid) {
  // One row per (source, recording thread) so concurrent spans of the same
  // source (e.g. two detect workers) don't overlap on a single track.
  std::map<std::pair<std::string, int>, int> tid_of;
  int next_tid = 1;
  for (const obs::SpanRecord& s : spans) {
    const auto key = std::make_pair(std::string(s.source), s.thread);
    if (tid_of.emplace(key, next_tid).second) ++next_tid;
  }
  for (const auto& [key, tid] : tid_of)
    emit_thread_name(array, pid, tid, key.first);

  char ts[32], dur[32];
  for (const obs::SpanRecord& s : spans) {
    const auto key = std::make_pair(std::string(s.source), s.thread);
    format_us(ts, s.begin_ns);
    format_us(dur, s.end_ns >= s.begin_ns ? s.end_ns - s.begin_ns : 0);
    std::ostringstream& os = array.next();
    os << R"({"name":")" << escape(s.name) << R"(","ph":"X","pid":)" << pid
       << ",\"tid\":" << tid_of[key] << ",\"ts\":" << ts
       << ",\"dur\":" << dur;
    // Trace linkage and numeric attributes ride in "args" so tooling (and
    // the flow-linkage tests) can reassemble frame chains from the export.
    if (s.trace_id != 0 || s.arg_count > 0) {
      os << ",\"args\":{";
      bool first = true;
      if (s.trace_id != 0) {
        os << "\"trace_id\":" << s.trace_id << ",\"span_id\":" << s.span_id
           << ",\"parent_span_id\":" << s.parent_span_id;
        first = false;
      }
      for (int i = 0; i < s.arg_count; ++i) {
        if (!first) os << ',';
        first = false;
        os << '"' << escape(s.args[i].name) << "\":" << s.args[i].value;
      }
      os << '}';
    }
    os << '}';
  }
}

// Flow events ("s"/"t"/"f" with id = trace_id) draw one arc per frame
// across the threads it crossed. Only *hop* spans anchor the arc — spans
// whose parent is absent or recorded on a different thread — so a frame
// renders as ingest → control → detect → report without arcs doubling into
// every nested span on the same track.
void emit_flows(EventArray& array, std::span<const obs::SpanRecord> spans,
                int pid) {
  std::map<std::pair<std::string, int>, int> tid_of;
  int next_tid = 1;
  for (const obs::SpanRecord& s : spans) {
    const auto key = std::make_pair(std::string(s.source), s.thread);
    if (tid_of.emplace(key, next_tid).second) ++next_tid;
  }

  std::map<std::uint64_t, int> thread_of_span;  // span_id -> recording thread
  for (const obs::SpanRecord& s : spans)
    if (s.span_id != 0) thread_of_span[s.span_id] = s.thread;

  std::map<std::uint64_t, std::vector<const obs::SpanRecord*>> hops_of;
  for (const obs::SpanRecord& s : spans) {
    if (s.trace_id == 0) continue;
    const auto parent = thread_of_span.find(s.parent_span_id);
    const bool is_hop =
        s.parent_span_id == 0 || parent == thread_of_span.end() ||
        parent->second != s.thread;
    if (is_hop) hops_of[s.trace_id].push_back(&s);
  }

  char ts[32];
  for (auto& [trace_id, hops] : hops_of) {
    if (hops.size() < 2) continue;  // an arc needs two ends
    std::sort(hops.begin(), hops.end(),
              [](const obs::SpanRecord* a, const obs::SpanRecord* b) {
                return a->begin_ns != b->begin_ns ? a->begin_ns < b->begin_ns
                                                  : a->end_ns < b->end_ns;
              });
    for (std::size_t i = 0; i < hops.size(); ++i) {
      const obs::SpanRecord& s = *hops[i];
      const auto key = std::make_pair(std::string(s.source), s.thread);
      const char* ph = i == 0 ? "s" : (i + 1 == hops.size() ? "f" : "t");
      format_us(ts, s.begin_ns);
      std::ostringstream& os = array.next();
      os << R"({"name":"frame","cat":"frame","ph":")" << ph
         << R"(","id":)" << trace_id << ",\"pid\":" << pid
         << ",\"tid\":" << tid_of[key] << ",\"ts\":" << ts;
      if (*ph == 'f') os << R"(,"bp":"e")";
      os << '}';
    }
  }
}

}  // namespace

std::string to_chrome_trace(const EventLog& log) {
  const std::vector<Event> events = log.events();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  EventArray array(os);
  emit_instants(array, events, 1);
  os << "]}";
  return os.str();
}

std::string to_chrome_trace(const EventLog& log,
                            std::span<const obs::SpanRecord> spans,
                            const MergedTraceOptions& options) {
  const std::vector<Event> events = log.events();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  EventArray array(os);
  emit_process_name(array, options.span_pid, "spans (wall clock)");
  emit_process_name(array, options.event_pid, "events");
  emit_spans(array, spans, options.span_pid);
  emit_flows(array, spans, options.span_pid);
  emit_instants(array, events, options.event_pid);
  os << "]}";
  return os.str();
}

namespace {

void write_document(const std::string& document, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_chrome_trace: cannot open " + path);
  out << document;
  if (!out) throw std::runtime_error("write_chrome_trace: write failed");
}

}  // namespace

void write_chrome_trace(const EventLog& log, const std::string& path) {
  write_document(to_chrome_trace(log), path);
}

void write_chrome_trace(const EventLog& log,
                        std::span<const obs::SpanRecord> spans,
                        const std::string& path,
                        const MergedTraceOptions& options) {
  write_document(to_chrome_trace(log, spans, options), path);
}

}  // namespace avd::soc
