#include "avd/soc/trace_export.hpp"

#include <fstream>
#include <map>
#include <sstream>

namespace avd::soc {
namespace {

// Minimal JSON string escaping for the fields we emit.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_chrome_trace(const EventLog& log) {
  // Stable thread ids per source, in order of first appearance.
  std::map<std::string, int> tid_of;
  int next_tid = 1;
  for (const Event& e : log.events())
    if (tid_of.emplace(e.source, next_tid).second) ++next_tid;

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata rows.
  for (const auto& [source, tid] : tid_of) {
    if (!first) os << ',';
    first = false;
    os << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << tid
       << R"(,"args":{"name":")" << escape(source) << "\"}}";
  }
  // Instant events; Chrome trace timestamps are microseconds.
  for (const Event& e : log.events()) {
    if (!first) os << ',';
    first = false;
    os << R"({"name":")" << escape(e.message) << R"(","ph":"i","s":"t","pid":1,"tid":)"
       << tid_of[e.source] << ",\"ts\":" << (e.time.ps / 1000000ull) << '}';
  }
  os << "]}";
  return os.str();
}

void write_chrome_trace(const EventLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_chrome_trace: cannot open " + path);
  out << to_chrome_trace(log);
  if (!out) throw std::runtime_error("write_chrome_trace: write failed");
}

}  // namespace avd::soc
