#include "avd/soc/power.hpp"

#include <stdexcept>

namespace avd::soc {

PowerEstimate estimate_power(const ModuleResources& configured,
                             double active_fraction,
                             const PowerCoefficients& k) {
  if (active_fraction < 0.0 || active_fraction > 1.0)
    throw std::invalid_argument("estimate_power: active_fraction out of range");
  const double klut = static_cast<double>(configured.lut) / 1000.0;
  const double kff = static_cast<double>(configured.ff) / 1000.0;

  PowerEstimate p;
  p.dynamic_mw = active_fraction * k.activity *
                 (klut * k.mw_per_klut + kff * k.mw_per_kff +
                  configured.bram * k.mw_per_bram +
                  configured.dsp * k.mw_per_dsp);
  p.clock_mw = klut * k.clock_tree_mw_per_klut;
  p.leakage_mw = klut * k.leakage_mw_per_klut;
  return p;
}

namespace {

ModuleResources config_blocks(const std::string& name) {
  if (name == "day-dusk") return sum_modules(day_dusk_blocks());
  if (name == "dark") return sum_modules(dark_blocks());
  throw std::invalid_argument("unknown configuration '" + name + "'");
}

}  // namespace

DesignPower pr_design_power(const std::string& active_config,
                            const PowerCoefficients& k) {
  DesignPower d;
  d.scenario = "pr-design(" + active_config + ")";
  // Configured fabric = static partition + the one loaded configuration.
  d.configured = sum_modules(static_design_blocks()) +
                 config_blocks(active_config);
  d.power = estimate_power(d.configured, 1.0, k);
  return d;
}

DesignPower static_design_power(const std::string& active_config,
                                const PowerCoefficients& k) {
  DesignPower d;
  d.scenario = "all-static(" + active_config + " active)";
  const ModuleResources active_blocks =
      sum_modules(static_design_blocks()) + config_blocks(active_config);
  const ModuleResources idle_blocks =
      config_blocks(active_config == "dark" ? "day-dusk" : "dark");
  d.configured = active_blocks + idle_blocks;

  const PowerEstimate active = estimate_power(active_blocks, 1.0, k);
  // The idle pipeline is clock-gated: no dynamic power, full clock tree and
  // leakage.
  const PowerEstimate idle = estimate_power(idle_blocks, 0.0, k);
  d.power.dynamic_mw = active.dynamic_mw + idle.dynamic_mw;
  d.power.clock_mw = active.clock_mw + idle.clock_mw;
  d.power.leakage_mw = active.leakage_mw + idle.leakage_mw;
  return d;
}

}  // namespace avd::soc
