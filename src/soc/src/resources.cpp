#include "avd/soc/resources.hpp"

#include <cmath>

namespace avd::soc {
namespace {

int pct(long used, long available) {
  return static_cast<int>(
      std::lround(100.0 * static_cast<double>(used) / available));
}

}  // namespace

UtilizationRow utilization(const std::string& name, const ModuleResources& used,
                           const DeviceResources& device) {
  return {name, pct(used.lut, device.lut), pct(used.ff, device.ff),
          pct(used.bram, device.bram), pct(used.dsp, device.dsp)};
}

ModuleResources sum_modules(const std::vector<ModuleResources>& blocks) {
  ModuleResources total;
  total.name = "total";
  for (const ModuleResources& b : blocks) total += b;
  return total;
}

std::vector<ModuleResources> static_design_blocks() {
  return {
      {"data-capture", 9000, 9000, 12, 2},
      {"pedestrian-detection", 40000, 36000, 66, 16},
      {"pr-controller", 3500, 4800, 4, 0},
      {"ps-interface", 5754, 5680, 9, 2},
  };
}

std::vector<ModuleResources> day_dusk_blocks() {
  return {
      {"hog-gradient", 9000, 8500, 6, 4},
      {"hog-histogram", 14000, 13500, 18, 0},
      {"block-normalizer", 12000, 11000, 12, 8},
      {"svm-classifier", 11706, 10932, 31, 8},  // incl. two model BRAMs
      {"stream-dma-interface", 6000, 6000, 16, 0},
  };
}

std::vector<ModuleResources> dark_blocks() {
  return {
      {"threshold-split", 8000, 9000, 6, 0},
      {"downsample-morphology", 12000, 14000, 14, 0},
      {"dbn-engine", 64960, 72604, 95, 490},
      {"pairing-svm", 14000, 18000, 18, 64},
      {"stream-dma-interface", 12000, 14000, 10, 32},
  };
}

std::vector<ModuleResources> countryside_blocks() {
  // The day/dusk pipeline plus an animal classifier head. The gradient and
  // histogram stages are shared; only block normalisation windows and a
  // second SVM (with its model BRAMs) are added.
  auto blocks = day_dusk_blocks();
  blocks.push_back({"animal-svm-classifier", 14500, 13800, 34, 10});
  blocks.push_back({"animal-window-normalizer", 9000, 8600, 8, 6});
  return blocks;
}

ModuleResources floorplan_partition(
    const std::vector<ModuleResources>& largest_config,
    const DeviceResources& device, const FloorplanParams& params) {
  const ModuleResources need = sum_modules(largest_config);

  // The partition is a rectangular region of configuration columns. Its size
  // is driven by the scarcest logic resource of the largest configuration;
  // FFs come packaged with LUTs in the same slices, and BRAM/DSP columns are
  // captured at the region's (lower) hard-block density.
  const double lut_frac = static_cast<double>(need.lut) / device.lut;
  const double ff_frac = static_cast<double>(need.ff) / device.ff;
  const double logic_frac =
      params.logic_margin * std::max(lut_frac, ff_frac);
  const double hard_frac = logic_frac * params.bram_dsp_density;

  ModuleResources region;
  region.name = "reconfigurable-partition";
  region.lut = std::lround(logic_frac * device.lut);
  region.ff = std::lround(logic_frac * device.ff);
  region.bram = std::lround(hard_frac * device.bram);
  region.dsp = std::lround(hard_frac * device.dsp);
  return region;
}

bool fits(const ModuleResources& config, const ModuleResources& partition) {
  return config.lut <= partition.lut && config.ff <= partition.ff &&
         config.bram <= partition.bram && config.dsp <= partition.dsp;
}

std::vector<UtilizationRow> table2_rows(const DeviceResources& device,
                                        const FloorplanParams& params) {
  const ModuleResources static_total = sum_modules(static_design_blocks());
  const ModuleResources day_dusk = sum_modules(day_dusk_blocks());
  const ModuleResources dark = sum_modules(dark_blocks());
  const ModuleResources partition =
      floorplan_partition(dark_blocks(), device, params);

  // "Total resource utilization is the summation of resources used for the
  // static design and the resources considered for the reconfigurable
  // partition."
  const ModuleResources total = static_total + partition;

  return {
      utilization("Static Design", static_total, device),
      utilization("Reconfigurable Partition", partition, device),
      utilization("Day and Dusk Design", day_dusk, device),
      utilization("Dark Design", dark, device),
      utilization("Total Usage", total, device),
  };
}

}  // namespace avd::soc
