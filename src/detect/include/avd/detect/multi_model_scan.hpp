// Multi-model sliding-window scan over a shared HOG front end.
//
// The countryside configuration (DESIGN.md, extension) runs two classifiers
// — vehicle and animal — behind ONE gradient/histogram pipeline, exactly as
// the hardware shares those stages (resources.cpp: the animal blocks add
// only a normaliser and an SVM). This scanner is the software equivalent:
// the image pyramid and the per-level cell grids are computed once and every
// model classifies from them.
#pragma once

#include "avd/detect/hog_svm_detector.hpp"

namespace avd::det {

/// Scan `frame` with every model in `models` (all must share HogParams with
/// identical cell size/bins/block geometry). Returns NMS-filtered detections
/// of all classes merged (NMS is per-class).
[[nodiscard]] std::vector<Detection> detect_multiscale_multi(
    const img::ImageU8& frame, std::span<const HogSvmModel* const> models,
    const SlidingWindowParams& params = {});

}  // namespace avd::det
