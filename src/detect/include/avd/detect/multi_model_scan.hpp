// Multi-model sliding-window scan over a shared HOG front end.
//
// The countryside configuration (DESIGN.md, extension) runs two classifiers
// — vehicle and animal — behind ONE gradient/histogram pipeline, exactly as
// the hardware shares those stages (resources.cpp: the animal blocks add
// only a normaliser and an SVM). This scanner is the software equivalent,
// pushed one stage further than the hardware sharing: per pyramid level the
// cell grid AND the normalised block grid (hog::BlockGrid) are computed
// once, and every model scores windows as sums of per-block dot products
// against its sliced weights (ml::WeightSlices) — no per-window descriptor
// is ever materialised. Levels and row bands parallelise across
// SlidingWindowParams::pool with detections merged in canonical scan order,
// so the output is identical for every thread count and bit-identical to
// detect_multiscale_multi_reference (test-enforced).
#pragma once

#include "avd/detect/hog_svm_detector.hpp"

namespace avd::det {

/// Scan `frame` with every model in `models` (all must share HogParams with
/// identical cell size/bins/block geometry). Returns NMS-filtered detections
/// of all classes merged (NMS is per-class).
[[nodiscard]] std::vector<Detection> detect_multiscale_multi(
    const img::ImageU8& frame, std::span<const HogSvmModel* const> models,
    const SlidingWindowParams& params = {});

/// The reference scalar scan: one window_descriptor + full-length
/// svm.decision per window, single-threaded, no precomputed blocks. Kept as
/// the correctness oracle for the block-grid scanner — both must produce
/// detection-for-detection identical output (same boxes, bit-equal scores).
[[nodiscard]] std::vector<Detection> detect_multiscale_multi_reference(
    const img::ImageU8& frame, std::span<const HogSvmModel* const> models,
    const SlidingWindowParams& params = {});

/// Window anchor positions along one axis of a `cells`-wide grid for a
/// `window_cells`-wide window stepping by `stride_cells`: 0, s, 2s, ...,
/// with the final anchor clamped to cells - window_cells so the right/bottom
/// edge is always covered (an off-stride tail previously skipped up to
/// stride-1 cells of border — a vehicle flush against the frame edge was
/// invisible). Empty when the window does not fit.
[[nodiscard]] std::vector<int> window_anchor_positions(int cells,
                                                       int window_cells,
                                                       int stride_cells);

}  // namespace avd::det
