// Vehicle detection in the dark (paper §III-B, Figs. 3-4).
//
// Pipeline:
//   1. split chroma & luminance, threshold both, AND-merge   (image module)
//   2. downsample 1920x1080 -> 640x360, morphological closing
//   3. sliding 9x9 DBN (stride 2) over candidate blobs: detect taillights
//      and classify their size/shape (4 classes)
//   4. spatial correlation: pair taillights with an SVM over geometric
//      features, emit one vehicle box per accepted pair
#pragma once

#include <vector>

#include "avd/datasets/taillight_windows.hpp"
#include "avd/detect/detection.hpp"
#include "avd/image/blobs.hpp"
#include "avd/image/morphology.hpp"
#include "avd/image/threshold.hpp"
#include "avd/ml/dbn.hpp"
#include "avd/ml/svm.hpp"

namespace avd::runtime {
class ThreadPool;  // avd/runtime/thread_pool.hpp
}

namespace avd::det {

struct DarkDetectorConfig {
  img::TaillightThresholdParams threshold;
  int downsample_factor = 3;  ///< 1920x1080 -> 640x360 (paper Fig. 4)
  /// Fig. 3's "Noise Reduction" block: 3x3 median despeckle on the binary
  /// mask before closing (majority vote; removes isolated noise pixels).
  bool median_prefilter = false;
  img::StructuringElement closing{3, 3};
  int window_stride = 2;      ///< DBN slide stride (paper: "stride of 2")
  long long min_blob_area = 1;
  double dbn_min_confidence = 0.30;  ///< min mean posterior of a taillight class

  // Spatial-correlation search region: "only a particular region around each
  // detected taillight is processed for matching" (§III-B).
  int pair_min_dx = 4;     ///< min horizontal light separation (downsampled px)
  int pair_max_dx = 120;   ///< max horizontal light separation
  int pair_max_dy = 10;    ///< max vertical misalignment
  double pair_svm_threshold = 0.0;
  double nms_iou = 0.3;

  /// Max windows per Dbn::posterior_batch call in the batched dark scan.
  /// Detections are identical for every value (the batched forward is
  /// bit-exact per row); this only sizes the activation working set.
  int batch_windows = 256;
};

/// Window anchors over the half-open span [begin, end): begin, begin+stride,
/// ... plus a final anchor clamped to end-win when the stride does not land
/// on it — the dark-scan twin of window_anchor_positions' border fix, so a
/// blob region's right/bottom edge is always covered by a window. Empty when
/// the window does not fit or the stride is non-positive.
[[nodiscard]] std::vector<int> dark_window_anchors(int begin, int end, int win,
                                                   int stride);

/// One detected taillight candidate (coordinates in the downsampled frame).
struct TaillightDetection {
  img::Point center;
  data::TaillightClass cls = data::TaillightClass::NotTaillight;
  double confidence = 0.0;   ///< DBN posterior of `cls`
  img::Rect blob_box;
  long long blob_area = 0;
};

/// The dark-condition vehicle detector. Owns its two trained models: the
/// taillight DBN and the pairing SVM.
class DarkVehicleDetector {
 public:
  DarkVehicleDetector(ml::Dbn taillight_dbn, ml::LinearSvm pairing_svm,
                      DarkDetectorConfig config = {});

  /// Full pipeline on an RGB frame; boxes in original frame coordinates.
  [[nodiscard]] std::vector<Detection> detect(const img::RgbImage& frame) const;

  // --- Individual stages, exposed for tests, ablations and stage benches ---

  /// Stages 1-2: binary candidate mask in downsampled coordinates.
  [[nodiscard]] img::ImageU8 preprocess(const img::RgbImage& frame) const;

  /// Stage 3: sliding-DBN taillight detection on the binary mask, batched:
  /// every stride-2 window of every blob neighbourhood is gathered into one
  /// packed patch matrix, scored through Dbn::posterior_batch (single GEMMs
  /// per layer), then scattered back into per-blob posterior aggregates.
  /// Identical detections to detect_taillights_reference for every
  /// batch_windows value and every scan-pool size (test-enforced).
  [[nodiscard]] std::vector<TaillightDetection> detect_taillights(
      const img::ImageU8& binary) const;

  /// Stage 3, per-window reference: one Dbn::posterior call per window —
  /// the retained correctness oracle the batched path must reproduce
  /// detection-for-detection.
  [[nodiscard]] std::vector<TaillightDetection> detect_taillights_reference(
      const img::ImageU8& binary) const;

  /// Stage 4: pair taillights, returning vehicle boxes in *downsampled*
  /// coordinates (detect() rescales them).
  [[nodiscard]] std::vector<Detection> pair_taillights(
      const std::vector<TaillightDetection>& lights) const;

  /// Geometric feature vector of a candidate pair (a = left light).
  /// Layout: {dx, |dy|, size_a, size_b, size_ratio, class_agreement} with all
  /// entries scaled to O(1).
  [[nodiscard]] static std::vector<float> pair_features(
      const TaillightDetection& a, const TaillightDetection& b);
  static constexpr std::size_t kPairFeatureCount = 6;

  [[nodiscard]] const DarkDetectorConfig& config() const { return config_; }
  [[nodiscard]] const ml::Dbn& dbn() const { return dbn_; }
  [[nodiscard]] const ml::LinearSvm& pairing_svm() const { return pairing_svm_; }

  /// Optional pool the batched scan spreads its gather and batch-score work
  /// across (nullptr = calling thread only). Share the ONE process scan pool
  /// (SlidingWindowParams::pool / StreamServerConfig::scan_pool); results
  /// merge in canonical blob order, so detections are identical for every
  /// pool size. Not owned.
  void set_scan_pool(runtime::ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] runtime::ThreadPool* scan_pool() const { return pool_; }

 private:
  ml::Dbn dbn_;
  ml::LinearSvm pairing_svm_;
  DarkDetectorConfig config_;
  runtime::ThreadPool* pool_ = nullptr;
};

}  // namespace avd::det
