// Detection results and non-maximum suppression.
#pragma once

#include <vector>

#include "avd/image/geometry.hpp"

namespace avd::det {

/// One detected object.
struct Detection {
  img::Rect box;
  double score = 0.0;  ///< classifier decision value (higher = more confident)
  int class_id = 0;    ///< semantic class (0 = vehicle, 1 = pedestrian, ...)
};

inline constexpr int kClassVehicle = 0;
inline constexpr int kClassPedestrian = 1;
inline constexpr int kClassAnimal = 2;  ///< countryside extension (paper §I)

/// Greedy non-maximum suppression: keep the highest-scoring detection, drop
/// everything of the same class overlapping it by more than `iou_threshold`,
/// repeat. Input order is irrelevant; output is sorted by descending score.
[[nodiscard]] std::vector<Detection> non_max_suppression(
    std::vector<Detection> detections, double iou_threshold = 0.4);

/// Match detections to ground-truth boxes: a GT box counts as found when some
/// detection overlaps it with IoU >= `iou_threshold`; each detection may match
/// at most one GT box.
struct MatchResult {
  int true_positives = 0;   ///< GT boxes matched
  int false_negatives = 0;  ///< GT boxes missed
  int false_positives = 0;  ///< detections matching no GT box
};
[[nodiscard]] MatchResult match_detections(const std::vector<Detection>& dets,
                                           const std::vector<img::Rect>& truth,
                                           double iou_threshold = 0.3);

}  // namespace avd::det
