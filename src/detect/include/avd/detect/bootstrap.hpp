// Hard-negative mining ("bootstrapping", Dalal & Triggs [12] §4).
//
// Train an initial model, scan vehicle-free frames with the sliding-window
// detector, harvest the false positives as additional negative examples, and
// retrain. One or two rounds typically remove the structured false alarms
// (horizon crossings, box-shaped clutter) that random negative sampling
// misses.
#pragma once

#include "avd/detect/hog_svm_detector.hpp"

namespace avd::det {

struct BootstrapSpec {
  int rounds = 2;                 ///< mining rounds after the initial fit
  int scenes_per_round = 40;      ///< vehicle-free frames scanned per round
  img::Size scene_size{256, 160};
  int max_new_negatives_per_round = 200;
  SlidingWindowParams scan;       ///< scan used for mining (threshold matters)
  std::uint64_t seed = 1789;
};

struct BootstrapReport {
  /// False positives harvested in each round (size == rounds actually run;
  /// mining stops early when a round yields nothing).
  std::vector<int> mined_per_round;
  std::size_t final_training_size = 0;
};

/// Train with hard-negative mining. `dataset` supplies the initial positives
/// and negatives; mined windows are appended as negatives between rounds.
/// Mining scenes are rendered under the dataset's lighting condition.
[[nodiscard]] HogSvmModel bootstrap_train_hog_svm(
    const data::PatchDataset& dataset, std::string name,
    const BootstrapSpec& spec = {}, const HogSvmTrainOptions& opts = {},
    BootstrapReport* report = nullptr);

}  // namespace avd::det
