// Full-frame detection evaluation: run a detector over generated scenes and
// report precision/recall/F1 overall and binned by target distance (distant
// vehicles are the hard tail — the paper's "very dark subset" is exactly the
// far bin of the dusk set).
#pragma once

#include <functional>

#include "avd/datasets/scene.hpp"
#include "avd/detect/detection.hpp"

namespace avd::det {

/// Distance bin of a ground-truth box, by apparent width relative to the
/// frame: Near >= 25%, Mid >= 12%, Far below.
enum class DistanceBin : int { Near = 0, Mid = 1, Far = 2 };

[[nodiscard]] DistanceBin distance_bin(const img::Rect& truth_box,
                                       img::Size frame);

struct BinStats {
  int truth = 0;
  int hits = 0;

  [[nodiscard]] double recall() const {
    return truth > 0 ? static_cast<double>(hits) / truth : 0.0;
  }
};

struct FrameEvalResult {
  int frames = 0;
  int truth_total = 0;
  int hits = 0;            ///< matched ground-truth boxes
  int false_positives = 0;
  BinStats by_bin[3];      ///< indexed by DistanceBin

  [[nodiscard]] double recall() const {
    return truth_total > 0 ? static_cast<double>(hits) / truth_total : 0.0;
  }
  [[nodiscard]] double precision() const {
    const int det_total = hits + false_positives;
    return det_total > 0 ? static_cast<double>(hits) / det_total : 0.0;
  }
  [[nodiscard]] double f1() const {
    const double p = precision();
    const double r = recall();
    return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }
};

struct FrameEvalSpec {
  data::LightingCondition condition = data::LightingCondition::Day;
  img::Size frame_size{480, 270};
  int n_frames = 50;
  int vehicles_per_frame = 2;
  double match_iou = 0.25;
  std::uint64_t seed = 86420;
};

/// A detector is anything mapping an RGB frame to detections.
using FrameDetector =
    std::function<std::vector<Detection>(const img::RgbImage&)>;

/// Render `n_frames` scenes under the spec and score `detector` against the
/// vehicle ground truth.
[[nodiscard]] FrameEvalResult evaluate_frames(const FrameDetector& detector,
                                              const FrameEvalSpec& spec);

}  // namespace avd::det
