// HOG+SVM detector: the day/dusk vehicle pipeline (paper Figs. 1-2) and the
// static-partition pedestrian pipeline (§IV-A, based on [17]).
//
// Mirrors the paper's structure: a trained-model artefact (produced offline
// by the LibLINEAR-equivalent trainer) plus a three-stage detection pipeline
// (HOG descriptor -> normaliser -> SVM classifier).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "avd/datasets/patches.hpp"
#include "avd/detect/detection.hpp"
#include "avd/hog/hog.hpp"
#include "avd/ml/metrics.hpp"
#include "avd/ml/svm.hpp"

namespace avd::runtime {
class ThreadPool;  // avd/runtime/thread_pool.hpp (avd_runtime_pool target)
}

namespace avd::det {

/// A complete trained HOG+SVM model: feature parameters, window geometry and
/// the linear classifier. Matches one "Trained Model" block RAM of Fig. 2.
struct HogSvmModel {
  std::string name;          ///< "day", "dusk", "combined", "pedestrian", ...
  hog::HogParams hog;
  img::Size window{64, 64};  ///< classification window in pixels
  ml::LinearSvm svm;
  int class_id = kClassVehicle;

  /// Decision value of one window-sized grayscale patch.
  [[nodiscard]] double decision(const img::ImageU8& patch) const;
  /// Binary classification of one patch (decision >= 0).
  [[nodiscard]] bool classify(const img::ImageU8& patch) const;

  void save(std::ostream& out) const;
  static HogSvmModel load(std::istream& in);
};

struct HogSvmTrainOptions {
  ml::SvmTrainParams svm;
  hog::HogParams hog;
  int class_id = kClassVehicle;
};

/// Train a model from labelled patches (all patches must equal the window
/// size implied by the dataset's first patch).
[[nodiscard]] HogSvmModel train_hog_svm(const data::PatchDataset& dataset,
                                        std::string name,
                                        const HogSvmTrainOptions& opts = {});

/// Patch-level evaluation, the Table I protocol: every positive patch scored
/// as TP/FN, every negative patch as TN/FP.
[[nodiscard]] ml::BinaryCounts evaluate_patches(const HogSvmModel& model,
                                                const data::PatchDataset& dataset);

/// Multi-scale sliding-window detection parameters.
struct SlidingWindowParams {
  double scale_step = 1.25;     ///< pyramid ratio between levels
  int max_levels = 6;
  int stride_cells = 1;         ///< window step in cells
  double score_threshold = 0.3; ///< min decision value to emit a detection
  double nms_iou = 0.4;
  /// Scan parallelism: pyramid levels and row bands are dispatched onto this
  /// pool (nullptr = scan on the calling thread). Detections are identical
  /// for every pool size — tasks merge in canonical scan order, never in
  /// completion order. Share ONE pool across every scanning call site (the
  /// runtime's detect workers included, StreamServerConfig::scan_pool); the
  /// scanner never spawns threads of its own. Not owned.
  runtime::ThreadPool* pool = nullptr;
};

/// Scan a full frame at multiple scales with the model's window; returns
/// NMS-filtered detections in original frame coordinates.
[[nodiscard]] std::vector<Detection> detect_multiscale(
    const img::ImageU8& frame, const HogSvmModel& model,
    const SlidingWindowParams& params = {});

}  // namespace avd::det
