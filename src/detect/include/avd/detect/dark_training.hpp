// Training and evaluation harness for the dark-condition detector.
//
// The paper trains the DBN on cropped taillights of the SYSU training images
// and the pairing SVM on "a selection of detected taillights based on their
// obtained size features and their distance". We train on the synthetic
// equivalents: generated 9x9 windows and geometric pair features derived from
// rendered dark scenes' ground truth.
#pragma once

#include "avd/datasets/scene.hpp"
#include "avd/detect/dark_detector.hpp"
#include "avd/ml/metrics.hpp"

namespace avd::det {

struct DarkTrainingSpec {
  data::TaillightWindowSpec windows;   ///< DBN training windows
  ml::DbnTrainParams dbn;
  int pairing_scenes = 120;            ///< scenes mined for pair features
  img::Size pairing_frame{480, 270};   ///< must divide by downsample factor
  ml::SvmTrainParams pairing_svm;
  DarkDetectorConfig config;
  std::uint64_t seed = 7777;
};

/// Phase 1: train the taillight DBN (81 -> 20 -> 8 -> softmax-4, §III-B).
[[nodiscard]] ml::Dbn train_taillight_dbn(const DarkTrainingSpec& spec);

/// Taillight size/shape class implied by a blob of the given downsampled
/// dimensions; the generator and the pairing miner share this rule.
[[nodiscard]] data::TaillightClass taillight_class_for_size(int width,
                                                            int height);

/// Phase 2: mine geometric pair features (positives = same-vehicle taillight
/// pairs, negatives = cross-vehicle and light-distractor pairs) from rendered
/// dark scenes and train the pairing SVM.
[[nodiscard]] ml::LinearSvm train_pairing_svm(const DarkTrainingSpec& spec);

/// Convenience: both phases, assembled into a detector.
[[nodiscard]] DarkVehicleDetector train_dark_detector(
    const DarkTrainingSpec& spec = {});

/// Frame-level evaluation (the protocol behind the paper's "accuracy of 95%"
/// on the SYSU dark subset): a positive frame contains >= 1 vehicle and
/// counts as TP when the detector reports >= 1 vehicle; a negative frame
/// contains only distractor lights and counts as TN when the detector stays
/// silent.
[[nodiscard]] ml::BinaryCounts evaluate_dark_frames(
    const DarkVehicleDetector& detector, int n_positive, int n_negative,
    img::Size frame_size, std::uint64_t seed);

}  // namespace avd::det
