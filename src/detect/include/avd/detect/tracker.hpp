// Multi-object tracking by IoU association.
//
// The paper's related work (§II, [3]-[5]) repeatedly pairs night-time
// detection with tracking "for efficient detection"; this tracker is the
// standard greedy-IoU baseline those systems build on. Detections from any
// of the library's detectors can be fed frame by frame; tracks smooth over
// single-frame misses (including the one frame dropped during a partial
// reconfiguration).
#pragma once

#include <cstdint>
#include <vector>

#include "avd/detect/detection.hpp"

namespace avd::det {

struct TrackerConfig {
  double match_iou = 0.3;   ///< min IoU to associate a detection to a track
  int max_misses = 3;       ///< consecutive missed frames before a track dies
  int min_hits = 2;         ///< hits before a track is reported as confirmed
};

/// One tracked object.
struct Track {
  std::uint64_t id = 0;
  img::Rect box;            ///< latest (or coasted) position
  int class_id = 0;
  int hits = 0;             ///< total associated detections
  int misses = 0;           ///< consecutive frames without a detection
  int age = 0;              ///< frames since creation
  double last_score = 0.0;

  [[nodiscard]] bool confirmed(const TrackerConfig& cfg) const {
    return hits >= cfg.min_hits;
  }
};

/// Greedy-IoU tracker with linear motion coasting.
class IouTracker {
 public:
  explicit IouTracker(TrackerConfig config = {}) : config_(config) {}

  /// Advance one frame: associate `detections`, update/create/retire tracks.
  /// Returns the confirmed tracks after the update.
  std::vector<Track> update(const std::vector<Detection>& detections);

  [[nodiscard]] const std::vector<Track>& tracks() const { return tracks_; }
  [[nodiscard]] std::vector<Track> confirmed_tracks() const;
  [[nodiscard]] std::uint64_t total_tracks_created() const { return next_id_; }
  [[nodiscard]] const TrackerConfig& config() const { return config_; }

 private:
  struct Motion {
    int dx = 0;
    int dy = 0;
  };

  TrackerConfig config_;
  std::vector<Track> tracks_;
  std::vector<Motion> motions_;  // parallel to tracks_
  std::uint64_t next_id_ = 0;
};

}  // namespace avd::det
