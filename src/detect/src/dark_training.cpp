#include "avd/detect/dark_training.hpp"

#include <cmath>

namespace avd::det {
namespace {

// Builds a TaillightDetection as the pairing miner would see it, from a
// ground-truth taillight box in downsampled coordinates.
TaillightDetection detection_from_box(const img::Rect& box_ds) {
  TaillightDetection d;
  d.center = box_ds.center();
  d.blob_box = box_ds;
  // The rendered lamp is an ellipse inscribed in the box; its pixel count is
  // ~pi/4 of the box area.
  d.blob_area = std::max<long long>(1, (box_ds.area() * 785) / 1000);
  d.cls = taillight_class_for_size(box_ds.width, box_ds.height);
  d.confidence = 1.0;
  return d;
}

}  // namespace

data::TaillightClass taillight_class_for_size(int width, int height) {
  const int larger = std::max(width, height);
  if (width >= 6 && width >= 2 * height) return data::TaillightClass::WideBar;
  if (larger <= 2) return data::TaillightClass::SmallRound;
  if (larger <= 6) return data::TaillightClass::LargeRound;
  return data::TaillightClass::WideBar;
}

ml::Dbn train_taillight_dbn(const DarkTrainingSpec& spec) {
  const std::vector<data::TaillightWindow> windows =
      data::make_taillight_windows(spec.windows);

  std::vector<std::vector<float>> inputs;
  std::vector<int> labels;
  inputs.reserve(windows.size());
  labels.reserve(windows.size());
  for (const auto& w : windows) {
    inputs.push_back(w.pixels);
    labels.push_back(w.label);
  }

  // Paper §III-B: 81 visible, hidden layers of 20 and 8, 4 output nodes.
  ml::Dbn dbn({data::kTaillightInputs, 20, 8}, data::kTaillightClasses,
              spec.seed);
  ml::DbnTrainParams params = spec.dbn;
  params.seed = spec.seed + 1;
  dbn.train(inputs, labels, params);
  return dbn;
}

ml::LinearSvm train_pairing_svm(const DarkTrainingSpec& spec) {
  const int f = spec.config.downsample_factor;
  ml::SvmProblem problem;
  data::SceneGenerator gen(data::LightingCondition::Dark, spec.seed + 2);

  auto add_pair = [&](const TaillightDetection& a, const TaillightDetection& b,
                      int label) {
    // Only pairs that pass the geometric gate ever reach the SVM at run time,
    // so train only on those.
    const int dx = b.center.x - a.center.x;
    const int dy = std::abs(b.center.y - a.center.y);
    if (dx < spec.config.pair_min_dx || dx > spec.config.pair_max_dx ||
        dy > spec.config.pair_max_dy)
      return;
    problem.add(DarkVehicleDetector::pair_features(a, b), label);
  };

  for (int s = 0; s < spec.pairing_scenes; ++s) {
    const data::SceneSpec scene =
        gen.random_scene(spec.pairing_frame, /*n_vehicles=*/2);

    std::vector<std::vector<TaillightDetection>> per_vehicle;
    for (const data::VehicleSpec& v : scene.vehicles) {
      const auto [lb, rb] = v.taillight_boxes();
      per_vehicle.push_back(
          {detection_from_box(img::scaled(lb, 1.0 / f, 1.0 / f)),
           detection_from_box(img::scaled(rb, 1.0 / f, 1.0 / f))});
    }
    std::vector<TaillightDetection> distractors;
    for (const data::DistractorLight& d : scene.distractors) {
      const img::Rect box{d.position.x - d.radius / 2,
                          d.position.y - d.radius / 2, std::max(1, d.radius),
                          std::max(1, d.radius)};
      distractors.push_back(
          detection_from_box(img::scaled(box, 1.0 / f, 1.0 / f)));
    }

    // Positives: left-right lights of the same vehicle.
    for (const auto& lights : per_vehicle) add_pair(lights[0], lights[1], +1);

    // Negatives: cross-vehicle pairs and vehicle/distractor pairs.
    for (std::size_t i = 0; i < per_vehicle.size(); ++i) {
      for (std::size_t j = 0; j < per_vehicle.size(); ++j) {
        if (i == j) continue;
        add_pair(per_vehicle[i][0], per_vehicle[j][1], -1);
        add_pair(per_vehicle[i][1], per_vehicle[j][0], -1);
      }
      for (const auto& d : distractors) {
        add_pair(per_vehicle[i][0], d, -1);
        add_pair(d, per_vehicle[i][1], -1);
      }
    }
    for (std::size_t i = 0; i < distractors.size(); ++i)
      for (std::size_t j = 0; j < distractors.size(); ++j)
        if (i != j) add_pair(distractors[i], distractors[j], -1);
  }

  ml::SvmTrainParams params = spec.pairing_svm;
  params.seed = spec.seed + 3;
  return ml::SvmTrainer(params).train(problem);
}

DarkVehicleDetector train_dark_detector(const DarkTrainingSpec& spec) {
  return {train_taillight_dbn(spec), train_pairing_svm(spec), spec.config};
}

ml::BinaryCounts evaluate_dark_frames(const DarkVehicleDetector& detector,
                                      int n_positive, int n_negative,
                                      img::Size frame_size, std::uint64_t seed) {
  ml::BinaryCounts counts;
  data::SceneGenerator gen(data::LightingCondition::Dark, seed);
  for (int i = 0; i < n_positive + n_negative; ++i) {
    const bool truth_positive = i < n_positive;
    const data::SceneSpec scene =
        gen.random_scene(frame_size, truth_positive ? gen.rng().uniform_int(1, 2) : 0);
    const img::RgbImage frame = data::render_scene(scene);
    const bool predicted = !detector.detect(frame).empty();
    counts.record(truth_positive, predicted);
  }
  return counts;
}

}  // namespace avd::det
