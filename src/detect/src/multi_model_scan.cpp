#include "avd/detect/multi_model_scan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <stdexcept>

#include "avd/hog/block_grid.hpp"
#include "avd/image/resize.hpp"
#include "avd/ml/weight_slices.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/trace.hpp"
#include "avd/runtime/thread_pool.hpp"

namespace avd::det {
namespace {

/// Rows of window anchors per scan task. Small enough that a single pyramid
/// level splits across the pool, large enough that a task amortises its
/// dispatch. Fixed (never derived from thread count or timing) so the task
/// decomposition — and therefore the merged detection order — is a pure
/// function of the inputs.
constexpr int kBandRows = 8;

/// Windows scored per accumulate_lanes call. The per-window double
/// accumulator is a serial FP dependency chain (descriptor-order summation
/// is what makes scores bit-equal to the scalar reference); interleaving 8
/// independent windows lets those chains overlap in the pipeline without
/// changing any per-window operation order.
constexpr int kLanes = 8;

const hog::HogParams& validate_models(
    std::span<const HogSvmModel* const> models) {
  if (models.empty())
    throw std::invalid_argument("detect_multiscale_multi: no models");
  const hog::HogParams& shared = models.front()->hog;
  for (const HogSvmModel* m : models) {
    if (m == nullptr || !m->svm.trained())
      throw std::invalid_argument("detect_multiscale_multi: untrained model");
    if (m->hog.cell_size != shared.cell_size || m->hog.bins != shared.bins ||
        m->hog.block_cells != shared.block_cells ||
        m->hog.block_stride_cells != shared.block_stride_cells)
      throw std::invalid_argument(
          "detect_multiscale_multi: models must share HOG geometry");
  }
  return shared;
}

struct PyramidLevel {
  int index = 0;
  double scale = 1.0;
  img::Size size;
};

/// The pyramid schedule, identical for both scan paths: shrink by scale_step
/// until no model's window fits.
std::vector<PyramidLevel> plan_pyramid(
    const img::ImageU8& frame, std::span<const HogSvmModel* const> models,
    const SlidingWindowParams& params) {
  std::vector<PyramidLevel> levels;
  double scale = 1.0;
  for (int level = 0; level < params.max_levels;
       ++level, scale *= params.scale_step) {
    const img::Size scaled{
        static_cast<int>(std::lround(frame.width() / scale)),
        static_cast<int>(std::lround(frame.height() / scale))};
    bool any_fits = false;
    for (const HogSvmModel* m : models)
      any_fits |= scaled.width >= m->window.width &&
                  scaled.height >= m->window.height;
    if (!any_fits) break;
    levels.push_back({level, scale, scaled});
  }
  return levels;
}

hog::CellGrid level_cell_grid(const img::ImageU8& frame,
                              const PyramidLevel& level,
                              const hog::HogParams& shared) {
  return level.index == 0
             ? hog::compute_cell_grid(frame, shared)
             : hog::compute_cell_grid(img::resize_bilinear(frame, level.size),
                                      shared);
}

}  // namespace

std::vector<int> window_anchor_positions(int cells, int window_cells,
                                         int stride_cells) {
  std::vector<int> anchors;
  if (window_cells <= 0 || window_cells > cells || stride_cells <= 0)
    return anchors;
  const int last = cells - window_cells;
  for (int pos = 0; pos < last; pos += stride_cells) anchors.push_back(pos);
  anchors.push_back(last);  // clamp: the edge window is always scanned
  return anchors;
}

std::vector<Detection> detect_multiscale_multi_reference(
    const img::ImageU8& frame, std::span<const HogSvmModel* const> models,
    const SlidingWindowParams& params) {
  const hog::HogParams& shared = validate_models(models);
  std::vector<Detection> raw;
  std::vector<float> desc;
  for (const PyramidLevel& level : plan_pyramid(frame, models, params)) {
    const hog::CellGrid grid = level_cell_grid(frame, level, shared);
    for (const HogSvmModel* m : models) {
      const int cells_w = m->window.width / shared.cell_size;
      const int cells_h = m->window.height / shared.cell_size;
      for (const int cy :
           window_anchor_positions(grid.cells_y(), cells_h,
                                   params.stride_cells)) {
        for (const int cx :
             window_anchor_positions(grid.cells_x(), cells_w,
                                     params.stride_cells)) {
          hog::window_descriptor(grid, shared, cx, cy, cells_w, cells_h, desc);
          const double score = m->svm.decision(desc);
          if (score < params.score_threshold) continue;
          const img::Rect box{cx * shared.cell_size, cy * shared.cell_size,
                              m->window.width, m->window.height};
          raw.push_back(
              {img::scaled(box, level.scale, level.scale), score, m->class_id});
        }
      }
    }
  }
  return non_max_suppression(std::move(raw), params.nms_iou);
}

std::vector<Detection> detect_multiscale_multi(
    const img::ImageU8& frame, std::span<const HogSvmModel* const> models,
    const SlidingWindowParams& params) {
  const obs::ScopedSpan scan_span("detect_multiscale", "detect/hogsvm");
  const hog::HogParams& shared = validate_models(models);
  const std::vector<PyramidLevel> levels = plan_pyramid(frame, models, params);
  const int n_levels = static_cast<int>(levels.size());

  // Every model classifies from the same normalised blocks; its weight
  // vector, sliced per block, turns a window score into a streamed sum of
  // per-block dot products.
  const std::size_t block_len = static_cast<std::size_t>(shared.block_cells) *
                                shared.block_cells * shared.bins;
  std::vector<ml::WeightSlices> slices;
  slices.reserve(models.size());
  for (const HogSvmModel* m : models) slices.emplace_back(m->svm, block_len);

  // Tasks run either inline (no pool) or cooperatively on the shared pool.
  // Either way results land in index-addressed slots, so the merged output
  // is the canonical (level, model, band, row, column) order — identical
  // detections for every thread count.
  const auto run_tasks = [&params](int count,
                                   const std::function<void(int)>& fn) {
    if (params.pool != nullptr && count > 1) {
      params.pool->run_indexed(count, fn);
    } else {
      for (int i = 0; i < count; ++i) fn(i);
    }
  };
  // Tasks may run on pool threads: re-install this frame's trace context so
  // per-level spans stay children of the detect_multiscale span.
  const obs::TraceContext scan_ctx = scan_span.context();

  // --- phase 1: per-level shared front end (resize + cells + blocks) -----
  struct FrontEnd {
    hog::BlockGrid blocks;
    /// Exact double mirror of `blocks` in the same (ay, ax) layout —
    /// float->double is lossless, so lane scoring over the mirror is
    /// bit-equal to streaming the floats, minus the in-loop conversions.
    std::vector<double> blocks_d;
    int cells_x = 0;
    int cells_y = 0;
  };
  std::vector<FrontEnd> fronts(levels.size());
  run_tasks(n_levels, [&](int i) {
    const obs::TraceScope scope(scan_ctx);
    const PyramidLevel& level = levels[static_cast<std::size_t>(i)];
    const obs::ScopedSpan span(
        "hog_front_end", "detect/hogsvm",
        {{"level", level.index},
         {"width", level.size.width},
         {"height", level.size.height}});
    const hog::CellGrid grid = level_cell_grid(frame, level, shared);
    FrontEnd& fe = fronts[static_cast<std::size_t>(i)];
    fe.cells_x = grid.cells_x();
    fe.cells_y = grid.cells_y();
    fe.blocks = hog::compute_block_grid(grid, shared);
    fe.blocks_d.reserve(static_cast<std::size_t>(fe.blocks.anchors_x()) *
                        static_cast<std::size_t>(fe.blocks.anchors_y()) *
                        static_cast<std::size_t>(fe.blocks.block_len()));
    for (int ay = 0; ay < fe.blocks.anchors_y(); ++ay)
      for (int ax = 0; ax < fe.blocks.anchors_x(); ++ax)
        for (const float v : fe.blocks.block(ax, ay))
          fe.blocks_d.push_back(static_cast<double>(v));
  });

  // --- phase 2: banded window scoring over the precomputed blocks --------
  struct Band {
    int level = 0;           ///< index into levels/fronts
    std::size_t model = 0;   ///< index into models/slices
    int ay_begin = 0;        ///< anchor-row range [ay_begin, ay_end)
    int ay_end = 0;
  };
  // Anchor lists per (level, model); bands built in canonical scan order.
  std::vector<std::vector<int>> xs(levels.size() * models.size());
  std::vector<std::vector<int>> ys(levels.size() * models.size());
  std::vector<Band> bands;
  for (int li = 0; li < n_levels; ++li) {
    for (std::size_t mi = 0; mi < models.size(); ++mi) {
      const std::size_t key = static_cast<std::size_t>(li) * models.size() + mi;
      const int cells_w = models[mi]->window.width / shared.cell_size;
      const int cells_h = models[mi]->window.height / shared.cell_size;
      const FrontEnd& fe = fronts[static_cast<std::size_t>(li)];
      xs[key] =
          window_anchor_positions(fe.cells_x, cells_w, params.stride_cells);
      ys[key] =
          window_anchor_positions(fe.cells_y, cells_h, params.stride_cells);
      if (xs[key].empty() || ys[key].empty()) continue;
      const int rows = static_cast<int>(ys[key].size());
      for (int begin = 0; begin < rows; begin += kBandRows)
        bands.push_back({li, mi, begin, std::min(begin + kBandRows, rows)});
    }
  }

  struct BandResult {
    std::vector<Detection> dets;
    std::uint64_t windows = 0;
  };
  std::vector<BandResult> results(bands.size());
  run_tasks(static_cast<int>(bands.size()), [&](int t) {
    const obs::TraceScope scope(scan_ctx);
    const Band& band = bands[static_cast<std::size_t>(t)];
    const PyramidLevel& level = levels[static_cast<std::size_t>(band.level)];
    const obs::ScopedSpan span(
        "scan_band", "detect/hogsvm",
        {{"level", level.index},
         {"model", static_cast<std::int64_t>(band.model)},
         {"rows", band.ay_end - band.ay_begin}});
    const FrontEnd& fe = fronts[static_cast<std::size_t>(band.level)];
    const HogSvmModel& m = *models[band.model];
    const ml::WeightSlices& ws = slices[band.model];
    const std::size_t key =
        static_cast<std::size_t>(band.level) * models.size() + band.model;
    const int blocks_x =
        shared.blocks_along(m.window.width / shared.cell_size);
    const int blocks_y =
        shared.blocks_along(m.window.height / shared.cell_size);
    BandResult& out = results[static_cast<std::size_t>(t)];
    const int bstride = shared.block_stride_cells;
    const std::vector<int>& axs = xs[key];
    const int n_x = static_cast<int>(axs.size());
    const auto emit = [&](int cx, int cy, double acc) {
      const double score = acc + ws.bias();
      ++out.windows;
      if (score < params.score_threshold) return;
      const img::Rect box{cx * shared.cell_size, cy * shared.cell_size,
                          m.window.width, m.window.height};
      out.dets.push_back(
          {img::scaled(box, level.scale, level.scale), score, m.class_id});
    };
    for (int ayi = band.ay_begin; ayi < band.ay_end; ++ayi) {
      const int cy = ys[key][static_cast<std::size_t>(ayi)];
      // Blocks stream through each window's accumulator in descriptor order,
      // so every score is the bit-exact LinearSvm::decision of the window's
      // (never materialised) descriptor. Windows are scored kLanes at a time
      // purely so their serial accumulator chains overlap in the pipeline —
      // per-lane arithmetic and emission order are the scalar path's.
      int xi = 0;
      for (; xi + kLanes <= n_x; xi += kLanes) {
        double acc[kLanes] = {};
        const double* vals[kLanes];
        const double* bd = fe.blocks_d.data();
        const std::size_t bax = static_cast<std::size_t>(fe.blocks.anchors_x());
        // Anchor steps are stride_cells everywhere except the edge-clamped
        // last one, so when first-to-last spacing matches, every lane sits a
        // constant stride apart in the block grid — no pointer table needed.
        const int ax0 = axs[static_cast<std::size_t>(xi)];
        const bool uniform =
            axs[static_cast<std::size_t>(xi + kLanes - 1)] - ax0 ==
            (kLanes - 1) * params.stride_cells;
        const std::size_t lane_stride =
            static_cast<std::size_t>(params.stride_cells) * block_len;
        std::size_t b = 0;
        for (int wby = 0; wby < blocks_y; ++wby) {
          const std::size_t row =
              static_cast<std::size_t>(cy + wby * bstride) * bax;
          for (int wbx = 0; wbx < blocks_x; ++wbx, ++b) {
            const int ox = wbx * bstride;
            if (uniform) {
              ws.accumulate_lanes_strided<kLanes>(
                  b,
                  bd + (row + static_cast<std::size_t>(ax0 + ox)) * block_len,
                  lane_stride, acc);
            } else {
              for (int j = 0; j < kLanes; ++j)
                vals[j] =
                    bd +
                    (row + static_cast<std::size_t>(
                               axs[static_cast<std::size_t>(xi + j)] + ox)) *
                        block_len;
              ws.accumulate_lanes<kLanes>(b, vals, acc);
            }
          }
        }
        for (int j = 0; j < kLanes; ++j)
          emit(axs[static_cast<std::size_t>(xi + j)], cy, acc[j]);
      }
      for (; xi < n_x; ++xi) {  // scalar tail: < kLanes windows left
        const int cx = axs[static_cast<std::size_t>(xi)];
        double acc = 0.0;
        std::size_t b = 0;
        for (int wby = 0; wby < blocks_y; ++wby)
          for (int wbx = 0; wbx < blocks_x; ++wbx, ++b)
            ws.accumulate(b,
                          fe.blocks.block(cx + wbx * bstride, cy + wby * bstride),
                          acc);
        emit(cx, cy, acc);
      }
    }
  });

  // --- merge (canonical task order) + NMS ---------------------------------
  std::vector<Detection> raw;
  std::uint64_t windows_scanned = 0;
  for (BandResult& r : results) {
    windows_scanned += r.windows;
    raw.insert(raw.end(), r.dets.begin(), r.dets.end());
  }
  std::uint64_t blocks_normalised = 0;
  for (const FrontEnd& fe : fronts)
    blocks_normalised += static_cast<std::uint64_t>(fe.blocks.anchors_x()) *
                         static_cast<std::uint64_t>(fe.blocks.anchors_y());

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("detect.hogsvm.frames").inc();
  registry.counter("detect.hogsvm.levels").inc(
      static_cast<std::uint64_t>(levels.size()));
  registry.counter("detect.hogsvm.scan_tasks").inc(
      static_cast<std::uint64_t>(bands.size()));
  registry.counter("detect.hogsvm.blocks_normalised").inc(blocks_normalised);
  registry.counter("detect.hogsvm.windows_scanned").inc(windows_scanned);
  registry.counter("detect.hogsvm.raw_detections").inc(raw.size());
  const obs::ScopedSpan nms_span("nms", "detect/hogsvm");
  return non_max_suppression(std::move(raw), params.nms_iou);
}

}  // namespace avd::det
