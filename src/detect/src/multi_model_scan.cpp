#include "avd/detect/multi_model_scan.hpp"

#include <cmath>
#include <stdexcept>

#include "avd/image/resize.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/trace.hpp"

namespace avd::det {

std::vector<Detection> detect_multiscale_multi(
    const img::ImageU8& frame, std::span<const HogSvmModel* const> models,
    const SlidingWindowParams& params) {
  const obs::ScopedSpan scan_span("detect_multiscale", "detect/hogsvm");
  if (models.empty())
    throw std::invalid_argument("detect_multiscale_multi: no models");
  const hog::HogParams& shared = models.front()->hog;
  for (const HogSvmModel* m : models) {
    if (m == nullptr || !m->svm.trained())
      throw std::invalid_argument("detect_multiscale_multi: untrained model");
    if (m->hog.cell_size != shared.cell_size || m->hog.bins != shared.bins ||
        m->hog.block_cells != shared.block_cells ||
        m->hog.block_stride_cells != shared.block_stride_cells)
      throw std::invalid_argument(
          "detect_multiscale_multi: models must share HOG geometry");
  }

  std::vector<Detection> raw;
  std::vector<float> desc;
  std::uint64_t windows_scanned = 0;
  double scale = 1.0;
  for (int level = 0; level < params.max_levels;
       ++level, scale *= params.scale_step) {
    const img::Size scaled{
        static_cast<int>(std::lround(frame.width() / scale)),
        static_cast<int>(std::lround(frame.height() / scale))};
    // Stop once no model's window fits.
    bool any_fits = false;
    for (const HogSvmModel* m : models)
      any_fits |= scaled.width >= m->window.width &&
                  scaled.height >= m->window.height;
    if (!any_fits) break;

    const hog::CellGrid grid = [&] {
      // The shared front end: one resize + cell grid per pyramid level.
      const obs::ScopedSpan span("hog_front_end", "detect/hogsvm");
      const img::ImageU8 level_img =
          level == 0 ? frame : img::resize_bilinear(frame, scaled);
      return hog::compute_cell_grid(level_img, shared);
    }();

    const obs::ScopedSpan span("svm_scan", "detect/hogsvm");
    for (const HogSvmModel* m : models) {
      const int cells_w = m->window.width / shared.cell_size;
      const int cells_h = m->window.height / shared.cell_size;
      if (cells_w > grid.cells_x() || cells_h > grid.cells_y()) continue;
      for (int cy = 0; cy + cells_h <= grid.cells_y();
           cy += params.stride_cells) {
        for (int cx = 0; cx + cells_w <= grid.cells_x();
             cx += params.stride_cells) {
          hog::window_descriptor(grid, shared, cx, cy, cells_w, cells_h, desc);
          const double score = m->svm.decision(desc);
          ++windows_scanned;
          if (score < params.score_threshold) continue;
          const img::Rect box{cx * shared.cell_size, cy * shared.cell_size,
                              m->window.width, m->window.height};
          raw.push_back({img::scaled(box, scale, scale), score, m->class_id});
        }
      }
    }
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("detect.hogsvm.frames").inc();
  registry.counter("detect.hogsvm.windows_scanned").inc(windows_scanned);
  registry.counter("detect.hogsvm.raw_detections").inc(raw.size());
  const obs::ScopedSpan nms_span("nms", "detect/hogsvm");
  return non_max_suppression(std::move(raw), params.nms_iou);
}

}  // namespace avd::det
