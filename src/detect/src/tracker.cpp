#include "avd/detect/tracker.hpp"

#include <algorithm>

namespace avd::det {

std::vector<Track> IouTracker::update(const std::vector<Detection>& detections) {
  // Coast every track by its last motion estimate before matching.
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    tracks_[i].box.x += motions_[i].dx;
    tracks_[i].box.y += motions_[i].dy;
    ++tracks_[i].age;
  }

  // Greedy association: best IoU pair first, one detection per track.
  struct Pair {
    double iou;
    std::size_t track;
    std::size_t det;
  };
  std::vector<Pair> pairs;
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    for (std::size_t d = 0; d < detections.size(); ++d) {
      if (tracks_[t].class_id != detections[d].class_id) continue;
      const double v = img::iou(tracks_[t].box, detections[d].box);
      if (v >= config_.match_iou) pairs.push_back({v, t, d});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.iou > b.iou; });

  std::vector<bool> track_used(tracks_.size(), false);
  std::vector<bool> det_used(detections.size(), false);
  for (const Pair& p : pairs) {
    if (track_used[p.track] || det_used[p.det]) continue;
    track_used[p.track] = true;
    det_used[p.det] = true;

    Track& tr = tracks_[p.track];
    const Detection& det = detections[p.det];
    motions_[p.track] = {det.box.x - tr.box.x, det.box.y - tr.box.y};
    tr.box = det.box;
    tr.last_score = det.score;
    ++tr.hits;
    tr.misses = 0;
  }

  // Unmatched tracks miss a frame; retire the stale ones.
  for (std::size_t t = 0; t < tracks_.size(); ++t)
    if (!track_used[t]) ++tracks_[t].misses;
  for (std::size_t t = tracks_.size(); t-- > 0;) {
    if (tracks_[t].misses > config_.max_misses) {
      tracks_.erase(tracks_.begin() + static_cast<std::ptrdiff_t>(t));
      motions_.erase(motions_.begin() + static_cast<std::ptrdiff_t>(t));
    }
  }

  // Unmatched detections start new tracks.
  for (std::size_t d = 0; d < detections.size(); ++d) {
    if (det_used[d]) continue;
    Track tr;
    tr.id = next_id_++;
    tr.box = detections[d].box;
    tr.class_id = detections[d].class_id;
    tr.hits = 1;
    tr.last_score = detections[d].score;
    tracks_.push_back(tr);
    motions_.push_back({});
  }

  return confirmed_tracks();
}

std::vector<Track> IouTracker::confirmed_tracks() const {
  std::vector<Track> out;
  for (const Track& t : tracks_)
    if (t.confirmed(config_)) out.push_back(t);
  return out;
}

}  // namespace avd::det
