#include "avd/detect/hog_svm_detector.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "avd/detect/multi_model_scan.hpp"
#include "avd/image/resize.hpp"

namespace avd::det {

double HogSvmModel::decision(const img::ImageU8& patch) const {
  if (patch.size() != window)
    throw std::invalid_argument("HogSvmModel: patch size != window size");
  const std::vector<float> desc = hog::compute_descriptor(patch, hog);
  return svm.decision(desc);
}

bool HogSvmModel::classify(const img::ImageU8& patch) const {
  return decision(patch) >= 0.0;
}

void HogSvmModel::save(std::ostream& out) const {
  // The header is whitespace-delimited and load() reads the name with >>, so
  // a name containing whitespace (or an empty name) would silently corrupt
  // the round-trip: "day model" saves fine but loads as name="day" with
  // "model" consumed as the window width. Reject at save time.
  if (name.empty() ||
      std::any_of(name.begin(), name.end(), [](unsigned char c) {
        return std::isspace(c) != 0;
      }))
    throw std::invalid_argument(
        "HogSvmModel::save: model name must be non-empty and contain no "
        "whitespace (the text format is whitespace-delimited)");
  out << "hogsvm " << name << ' ' << window.width << ' ' << window.height << ' '
      << class_id << ' ' << hog.cell_size << ' ' << hog.bins << ' '
      << hog.block_cells << ' ' << hog.block_stride_cells << ' '
      << hog.l2hys_clip << '\n';
  svm.save(out);
}

HogSvmModel HogSvmModel::load(std::istream& in) {
  std::string magic;
  HogSvmModel m;
  if (!(in >> magic >> m.name >> m.window.width >> m.window.height >>
        m.class_id >> m.hog.cell_size >> m.hog.bins >> m.hog.block_cells >>
        m.hog.block_stride_cells >> m.hog.l2hys_clip) ||
      magic != "hogsvm")
    throw std::runtime_error("HogSvmModel::load: bad header");
  m.svm = ml::LinearSvm::load(in);
  return m;
}

HogSvmModel train_hog_svm(const data::PatchDataset& dataset, std::string name,
                          const HogSvmTrainOptions& opts) {
  if (dataset.patches.empty())
    throw std::invalid_argument("train_hog_svm: empty dataset");

  HogSvmModel model;
  model.name = std::move(name);
  model.hog = opts.hog;
  model.window = dataset.patches.front().gray.size();
  model.class_id = opts.class_id;

  ml::SvmProblem problem;
  for (const data::LabeledPatch& p : dataset.patches) {
    if (p.gray.size() != model.window)
      throw std::invalid_argument("train_hog_svm: inconsistent patch sizes");
    problem.add(hog::compute_descriptor(p.gray, model.hog), p.label);
  }
  model.svm = ml::SvmTrainer(opts.svm).train(problem);
  return model;
}

ml::BinaryCounts evaluate_patches(const HogSvmModel& model,
                                  const data::PatchDataset& dataset) {
  ml::BinaryCounts counts;
  for (const data::LabeledPatch& p : dataset.patches)
    counts.record(p.label > 0, model.classify(p.gray));
  return counts;
}

std::vector<Detection> detect_multiscale(const img::ImageU8& frame,
                                         const HogSvmModel& model,
                                         const SlidingWindowParams& params) {
  // The single-model scan is the one-element case of the shared-front-end
  // scanner (multi_model_scan.hpp).
  const HogSvmModel* models[] = {&model};
  return detect_multiscale_multi(frame, models, params);
}

}  // namespace avd::det
