#include "avd/detect/detection.hpp"

#include <algorithm>

namespace avd::det {

std::vector<Detection> non_max_suppression(std::vector<Detection> detections,
                                           double iou_threshold) {
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });
  std::vector<Detection> kept;
  std::vector<bool> suppressed(detections.size(), false);
  for (std::size_t i = 0; i < detections.size(); ++i) {
    if (suppressed[i]) continue;
    kept.push_back(detections[i]);
    for (std::size_t j = i + 1; j < detections.size(); ++j) {
      if (suppressed[j] || detections[j].class_id != detections[i].class_id)
        continue;
      if (img::iou(detections[i].box, detections[j].box) > iou_threshold)
        suppressed[j] = true;
    }
  }
  return kept;
}

MatchResult match_detections(const std::vector<Detection>& dets,
                             const std::vector<img::Rect>& truth,
                             double iou_threshold) {
  MatchResult r;
  std::vector<bool> det_used(dets.size(), false);
  for (const img::Rect& gt : truth) {
    double best = 0.0;
    std::size_t best_i = dets.size();
    for (std::size_t i = 0; i < dets.size(); ++i) {
      if (det_used[i]) continue;
      const double v = img::iou(dets[i].box, gt);
      if (v > best) {
        best = v;
        best_i = i;
      }
    }
    if (best >= iou_threshold && best_i < dets.size()) {
      det_used[best_i] = true;
      ++r.true_positives;
    } else {
      ++r.false_negatives;
    }
  }
  for (bool used : det_used)
    if (!used) ++r.false_positives;
  return r;
}

}  // namespace avd::det
