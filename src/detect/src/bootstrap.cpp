#include "avd/detect/bootstrap.hpp"

#include "avd/image/color.hpp"
#include "avd/image/resize.hpp"

namespace avd::det {

HogSvmModel bootstrap_train_hog_svm(const data::PatchDataset& dataset,
                                    std::string name, const BootstrapSpec& spec,
                                    const HogSvmTrainOptions& opts,
                                    BootstrapReport* report) {
  data::PatchDataset working = dataset;
  HogSvmModel model = train_hog_svm(working, name, opts);
  if (report) *report = {};

  ml::Rng rng(spec.seed);
  for (int round = 0; round < spec.rounds; ++round) {
    int mined = 0;
    data::SceneGenerator gen(dataset.condition, rng.engine()());

    for (int s = 0;
         s < spec.scenes_per_round && mined < spec.max_new_negatives_per_round;
         ++s) {
      // Vehicle-free frame: every detection is a false positive.
      const data::SceneSpec scene =
          gen.random_scene(spec.scene_size, /*n_vehicles=*/0);
      const img::ImageU8 gray =
          img::rgb_to_gray(data::render_scene(scene));

      for (const Detection& fp : detect_multiscale(gray, model, spec.scan)) {
        if (mined >= spec.max_new_negatives_per_round) break;
        const img::Rect roi = img::intersect(fp.box, gray.bounds());
        if (roi.width < 8 || roi.height < 8) continue;
        working.patches.push_back(
            {img::resize_bilinear(gray.crop(roi), model.window), -1, false});
        ++mined;
      }
    }

    if (report) report->mined_per_round.push_back(mined);
    if (mined == 0) break;  // converged: nothing left to mine
    model = train_hog_svm(working, name, opts);
  }

  if (report) report->final_training_size = working.size();
  return model;
}

}  // namespace avd::det
