#include "avd/detect/dark_detector.hpp"

#include <cmath>
#include <stdexcept>

#include "avd/image/color.hpp"
#include "avd/image/filter.hpp"
#include "avd/image/resize.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/trace.hpp"

namespace avd::det {

DarkVehicleDetector::DarkVehicleDetector(ml::Dbn taillight_dbn,
                                         ml::LinearSvm pairing_svm,
                                         DarkDetectorConfig config)
    : dbn_(std::move(taillight_dbn)),
      pairing_svm_(std::move(pairing_svm)),
      config_(config) {
  if (dbn_.input_size() != data::kTaillightInputs ||
      dbn_.classes() != data::kTaillightClasses)
    throw std::invalid_argument("DarkVehicleDetector: DBN shape mismatch");
  if (pairing_svm_.dimension() != kPairFeatureCount)
    throw std::invalid_argument("DarkVehicleDetector: pairing SVM dimension");
  if (config_.downsample_factor <= 0)
    throw std::invalid_argument("DarkVehicleDetector: bad downsample factor");
}

img::ImageU8 DarkVehicleDetector::preprocess(const img::RgbImage& frame) const {
  const obs::ScopedSpan span("threshold_morphology", "detect/dark");
  // Fig. 4: split chroma & luminance, threshold each, AND.
  const img::YcbcrImage ycc = img::rgb_to_ycbcr(frame);
  img::ImageU8 mask = img::taillight_roi_mask(ycc, config_.threshold);

  // Downsample with OR pooling: a lit pixel anywhere in the block keeps the
  // block lit, so distant 1-2 px taillights survive the resolution drop.
  if (config_.downsample_factor > 1 &&
      mask.width() % config_.downsample_factor == 0 &&
      mask.height() % config_.downsample_factor == 0) {
    mask = img::downsample_or(mask, config_.downsample_factor);
  } else if (config_.downsample_factor > 1) {
    // Non-divisible frames: nearest-neighbour fallback keeps binary values.
    mask = img::resize_nearest(
        mask, {std::max(1, mask.width() / config_.downsample_factor),
               std::max(1, mask.height() / config_.downsample_factor)});
  }

  if (config_.median_prefilter) mask = img::median3x3(mask);
  return img::close(mask, config_.closing);
}

std::vector<TaillightDetection> DarkVehicleDetector::detect_taillights(
    const img::ImageU8& binary) const {
  const obs::ScopedSpan span("dbn_scan", "detect/dark");
  std::vector<TaillightDetection> out;
  const std::vector<img::Blob> blobs =
      img::find_blobs(binary, img::Connectivity::Eight, config_.min_blob_area);

  constexpr int kWin = data::kTaillightWindow;
  std::vector<float> input(data::kTaillightInputs);
  std::uint64_t dbn_windows = 0;

  for (const img::Blob& blob : blobs) {
    // Slide the 9x9 window (stride 2) over the blob's neighbourhood and
    // aggregate the posteriors over all covering windows. Averaging (rather
    // than taking the single most confident window) is what lets the DBN
    // reject elongated streaks: a window clipping the *end* of a streak looks
    // like a small lamp, but most windows along the streak see the streak.
    const img::Rect region = img::inflated(blob.bbox, kWin / 2);
    TaillightDetection det;
    det.blob_box = blob.bbox;
    det.blob_area = blob.area;
    det.center = {static_cast<int>(std::lround(blob.centroid_x)),
                  static_cast<int>(std::lround(blob.centroid_y))};

    std::vector<double> posterior_sum(data::kTaillightClasses, 0.0);
    int windows = 0;
    for (int wy = region.y; wy + kWin <= region.bottom();
         wy += config_.window_stride) {
      for (int wx = region.x; wx + kWin <= region.right();
           wx += config_.window_stride) {
        for (int dy = 0; dy < kWin; ++dy)
          for (int dx = 0; dx < kWin; ++dx)
            input[static_cast<std::size_t>(dy) * kWin + dx] =
                binary.at_clamped(wx + dx, wy + dy) != 0 ? 1.0f : 0.0f;

        const std::vector<float> post = dbn_.posterior(input);
        for (int cls = 0; cls < data::kTaillightClasses; ++cls)
          posterior_sum[cls] += post[cls];
        ++windows;
        ++dbn_windows;
      }
    }
    if (windows == 0) continue;

    for (int cls = 1; cls < data::kTaillightClasses; ++cls) {
      const double mean = posterior_sum[cls] / windows;
      if (mean > det.confidence) {
        det.confidence = mean;
        det.cls = static_cast<data::TaillightClass>(cls);
      }
    }
    // Background must not dominate the aggregate.
    const double background = posterior_sum[0] / windows;
    if (det.cls != data::TaillightClass::NotTaillight &&
        det.confidence >= config_.dbn_min_confidence &&
        det.confidence > background)
      out.push_back(det);
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("detect.dark.blobs").inc(blobs.size());
  registry.counter("detect.dark.dbn_windows").inc(dbn_windows);
  registry.counter("detect.dark.taillights").inc(out.size());
  return out;
}

std::vector<float> DarkVehicleDetector::pair_features(
    const TaillightDetection& a, const TaillightDetection& b) {
  const double dx = static_cast<double>(b.center.x) - a.center.x;
  const double dy = std::abs(static_cast<double>(b.center.y) - a.center.y);
  const double size_a = std::sqrt(static_cast<double>(std::max<long long>(a.blob_area, 1)));
  const double size_b = std::sqrt(static_cast<double>(std::max<long long>(b.blob_area, 1)));
  const double ratio = std::min(size_a, size_b) / std::max(size_a, size_b);
  const double same_class = a.cls == b.cls ? 1.0 : 0.0;
  return {static_cast<float>(dx / 100.0), static_cast<float>(dy / 10.0),
          static_cast<float>(size_a / 10.0), static_cast<float>(size_b / 10.0),
          static_cast<float>(ratio), static_cast<float>(same_class)};
}

std::vector<Detection> DarkVehicleDetector::pair_taillights(
    const std::vector<TaillightDetection>& lights) const {
  const obs::ScopedSpan span("pairing", "detect/dark");
  std::vector<Detection> pairs;
  for (std::size_t i = 0; i < lights.size(); ++i) {
    for (std::size_t j = 0; j < lights.size(); ++j) {
      if (i == j) continue;
      const TaillightDetection& left = lights[i];
      const TaillightDetection& right = lights[j];
      const int dx = right.center.x - left.center.x;
      const int dy = std::abs(right.center.y - left.center.y);
      // Geometric gate: the paper restricts matching to "a particular region
      // around each detected taillight".
      if (dx < config_.pair_min_dx || dx > config_.pair_max_dx ||
          dy > config_.pair_max_dy)
        continue;

      const std::vector<float> feat = pair_features(left, right);
      const double score = pairing_svm_.decision(feat);
      if (score < config_.pair_svm_threshold) continue;

      // Vehicle box inferred from taillight geometry: lights sit at about
      // 2/3 of the body height, inset ~10% from each side.
      const int width = static_cast<int>(std::lround(dx * 1.3));
      const int height = static_cast<int>(std::lround(width * 0.8));
      const int cx = (left.center.x + right.center.x) / 2;
      const int light_y = (left.center.y + right.center.y) / 2;
      const img::Rect box{cx - width / 2,
                          light_y - (2 * height) / 3, width, height};
      pairs.push_back({box, score, kClassVehicle});
    }
  }
  return non_max_suppression(std::move(pairs), config_.nms_iou);
}

std::vector<Detection> DarkVehicleDetector::detect(
    const img::RgbImage& frame) const {
  const obs::ScopedSpan span("dark_detect", "detect/dark");
  const img::ImageU8 mask = preprocess(frame);
  const std::vector<TaillightDetection> lights = detect_taillights(mask);
  std::vector<Detection> dets = pair_taillights(lights);
  const double f = config_.downsample_factor;
  for (Detection& d : dets) d.box = img::scaled(d.box, f, f);
  return dets;
}

}  // namespace avd::det
