#include "avd/detect/dark_detector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <stdexcept>

#include "avd/image/color.hpp"
#include "avd/image/filter.hpp"
#include "avd/image/resize.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/trace.hpp"
#include "avd/runtime/thread_pool.hpp"

namespace avd::det {

namespace {

/// Gather plan for one blob: its window anchors plus the index range its
/// windows occupy in the frame's packed patch matrix — the scatter step maps
/// posterior rows back to blobs through `first`.
struct BlobWindows {
  std::vector<int> xs;       ///< window x anchors (canonical inner order)
  std::vector<int> ys;       ///< window y anchors (canonical outer order)
  std::size_t first = 0;     ///< first row in the packed patch matrix
  [[nodiscard]] std::size_t count() const { return xs.size() * ys.size(); }
};

/// Fill one 9x9 binary patch row of the packed matrix.
void pack_window(const img::ImageU8& binary, int wx, int wy,
                 std::span<float> row) {
  constexpr int kWin = data::kTaillightWindow;
  // Interior windows (the overwhelming majority) need no clamping: each
  // patch row is a contiguous byte run, so skip the per-pixel bounds math.
  // Both paths write the same 0.0f/1.0f values, so the fast path cannot
  // change detections.
  if (wx >= 0 && wy >= 0 && wx + kWin <= binary.width() &&
      wy + kWin <= binary.height()) {
    const std::size_t stride = static_cast<std::size_t>(binary.width());
    const std::uint8_t* base =
        binary.pixels().data() + static_cast<std::size_t>(wy) * stride + wx;
    for (int dy = 0; dy < kWin; ++dy) {
      const std::uint8_t* src = base + static_cast<std::size_t>(dy) * stride;
      float* dst = row.data() + static_cast<std::size_t>(dy) * kWin;
      for (int dx = 0; dx < kWin; ++dx) dst[dx] = src[dx] != 0 ? 1.0f : 0.0f;
    }
    return;
  }
  for (int dy = 0; dy < kWin; ++dy)
    for (int dx = 0; dx < kWin; ++dx)
      row[static_cast<std::size_t>(dy) * kWin + dx] =
          binary.at_clamped(wx + dx, wy + dy) != 0 ? 1.0f : 0.0f;
}

/// Aggregate a blob's window posteriors into a detection. `posterior` is
/// called once per window in canonical (y outer, x inner) order and must
/// append kTaillightClasses floats for that window — the double sums below
/// therefore see the same addends in the same order in the batched and
/// per-window paths.
bool aggregate_blob(const img::Blob& blob,
                    std::span<const float> posteriors, double min_confidence,
                    TaillightDetection& det) {
  const std::size_t windows = posteriors.size() / data::kTaillightClasses;
  if (windows == 0) return false;
  det.blob_box = blob.bbox;
  det.blob_area = blob.area;
  det.center = {static_cast<int>(std::lround(blob.centroid_x)),
                static_cast<int>(std::lround(blob.centroid_y))};

  double posterior_sum[data::kTaillightClasses] = {};
  for (std::size_t w = 0; w < windows; ++w)
    for (int cls = 0; cls < data::kTaillightClasses; ++cls)
      posterior_sum[cls] += posteriors[w * data::kTaillightClasses +
                                       static_cast<std::size_t>(cls)];

  for (int cls = 1; cls < data::kTaillightClasses; ++cls) {
    const double mean = posterior_sum[cls] / static_cast<double>(windows);
    if (mean > det.confidence) {
      det.confidence = mean;
      det.cls = static_cast<data::TaillightClass>(cls);
    }
  }
  // Background must not dominate the aggregate.
  const double background = posterior_sum[0] / static_cast<double>(windows);
  return det.cls != data::TaillightClass::NotTaillight &&
         det.confidence >= min_confidence && det.confidence > background;
}

}  // namespace

DarkVehicleDetector::DarkVehicleDetector(ml::Dbn taillight_dbn,
                                         ml::LinearSvm pairing_svm,
                                         DarkDetectorConfig config)
    : dbn_(std::move(taillight_dbn)),
      pairing_svm_(std::move(pairing_svm)),
      config_(config) {
  if (dbn_.input_size() != data::kTaillightInputs ||
      dbn_.classes() != data::kTaillightClasses)
    throw std::invalid_argument("DarkVehicleDetector: DBN shape mismatch");
  if (pairing_svm_.dimension() != kPairFeatureCount)
    throw std::invalid_argument("DarkVehicleDetector: pairing SVM dimension");
  if (config_.downsample_factor <= 0)
    throw std::invalid_argument("DarkVehicleDetector: bad downsample factor");
}

img::ImageU8 DarkVehicleDetector::preprocess(const img::RgbImage& frame) const {
  const obs::ScopedSpan span("threshold_morphology", "detect/dark");
  // Fig. 4: split chroma & luminance, threshold each, AND.
  const img::YcbcrImage ycc = img::rgb_to_ycbcr(frame);
  img::ImageU8 mask = img::taillight_roi_mask(ycc, config_.threshold);

  // Downsample with OR pooling: a lit pixel anywhere in the block keeps the
  // block lit, so distant 1-2 px taillights survive the resolution drop.
  if (config_.downsample_factor > 1 &&
      mask.width() % config_.downsample_factor == 0 &&
      mask.height() % config_.downsample_factor == 0) {
    mask = img::downsample_or(mask, config_.downsample_factor);
  } else if (config_.downsample_factor > 1) {
    // Non-divisible frames: nearest-neighbour fallback keeps binary values.
    mask = img::resize_nearest(
        mask, {std::max(1, mask.width() / config_.downsample_factor),
               std::max(1, mask.height() / config_.downsample_factor)});
  }

  if (config_.median_prefilter) mask = img::median3x3(mask);
  return img::close(mask, config_.closing);
}

std::vector<int> dark_window_anchors(int begin, int end, int win, int stride) {
  std::vector<int> anchors;
  if (win <= 0 || stride <= 0 || end - begin < win) return anchors;
  const int last = end - win;
  for (int pos = begin; pos < last; pos += stride) anchors.push_back(pos);
  anchors.push_back(last);  // clamp: the edge window is always scanned
  return anchors;
}

std::vector<TaillightDetection> DarkVehicleDetector::detect_taillights(
    const img::ImageU8& binary) const {
  const obs::ScopedSpan span("dbn_scan", "detect/dark");
  const std::vector<img::Blob> blobs =
      img::find_blobs(binary, img::Connectivity::Eight, config_.min_blob_area);

  constexpr int kWin = data::kTaillightWindow;
  constexpr std::size_t kInputs = data::kTaillightInputs;
  constexpr std::size_t kClasses = data::kTaillightClasses;
  const int n_blobs = static_cast<int>(blobs.size());

  // Tasks run either inline (no pool) or cooperatively on the shared pool;
  // every task writes an index-addressed disjoint range, and the scatter
  // step walks blobs in canonical order — identical detections for every
  // pool size.
  const auto run_tasks = [this](int count, const std::function<void(int)>& fn) {
    if (pool_ != nullptr && count > 1) {
      pool_->run_indexed(count, fn);
    } else {
      for (int i = 0; i < count; ++i) fn(i);
    }
  };
  // --- gather: plan each blob's windows, pack them into one patch matrix --
  std::vector<BlobWindows> plans(blobs.size());
  std::size_t total_windows = 0;
  {
    const obs::ScopedSpan gather_span("dark_gather", "detect/dark",
                                      {{"blobs", n_blobs}});
    for (std::size_t i = 0; i < blobs.size(); ++i) {
      // Slide the 9x9 window (stride 2) over the blob's neighbourhood; the
      // posteriors of all covering windows are averaged. Averaging (rather
      // than taking the single most confident window) is what lets the DBN
      // reject elongated streaks: a window clipping the *end* of a streak
      // looks like a small lamp, but most windows along the streak see the
      // streak.
      const img::Rect region = img::inflated(blobs[i].bbox, kWin / 2);
      plans[i].xs = dark_window_anchors(region.x, region.right(), kWin,
                                        config_.window_stride);
      plans[i].ys = dark_window_anchors(region.y, region.bottom(), kWin,
                                        config_.window_stride);
      plans[i].first = total_windows;
      total_windows += plans[i].count();
    }
  }
  // --- pack + batch-score: one pooled pass over row chunks ----------------
  // Per-thread frame buffers: the packed patch matrix and its posteriors are
  // reused across frames, so the warm scan allocates nothing. Pool tasks
  // write the *caller's* buffers through the captured references; a pool
  // caller only ever helps with its own batch, so the buffers cannot be
  // resized while tasks hold them.
  static thread_local std::vector<float> patches_tls, posteriors_tls;
  std::vector<float>& patches = patches_tls;
  std::vector<float>& posteriors = posteriors_tls;
  patches.resize(total_windows * kInputs);
  posteriors.resize(total_windows * kClasses);

  std::size_t chunk =
      config_.batch_windows > 0 ? static_cast<std::size_t>(config_.batch_windows)
                                : total_windows;
  if (pool_ != nullptr && total_windows > 0) {
    // Split small frames into ~2 chunks per scoring thread so the pool has
    // work to steal; chunking never changes results (each posterior row is
    // bit-exact regardless of which chunk computes it), only the activation
    // working-set size.
    const std::size_t lanes =
        2 * (static_cast<std::size_t>(pool_->thread_count()) + 1);
    const std::size_t target = (total_windows + lanes - 1) / lanes;
    chunk = std::clamp(target, std::size_t{32}, chunk);
  }
  const int n_chunks =
      total_windows == 0 ? 0
                         : static_cast<int>((total_windows + chunk - 1) / chunk);
  {
    // One span covers the whole pack + score pass: chunks run back to back
    // (or concurrently on the pool), so per-chunk spans would only add
    // telemetry cost to a loop whose chunks are tens of microseconds.
    const obs::ScopedSpan batch_span(
        "dbn_batch_forward", "detect/dark",
        {{"windows", static_cast<std::int64_t>(total_windows)},
         {"chunks", static_cast<std::int64_t>(n_chunks)}});
    run_tasks(n_chunks, [&](int c) {
      const std::size_t begin = static_cast<std::size_t>(c) * chunk;
      const std::size_t rows = std::min(chunk, total_windows - begin);
      // Pack this chunk's windows, walking the (sorted, disjoint) blob row
      // ranges that overlap [begin, begin + rows).
      std::size_t bi = 0;
      for (std::size_t row = begin; row < begin + rows; ++row) {
        while (plans[bi].first + plans[bi].count() <= row) ++bi;
        const BlobWindows& plan = plans[bi];
        const std::size_t local = row - plan.first;
        const std::size_t nx = plan.xs.size();
        pack_window(binary, plan.xs[local % nx], plan.ys[local / nx],
                    {patches.data() + row * kInputs, kInputs});
      }
      // One scratch per scoring thread, reused across chunks and frames: the
      // batched forward is allocation-free once the thread is warm.
      static thread_local ml::DbnBatchScratch scratch;
      dbn_.posterior_batch({patches.data() + begin * kInputs, rows * kInputs},
                           static_cast<int>(rows), scratch,
                           {posteriors.data() + begin * kClasses,
                            rows * kClasses});
    });
  }

  // --- scatter: per-blob posterior aggregation, canonical blob order ------
  std::vector<TaillightDetection> out;
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    TaillightDetection det;
    if (aggregate_blob(blobs[i],
                       {posteriors.data() + plans[i].first * kClasses,
                        plans[i].count() * kClasses},
                       config_.dbn_min_confidence, det))
      out.push_back(det);
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("detect.dark.blobs").inc(blobs.size());
  registry.counter("detect.dark.dbn_windows").inc(total_windows);
  registry.counter("detect.dark.batch_windows").inc(total_windows);
  registry.counter("detect.dark.taillights").inc(out.size());
  return out;
}

std::vector<TaillightDetection> DarkVehicleDetector::detect_taillights_reference(
    const img::ImageU8& binary) const {
  const obs::ScopedSpan span("dbn_scan_reference", "detect/dark");
  std::vector<TaillightDetection> out;
  const std::vector<img::Blob> blobs =
      img::find_blobs(binary, img::Connectivity::Eight, config_.min_blob_area);

  constexpr int kWin = data::kTaillightWindow;
  std::vector<float> input(data::kTaillightInputs);
  std::vector<float> window_posteriors;

  for (const img::Blob& blob : blobs) {
    const img::Rect region = img::inflated(blob.bbox, kWin / 2);
    window_posteriors.clear();
    for (const int wy : dark_window_anchors(region.y, region.bottom(), kWin,
                                            config_.window_stride)) {
      for (const int wx : dark_window_anchors(region.x, region.right(), kWin,
                                              config_.window_stride)) {
        pack_window(binary, wx, wy, input);
        const std::vector<float> post = dbn_.posterior(input);
        window_posteriors.insert(window_posteriors.end(), post.begin(),
                                 post.end());
      }
    }
    TaillightDetection det;
    if (aggregate_blob(blob, window_posteriors, config_.dbn_min_confidence,
                       det))
      out.push_back(det);
  }
  return out;
}

std::vector<float> DarkVehicleDetector::pair_features(
    const TaillightDetection& a, const TaillightDetection& b) {
  const double dx = static_cast<double>(b.center.x) - a.center.x;
  const double dy = std::abs(static_cast<double>(b.center.y) - a.center.y);
  const double size_a = std::sqrt(static_cast<double>(std::max<long long>(a.blob_area, 1)));
  const double size_b = std::sqrt(static_cast<double>(std::max<long long>(b.blob_area, 1)));
  const double ratio = std::min(size_a, size_b) / std::max(size_a, size_b);
  const double same_class = a.cls == b.cls ? 1.0 : 0.0;
  return {static_cast<float>(dx / 100.0), static_cast<float>(dy / 10.0),
          static_cast<float>(size_a / 10.0), static_cast<float>(size_b / 10.0),
          static_cast<float>(ratio), static_cast<float>(same_class)};
}

std::vector<Detection> DarkVehicleDetector::pair_taillights(
    const std::vector<TaillightDetection>& lights) const {
  const obs::ScopedSpan span("pairing", "detect/dark");
  std::vector<Detection> pairs;
  for (std::size_t i = 0; i < lights.size(); ++i) {
    for (std::size_t j = 0; j < lights.size(); ++j) {
      if (i == j) continue;
      const TaillightDetection& left = lights[i];
      const TaillightDetection& right = lights[j];
      const int dx = right.center.x - left.center.x;
      const int dy = std::abs(right.center.y - left.center.y);
      // Geometric gate: the paper restricts matching to "a particular region
      // around each detected taillight".
      if (dx < config_.pair_min_dx || dx > config_.pair_max_dx ||
          dy > config_.pair_max_dy)
        continue;

      const std::vector<float> feat = pair_features(left, right);
      const double score = pairing_svm_.decision(feat);
      if (score < config_.pair_svm_threshold) continue;

      // Vehicle box inferred from taillight geometry: lights sit at about
      // 2/3 of the body height, inset ~10% from each side.
      const int width = static_cast<int>(std::lround(dx * 1.3));
      const int height = static_cast<int>(std::lround(width * 0.8));
      const int cx = (left.center.x + right.center.x) / 2;
      const int light_y = (left.center.y + right.center.y) / 2;
      const img::Rect box{cx - width / 2,
                          light_y - (2 * height) / 3, width, height};
      pairs.push_back({box, score, kClassVehicle});
    }
  }
  return non_max_suppression(std::move(pairs), config_.nms_iou);
}

std::vector<Detection> DarkVehicleDetector::detect(
    const img::RgbImage& frame) const {
  const obs::ScopedSpan span("dark_detect", "detect/dark");
  const img::ImageU8 mask = preprocess(frame);
  const std::vector<TaillightDetection> lights = detect_taillights(mask);
  std::vector<Detection> dets = pair_taillights(lights);
  const double f = config_.downsample_factor;
  for (Detection& d : dets) d.box = img::scaled(d.box, f, f);
  return dets;
}

}  // namespace avd::det
