#include "avd/detect/evaluation.hpp"

namespace avd::det {

DistanceBin distance_bin(const img::Rect& truth_box, img::Size frame) {
  const double rel =
      static_cast<double>(truth_box.width) / static_cast<double>(frame.width);
  if (rel >= 0.25) return DistanceBin::Near;
  if (rel >= 0.12) return DistanceBin::Mid;
  return DistanceBin::Far;
}

FrameEvalResult evaluate_frames(const FrameDetector& detector,
                                const FrameEvalSpec& spec) {
  FrameEvalResult result;
  data::SceneGenerator gen(spec.condition, spec.seed);

  for (int f = 0; f < spec.n_frames; ++f) {
    const data::SceneSpec scene =
        gen.random_scene(spec.frame_size, spec.vehicles_per_frame);
    const std::vector<Detection> dets =
        detector(data::render_scene(scene));

    // Match greedily per truth box (same convention as match_detections,
    // but we need per-box hit attribution for the distance bins).
    std::vector<bool> det_used(dets.size(), false);
    for (const data::VehicleSpec& v : scene.vehicles) {
      ++result.truth_total;
      const auto bin = static_cast<int>(distance_bin(v.body, spec.frame_size));
      ++result.by_bin[bin].truth;

      double best = 0.0;
      std::size_t best_i = dets.size();
      for (std::size_t i = 0; i < dets.size(); ++i) {
        if (det_used[i]) continue;
        const double v_iou = img::iou(dets[i].box, v.body);
        if (v_iou > best) {
          best = v_iou;
          best_i = i;
        }
      }
      if (best >= spec.match_iou && best_i < dets.size()) {
        det_used[best_i] = true;
        ++result.hits;
        ++result.by_bin[bin].hits;
      }
    }
    for (bool used : det_used)
      if (!used) ++result.false_positives;
    ++result.frames;
  }
  return result;
}

}  // namespace avd::det
