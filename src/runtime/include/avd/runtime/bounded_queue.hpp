// Bounded multi-producer/multi-consumer queue: the channel between the
// serving runtime's pipeline stages.
//
// Capacity is a hard bound; what happens when a producer outruns the
// consumers is the backpressure policy:
//
//   * Block      — producers wait for space. Lossless; this is the policy of
//                  every control-plane queue (the lighting classifier must
//                  see every frame) and the deterministic-serving default.
//   * DropOldest — evict the oldest queued item to admit the new one. This
//                  is the real-time camera semantics — stale frames are
//                  worthless — and the serving-layer analogue of the paper's
//                  "one missed frame per reconfiguration": when the detect
//                  engine is busy, the frame captured meanwhile is lost.
//   * DropNewest — reject the incoming item; queued work is preserved.
//
// Dropped items are never silently destroyed when the caller cares: push()
// hands them back so the pipeline can still account for the frame (the
// StreamServer turns them into vehicle_processed=false reports).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace avd::runtime {

enum class OverflowPolicy : std::uint8_t { Block = 0, DropOldest, DropNewest };

[[nodiscard]] constexpr const char* to_string(OverflowPolicy p) {
  switch (p) {
    case OverflowPolicy::Block: return "block";
    case OverflowPolicy::DropOldest: return "drop-oldest";
    case OverflowPolicy::DropNewest: return "drop-newest";
  }
  return "?";
}

/// Outcome of one push() call. Exactly one of these is returned per push;
/// the value is enqueued iff the outcome is Accepted or Evicted.
///
/// Closed deserves care: it is returned both when the queue was already
/// closed at push() entry AND when a Block-policy producer was parked in
/// the not-full wait and close() woke it — in either case the pushed value
/// is destroyed (it is NOT handed back through `displaced`, which only ever
/// carries policy-displaced items). Producers racing a shutdown must treat
/// Closed as "this item was dropped", not "retry later"; the StreamServer's
/// stage loops account the frame before giving up on it.
enum class PushOutcome : std::uint8_t {
  Accepted = 0,  ///< enqueued, nothing displaced
  Evicted,       ///< enqueued after evicting the oldest item (DropOldest)
  Rejected,      ///< not enqueued, queue full (DropNewest)
  Closed,        ///< not enqueued, value dropped, queue closed (possibly
                 ///< mid-wait: close() wakes blocked Block-policy pushers)
};

/// Counters maintained under the queue lock; snapshot via stats().
struct QueueStats {
  std::uint64_t pushed = 0;   ///< items accepted into the queue
  std::uint64_t popped = 0;   ///< items handed to consumers
  std::uint64_t dropped = 0;  ///< items evicted or rejected by the policy
  std::size_t high_water = 0; ///< maximum queue depth ever observed
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity,
                        OverflowPolicy policy = OverflowPolicy::Block)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueue `value` under the backpressure policy. When the policy drops
  /// an item — the oldest queued one (Evicted) or the incoming one
  /// (Rejected) — it is handed back through `displaced` (if non-null) so
  /// the caller can still account for the frame. Returns Closed (and drops
  /// the value) if close() was called.
  PushOutcome push(T value, std::optional<T>* displaced = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (policy_ == OverflowPolicy::Block) {
      not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) return PushOutcome::Closed;

    PushOutcome outcome = PushOutcome::Accepted;
    if (items_.size() >= capacity_) {
      if (policy_ == OverflowPolicy::DropNewest) {
        ++stats_.dropped;
        if (displaced != nullptr) *displaced = std::move(value);
        return PushOutcome::Rejected;
      }
      // DropOldest: displace the stalest item to admit the fresh one.
      if (displaced != nullptr) *displaced = std::move(items_.front());
      items_.pop_front();
      ++stats_.dropped;
      outcome = PushOutcome::Evicted;
    }
    items_.push_back(std::move(value));
    ++stats_.pushed;
    if (items_.size() > stats_.high_water) stats_.high_water = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return outcome;
  }

  /// Dequeue the oldest item, blocking while the queue is empty and open.
  /// Returns nullopt once the queue is closed and drained.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking dequeue; false if the queue is currently empty.
  [[nodiscard]] bool try_pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Close the queue: producers are refused, consumers drain what remains
  /// and then see nullopt. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] OverflowPolicy policy() const { return policy_; }
  [[nodiscard]] QueueStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  QueueStats stats_;
  bool closed_ = false;
};

}  // namespace avd::runtime
