// The overload-control plane: per-stream admission + the degradation ladder.
//
// Under sustained overload the StreamServer used to miss its 20 ms deadline
// *globally* — every stream's frames aged in the queues equally. The
// AdmissionController instead degrades *locally*, one stream at a time, down
// an explicit ladder:
//
//   level 0  Full       full-fidelity scan (the default pipeline)
//   level 1  CoarseScan coarser pyramid: stride multiplied, levels capped
//   level 2  SkipCoast  scan every Nth frame; in between, the stream's
//                       IouTracker coasts boxes forward by their last motion
//   level 3  Shed       admit nothing; frames surface as explicit shed
//                       reports (vehicle_processed = false), accounted in
//                       StreamResult — never a silent loss
//
// What moves a stream along the ladder is the per-stream obs::SloMonitor
// state machine (PR 3/6), reported once per telemetry window:
//
//   HEALTHY    step one level back up, but only after `recover_after_windows`
//              consecutive healthy windows (slow recover — no flapping)
//   DEGRADED   drop to level 1 immediately; escalate one level per
//              `escalate_after_windows` further degraded windows (fast worsen)
//   UNHEALTHY  level 3 immediately
//
// Fleet pressure: when at least `fleet_escalate_fraction` of all streams are
// degraded-or-worse at once, escalation skips the per-stream dwell — local
// degradation is not enough when the whole fleet is drowning.
//
// On top of the ladder, a per-stream token bucket (`TokenBucketConfig`)
// bounds admitted frame rate outright, and `force_level()` lets the
// watchdog / fault plans pin a stream to a level (sticky: health windows no
// longer move it).
//
// Every transition is recorded (and surfaced through a callback so the
// server can emit `runtime.degrade.level{stream=…}` gauges, trace marks and
// flight-recorder entries), timestamped on the tracer timebase, and carries
// the frame index that observed it when driven from decide().
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "avd/detect/tracker.hpp"
#include "avd/obs/slo.hpp"

namespace avd::runtime {

/// Rungs of the degradation ladder, in worsening order. Integer values are
/// the wire/metric form (`runtime.degrade.level` gauge, /healthz JSON).
enum class DegradeLevel : int {
  Full = 0,        ///< full-fidelity scan
  CoarseScan = 1,  ///< coarser pyramid stride / fewer levels
  SkipCoast = 2,   ///< scan every Nth frame, tracker-coast the rest
  Shed = 3,        ///< admit nothing; frames become explicit shed reports
};

[[nodiscard]] const char* to_string(DegradeLevel level);

/// Hard per-stream admission rate, independent of health. 0 = unlimited.
struct TokenBucketConfig {
  double rate_fps = 0.0;  ///< sustained admitted frames per second (0 = off)
  double burst = 8.0;     ///< bucket depth: tolerated burst above the rate
};

/// Shape of the ladder (see file comment for the semantics).
struct DegradeLadderConfig {
  /// Level 1: SlidingWindowParams.stride_cells multiplier.
  int coarse_stride_multiplier = 2;
  /// Level 1: cap on SlidingWindowParams.max_levels.
  int coarse_max_levels = 3;
  /// Level 2: scan every `skip_modulus`-th frame (by frame index, so the
  /// scan/coast pattern is deterministic); coast the others. Min 2.
  int skip_modulus = 3;
  /// Degraded windows at one level before escalating to the next.
  int escalate_after_windows = 2;
  /// Highest rung sustained DEGRADED windows may reach (clamped to [1, 3]).
  /// 3 (default) lets degraded streaks walk a stream all the way to Shed;
  /// 2 reserves level 3 for UNHEALTHY streams, the watchdog and fault
  /// plans, which all ignore this cap.
  int max_degraded_level = 3;
  /// Healthy windows required per one-level step back up (slow recover).
  int recover_after_windows = 5;
  /// Fraction of streams degraded-or-worse that counts as fleet pressure
  /// (escalation then skips the per-stream dwell). 0 = off.
  double fleet_escalate_fraction = 0.0;
  /// Tracker shape used for level-2 coasting. max_misses bounds how many
  /// consecutive frames a box survives without a fresh scan.
  det::TrackerConfig coast_tracker;
};

struct AdmissionConfig {
  /// Off by default: admission machinery (per-stream buckets, ladder state,
  /// the detect-stage coast path) is bypassed entirely when disabled.
  bool enabled = false;
  TokenBucketConfig bucket;
  DegradeLadderConfig ladder;
};

/// Per-stage liveness watchdog: a stream that makes no pipeline progress for
/// `timeout` is forced to DegradeLevel::Shed (sticky) instead of wedging the
/// whole serve. Requires/implies the admission machinery.
struct WatchdogConfig {
  bool enabled = false;
  std::chrono::milliseconds timeout{2000};
  std::chrono::milliseconds poll{50};
};

/// One ladder transition.
struct DegradeTransition {
  int stream = 0;
  DegradeLevel from = DegradeLevel::Full;
  DegradeLevel to = DegradeLevel::Full;
  /// Control-plane frame index that observed the transition; -1 when it was
  /// driven by a health window / watchdog rather than a frame.
  int frame = -1;
  std::string reason;      ///< "health:degraded", "watchdog", "fault-plan", …
  std::uint64_t t_ns = 0;  ///< tracer-timebase timestamp
};

/// Verdict for one frame at the control stage.
struct AdmissionDecision {
  bool admit = true;                        ///< false: shed this frame
  DegradeLevel level = DegradeLevel::Full;  ///< ladder level applied
  bool coast = false;  ///< level 2 only: coast instead of scan
  const char* shed_reason = nullptr;  ///< "shed-level" | "token-bucket"
};

/// Per-stream admission statistics (monotonic over one controller).
struct AdmissionStats {
  std::uint64_t admitted = 0;        ///< frames admitted (incl. coasted)
  std::uint64_t shed = 0;            ///< frames refused (level 3 or bucket)
  std::uint64_t shed_by_bucket = 0;  ///< subset of `shed`: token bucket
  std::uint64_t coasted = 0;         ///< level-2 frames served by the tracker
  std::uint64_t degraded_scans = 0;  ///< scans run at level 1 or 2
};

/// The controller. One per serve(); `decide()` is called from the control
/// stage (per-stream sequential, any worker thread), `on_health_windows()`
/// from the telemetry exporter thread, `force_level()` from the watchdog —
/// all synchronised internally by one mutex (the control stage is cheap, the
/// critical sections are tiny).
class AdmissionController {
 public:
  using TransitionCallback = std::function<void(const DegradeTransition&)>;

  AdmissionController(int n_streams, AdmissionConfig config);

  /// Invoked on every ladder transition, from whichever thread drove it
  /// (control worker, telemetry thread, or watchdog). Set before serving.
  void set_transition_callback(TransitionCallback cb);

  /// Admission verdict for one frame. `now_ns` feeds the token bucket (pass
  /// a fixed timeline in tests for deterministic bucket behaviour);
  /// `forced_level` (from a fault plan) pins the level for this frame
  /// onward until a different forced level — or none — is seen.
  [[nodiscard]] AdmissionDecision decide(
      int stream, int frame_index, std::uint64_t now_ns,
      std::optional<int> forced_level = std::nullopt);

  /// One call per telemetry window with every stream's health state;
  /// advances the ladder per the rules in the file comment.
  void on_health_windows(const std::vector<obs::HealthState>& states);

  /// External (cross-shard) fleet-pressure signal: while set, escalation
  /// skips the per-stream dwell exactly as if `fleet_escalate_fraction` of
  /// THIS controller's streams were degraded — the sharded front door raises
  /// it when enough of the whole fleet is degraded, so one drowning shard's
  /// neighbours tighten up before their own local fraction trips. OR-ed with
  /// the internal fraction; applies from the next on_health_windows().
  void set_fleet_pressure(bool pressure);

  /// Pin `stream` to `level`, permanently (health windows and fault plans
  /// no longer move it). The watchdog's wedged-stream conversion.
  void force_level(int stream, DegradeLevel level, const std::string& reason);

  [[nodiscard]] DegradeLevel level(int stream) const;
  [[nodiscard]] AdmissionStats stats(int stream) const;
  [[nodiscard]] std::vector<DegradeTransition> transitions(int stream) const;
  /// All streams' transitions, ordered per stream (cross-stream order is
  /// scheduling-dependent and deliberately not represented).
  [[nodiscard]] std::vector<DegradeTransition> transitions() const;
  [[nodiscard]] const AdmissionConfig& config() const { return config_; }
  [[nodiscard]] int n_streams() const {
    return static_cast<int>(streams_.size());
  }

 private:
  struct StreamSlot {
    DegradeLevel level = DegradeLevel::Full;
    /// Level the health machine wants (applied unless forced/pinned).
    DegradeLevel health_target = DegradeLevel::Full;
    bool plan_forced = false;  ///< a fault plan currently pins the level
    bool sticky = false;       ///< force_level() pinned it permanently
    int healthy_streak = 0;
    int degraded_streak = 0;
    double tokens = 0.0;
    std::uint64_t bucket_refill_ns = 0;
    bool bucket_primed = false;
    AdmissionStats stats;
    std::vector<DegradeTransition> transitions;
  };

  /// Records the change + queues the callback; mutex held.
  void set_level_locked(StreamSlot& slot, int stream, DegradeLevel to,
                        int frame, const char* reason, std::uint64_t t_ns,
                        std::vector<DegradeTransition>& fired);

  AdmissionConfig config_;
  mutable std::mutex mutex_;
  std::vector<StreamSlot> streams_;
  TransitionCallback callback_;
  bool external_fleet_pressure_ = false;  ///< set_fleet_pressure(); mutex_
};

}  // namespace avd::runtime
