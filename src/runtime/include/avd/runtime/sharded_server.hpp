// ShardedServer: the sharded front door over M StreamServer shards.
//
//                      ┌── shard 0: StreamServer ── streams a,d,…
//   named sources ──►──┼── shard 1: StreamServer ── streams b,e,…
//   (stable hash)      └── shard …                  (cross-stream batching
//                                                    inside each shard)
//        ▲                                 │
//        └──── one fleet ops surface ◄─────┘
//              /healthz /statusz /metricsz
//
// * Placement is deterministic: stable_stream_hash(name) % shards — a
//   64-bit FNV-1a over the stream's NAME, so the same fleet lands the same
//   way on every host and every run, and an explicit per-name override
//   lets tests pin placement.
// * Telemetry: every shard server publishes its per-stream series with a
//   shard=<m> label on top of stream=<name>, all into the one global
//   MetricsRegistry. rollup() folds the two-dimensional leaves into
//   per-shard marginals (runtime.frames{shard="1"}) and the fleet base
//   (runtime.frames) — the front door's /metricsz therefore answers for
//   the whole fleet in one scrape, and the sum of per-shard marginals
//   equals the base by construction (test-enforced).
// * Ops: ONE front-door OpsServer aggregates every shard — /healthz is
//   the fleet worst-of (503 when any stream is UNHEALTHY), /statusz the
//   serving topology, /metricsz the folded registry. Shard servers run
//   with their own ops plane disabled.
// * Admission: each shard keeps its own AdmissionController; the front
//   door adds the cross-shard fleet_pressure signal — when at least
//   `fleet_pressure_fraction` of ALL fleet streams are degraded-or-worse,
//   every shard's controller escalates without the per-stream dwell, so a
//   drowning shard's neighbours tighten up before their local view trips.
// * Determinism: sharding + cross-stream batching never touch the data
//   plane — per-stream results stay bit-identical to the sequential
//   AdaptiveSystem::run(), whatever the placement (test-enforced).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "avd/runtime/stream_server.hpp"

namespace avd::runtime {

/// 64-bit FNV-1a of a stream name: the stable placement hash. Pure function
/// of the bytes — identical across processes, platforms and library
/// versions (never use std::hash here; its value is unspecified).
[[nodiscard]] std::uint64_t stable_stream_hash(std::string_view name) noexcept;

struct ShardedServerConfig {
  /// Shard count M (clamped to >= 1): one StreamServer per shard.
  int shards = 2;
  /// Template applied to every shard's StreamServer. Fields the front door
  /// owns are overwritten per shard: `metric_labels` gains shard=<m>,
  /// `stream_names` becomes the shard's global stream names, and `ops` is
  /// forced off (the fleet has ONE ops surface — this server's).
  StreamServerConfig shard;
  /// Explicit placement overrides for tests: stream name -> shard index
  /// (clamped into range). Names not present fall back to the stable hash.
  std::map<std::string, int> assign_override;
  /// The fleet ops front door. Off by default; when enabled the listener
  /// runs from construction to destruction, like StreamServer's.
  bool ops_enabled = false;
  obs::OpsServerConfig ops;
  /// Fraction of ALL fleet streams degraded-or-worse that raises the
  /// cross-shard fleet_pressure signal on every shard's admission
  /// controller (0 = off). Recomputed on every health transition anywhere
  /// in the fleet; requires shard.slo.enabled for transitions to fire.
  double fleet_pressure_fraction = 0.0;
};

/// One named input stream. The name is the placement key and the value of
/// the stream= metric label; it need not be unique, but streams sharing a
/// name share a labeled series.
struct NamedStream {
  std::string name;
  std::unique_ptr<FrameSource> source;
};

class ShardedServer {
 public:
  /// Throws like StreamServer when ops_enabled and the listener can't bind.
  explicit ShardedServer(const core::AdaptiveSystem& system,
                         ShardedServerConfig config = {});
  ~ShardedServer();
  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  /// Placement of a stream name: the override when present, else
  /// stable_stream_hash(name) % shards.
  [[nodiscard]] int shard_of(const std::string& name) const;

  /// Serve every stream to completion, each on its assigned shard, all
  /// shards concurrently. Results are indexed like `streams` (the scatter
  /// restores input order; StreamResult::stream is the input index).
  [[nodiscard]] std::vector<StreamResult> serve(
      std::vector<NamedStream> streams);

  /// Convenience: name sequence i "s<i>" and serve it.
  [[nodiscard]] std::vector<StreamResult> serve_sequences(
      const std::vector<data::DriveSequence>& sequences);

  /// Input-index -> shard placement of the most recent serve() (empty
  /// before any).
  [[nodiscard]] std::vector<int> last_assignment() const;

  [[nodiscard]] int shards() const { return config_.shards; }
  [[nodiscard]] const ShardedServerConfig& config() const { return config_; }
  /// Fleet health right now: worst-of across every shard's live per-stream
  /// health (what the front door's /healthz renders).
  [[nodiscard]] obs::HealthState fleet_health() const;
  /// The front-door ops listener (nullptr unless config().ops_enabled).
  [[nodiscard]] obs::OpsServer* ops_server() const { return ops_.get(); }

 private:
  void install_ops_endpoints();
  /// Recompute the cross-shard pressure flag and push it to every shard's
  /// admission controller. Called from shard health callbacks.
  void update_fleet_pressure();

  const core::AdaptiveSystem* system_;
  ShardedServerConfig config_;
  /// Shard servers of the current/most recent serve() plus their stream
  /// names, guarded for the ops handler threads. Rebuilt per serve().
  mutable std::mutex shards_mutex_;
  std::vector<std::unique_ptr<StreamServer>> shard_servers_;
  std::vector<std::vector<std::string>> shard_stream_names_;
  std::vector<int> last_assignment_;
  std::unique_ptr<obs::OpsServer> ops_;
  std::atomic<std::uint64_t> serve_count_{0};
  std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
};

}  // namespace avd::runtime
