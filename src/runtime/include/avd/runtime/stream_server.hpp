// StreamServer: the concurrent multi-stream serving runtime.
//
// Runs the adaptive pipeline as a staged dataflow over bounded queues:
//
//   sources ── ingest ──> [control queue] ── control ──> [detect queue]
//              workers      (always Block)   workers       (configurable)
//                                                             │
//   results <── collector <── [report queue] <── detect ──────┘
//                               (Block)          workers
//
// * ingest   — pulls frames from N FrameSources (one worker per source at a
//              time) into the control queue.
// * control  — the sequential per-stream brain: lighting classification,
//              reconfiguration decisions, frame scheduling, via
//              core::AdaptiveSystem::StepSession. Frames of one stream are
//              processed strictly in index order (a per-stream reorder
//              buffer absorbs MPMC scheduling); different streams proceed
//              concurrently.
// * detect   — the heavy, embarrassingly parallel stage: pixel-level
//              detection through the const AdaptiveSystem::evaluate_frame.
//              This pool is the throughput knob.
// * report   — a single collector slots per-frame reports into per-stream
//              result vectors (order-insensitive by construction).
//
// Determinism: with the default Block policy every per-stream report is
// bit-identical to the sequential AdaptiveSystem::run() on the same
// sequence, whatever the worker counts — enforced by tests/runtime. With a
// drop policy on the detect queue, overflowing frames are not lost silently:
// they surface as vehicle_processed=false reports (the pedestrian engine,
// like the paper's static partition, is unaffected), exactly the shape of
// the paper's reconfiguration frame drop.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "avd/core/adaptive_system.hpp"
#include "avd/obs/flight_recorder.hpp"
#include "avd/obs/ops_server.hpp"
#include "avd/obs/sample_profiler.hpp"
#include "avd/obs/slo.hpp"
#include "avd/obs/trace_sampler.hpp"
#include "avd/runtime/admission.hpp"
#include "avd/runtime/bounded_queue.hpp"
#include "avd/runtime/frame_source.hpp"
#include "avd/runtime/stage_metrics.hpp"

namespace avd::runtime {

class ThreadPool;      // avd/runtime/thread_pool.hpp
class FaultInjector;   // avd/runtime/fault_injection.hpp

/// Retry policy for transient source failures: a source throwing
/// TransientSourceError is retried with exponential backoff; past
/// max_attempts total tries the stream ends there (StreamResult::source_failed)
/// instead of wedging the serve.
struct SourceRetryConfig {
  int max_attempts = 3;
  std::chrono::milliseconds backoff{1};
  double backoff_multiplier = 2.0;
};

/// Health monitoring attached to a serve() call: an always-on
/// obs::TelemetryExporter samples the global MetricsRegistry for the run's
/// duration and per-stream obs::SloMonitors evaluate each window
/// (frame-deadline misses vs the 20 ms / 50 fps budget, queue drop rate,
/// reconfiguration frame loss beyond the paper's one-frame cost).
struct StreamSloConfig {
  /// Off by default: monitoring costs one background sampling thread; the
  /// per-stream counters feeding it are recorded regardless.
  bool enabled = false;
  /// Per-frame end-to-end (ingest -> report) deadline. The paper's frame
  /// budget: one 50 fps frame.
  double frame_budget_ms = 20.0;
  /// Telemetry sampling period.
  std::chrono::milliseconds telemetry_period{20};
  /// Optional append-only JSONL sink for the telemetry samples.
  std::string telemetry_jsonl;
  /// Hysteresis of the per-stream health state machines.
  obs::SloConfig hysteresis;
  /// Thresholds for the standard rule set (obs::standard_stream_rules).
  double deadline_miss_degraded = 0.05;
  double deadline_miss_unhealthy = 0.25;
  double drop_rate_degraded = 0.01;
  double drop_rate_unhealthy = 0.10;
  /// Tail-based trace sampling (active whenever the tracer was enabled
  /// during serve(), independent of `enabled` above): every Nth frame chain
  /// is retained as a healthy baseline (0 = none), deadline misses and
  /// backpressure drops are always retained, everything else folds into
  /// per-span-name SpanStats.
  std::uint64_t trace_head_sample_every = 64;
  /// Bound of the sampler's retained-chain FIFO.
  std::size_t trace_max_retained = 256;
  /// Flight recorder: frame chains remembered per stream.
  std::size_t flight_frames_per_stream = 32;
  /// Directory for automatic flight-recorder bundles, written at the end of
  /// a serve() during which some stream transitioned to UNHEALTHY. Empty:
  /// the AVD_FLIGHT_DIR environment variable is consulted, and when that is
  /// unset too the bundle stays in memory (flight_recorder()->dump()).
  std::string flight_dump_dir;
};

/// The live introspection plane: an embedded obs::OpsServer owned by the
/// StreamServer for its whole lifetime (not per serve()), so a fleet
/// operator can scrape metrics, read health, pull traces and profile the
/// pipeline *while it serves*. Endpoints installed:
///
///   /metricsz       Prometheus text exposition (rollup() first)
///   /metricsz.json  registry snapshot as JSON
///   /healthz        fleet + per-stream SLO states; 503 when UNHEALTHY
///   /tracez         tail-sampler retained chains + per-span-name stats
///   /flightz        flight-recorder bundle, on demand
///   /statusz        uptime, build identity, serving configuration
///   /profilez       span-sampling profile over ?seconds=N (collapsed text;
///                   ?format=json for the structured report)
struct StreamOpsConfig {
  /// Off by default: the ops plane costs a listener socket plus
  /// 1 + handler_threads background threads.
  bool enabled = false;
  /// Listener shape. Default binds 127.0.0.1 on an ephemeral port — read it
  /// back via StreamServer::ops_server()->port().
  obs::OpsServerConfig server;
  /// Sampling shape of the /profilez profiler.
  obs::SampleProfilerConfig profiler;
  /// Upper bound on one /profilez window; larger ?seconds= values clamp.
  double max_profile_seconds = 10.0;
};

struct StreamServerConfig {
  /// Workers pumping sources into the control queue. More than one only
  /// helps when several streams are served (a source is never shared).
  int ingest_workers = 1;
  /// Workers running the per-stream control plane. Cheap stage; 1-2 suffice
  /// unless use_image_light_estimate renders frames during control.
  int control_workers = 1;
  /// Workers running pixel-level detection — the scaling knob.
  int detect_workers = 2;
  /// Capacity of every inter-stage queue.
  std::size_t queue_capacity = 16;
  /// Backpressure policy of the detect queue only; control and report
  /// queues always block (the control plane must see every frame).
  OverflowPolicy detect_policy = OverflowPolicy::Block;
  /// Milliseconds each detect task additionally occupies its worker,
  /// modelling a blocking dispatch to the PL accelerator (which the paper
  /// runs at one frame per 20 ms). 0 = off. Used by the scaling bench so
  /// serving concurrency is measurable independent of host CPU count.
  double simulated_accel_ms = 0.0;
  /// When set, the detect stage's workers run as cooperative tasks on this
  /// pool instead of dedicated std::threads — install the SAME pool as
  /// core::AdaptiveSystemConfig::sliding.pool so frame-level parallelism,
  /// the HOG scanner's level/band parallelism and the dark scan's blob
  /// gather + DBN batch scoring all share one set of OS threads
  /// instead of oversubscribing. The pool is caller-helping, so detect
  /// throughput never drops below one worker even on a zero-thread pool;
  /// per-stream results stay bit-identical either way. Not owned.
  ThreadPool* scan_pool = nullptr;
  /// Cross-stream detect batching: each detect worker gathers up to
  /// detect_batch_max queued frames from ALL streams and runs them as one
  /// indexed batch on `scan_pool`, so a sparse stream never strands detect
  /// cores behind a busy neighbour. Requires scan_pool (silently off
  /// without one). Per-stream results stay bit-identical to the sequential
  /// run (test-enforced): detection is a const per-frame evaluation, and
  /// coast-ledger tracker updates are serialised by frame index regardless
  /// of batch completion order. Level-2 coast frames are excluded from
  /// batches (they block on the ledger frontier) and handled in canonical
  /// (stream, index) order after the batch.
  bool cross_stream_batching = false;
  /// Largest detect batch one worker gathers (>= 1).
  int detect_batch_max = 8;
  /// Extra labels appended to every per-stream labeled series this server
  /// publishes — the sharded front door passes {{"shard","<m>"}} so one
  /// registry holds shard= x stream= leaves that rollup() folds into
  /// per-shard marginals and the fleet base. The stream= label is always
  /// added on top of these.
  obs::Labels metric_labels;
  /// Fleet-global values for the stream= label, indexed like the sources
  /// passed to serve(). Streams beyond the vector (or when it is empty)
  /// fall back to the local index rendered in decimal.
  std::vector<std::string> stream_names;
  /// Telemetry + SLO health monitoring for this server's serve() calls.
  StreamSloConfig slo;
  /// Embedded ops server + on-demand profiler (see StreamOpsConfig).
  StreamOpsConfig ops;
  /// The overload-control plane (see avd/runtime/admission.hpp): per-stream
  /// token-bucket admission and the SloMonitor-driven degradation ladder.
  /// admission.enabled is the master switch for health-driven level changes
  /// and the bucket; the ladder machinery itself also engages when the
  /// watchdog or a fault injector is installed (their forced levels need it).
  AdmissionConfig admission;
  /// Per-stream liveness watchdog: a stream making no pipeline progress for
  /// watchdog.timeout is pinned to DegradeLevel::Shed and its source is
  /// abandoned at the next ingest opportunity — a wedged stream becomes a
  /// degrade-level-3 event with StreamResult accounting, not a hung serve.
  /// (A source blocked *inside* next() forever can only be reaped once that
  /// call returns; the watchdog cannot cancel foreign blocking calls.)
  WatchdogConfig watchdog;
  /// Retry-with-backoff for sources throwing TransientSourceError.
  SourceRetryConfig source_retry;
  /// Refuse frames whose light level is non-finite at ingest (before an
  /// index is assigned, so the control plane's frame numbering stays dense);
  /// refused frames are counted per stream as garbage_frames.
  bool validate_frames = true;
  /// Deterministic fault plans for this server's serves (not owned; use one
  /// injector per serve — its counters and retry bookkeeping accumulate).
  /// Sources are wrapped with the plan's source faults, detect workers apply
  /// its slowdowns, and ForceDegrade specs pin the ladder per frame.
  FaultInjector* fault_injector = nullptr;
};

/// Everything one stream produced.
struct StreamResult {
  int stream = 0;
  core::AdaptiveRunReport report;
  /// Frames that overflowed the detect queue (drop policies only); they are
  /// still present in report.frames, marked vehicle_processed = false.
  std::uint64_t backpressure_drops = 0;
  /// Frames whose ingest -> report latency exceeded slo.frame_budget_ms.
  std::uint64_t deadline_misses = 0;
  /// Final health of the stream's SLO state machine (HEALTHY when
  /// monitoring was disabled) and every transition it went through.
  obs::HealthState health = obs::HealthState::Healthy;
  std::vector<obs::HealthTransition> health_transitions;
  /// Overload-control accounting (all zero when the ladder never engaged).
  /// Shed frames are still present in report.frames with
  /// vehicle_processed = false and degrade_level = 3.
  std::uint64_t shed_frames = 0;
  /// Level-2 frames served from the tracker instead of a scan.
  std::uint64_t coasted_frames = 0;
  /// Scans run at reduced fidelity (level 1, or the level-2 scan frames).
  std::uint64_t degraded_scans = 0;
  /// Frames refused at ingest validation (non-finite light level); they
  /// never received a frame index and are absent from report.frames.
  std::uint64_t garbage_frames = 0;
  /// Transient source failures that were retried successfully.
  std::uint64_t source_retries = 0;
  /// True when the source failed permanently (retries exhausted or a
  /// non-transient exception); the stream is truncated at that frame.
  bool source_failed = false;
  /// True when the liveness watchdog pinned this stream to Shed.
  bool watchdog_fired = false;
  /// Ladder level at the end of the serve and every transition taken.
  DegradeLevel degrade_level = DegradeLevel::Full;
  std::vector<DegradeTransition> degrade_transitions;
};

class StreamServer {
 public:
  /// Throws std::runtime_error when config.ops.enabled and the ops listener
  /// cannot bind (port taken, bad address) — a server that silently serves
  /// without its introspection plane is worse than one that fails fast.
  explicit StreamServer(const core::AdaptiveSystem& system,
                        StreamServerConfig config = {});
  /// Stops the ops server (first — its handler threads read members) and
  /// the profiler.
  ~StreamServer();
  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Serve every source to completion; results are indexed like `sources`.
  [[nodiscard]] std::vector<StreamResult> serve(
      std::vector<std::unique_ptr<FrameSource>> sources);

  /// Convenience: one SequenceFrameSource per sequence.
  [[nodiscard]] std::vector<StreamResult> serve_sequences(
      const std::vector<data::DriveSequence>& sequences);

  /// Per-stage metrics accumulated across serve() calls.
  [[nodiscard]] const RuntimeMetrics& metrics() const { return metrics_; }
  /// Worker lifecycle + stream completion events (wall-clock ns timestamps),
  /// exportable with soc::write_chrome_trace alongside the metrics events.
  [[nodiscard]] const soc::EventLog& server_log() const { return log_; }
  [[nodiscard]] const StreamServerConfig& config() const { return config_; }

  /// Invoked (from the telemetry thread) on every per-stream health
  /// transition while serve() runs; requires config().slo.enabled.
  using HealthCallback =
      std::function<void(int stream, const obs::HealthTransition&)>;
  void set_health_callback(HealthCallback cb) { health_callback_ = std::move(cb); }

  /// Per-stream health after the most recent serve() (empty before any).
  [[nodiscard]] const std::vector<obs::HealthState>& stream_health() const {
    return stream_health_;
  }
  /// Live per-stream health: mid-serve the SLO monitors answer with their
  /// current state-machine position; between serves (or with monitoring
  /// disabled) the last serve's verdicts answer. This is what /healthz
  /// renders, exposed directly so a fronting aggregator (the sharded
  /// server) can fold shard health without an HTTP hop.
  [[nodiscard]] std::vector<obs::HealthState> live_stream_health() const;
  /// Worst-of rollup of stream_health(): one saturated stream is visible
  /// here no matter how many healthy neighbours it has.
  [[nodiscard]] obs::HealthState fleet_health() const { return fleet_health_; }

  /// Tail sampler fed by the most recent serve() (nullptr before any).
  /// Retained chains and SpanStats cover that serve's frames.
  [[nodiscard]] obs::TraceSampler* trace_sampler() const {
    return sampler_.get();
  }
  /// Flight recorder fed by the most recent serve() (nullptr before any):
  /// last-N frame chains per stream, telemetry rows and SLO transitions,
  /// dumpable on demand via obs::FlightRecorder::dump().
  [[nodiscard]] obs::FlightRecorder* flight_recorder() const {
    return recorder_.get();
  }
  /// Path of the bundle the most recent serve() wrote on an UNHEALTHY
  /// transition; empty when none was written.
  [[nodiscard]] const std::string& last_flight_bundle_path() const {
    return last_flight_bundle_path_;
  }

  /// The admission controller of the most recent serve() (nullptr before
  /// any, or when the ladder never engaged). Live during a serve: /healthz
  /// and /statusz read current levels and stats from it.
  [[nodiscard]] AdmissionController* admission() const {
    return admission_.get();
  }

  /// The embedded ops listener (nullptr unless config().ops.enabled).
  /// Running from construction to destruction; its port() is where
  /// /metricsz etc. answer.
  [[nodiscard]] obs::OpsServer* ops_server() const { return ops_.get(); }
  /// The /profilez profiler (nullptr unless config().ops.enabled). Usable
  /// directly too: profiler()->run_for(...) during a serve() on another
  /// thread.
  [[nodiscard]] obs::SampleProfiler* profiler() const {
    return profiler_.get();
  }

 private:
  void install_ops_endpoints();

  const core::AdaptiveSystem* system_;
  StreamServerConfig config_;
  RuntimeMetrics metrics_;
  soc::EventLog log_;
  HealthCallback health_callback_;
  /// Guards the swap of the per-serve observability objects (sampler_,
  /// recorder_, monitors_, stream_health_, fleet_health_) between serve()
  /// and the ops handler threads. The objects themselves are internally
  /// thread-safe; only the pointers/containers need the lock.
  mutable std::mutex obs_mutex_;
  std::vector<obs::HealthState> stream_health_;
  obs::HealthState fleet_health_ = obs::HealthState::Healthy;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<obs::TraceSampler> sampler_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::vector<std::unique_ptr<obs::SloMonitor>> monitors_;
  std::unique_ptr<obs::SampleProfiler> profiler_;
  std::unique_ptr<obs::OpsServer> ops_;
  std::string last_flight_bundle_path_;
  std::atomic<std::uint64_t> serve_count_{0};  ///< bundle names + /statusz
};

}  // namespace avd::runtime
