// StreamServer: the concurrent multi-stream serving runtime.
//
// Runs the adaptive pipeline as a staged dataflow over bounded queues:
//
//   sources ── ingest ──> [control queue] ── control ──> [detect queue]
//              workers      (always Block)   workers       (configurable)
//                                                             │
//   results <── collector <── [report queue] <── detect ──────┘
//                               (Block)          workers
//
// * ingest   — pulls frames from N FrameSources (one worker per source at a
//              time) into the control queue.
// * control  — the sequential per-stream brain: lighting classification,
//              reconfiguration decisions, frame scheduling, via
//              core::AdaptiveSystem::StepSession. Frames of one stream are
//              processed strictly in index order (a per-stream reorder
//              buffer absorbs MPMC scheduling); different streams proceed
//              concurrently.
// * detect   — the heavy, embarrassingly parallel stage: pixel-level
//              detection through the const AdaptiveSystem::evaluate_frame.
//              This pool is the throughput knob.
// * report   — a single collector slots per-frame reports into per-stream
//              result vectors (order-insensitive by construction).
//
// Determinism: with the default Block policy every per-stream report is
// bit-identical to the sequential AdaptiveSystem::run() on the same
// sequence, whatever the worker counts — enforced by tests/runtime. With a
// drop policy on the detect queue, overflowing frames are not lost silently:
// they surface as vehicle_processed=false reports (the pedestrian engine,
// like the paper's static partition, is unaffected), exactly the shape of
// the paper's reconfiguration frame drop.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "avd/core/adaptive_system.hpp"
#include "avd/runtime/bounded_queue.hpp"
#include "avd/runtime/frame_source.hpp"
#include "avd/runtime/stage_metrics.hpp"

namespace avd::runtime {

struct StreamServerConfig {
  /// Workers pumping sources into the control queue. More than one only
  /// helps when several streams are served (a source is never shared).
  int ingest_workers = 1;
  /// Workers running the per-stream control plane. Cheap stage; 1-2 suffice
  /// unless use_image_light_estimate renders frames during control.
  int control_workers = 1;
  /// Workers running pixel-level detection — the scaling knob.
  int detect_workers = 2;
  /// Capacity of every inter-stage queue.
  std::size_t queue_capacity = 16;
  /// Backpressure policy of the detect queue only; control and report
  /// queues always block (the control plane must see every frame).
  OverflowPolicy detect_policy = OverflowPolicy::Block;
  /// Milliseconds each detect task additionally occupies its worker,
  /// modelling a blocking dispatch to the PL accelerator (which the paper
  /// runs at one frame per 20 ms). 0 = off. Used by the scaling bench so
  /// serving concurrency is measurable independent of host CPU count.
  double simulated_accel_ms = 0.0;
};

/// Everything one stream produced.
struct StreamResult {
  int stream = 0;
  core::AdaptiveRunReport report;
  /// Frames that overflowed the detect queue (drop policies only); they are
  /// still present in report.frames, marked vehicle_processed = false.
  std::uint64_t backpressure_drops = 0;
};

class StreamServer {
 public:
  explicit StreamServer(const core::AdaptiveSystem& system,
                        StreamServerConfig config = {});

  /// Serve every source to completion; results are indexed like `sources`.
  [[nodiscard]] std::vector<StreamResult> serve(
      std::vector<std::unique_ptr<FrameSource>> sources);

  /// Convenience: one SequenceFrameSource per sequence.
  [[nodiscard]] std::vector<StreamResult> serve_sequences(
      const std::vector<data::DriveSequence>& sequences);

  /// Per-stage metrics accumulated across serve() calls.
  [[nodiscard]] const RuntimeMetrics& metrics() const { return metrics_; }
  /// Worker lifecycle + stream completion events (wall-clock ns timestamps),
  /// exportable with soc::write_chrome_trace alongside the metrics events.
  [[nodiscard]] const soc::EventLog& server_log() const { return log_; }
  [[nodiscard]] const StreamServerConfig& config() const { return config_; }

 private:
  const core::AdaptiveSystem* system_;
  StreamServerConfig config_;
  RuntimeMetrics metrics_;
  soc::EventLog log_;
};

}  // namespace avd::runtime
