// Deterministic fault injection for the serving runtime.
//
// A FaultPlan is a list of (kind, stream, frame range, magnitude) specs; a
// FaultInjector executes the plan against a serve() when installed via
// StreamServerConfig::fault_injector:
//
//   SourceStall    src.next() sleeps `magnitude` ms before each frame in the
//                  range — a camera hiccup / bus stall.
//   SourceEof      the source ends early at `from_frame`.
//   SourceError    src.next() throws TransientSourceError at source position
//                  `from_frame`, for the first `count` attempts — exercises
//                  the ingest retry-with-backoff path.
//   GarbageFrame   frames in the range are corrupted (non-finite light
//                  level, chosen by the plan seed) — ingest validation must
//                  refuse them before they poison the control plane.
//   DetectSlowdown detect workers sleep an extra `magnitude` ms for each of
//                  the stream's frames in the range — a slow accelerator.
//   ForceDegrade   pins the stream's degradation ladder to level
//                  `magnitude` for frames in the range. Because the pin is
//                  keyed on the control-plane frame index, the resulting
//                  transitions and detections are a pure function of
//                  (plan, sequence) — this is what makes ladder behaviour
//                  testable bit-for-bit, independent of wall-clock health.
//
// Everything is deterministic given (plan, seed): no internal clocks or
// global RNG. `stream = -1` applies a spec to every stream. Use one injector
// per serve(); its counters and retry bookkeeping accumulate.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "avd/runtime/frame_source.hpp"

namespace avd::runtime {

/// Thrown by a fault-wrapped source for SourceError faults; the ingest
/// stage's retry-with-backoff treats exactly this type as transient.
class TransientSourceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultKind : std::uint8_t {
  SourceStall = 0,
  SourceEof,
  SourceError,
  GarbageFrame,
  DetectSlowdown,
  ForceDegrade,
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::SourceStall;
  int stream = -1;     ///< target stream; -1 = every stream
  int from_frame = 0;  ///< first affected frame (source position or, for
                       ///< DetectSlowdown/ForceDegrade, pipeline index)
  int count = 1;       ///< frames affected (SourceError: failing attempts)
  double magnitude = 0.0;  ///< ms to stall/slow down; level for ForceDegrade
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;

  /// A seed-derived pseudorandom mix of every fault kind except SourceEof —
  /// the chaos lane's diet. Same (seed, n_streams, n_frames) → same plan.
  [[nodiscard]] static FaultPlan chaos(std::uint64_t seed, int n_streams,
                                       int n_frames);
};

/// Executes a FaultPlan. Thread-safe: wrapped sources run on ingest workers,
/// the per-frame queries on control/detect workers.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Decorate `inner` with the plan's source-side faults for `stream`.
  /// Pass-through (still wrapped, zero-cost) when no spec targets it.
  [[nodiscard]] std::unique_ptr<FrameSource> wrap(
      int stream, std::unique_ptr<FrameSource> inner);

  /// Extra detect-stage latency for this frame, in ms (0 = none).
  [[nodiscard]] double detect_slowdown_ms(int stream, int frame) const;

  /// Ladder level a ForceDegrade spec pins this frame to, if any.
  [[nodiscard]] std::optional<int> forced_degrade_level(int stream,
                                                        int frame) const;

  struct Counters {
    std::uint64_t stalls = 0;           ///< frames delayed by SourceStall
    std::uint64_t eofs = 0;             ///< streams cut short by SourceEof
    std::uint64_t errors = 0;           ///< TransientSourceError throws
    std::uint64_t garbage = 0;          ///< frames corrupted
    std::uint64_t slowdown_frames = 0;  ///< detect tasks slowed down
  };
  [[nodiscard]] Counters counters() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  friend class FaultySource;
  FaultPlan plan_;
  mutable std::mutex mutex_;  ///< error-attempt bookkeeping + counters
  mutable Counters counters_;
  /// Remaining failing attempts per SourceError spec (parallel to
  /// plan_.faults; 0 for other kinds).
  std::vector<int> error_attempts_left_;
};

}  // namespace avd::runtime
