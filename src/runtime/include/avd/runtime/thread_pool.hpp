// A small reusable thread pool for data-parallel batches.
//
// This is the ONE pool the hot path shares: the block-grid scanner
// (det::detect_multiscale_multi) runs its pyramid levels and row bands on it,
// and runtime::StreamServer runs its detect workers on the same pool
// (StreamServerConfig::scan_pool) instead of growing a second ad-hoc pool —
// the process's scan thread budget is bounded by one number.
//
// Design: cooperative batches. run_indexed(n, fn) publishes a batch of n
// index-addressed tasks; pool workers AND the calling thread claim indices
// from it until the batch is exhausted, then the caller waits for stragglers.
// Because the caller always participates, a batch makes progress even when
// every pool thread is busy or parked inside another batch's task — nested
// run_indexed calls (a scan issued from inside a pooled detect worker) and
// concurrent callers (several detect workers scanning at once) are both
// deadlock-free by construction. Determinism is the caller's concern: tasks
// run concurrently in claim order, so callers must merge results by index,
// never by completion order (the scanner does exactly that).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace avd::runtime {

class ThreadPool {
 public:
  /// `threads` pool workers are spawned immediately. 0 is allowed: every
  /// batch then runs entirely on its calling thread (useful for forcing the
  /// sequential path without changing call sites).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int thread_count() const {
    return static_cast<int>(threads_.size());
  }

  /// Run fn(0) .. fn(count-1) to completion across the pool and the calling
  /// thread. Returns once every index has finished. If any task throws, the
  /// batch still runs to completion and the first exception is rethrown on
  /// the calling thread. Reentrant: fn may itself call run_indexed on this
  /// pool.
  void run_indexed(int count, const std::function<void(int)>& fn);

 private:
  /// One published batch: a shared claim counter plus a completion latch.
  struct Batch {
    const std::function<void(int)>* fn = nullptr;
    int count = 0;
    std::atomic<int> next{0};       ///< next index to claim
    std::atomic<int> completed{0};  ///< tasks finished (thrown ones included)
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;  ///< first failure; guarded by done_mutex
  };

  /// Claim and run one task of `batch`; false when the batch is exhausted.
  static bool run_one(Batch& batch);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Batch>> batches_;  ///< FIFO of open batches
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace avd::runtime
