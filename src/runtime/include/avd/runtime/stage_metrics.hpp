// Per-stage runtime instrumentation: latency histograms, throughput and
// drop counters, queue-depth high-water marks.
//
// Recording is lock-free (relaxed atomic adds into log-linear histogram
// bins, see obs::Histogram) so worker threads pay a few nanoseconds per
// sample — the runtime equivalent of the free-running ARM event counters
// the paper reads. The snapshot/percentile side is approximate (bins are
// log-spaced with 8 sub-buckets per octave, ≤ ~6 % relative error) and
// meant to be taken once workers have quiesced.
//
// Export rides the shared observability layer: publish_runtime_metrics()
// copies the stage stats into the obs::MetricsRegistry (JSON / Prometheus
// exposition), and append_metrics_events() turns them into EventLog events
// which soc::write_chrome_trace renders on the Perfetto timeline.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "avd/obs/metrics.hpp"
#include "avd/soc/event_log.hpp"

namespace avd::runtime {

/// The runtime's latency histogram is the shared observability histogram;
/// the alias keeps the original avd::runtime API spelling.
using LatencyHistogram = obs::Histogram;

/// Read-only view of one stage, safe to copy around and serialise.
///
/// Contract: a snapshot is only exact once the stage's writers have
/// quiesced (workers joined). A snapshot taken mid-run is safe — every read
/// is atomic and percentiles are computed from one consistent copy of the
/// histogram bins — but count/mean/percentiles may mutually disagree by the
/// samples that were in flight when it was taken.
struct StageSnapshot {
  std::string stage;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::size_t queue_high_water = 0;
  std::uint64_t count = 0;  ///< latency samples
  double mean_ns = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Counters for one pipeline stage. All mutators are thread-safe and cheap.
class StageMetrics {
 public:
  explicit StageMetrics(std::string name) : name_(std::move(name)) {}

  void record_latency(std::chrono::nanoseconds d) { latency_.record(d); }
  void add_processed(std::uint64_t n = 1) {
    processed_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_dropped(std::uint64_t n = 1) {
    dropped_.fetch_add(n, std::memory_order_relaxed);
  }
  void update_queue_high_water(std::size_t depth) {
    std::size_t cur = queue_high_water_.load(std::memory_order_relaxed);
    while (depth > cur && !queue_high_water_.compare_exchange_weak(
                              cur, depth, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const LatencyHistogram& latency() const { return latency_; }
  [[nodiscard]] std::uint64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] StageSnapshot snapshot() const;

 private:
  std::string name_;
  LatencyHistogram latency_;
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> queue_high_water_{0};
};

/// The four stages of the serving pipeline, in dataflow order.
struct RuntimeMetrics {
  StageMetrics ingest{"ingest"};
  StageMetrics control{"control"};
  StageMetrics detect{"detect"};
  StageMetrics report{"report"};

  [[nodiscard]] std::vector<StageSnapshot> snapshot() const;
};

/// Append one summary event per stage to `log` (source "runtime/<stage>"),
/// stamped at `at`, so the metrics ride soc::write_chrome_trace unchanged.
void append_metrics_events(const RuntimeMetrics& metrics, soc::TimePoint at,
                           soc::EventLog& log);

/// Publish the current stage stats into `registry` under
/// "<prefix>.<stage>.processed|dropped|queue_high_water" (gauges/counters
/// would double-count across calls, so everything is set as gauges) plus
/// "<prefix>.<stage>.latency_{p50,p95,p99,max}_ns". Call once writers have
/// quiesced; repeated calls overwrite.
void publish_runtime_metrics(const RuntimeMetrics& metrics,
                             obs::MetricsRegistry& registry,
                             const std::string& prefix = "runtime");

/// Compact JSON: {"stages":[{"stage":"detect","processed":...,...},...]}.
[[nodiscard]] std::string metrics_to_json(const RuntimeMetrics& metrics);

}  // namespace avd::runtime
