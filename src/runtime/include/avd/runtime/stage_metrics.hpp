// Per-stage runtime instrumentation: latency histograms, throughput and
// drop counters, queue-depth high-water marks.
//
// Recording is lock-free (relaxed atomic adds into log-linear histogram
// bins) so worker threads pay a few nanoseconds per sample — the runtime
// equivalent of the free-running ARM event counters the paper reads. The
// snapshot/percentile side is approximate (bins are log-spaced with 8
// sub-buckets per octave, ≤ ~6 % relative error) and meant to be taken once
// workers have quiesced.
//
// Export rides the existing soc trace path: metrics become EventLog events
// which soc::write_chrome_trace turns into a Perfetto-loadable JSON file,
// plus a compact JSON summary for benches to parse.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "avd/soc/event_log.hpp"

namespace avd::runtime {

/// Lock-free log-linear latency histogram over nanosecond samples.
/// Values 0..15 get exact unit bins; above that, 8 sub-buckets per
/// power-of-two octave.
class LatencyHistogram {
 public:
  static constexpr int kLinearBins = 16;
  static constexpr int kSubBuckets = 8;
  static constexpr int kOctaves = 60;  // covers > 10^18 ns
  static constexpr int kBins = kLinearBins + kSubBuckets * kOctaves;

  void record_ns(std::uint64_t ns) {
    bins_[bin_index(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    update_max(max_ns_, ns);
  }
  void record(std::chrono::nanoseconds d) {
    record_ns(d.count() < 0 ? 0u : static_cast<std::uint64_t>(d.count()));
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean_ns() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Approximate p-quantile (p in [0,1]) as the representative value of the
  /// first bin whose cumulative count reaches p * total. 0 when empty.
  [[nodiscard]] std::uint64_t percentile_ns(double p) const;

  [[nodiscard]] static int bin_index(std::uint64_t ns);
  /// Midpoint of the value range bin `index` covers.
  [[nodiscard]] static std::uint64_t bin_value(int index);

 private:
  static void update_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBins> bins_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Read-only view of one stage, safe to copy around and serialise.
struct StageSnapshot {
  std::string stage;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::size_t queue_high_water = 0;
  std::uint64_t count = 0;  ///< latency samples
  double mean_ns = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Counters for one pipeline stage. All mutators are thread-safe and cheap.
class StageMetrics {
 public:
  explicit StageMetrics(std::string name) : name_(std::move(name)) {}

  void record_latency(std::chrono::nanoseconds d) { latency_.record(d); }
  void add_processed(std::uint64_t n = 1) {
    processed_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_dropped(std::uint64_t n = 1) {
    dropped_.fetch_add(n, std::memory_order_relaxed);
  }
  void update_queue_high_water(std::size_t depth) {
    std::size_t cur = queue_high_water_.load(std::memory_order_relaxed);
    while (depth > cur && !queue_high_water_.compare_exchange_weak(
                              cur, depth, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const LatencyHistogram& latency() const { return latency_; }
  [[nodiscard]] std::uint64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] StageSnapshot snapshot() const;

 private:
  std::string name_;
  LatencyHistogram latency_;
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> queue_high_water_{0};
};

/// The four stages of the serving pipeline, in dataflow order.
struct RuntimeMetrics {
  StageMetrics ingest{"ingest"};
  StageMetrics control{"control"};
  StageMetrics detect{"detect"};
  StageMetrics report{"report"};

  [[nodiscard]] std::vector<StageSnapshot> snapshot() const;
};

/// Append one summary event per stage to `log` (source "runtime/<stage>"),
/// stamped at `at`, so the metrics ride soc::write_chrome_trace unchanged.
void append_metrics_events(const RuntimeMetrics& metrics, soc::TimePoint at,
                           soc::EventLog& log);

/// Compact JSON: {"stages":[{"stage":"detect","processed":...,...},...]}.
[[nodiscard]] std::string metrics_to_json(const RuntimeMetrics& metrics);

}  // namespace avd::runtime
