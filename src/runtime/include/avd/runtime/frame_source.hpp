// Frame sources: where the serving runtime's streams come from.
//
// A FrameSource is one camera's worth of frames, pulled in order by a single
// ingest worker. The stock implementation adapts data::DriveSequence so
// every scripted sequence in the repo (canonical_drive, the bench scripts)
// plugs into the StreamServer unchanged; a live deployment would implement
// the same interface over a capture device.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "avd/datasets/sequence.hpp"
#include "avd/obs/trace.hpp"

namespace avd::runtime {

/// One frame travelling through the pipeline, tagged with its origin.
struct FrameTask {
  int stream = 0;  ///< index of the source within the serve() call
  int index = 0;   ///< frame index within the stream (dense, from 0)
  data::SequenceFrame meta;  ///< ground truth + sensor reading
  /// Causal identity of this frame's journey; each stage re-installs it
  /// (obs::TraceScope) and re-parents it on its own span, so the frame's
  /// spans chain across worker threads. Zero when tracing is disabled.
  obs::TraceContext trace;
  /// Tracer-timebase nanoseconds when the frame entered the pipeline;
  /// report-side latency (and the 20 ms deadline check) measures from here.
  std::uint64_t ingest_ns = 0;
};

/// A pull-based stream of frames. next() is called by one ingest worker at a
/// time (the StreamServer never shares a source between workers), so
/// implementations need no internal locking.
class FrameSource {
 public:
  virtual ~FrameSource() = default;
  /// Frames remaining, if known in advance (-1 = unknown).
  [[nodiscard]] virtual int frame_count() const { return -1; }
  /// The next frame's metadata, or nullopt when the stream ends.
  [[nodiscard]] virtual std::optional<data::SequenceFrame> next() = 0;
};

/// Adapter over a scripted drive sequence.
class SequenceFrameSource final : public FrameSource {
 public:
  explicit SequenceFrameSource(data::DriveSequence sequence)
      : sequence_(std::move(sequence)) {}

  [[nodiscard]] int frame_count() const override {
    return sequence_.frame_count();
  }

  [[nodiscard]] std::optional<data::SequenceFrame> next() override {
    if (next_ >= sequence_.frame_count()) return std::nullopt;
    return sequence_.frame(next_++);
  }

  [[nodiscard]] const data::DriveSequence& sequence() const {
    return sequence_;
  }

 private:
  data::DriveSequence sequence_;
  int next_ = 0;
};

/// Convenience: wrap a spec/sequence as a source pointer.
[[nodiscard]] inline std::unique_ptr<FrameSource> make_source(
    data::DriveSequence sequence) {
  return std::make_unique<SequenceFrameSource>(std::move(sequence));
}
[[nodiscard]] inline std::unique_ptr<FrameSource> make_source(
    const data::SequenceSpec& spec) {
  return std::make_unique<SequenceFrameSource>(data::DriveSequence(spec));
}

}  // namespace avd::runtime
