#include "avd/runtime/stream_server.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "avd/obs/build_info.hpp"
#include "avd/obs/frame_trace.hpp"
#include "avd/obs/json.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/telemetry.hpp"
#include "avd/obs/trace.hpp"
#include "avd/runtime/fault_injection.hpp"
#include "avd/runtime/thread_pool.hpp"

namespace avd::runtime {
namespace {

using Clock = std::chrono::steady_clock;

/// A frame after the control plane, waiting for pixel-level detection.
struct DetectTask {
  int stream = 0;
  core::ControlStep step;
  data::SequenceFrame meta;
  obs::TraceContext trace;      ///< parented on the control span
  std::uint64_t ingest_ns = 0;  ///< carried from the FrameTask
  AdmissionDecision decision;   ///< ladder verdict (defaults: full fidelity)
};

/// A finished per-frame report heading to the collector.
struct ReportTask {
  int stream = 0;
  core::AdaptiveFrameReport report;
  obs::TraceContext trace;      ///< parented on the detect span
  std::uint64_t ingest_ns = 0;  ///< frame entry time (latency measures here)
  bool backpressure_dropped = false;
  bool shed = false;            ///< refused by admission (never ran detect)
};

/// One frame's entry in the coast ledger (below): either the detections a
/// scan produced, or a placeholder for a frame the tracker must coast.
struct CoastEntry {
  bool coast = false;
  std::vector<det::Detection> dets;  ///< scan output (coast = false)
};

/// Mutable per-stream state: the sequential control-plane session plus the
/// reorder buffer that serialises MPMC-scheduled frames back into index
/// order. Guarded by its own mutex; different streams never contend.
struct StreamState {
  StreamState(const core::AdaptiveSystem& system,
              const det::TrackerConfig& tracker_config)
      : session(system.begin_session()), tracker(tracker_config) {}

  std::mutex mutex;
  core::AdaptiveSystem::StepSession session;
  int next_index = 0;
  std::map<int, FrameTask> pending;  // out-of-order frames (trace rides along)
  std::atomic<std::uint64_t> backpressure_drops{0};
  std::atomic<std::uint64_t> deadline_misses{0};
  std::atomic<int> frames_ingested{0};
  // Fault / overload accounting (see StreamResult).
  std::atomic<std::uint64_t> garbage_frames{0};
  std::atomic<std::uint64_t> source_retries{0};
  std::atomic<bool> source_failed{false};
  std::atomic<bool> watchdog_fired{false};
  // Liveness watchdog inputs: tracer-ns of the last pipeline progress on
  // this stream, and completion markers so a finished stream is never fired.
  std::atomic<std::uint64_t> last_progress_ns{0};
  std::atomic<bool> ingest_started{false};
  std::atomic<bool> ingest_done{false};
  std::atomic<int> collected{0};
  // --- the coast ledger (ladder level 2) -------------------------------
  // The IouTracker must see every frame of the stream exactly once, in
  // index order, with the frame's scan detections (or an empty update for
  // coasted/shed/dropped frames). Detect workers finish frames out of
  // order, so entries park in `coast_pending` until the frontier
  // (`coast_done`) reaches them; advancing the frontier feeds the tracker
  // and materialises coast_results for coast frames. coast_mutex is a leaf
  // lock: nothing is acquired while holding it, so the control-stage edge
  // state.mutex -> coast_mutex (of any stream) cannot deadlock.
  std::mutex coast_mutex;
  std::condition_variable coast_cv;
  int coast_done = -1;  ///< highest frame index fed to the tracker
  std::map<int, CoastEntry> coast_pending;
  std::map<int, std::vector<det::Detection>> coast_results;
  det::IouTracker tracker;
};

/// The per-stream labeled series the SLO rules read
/// (obs::standard_stream_rules_labeled with the same stream id). Resolved
/// once per serve(); collector-thread only.
struct StreamCounters {
  obs::Counter* frames = nullptr;
  obs::Counter* deadline_miss = nullptr;
  obs::Counter* backpressure_drops = nullptr;
  obs::Counter* reconfig_drops = nullptr;
  obs::Counter* reconfigs = nullptr;
  obs::Histogram* latency = nullptr;  ///< runtime.frame.latency_ns{stream=N}
  // Overload-control series (incremented only when the ladder is active).
  obs::Counter* shed = nullptr;
  obs::Counter* coasted = nullptr;
  obs::Counter* degraded_scans = nullptr;
  obs::Counter* garbage = nullptr;
  obs::Counter* source_retries = nullptr;
  obs::Gauge* degrade_level = nullptr;  ///< runtime.degrade.level{stream=N}
};

std::string stream_entity(int stream) {
  return "stream" + std::to_string(stream);
}

}  // namespace

StreamServer::StreamServer(const core::AdaptiveSystem& system,
                           StreamServerConfig config)
    : system_(&system), config_(config) {
  config_.ingest_workers = std::max(1, config_.ingest_workers);
  config_.control_workers = std::max(1, config_.control_workers);
  config_.detect_workers = std::max(1, config_.detect_workers);
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.ops.enabled) {
    if (!(config_.ops.max_profile_seconds > 0.0))
      config_.ops.max_profile_seconds = 10.0;
    profiler_ = std::make_unique<obs::SampleProfiler>(config_.ops.profiler);
    ops_ = std::make_unique<obs::OpsServer>(config_.ops.server);
    install_ops_endpoints();
    if (!ops_->start())
      throw std::runtime_error(
          "StreamServer: ops server failed to bind " +
          config_.ops.server.bind_address + ":" +
          std::to_string(config_.ops.server.port));
  }
}

StreamServer::~StreamServer() {
  // Ops handler threads read the members below; take them down first. The
  // profiler's timer thread only touches the (global) tracer, but a window
  // left running would outlive its owner.
  if (ops_) ops_->stop();
  if (profiler_) profiler_->stop();
}

std::vector<StreamResult> StreamServer::serve_sequences(
    const std::vector<data::DriveSequence>& sequences) {
  std::vector<std::unique_ptr<FrameSource>> sources;
  sources.reserve(sequences.size());
  for (const data::DriveSequence& s : sequences) sources.push_back(make_source(s));
  return serve(std::move(sources));
}

std::vector<StreamResult> StreamServer::serve(
    std::vector<std::unique_ptr<FrameSource>> sources) {
  const int n_streams = static_cast<int>(sources.size());
  std::vector<StreamResult> results(sources.size());
  for (int s = 0; s < n_streams; ++s)
    results[static_cast<std::size_t>(s)].stream = s;
  {
    std::lock_guard<std::mutex> lock(obs_mutex_);
    stream_health_.assign(sources.size(), obs::HealthState::Healthy);
    fleet_health_ = obs::HealthState::Healthy;
  }
  if (n_streams == 0) return results;

  const Clock::time_point epoch = Clock::now();
  const auto now_tp = [&epoch] {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - epoch)
                        .count();
    return soc::TimePoint{static_cast<std::uint64_t>(ns) * 1000ull};
  };

  obs::Tracer& tracer = obs::Tracer::global();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::uint64_t deadline_ns = static_cast<std::uint64_t>(
      std::max(0.0, config_.slo.frame_budget_ms) * 1e6);

  // Per-stream metrics are labeled series (stream=<id>); the fleet view
  // under the plain base names ("runtime.frames", "runtime.frame.latency_ns")
  // is produced by MetricsRegistry::rollup() — per telemetry sample while
  // serving and unconditionally before serve() returns.
  // --- the overload-control plane --------------------------------------
  // Ladder machinery engages when admission control is on, when the
  // watchdog needs a lever to pull, or when a fault plan may pin levels.
  // When inactive (the default) every ladder branch below is skipped and
  // the pipeline is byte-for-byte the pre-ladder one.
  FaultInjector* injector = config_.fault_injector;
  const bool ladder_active =
      config_.admission.enabled || config_.watchdog.enabled ||
      injector != nullptr;
  if (injector != nullptr)
    for (int s = 0; s < n_streams; ++s)
      sources[static_cast<std::size_t>(s)] = injector->wrap(
          s, std::move(sources[static_cast<std::size_t>(s)]));

  // Label set of stream s: the configured extra labels (shard= from the
  // sharded front door) plus stream=<global name> (the local index unless
  // stream_names says otherwise). labeled_name() sorts keys, so insertion
  // order here is irrelevant.
  const auto stream_labels = [this](int s) {
    obs::Labels labels = config_.metric_labels;
    const auto us = static_cast<std::size_t>(s);
    labels.emplace_back("stream", us < config_.stream_names.size()
                                      ? config_.stream_names[us]
                                      : std::to_string(s));
    return labels;
  };

  std::vector<std::unique_ptr<StreamState>> streams;
  std::vector<StreamCounters> counters(sources.size());
  streams.reserve(sources.size());
  const std::uint64_t serve_start_ns = tracer.now_ns();
  for (int s = 0; s < n_streams; ++s) {
    streams.push_back(std::make_unique<StreamState>(
        *system_, config_.admission.ladder.coast_tracker));
    streams.back()->last_progress_ns.store(serve_start_ns,
                                           std::memory_order_relaxed);
    const obs::Labels labels = stream_labels(s);
    StreamCounters& c = counters[static_cast<std::size_t>(s)];
    c.frames = &registry.counter("runtime.frames", labels);
    c.deadline_miss = &registry.counter("runtime.deadline_miss", labels);
    c.backpressure_drops =
        &registry.counter("runtime.backpressure_drops", labels);
    c.reconfig_drops = &registry.counter("runtime.reconfig_drops", labels);
    c.reconfigs = &registry.counter("runtime.reconfigs", labels);
    c.latency = &registry.histogram("runtime.frame.latency_ns", labels);
    if (ladder_active) {
      c.shed = &registry.counter("runtime.shed", labels);
      c.coasted = &registry.counter("runtime.coasted", labels);
      c.degraded_scans = &registry.counter("runtime.degraded_scans", labels);
      c.garbage = &registry.counter("runtime.garbage_frames", labels);
      c.source_retries = &registry.counter("runtime.source_retries", labels);
      c.degrade_level = &registry.gauge("runtime.degrade.level", labels);
      c.degrade_level->set(0.0);
    }
  }
  // Latency of admitted (non-shed) frames only — the number the overload
  // SLO protects: shedding keeps THIS under the budget. A shard server
  // (metric_labels set) records the labeled series instead and rollup()
  // derives the fleet base; a standalone server writes the base directly.
  obs::Histogram& admitted_latency =
      config_.metric_labels.empty()
          ? registry.histogram("runtime.frame.admitted_latency_ns")
          : registry.histogram("runtime.frame.admitted_latency_ns",
                               config_.metric_labels);

  // Level-1/2 scans use a coarser pyramid derived from the system's params.
  det::SlidingWindowParams degraded_sliding = system_->config().sliding;
  degraded_sliding.stride_cells =
      std::max(1, degraded_sliding.stride_cells) *
      std::max(1, config_.admission.ladder.coarse_stride_multiplier);
  degraded_sliding.max_levels =
      std::min(degraded_sliding.max_levels,
               std::max(1, config_.admission.ladder.coarse_max_levels));

  AdmissionController* admission = nullptr;
  if (ladder_active) {
    auto controller = std::make_unique<AdmissionController>(
        n_streams, config_.admission);
    admission = controller.get();
    // Publish to the ops plane before workers start: /healthz and /statusz
    // read levels and stats from it live.
    std::lock_guard<std::mutex> lock(obs_mutex_);
    admission_ = std::move(controller);
  } else {
    std::lock_guard<std::mutex> lock(obs_mutex_);
    admission_.reset();
  }

  // --- tail sampler + flight recorder ----------------------------------
  // Fresh per serve() so their contents describe exactly this run. The
  // sampler is marked from the collector mid-run and ingests assembled
  // chains once writers have quiesced; the recorder additionally collects
  // telemetry rows and SLO transitions as they happen.
  {
    obs::TraceSamplerConfig sc;
    sc.deadline_ns = deadline_ns;
    sc.head_sample_every = config_.slo.trace_head_sample_every;
    sc.max_retained = config_.slo.trace_max_retained;
    auto sampler = std::make_unique<obs::TraceSampler>(sc);
    obs::FlightRecorderConfig fc;
    fc.max_frames_per_stream = config_.slo.flight_frames_per_stream;
    auto recorder = std::make_unique<obs::FlightRecorder>(fc);
    std::ostringstream cfg;
    cfg << "{\"streams\":" << n_streams
        << ",\"ingest_workers\":" << config_.ingest_workers
        << ",\"control_workers\":" << config_.control_workers
        << ",\"detect_workers\":" << config_.detect_workers
        << ",\"queue_capacity\":" << config_.queue_capacity
        << ",\"detect_policy\":\"" << to_string(config_.detect_policy)
        << "\",\"frame_budget_ms\":" << config_.slo.frame_budget_ms << '}';
    recorder->set_config_json(cfg.str());
    // Swap under the obs lock: ops handler threads may hold the previous
    // serve's sampler/recorder pointers mid-request otherwise.
    std::lock_guard<std::mutex> lock(obs_mutex_);
    sampler_ = std::move(sampler);
    recorder_ = std::move(recorder);
  }
  last_flight_bundle_path_.clear();
  const std::uint64_t serve_id = serve_count_.fetch_add(1) + 1;
  std::atomic<bool> flight_dump_requested{false};

  if (admission != nullptr) {
    // Every ladder transition becomes a labeled gauge move, an instant span
    // on the tracer (so retained chains show WHY fidelity changed), and a
    // flight-recorder transition row (reusing the HealthTransition record
    // with a "/degrade" entity suffix).
    obs::FlightRecorder* recorder = recorder_.get();
    std::vector<StreamCounters>* counter_ptr = &counters;
    admission->set_transition_callback(
        [recorder, counter_ptr](const DegradeTransition& t) {
          const auto us = static_cast<std::size_t>(t.stream);
          if (us < counter_ptr->size() &&
              (*counter_ptr)[us].degrade_level != nullptr)
            (*counter_ptr)[us].degrade_level->set(
                static_cast<double>(static_cast<int>(t.to)));
          obs::ScopedSpan span("degrade_transition", "runtime/admission",
                               {{"stream", t.stream},
                                {"from", static_cast<std::int64_t>(t.from)},
                                {"to", static_cast<std::int64_t>(t.to)}});
          obs::HealthTransition h;
          h.entity = stream_entity(t.stream) + "/degrade";
          h.from = obs::HealthState::Healthy;
          h.to = t.to == DegradeLevel::Full ? obs::HealthState::Healthy
                                            : obs::HealthState::Degraded;
          h.t_ns = t.t_ns;
          h.reason = std::string(to_string(t.from)) + " -> " +
                     to_string(t.to) + " (" + t.reason + ")";
          recorder->record_transition(h);
        });
  }

  // --- SLO health monitoring (optional) --------------------------------
  // One monitor per stream over the standard rule set, driven by an
  // always-on TelemetryExporter sampling the global registry: each sample
  // window's counter deltas are evaluated against the thresholds, with the
  // hysteresis config damping flapping.
  std::vector<std::unique_ptr<obs::SloMonitor>> monitors;
  std::unique_ptr<obs::TelemetryExporter> telemetry;
  if (config_.slo.enabled) {
    monitors.reserve(sources.size());  // moved into monitors_ once built
    for (int s = 0; s < n_streams; ++s) {
      auto monitor = std::make_unique<obs::SloMonitor>(
          stream_entity(s),
          obs::standard_stream_rules_labeled(
              stream_labels(s), config_.slo.deadline_miss_degraded,
              config_.slo.deadline_miss_unhealthy,
              config_.slo.drop_rate_degraded,
              config_.slo.drop_rate_unhealthy),
          config_.slo.hysteresis);
      // Every transition feeds the flight recorder; a transition to
      // UNHEALTHY requests a bundle dump, finalised once writers have
      // quiesced (so the breaching frames' chains are complete in it). The
      // user's callback chains after.
      const int stream = s;
      HealthCallback cb = health_callback_;
      obs::FlightRecorder* recorder = recorder_.get();
      auto* dump_requested = &flight_dump_requested;
      monitor->set_callback(
          [stream, cb, recorder, dump_requested](
              const obs::HealthTransition& t) {
            recorder->record_transition(t);
            if (t.to == obs::HealthState::Unhealthy)
              dump_requested->store(true, std::memory_order_relaxed);
            if (cb) cb(stream, t);
          });
      monitors.push_back(std::move(monitor));
    }
    obs::TelemetryConfig tc;
    tc.period = config_.slo.telemetry_period;
    tc.jsonl_path = config_.slo.telemetry_jsonl;
    tc.rollup_before_sample = true;  // rows carry per-stream AND fleet view
    obs::FlightRecorder* recorder = recorder_.get();
    // Raw pointers by value: the monitors move into monitors_ below and
    // outlive the exporter (stopped before the next serve() replaces them).
    std::vector<obs::SloMonitor*> monitor_ptrs;
    monitor_ptrs.reserve(monitors.size());
    for (auto& m : monitors) monitor_ptrs.push_back(m.get());
    // Health-driven ladder movement: after the monitors digest a window,
    // their states feed the admission controller (when admission control is
    // on — the watchdog/fault-plan levers work without it).
    AdmissionController* ladder =
        config_.admission.enabled ? admission : nullptr;
    tc.on_sample = [monitor_ptrs, recorder, ladder](
                       const obs::TelemetrySample* prev,
                       const obs::TelemetrySample& cur) {
      recorder->record_telemetry_row(obs::to_json(cur));
      if (prev == nullptr) return;  // a window needs two samples
      for (obs::SloMonitor* m : monitor_ptrs) m->observe(*prev, cur);
      if (ladder != nullptr) {
        std::vector<obs::HealthState> states;
        states.reserve(monitor_ptrs.size());
        for (obs::SloMonitor* m : monitor_ptrs) states.push_back(m->state());
        ladder->on_health_windows(states);
      }
    };
    telemetry = std::make_unique<obs::TelemetryExporter>(registry, tc);
    telemetry->start();
  }
  {
    // Publish this serve's monitors to the ops plane (/healthz reads live
    // states from them mid-run); empty when monitoring is disabled.
    std::lock_guard<std::mutex> lock(obs_mutex_);
    monitors_ = std::move(monitors);
  }

  BoundedQueue<FrameTask> control_q(config_.queue_capacity,
                                    OverflowPolicy::Block);
  BoundedQueue<DetectTask> detect_q(config_.queue_capacity,
                                    config_.detect_policy);
  BoundedQueue<ReportTask> report_q(config_.queue_capacity,
                                    OverflowPolicy::Block);

  // Per-frame report slots, written only by the collector thread.
  std::vector<std::vector<core::AdaptiveFrameReport>> slots(sources.size());
  std::vector<std::vector<bool>> filled(sources.size());

  std::atomic<std::size_t> next_source{0};
  std::atomic<int> live_ingest{config_.ingest_workers};
  std::atomic<int> live_control{config_.control_workers};
  std::atomic<int> live_detect{config_.detect_workers};

  // --- stage 1: ingest -------------------------------------------------
  // Each frame gets a fresh trace id here: the ingest span is the root of
  // the frame's causal chain, and the FrameTask carries {trace_id,
  // ingest-span id} across the queue so the control span parents on it.
  const auto ingest_loop = [&](int worker) {
    log_.record(now_tp(), "runtime/ingest",
                "worker " + std::to_string(worker) + " start");
    for (;;) {
      const std::size_t s = next_source.fetch_add(1);
      if (s >= sources.size()) break;
      FrameSource& src = *sources[s];
      StreamState& state = *streams[s];
      state.ingest_started.store(true, std::memory_order_relaxed);
      state.last_progress_ns.store(tracer.now_ns(), std::memory_order_relaxed);
      int index = 0;
      for (;;) {
        // A watchdog-fired stream is abandoned at the next opportunity: its
        // remaining frames would only be shed anyway, and an intermittently
        // stalling source stops occupying this worker.
        if (state.watchdog_fired.load(std::memory_order_relaxed)) break;
        const obs::TraceScope root(
            {tracer.enabled() ? obs::Tracer::new_trace_id() : 0, 0});
        obs::ScopedSpan span("ingest_frame", "runtime/ingest",
                             {{"stream", static_cast<std::int64_t>(s)},
                              {"frame", index}});
        const Clock::time_point t0 = Clock::now();
        // Transient source failures retry with exponential backoff; past
        // max_attempts (or on a non-transient exception) the stream is
        // truncated here rather than wedging the serve.
        std::optional<data::SequenceFrame> meta;
        int attempts = 0;
        double backoff_ms =
            static_cast<double>(config_.source_retry.backoff.count());
        for (;;) {
          try {
            meta = src.next();
            break;
          } catch (const TransientSourceError&) {
            if (++attempts >= std::max(1, config_.source_retry.max_attempts)) {
              state.source_failed.store(true, std::memory_order_relaxed);
              break;
            }
            state.source_retries.fetch_add(1);
            const auto us = static_cast<std::size_t>(s);
            if (counters[us].source_retries != nullptr)
              counters[us].source_retries->inc();
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoff_ms));
            backoff_ms *= std::max(1.0, config_.source_retry.backoff_multiplier);
          } catch (const std::exception&) {
            state.source_failed.store(true, std::memory_order_relaxed);
            break;
          }
        }
        if (!meta) break;
        metrics_.ingest.record_latency(Clock::now() - t0);
        if (config_.validate_frames && !std::isfinite(meta->light_level)) {
          // Garbage in, nothing out: refused BEFORE an index is assigned,
          // so the control plane's frame numbering stays dense and healthy
          // streams are unaffected bit for bit.
          state.garbage_frames.fetch_add(1);
          const auto us = static_cast<std::size_t>(s);
          if (counters[us].garbage != nullptr) counters[us].garbage->inc();
          continue;
        }
        FrameTask task;
        task.stream = static_cast<int>(s);
        task.index = index++;
        task.meta = std::move(*meta);
        task.trace = span.context();
        task.ingest_ns = tracer.now_ns();
        control_q.push(std::move(task));
        state.last_progress_ns.store(tracer.now_ns(),
                                     std::memory_order_relaxed);
        metrics_.ingest.add_processed();
      }
      state.frames_ingested.store(index);
      state.ingest_done.store(true, std::memory_order_relaxed);
    }
    if (live_ingest.fetch_sub(1) == 1) control_q.close();
    log_.record(now_tp(), "runtime/ingest",
                "worker " + std::to_string(worker) + " done");
  };

  // --- coast ledger operations (ladder level 2; no-ops when inactive) ---
  // Feed one frame's entry to the stream's tracker ledger and advance the
  // in-order frontier as far as it goes. coast_mutex is a leaf lock.
  const auto publish_entry = [&](StreamState& st, int index,
                                 CoastEntry entry) {
    if (!ladder_active) return;
    bool advanced = false;
    {
      std::lock_guard<std::mutex> lock(st.coast_mutex);
      st.coast_pending.emplace(index, std::move(entry));
      for (auto it = st.coast_pending.find(st.coast_done + 1);
           it != st.coast_pending.end();
           it = st.coast_pending.find(st.coast_done + 1)) {
        CoastEntry& e = it->second;
        if (e.coast) {
          // No fresh detections: the tracker coasts every live box forward
          // by its last motion; confirmed tracks become the frame's output.
          std::vector<det::Track> tracks = st.tracker.update({});
          std::vector<det::Detection> dets;
          dets.reserve(tracks.size());
          for (const det::Track& t : tracks) {
            det::Detection d;
            d.box = t.box;
            d.score = t.last_score;
            d.class_id = t.class_id;
            dets.push_back(d);
          }
          st.coast_results.emplace(it->first, std::move(dets));
        } else {
          st.tracker.update(e.dets);
        }
        ++st.coast_done;
        st.coast_pending.erase(it);
        advanced = true;
      }
    }
    if (advanced) st.coast_cv.notify_all();
  };
  // A frame that never reaches the detect scan (shed / backpressure-drop)
  // still advances the tracker frontier — as an empty update, exactly what
  // the tracker's miss-coasting is for.
  const auto publish_gap = [&](StreamState& st, int index) {
    publish_entry(st, index, CoastEntry{});
  };
  // Wait for the frontier to cross `index`, then take its coasted boxes.
  // Safe: the detect queue is FIFO, so every smaller index of this stream
  // already left it, and every leaving path publishes an entry; waits are
  // only ever on smaller indices, so no cycles.
  const auto take_coast = [&](StreamState& st, int index) {
    std::unique_lock<std::mutex> lock(st.coast_mutex);
    st.coast_cv.wait(lock, [&] { return st.coast_done >= index; });
    const auto it = st.coast_results.find(index);
    std::vector<det::Detection> dets = std::move(it->second);
    st.coast_results.erase(it);
    return dets;
  };

  // A frame that overflowed the detect queue still produces a report — the
  // serving-layer twin of the paper's reconfiguration drop: the vehicle
  // engine misses the frame, the static pedestrian partition does not.
  const auto emit_dropped = [&](DetectTask&& task) {
    StreamState& st = *streams[static_cast<std::size_t>(task.stream)];
    st.backpressure_drops.fetch_add(1);
    metrics_.detect.add_dropped();
    const obs::TraceScope scope(task.trace);
    obs::ScopedSpan span("drop_frame", "runtime/detect",
                         {{"stream", task.stream},
                          {"frame", task.step.index}});
    core::ControlStep step = task.step;
    step.record.vehicle_processed = false;
    ReportTask out;
    out.stream = task.stream;
    out.report = system_->evaluate_frame(step, task.meta);
    out.report.degrade_level = static_cast<int>(task.decision.level);
    out.trace = span.context();
    out.ingest_ns = task.ingest_ns;
    out.backpressure_dropped = true;
    publish_gap(st, task.step.index);
    report_q.push(std::move(out));
  };

  // A frame refused by admission: an explicit shed report (the ladder's
  // level 3 / token-bucket verdict), never a silent loss. Control-thread
  // side so the frame skips the detect queue entirely — that is the point.
  const auto emit_shed = [&](int stream, const core::ControlStep& ctrl,
                             data::SequenceFrame meta,
                             const obs::TraceContext& parent,
                             std::uint64_t ingest_ns,
                             const AdmissionDecision& decision) {
    StreamState& st = *streams[static_cast<std::size_t>(stream)];
    const obs::TraceScope scope(parent);
    obs::ScopedSpan span(
        "shed_frame", "runtime/control",
        {{"stream", stream},
         {"frame", ctrl.index},
         {"level", static_cast<std::int64_t>(decision.level)}});
    core::ControlStep step = ctrl;
    step.record.vehicle_processed = false;
    ReportTask out;
    out.stream = stream;
    out.report = system_->evaluate_frame(step, meta);
    out.report.degrade_level = static_cast<int>(decision.level);
    out.trace = span.context();
    out.ingest_ns = ingest_ns;
    out.shed = true;
    publish_gap(st, ctrl.index);
    report_q.push(std::move(out));
  };

  // --- stage 2: control (per-stream sequential) ------------------------
  const auto control_loop = [&](int worker) {
    log_.record(now_tp(), "runtime/control",
                "worker " + std::to_string(worker) + " start");
    while (std::optional<FrameTask> task = control_q.pop()) {
      StreamState& state = *streams[static_cast<std::size_t>(task->stream)];
      std::unique_lock<std::mutex> lock(state.mutex);
      if (task->index != state.next_index) {
        // Another worker holds an earlier frame of this stream; park the
        // whole task (trace context included) until the stream catches up.
        const int index = task->index;
        state.pending.emplace(index, std::move(*task));
        continue;
      }
      FrameTask current = std::move(*task);
      for (;;) {
        // Re-install the frame's context on whichever worker won the frame:
        // the control span parents on the ingest span across the thread hop.
        const obs::TraceScope scope(current.trace);
        obs::ScopedSpan span("control_frame", "runtime/control",
                             {{"stream", current.stream},
                              {"frame", current.index}});
        const Clock::time_point t0 = Clock::now();
        core::ControlStep step = state.session.control_step(current.meta);
        span.arg("mode", static_cast<std::int64_t>(step.sensed));
        metrics_.control.record_latency(Clock::now() - t0);
        metrics_.control.add_processed();
        ++state.next_index;
        state.last_progress_ns.store(tracer.now_ns(),
                                     std::memory_order_relaxed);

        // The admission verdict is taken here — per-stream sequential, so
        // a forced level (fault plan) keyed on the frame index yields a
        // deterministic transition sequence.
        AdmissionDecision decision;
        if (ladder_active) {
          const std::optional<int> forced =
              injector != nullptr
                  ? injector->forced_degrade_level(current.stream, step.index)
                  : std::nullopt;
          decision = admission->decide(current.stream, step.index,
                                       tracer.now_ns(), forced);
        }
        if (!decision.admit) {
          emit_shed(current.stream, step, std::move(current.meta),
                    span.context(), current.ingest_ns, decision);
        } else {
          DetectTask dt;
          dt.stream = current.stream;
          dt.step = step;
          dt.meta = std::move(current.meta);
          dt.trace = span.context();
          dt.ingest_ns = current.ingest_ns;
          dt.decision = decision;
          // The queue hands any dropped task back (the stale one under
          // DropOldest, this one under DropNewest) so no frame vanishes.
          std::optional<DetectTask> displaced;
          detect_q.push(std::move(dt), &displaced);
          if (displaced) emit_dropped(std::move(*displaced));
        }

        const auto it = state.pending.find(state.next_index);
        if (it == state.pending.end()) break;
        current = std::move(it->second);
        state.pending.erase(it);
      }
    }
    if (live_control.fetch_sub(1) == 1) detect_q.close();
    log_.record(now_tp(), "runtime/control",
                "worker " + std::to_string(worker) + " done");
  };

  // --- stage 3: detect (parallel, const) -------------------------------
  // One frame's pixel-level evaluation — the body of a detect worker's
  // loop, also runnable as one task of a cross-stream batch on the scan
  // pool (everything it touches is const, per-stream-synchronised, or an
  // MPMC queue). `coast_prepublished` skips the ledger publish for coast
  // frames whose entries the batched loop already published (see below).
  const auto detect_one = [&](DetectTask& task, bool coast_prepublished) {
    const obs::TraceScope scope(task.trace);
    obs::ScopedSpan span("detect_frame", "runtime/detect",
                         {{"stream", task.stream},
                          {"frame", task.step.index},
                          {"mode", static_cast<std::int64_t>(
                                       task.step.sensed)}});
    const Clock::time_point t0 = Clock::now();
    StreamState& st = *streams[static_cast<std::size_t>(task.stream)];
    const DegradeLevel level = task.decision.level;
    ReportTask out;
    out.stream = task.stream;
    out.trace = span.context();
    out.ingest_ns = task.ingest_ns;
    if (ladder_active && task.decision.coast) {
      // Level-2 coast: no render, no scan, no simulated accelerator —
      // the frame's boxes come from the tracker once every earlier frame
      // of the stream has fed it (see the coast ledger).
      span.arg("coast", 1);
      if (!coast_prepublished)
        publish_entry(st, task.step.index, CoastEntry{true, {}});
      const std::vector<det::Detection> dets =
          take_coast(st, task.step.index);
      core::AdaptiveSystem::EvaluateOptions opts;
      opts.provided_detections = &dets;
      out.report = system_->evaluate_frame(task.step, task.meta, opts);
      out.report.degrade_level = static_cast<int>(level);
      out.report.detect_coasted = true;
    } else if (ladder_active) {
      core::AdaptiveSystem::EvaluateOptions opts;
      if (level == DegradeLevel::CoarseScan ||
          level == DegradeLevel::SkipCoast)
        opts.sliding_override = &degraded_sliding;
      std::vector<det::Detection> dets;
      opts.out_detections = &dets;
      out.report = system_->evaluate_frame(task.step, task.meta, opts);
      out.report.degrade_level = static_cast<int>(level);
      if (config_.simulated_accel_ms > 0.0 &&
          task.step.record.vehicle_processed) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                config_.simulated_accel_ms));
      }
      publish_entry(st, task.step.index,
                    CoastEntry{false, std::move(dets)});
    } else {
      out.report = system_->evaluate_frame(task.step, task.meta);
      if (config_.simulated_accel_ms > 0.0 &&
          task.step.record.vehicle_processed) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                config_.simulated_accel_ms));
      }
    }
    if (injector != nullptr) {
      const double slow_ms =
          injector->detect_slowdown_ms(task.stream, task.step.index);
      if (slow_ms > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(slow_ms));
    }
    st.last_progress_ns.store(tracer.now_ns(), std::memory_order_relaxed);
    metrics_.detect.record_latency(Clock::now() - t0);
    metrics_.detect.add_processed();
    report_q.push(std::move(out));
  };

  // Cross-stream batching needs the shared pool to fan a gather onto.
  const bool batching = config_.cross_stream_batching &&
                        config_.scan_pool != nullptr &&
                        config_.detect_batch_max > 1;
  const auto detect_loop = [&](int worker) {
    log_.record(now_tp(), "runtime/detect",
                "worker " + std::to_string(worker) + " start");
    while (std::optional<DetectTask> first = detect_q.pop()) {
      if (!batching) {
        detect_one(*first, false);
        continue;
      }
      // Gather: one blocking pop (above) plus opportunistic try_pops, so a
      // sparse queue costs nothing — the batch is whatever is ALREADY
      // queued, across every stream on this server.
      std::vector<DetectTask> scans;
      std::vector<DetectTask> coasts;
      const auto stash = [&](DetectTask&& t) {
        (ladder_active && t.decision.coast ? coasts : scans)
            .push_back(std::move(t));
      };
      stash(std::move(*first));
      DetectTask extra;
      while (static_cast<int>(scans.size() + coasts.size()) <
                 config_.detect_batch_max &&
             detect_q.try_pop(extra))
        stash(std::move(extra));
      // Coast-ledger discipline: publish EVERY gathered coast entry before
      // anything in this gather may block in take_coast. A worker that
      // blocked while still holding unpublished entries could deadlock
      // against another worker doing the same with the interleaved indices
      // of the opposite stream; publishing first keeps the global
      // invariant that every popped frame is published without waiting.
      for (DetectTask& t : coasts)
        publish_entry(*streams[static_cast<std::size_t>(t.stream)],
                      t.step.index, CoastEntry{true, {}});
      // Scan frames are independent const evaluations: one indexed batch
      // on the shared pool, whatever stream each frame belongs to.
      if (scans.size() == 1) {
        detect_one(scans.front(), false);
      } else if (!scans.empty()) {
        config_.scan_pool->run_indexed(
            static_cast<int>(scans.size()), [&scans, &detect_one](int i) {
              detect_one(scans[static_cast<std::size_t>(i)], false);
            });
      }
      // Scatter coast frames in canonical (stream, index) order — a coast
      // frame's same-stream predecessors in this gather are consumed
      // before it waits, and its report lands via the same order-
      // insensitive collector as everything else.
      std::sort(coasts.begin(), coasts.end(),
                [](const DetectTask& a, const DetectTask& b) {
                  return a.stream != b.stream ? a.stream < b.stream
                                              : a.step.index < b.step.index;
                });
      for (DetectTask& t : coasts) detect_one(t, true);
    }
    if (live_detect.fetch_sub(1) == 1) report_q.close();
    log_.record(now_tp(), "runtime/detect",
                "worker " + std::to_string(worker) + " done");
  };

  // --- stage 4: report collector ---------------------------------------
  const auto collect_loop = [&] {
    log_.record(now_tp(), "runtime/report", "collector start");
    while (std::optional<ReportTask> task = report_q.pop()) {
      const obs::TraceScope scope(task->trace);
      obs::ScopedSpan span("collect_report", "runtime/report",
                           {{"stream", task->stream},
                            {"frame", task->report.index}});
      const Clock::time_point t0 = Clock::now();
      const auto us = static_cast<std::size_t>(task->stream);
      auto& stream_slots = slots[us];
      auto& stream_filled = filled[us];
      const auto index = static_cast<std::size_t>(task->report.index);
      if (index >= stream_slots.size()) {
        stream_slots.resize(index + 1);
        stream_filled.resize(index + 1, false);
      }
      // Critical-path latency of this frame: ingest-enqueue to
      // report-dequeue on the tracer timebase. Feeds the latency histogram,
      // the deadline counter the frame_deadline SLO rule watches, and the
      // span (as an arg) so traces carry the number too.
      const std::uint64_t now_ns = tracer.now_ns();
      const std::uint64_t latency_ns =
          now_ns >= task->ingest_ns ? now_ns - task->ingest_ns : 0;
      span.arg("latency_us", static_cast<std::int64_t>(latency_ns / 1000u));
      StreamCounters& c = counters[us];
      c.latency->record_ns(latency_ns);
      if (!task->shed) admitted_latency.record_ns(latency_ns);
      c.frames->inc();
      if (deadline_ns > 0 && latency_ns > deadline_ns) {
        c.deadline_miss->inc();
        streams[us]->deadline_misses.fetch_add(1);
        // Tail sampling: a deadline miss makes this frame's chain worth
        // keeping verbatim when the rings are ingested after the run.
        sampler_->mark_interesting(task->trace.trace_id);
      }
      if (task->backpressure_dropped) {
        c.backpressure_drops->inc();
        sampler_->mark_interesting(task->trace.trace_id);
      }
      if (task->shed) {
        if (c.shed != nullptr) c.shed->inc();
        sampler_->mark_interesting(task->trace.trace_id);
      } else if (task->report.detect_coasted) {
        if (c.coasted != nullptr) c.coasted->inc();
      } else if (task->report.degrade_level > 0 &&
                 !task->backpressure_dropped) {
        if (c.degraded_scans != nullptr) c.degraded_scans->inc();
      }
      // Shed frames are an explicit admission verdict, not a reconfig cost;
      // keep them out of the reconfiguration-loss SLO rule.
      if (!task->report.vehicle_processed && !task->backpressure_dropped &&
          !task->shed)
        c.reconfig_drops->inc();
      if (task->report.reconfig_triggered) c.reconfigs->inc();
      stream_slots[index] = std::move(task->report);
      stream_filled[index] = true;
      streams[us]->collected.fetch_add(1, std::memory_order_relaxed);
      streams[us]->last_progress_ns.store(now_ns, std::memory_order_relaxed);
      metrics_.report.record_latency(Clock::now() - t0);
      metrics_.report.add_processed();
    }
    log_.record(now_tp(), "runtime/report", "collector done");
  };

  // --- liveness watchdog -----------------------------------------------
  // Polls per-stream progress timestamps; a stream that is started,
  // incomplete and silent past the timeout is pinned to Shed (degrade
  // level 3) and its source abandoned — the wedge becomes an accounted
  // event instead of a hung serve.
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog_thread;
  if (config_.watchdog.enabled && ladder_active) {
    const std::uint64_t timeout_ns = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, config_.watchdog.timeout.count())) *
        1000000ull;
    watchdog_thread = std::thread([&, timeout_ns] {
      while (!watchdog_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(config_.watchdog.poll);
        const std::uint64_t now = tracer.now_ns();
        for (int s = 0; s < n_streams; ++s) {
          StreamState& st = *streams[static_cast<std::size_t>(s)];
          if (st.watchdog_fired.load(std::memory_order_relaxed)) continue;
          if (!st.ingest_started.load(std::memory_order_relaxed)) continue;
          const bool complete =
              st.ingest_done.load(std::memory_order_relaxed) &&
              st.collected.load(std::memory_order_relaxed) ==
                  st.frames_ingested.load();
          if (complete) continue;
          const std::uint64_t last =
              st.last_progress_ns.load(std::memory_order_relaxed);
          if (now > last && now - last > timeout_ns) {
            st.watchdog_fired.store(true, std::memory_order_relaxed);
            admission->force_level(s, DegradeLevel::Shed, "watchdog");
            registry.counter("runtime.watchdog_fired", stream_labels(s))
                .inc();
            log_.record(now_tp(), "runtime/watchdog",
                        "stream " + std::to_string(s) +
                            " wedged; forcing degrade level 3");
          }
        }
      }
    });
  }

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config_.ingest_workers +
                                           config_.control_workers +
                                           config_.detect_workers) +
                  1);
  for (int i = 0; i < config_.ingest_workers; ++i)
    workers.emplace_back(ingest_loop, i);
  for (int i = 0; i < config_.control_workers; ++i)
    workers.emplace_back(control_loop, i);
  if (config_.scan_pool != nullptr && !batching) {
    // Shared-pool mode: one launcher thread publishes the detect loops as an
    // indexed batch on the scanner's pool and helps run them. Ingest,
    // control and the collector stay dedicated threads, so the queues always
    // drain and close — pooled detect loops terminate even when every pool
    // thread is parked in detect_q.pop(). Nested scans inside a pooled
    // detect worker (sliding.pool == scan_pool) self-help, so sharing one
    // pool cannot deadlock.
    //
    // With cross-stream batching the roles invert: detect workers stay
    // dedicated threads acting as batch coordinators (gather from the
    // queue, fan the batch onto the pool, help run it), so every pool
    // thread is available to execute frames instead of being parked in
    // detect_q.pop().
    workers.emplace_back([this, &detect_loop] {
      config_.scan_pool->run_indexed(config_.detect_workers, detect_loop);
    });
  } else {
    for (int i = 0; i < config_.detect_workers; ++i)
      workers.emplace_back(detect_loop, i);
  }
  workers.emplace_back(collect_loop);
  for (std::thread& t : workers) t.join();
  if (watchdog_thread.joinable()) {
    watchdog_stop.store(true, std::memory_order_relaxed);
    watchdog_thread.join();
  }

  // Fold the labeled per-stream series into the fleet base names — even
  // with monitoring disabled, direct post-serve readers of e.g.
  // "runtime.frame.latency_ns" see the fleet aggregate.
  registry.rollup();

  // One final telemetry window catches counters the last periodic sample
  // missed, then the monitors' verdicts become part of the results.
  if (telemetry) telemetry->stop();

  // Writers have quiesced: feed the tail sampler and the flight recorder
  // from the tracer rings. snapshot() (not drain()) leaves the spans in
  // place for callers that export their own traces after serve().
  if (tracer.enabled()) {
    const std::vector<obs::SpanRecord> spans = tracer.snapshot();
    const std::vector<obs::FrameTrace> chains =
        obs::assemble_frame_traces(spans);
    sampler_->ingest(chains);
    for (const obs::FrameTrace& chain : chains) recorder_->record_frame(chain);
    registry.gauge("obs.sampler.frames_seen")
        .set(static_cast<double>(sampler_->frames_seen()));
    registry.gauge("obs.sampler.frames_retained")
        .set(static_cast<double>(sampler_->frames_retained()));
    registry.gauge("obs.sampler.spans_seen")
        .set(static_cast<double>(sampler_->spans_seen()));
  }

  // Finalise a dump requested by an UNHEALTHY transition, now that the
  // breaching frames' chains are in the recorder.
  if (flight_dump_requested.load(std::memory_order_relaxed)) {
    std::string dir = config_.slo.flight_dump_dir;
    if (dir.empty()) {
      if (const char* env = std::getenv("AVD_FLIGHT_DIR")) dir = env;
    }
    if (!dir.empty()) {
      const std::string path = dir + "/flight_bundle_serve" +
                               std::to_string(serve_id) + ".json";
      if (recorder_->dump_to_file(path, "health transition to UNHEALTHY"))
        last_flight_bundle_path_ = path;
    }
  }

  // Queue-depth high-water marks become stage attributes.
  metrics_.control.update_queue_high_water(control_q.stats().high_water);
  metrics_.detect.update_queue_high_water(detect_q.stats().high_water);
  metrics_.report.update_queue_high_water(report_q.stats().high_water);

  // --- assemble per-stream results -------------------------------------
  for (int s = 0; s < n_streams; ++s) {
    const auto us = static_cast<std::size_t>(s);
    StreamState& state = *streams[us];
    StreamResult& result = results[us];
    const int expected = state.frames_ingested.load();
    if (static_cast<int>(slots[us].size()) != expected)
      throw std::logic_error("StreamServer: stream " + std::to_string(s) +
                             " lost frames (" +
                             std::to_string(slots[us].size()) + "/" +
                             std::to_string(expected) + ")");
    for (std::size_t i = 0; i < filled[us].size(); ++i)
      if (!filled[us][i])
        throw std::logic_error("StreamServer: stream " + std::to_string(s) +
                               " missing frame " + std::to_string(i));
    result.report.frames = std::move(slots[us]);
    result.report.reconfigs = state.session.reconfigs();
    result.report.log = state.session.log();
    result.backpressure_drops = state.backpressure_drops.load();
    result.deadline_misses = state.deadline_misses.load();
    result.garbage_frames = state.garbage_frames.load();
    result.source_retries = state.source_retries.load();
    result.source_failed = state.source_failed.load();
    result.watchdog_fired = state.watchdog_fired.load();
    if (admission != nullptr) {
      const AdmissionStats stats = admission->stats(s);
      result.shed_frames = stats.shed;
      result.coasted_frames = stats.coasted;
      result.degraded_scans = stats.degraded_scans;
      result.degrade_level = admission->level(s);
      result.degrade_transitions = admission->transitions(s);
    }
    if (config_.slo.enabled) {
      result.health = monitors_[us]->state();
      result.health_transitions = monitors_[us]->transitions();
      std::lock_guard<std::mutex> lock(obs_mutex_);
      stream_health_[us] = result.health;
    }
    std::ostringstream os;
    os << "stream " << s << " complete: " << result.report.frames.size()
       << " frames, " << result.report.reconfigs.size() << " reconfigs, "
       << result.backpressure_drops << " backpressure drops";
    if (admission != nullptr)
      os << ", " << result.shed_frames << " shed, " << result.coasted_frames
         << " coasted, degrade level "
         << static_cast<int>(result.degrade_level);
    if (config_.slo.enabled)
      os << ", health " << obs::to_string(result.health);
    log_.record(now_tp(), "runtime/server", os.str());
  }
  {
    std::lock_guard<std::mutex> lock(obs_mutex_);
    fleet_health_ = obs::worst_of(stream_health_);
  }
  return results;
}

std::vector<obs::HealthState> StreamServer::live_stream_health() const {
  std::lock_guard<std::mutex> lock(obs_mutex_);
  if (!monitors_.empty()) {
    std::vector<obs::HealthState> states;
    states.reserve(monitors_.size());
    for (const auto& m : monitors_) states.push_back(m->state());
    return states;
  }
  return stream_health_;
}

// The standard introspection surface (see StreamOpsConfig). Handlers run on
// the ops server's pool threads, concurrently with serve(): everything they
// read is either internally thread-safe (registry, sampler, recorder,
// monitors, profiler) or swapped under obs_mutex_.
void StreamServer::install_ops_endpoints() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();

  ops_->handle("/metricsz", [&registry](const obs::HttpRequest&) {
    return obs::prometheus_response(registry);
  });
  ops_->handle("/metricsz.json", [&registry](const obs::HttpRequest&) {
    return obs::metrics_json_response(registry);
  });

  // Live health: mid-serve the monitors answer with their current state
  // machine position; between serves (or with monitoring disabled) the last
  // serve's verdicts answer. 503 on an UNHEALTHY fleet makes this directly
  // usable as a load-balancer / orchestrator readiness probe.
  ops_->handle("/healthz", [this](const obs::HttpRequest&) {
    std::vector<obs::HealthState> states = live_stream_health();
    struct OverloadRow {
      DegradeLevel level = DegradeLevel::Full;
      AdmissionStats stats;
    };
    std::vector<OverloadRow> overload;
    bool admission_on = false;
    {
      std::lock_guard<std::mutex> lock(obs_mutex_);
      if (admission_) {
        admission_on = true;
        overload.resize(states.size());
        for (std::size_t s = 0; s < states.size(); ++s) {
          overload[s].level = admission_->level(static_cast<int>(s));
          overload[s].stats = admission_->stats(static_cast<int>(s));
        }
      }
    }
    const obs::HealthState fleet = obs::worst_of(states);
    std::ostringstream os;
    os << "{\"fleet\":\"" << obs::to_string(fleet) << "\",\"admission\":"
       << (admission_on ? "true" : "false") << ",\"streams\":[";
    for (std::size_t s = 0; s < states.size(); ++s) {
      if (s != 0) os << ',';
      os << "{\"stream\":" << s << ",\"state\":\""
         << obs::to_string(states[s]) << "\"";
      if (s < overload.size()) {
        const OverloadRow& row = overload[s];
        os << ",\"degrade_level\":" << static_cast<int>(row.level)
           << ",\"admitted\":" << row.stats.admitted
           << ",\"shed\":" << row.stats.shed
           << ",\"coasted\":" << row.stats.coasted
           << ",\"degraded_scans\":" << row.stats.degraded_scans;
      }
      os << "}";
    }
    os << "]}";
    obs::HttpResponse res;
    res.status = fleet == obs::HealthState::Unhealthy ? 503 : 200;
    res.content_type = "application/json";
    res.body = os.str();
    return res;
  });

  ops_->handle("/tracez", [this](const obs::HttpRequest&) {
    std::vector<obs::RetainedFrame> retained;
    std::vector<obs::SpanStats> stats;
    std::uint64_t frames_seen = 0, frames_retained = 0, spans_seen = 0,
                  evicted = 0;
    {
      std::lock_guard<std::mutex> lock(obs_mutex_);
      if (sampler_) {
        retained = sampler_->retained();
        stats = sampler_->stats();
        frames_seen = sampler_->frames_seen();
        frames_retained = sampler_->frames_retained();
        spans_seen = sampler_->spans_seen();
        evicted = sampler_->retained_evicted();
      }
    }
    std::ostringstream os;
    os << "{\"frames_seen\":" << frames_seen
       << ",\"frames_retained\":" << frames_retained
       << ",\"spans_seen\":" << spans_seen
       << ",\"retained_evicted\":" << evicted << ",\"span_stats\":[";
    for (std::size_t i = 0; i < stats.size(); ++i) {
      if (i != 0) os << ',';
      os << obs::to_json(stats[i]);
    }
    os << "],\"retained\":[";
    for (std::size_t i = 0; i < retained.size(); ++i) {
      if (i != 0) os << ',';
      os << obs::to_json(retained[i]);
    }
    os << "]}";
    return obs::HttpResponse{200, "application/json", os.str()};
  });

  ops_->handle("/flightz", [this](const obs::HttpRequest&) {
    std::string body;
    {
      std::lock_guard<std::mutex> lock(obs_mutex_);
      if (recorder_) body = recorder_->dump("ops /flightz request");
    }
    if (body.empty())
      body =
          "{\"reason\":\"no serve has run yet\",\"streams\":{},"
          "\"telemetry\":[],\"slo_transitions\":[]}";
    return obs::HttpResponse{200, "application/json", std::move(body)};
  });

  ops_->handle("/statusz", [this, &registry](const obs::HttpRequest&) {
    obs::publish_process_metrics(registry);  // keep /statusz and /metricsz in sync
    // Aggregate overload accounting across streams (zero when admission is
    // off — the fields are always present so parsers stay simple).
    AdmissionStats totals;
    int max_level = 0;
    bool admission_live = false;
    {
      std::lock_guard<std::mutex> lock(obs_mutex_);
      if (admission_) {
        admission_live = true;
        const std::size_t n =
            monitors_.empty() ? stream_health_.size() : monitors_.size();
        for (std::size_t s = 0; s < n; ++s) {
          const AdmissionStats st = admission_->stats(static_cast<int>(s));
          totals.admitted += st.admitted;
          totals.shed += st.shed;
          totals.shed_by_bucket += st.shed_by_bucket;
          totals.coasted += st.coasted;
          totals.degraded_scans += st.degraded_scans;
          max_level = std::max(
              max_level,
              static_cast<int>(admission_->level(static_cast<int>(s))));
        }
      }
    }
    std::ostringstream os;
    os << "{\"build\":{\"version\":\"" << obs::json::escape(obs::build_version())
       << "\",\"mode\":\"" << obs::json::escape(obs::build_mode())
       << "\"},\"uptime_seconds\":" << obs::process_uptime_seconds()
       << ",\"serves\":" << serve_count_.load()
       << ",\"ops_requests\":" << ops_->requests_served()
       << ",\"config\":{\"ingest_workers\":" << config_.ingest_workers
       << ",\"control_workers\":" << config_.control_workers
       << ",\"detect_workers\":" << config_.detect_workers
       << ",\"queue_capacity\":" << config_.queue_capacity
       << ",\"detect_policy\":\"" << to_string(config_.detect_policy)
       << "\",\"slo_enabled\":" << (config_.slo.enabled ? "true" : "false")
       << ",\"frame_budget_ms\":" << config_.slo.frame_budget_ms
       << ",\"admission_enabled\":"
       << (config_.admission.enabled ? "true" : "false")
       << ",\"watchdog_enabled\":"
       << (config_.watchdog.enabled ? "true" : "false")
       << ",\"fault_injection\":"
       << (config_.fault_injector != nullptr ? "true" : "false")
       << ",\"ops_port\":" << ops_->port()
       << ",\"profiler_hz\":" << profiler_->config().hz
       << ",\"max_profile_seconds\":" << config_.ops.max_profile_seconds
       << "},\"admission\":{\"live\":" << (admission_live ? "true" : "false")
       << ",\"max_degrade_level\":" << max_level
       << ",\"admitted\":" << totals.admitted
       << ",\"shed\":" << totals.shed
       << ",\"shed_by_bucket\":" << totals.shed_by_bucket
       << ",\"coasted\":" << totals.coasted
       << ",\"degraded_scans\":" << totals.degraded_scans << "}}";
    return obs::HttpResponse{200, "application/json", os.str()};
  });

  // On-demand profile: blocks its handler thread for the window (clamped to
  // max_profile_seconds); concurrent requests serialise inside run_for().
  ops_->handle("/profilez", [this](const obs::HttpRequest& req) {
    // std::from_chars is locale-independent: "1,5" is rejected outright
    // instead of silently parsing as 1 (or as 1.5 under a comma-decimal
    // locale), and must consume the whole value.
    const std::string secs = req.query_value("seconds", "1");
    double seconds = 0.0;
    const auto [ptr, ec] =
        std::from_chars(secs.data(), secs.data() + secs.size(), seconds);
    if (ec != std::errc{} || ptr != secs.data() + secs.size() ||
        !(seconds > 0.0))
      return obs::HttpResponse{400, "text/plain; charset=utf-8",
                               "bad seconds value: " + secs + "\n"};
    seconds = std::min(seconds, config_.ops.max_profile_seconds);
    const obs::ProfileReport report = profiler_->run_for(
        std::chrono::milliseconds(static_cast<long>(seconds * 1000.0)));
    if (req.query_value("format") == "json")
      return obs::HttpResponse{200, "application/json", report.to_json()};
    return obs::HttpResponse{200, "text/plain; charset=utf-8",
                             report.to_collapsed()};
  });
}

}  // namespace avd::runtime
