#include "avd/runtime/stream_server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "avd/obs/trace.hpp"

namespace avd::runtime {
namespace {

using Clock = std::chrono::steady_clock;

/// A frame after the control plane, waiting for pixel-level detection.
struct DetectTask {
  int stream = 0;
  core::ControlStep step;
  data::SequenceFrame meta;
};

/// A finished per-frame report heading to the collector.
struct ReportTask {
  int stream = 0;
  core::AdaptiveFrameReport report;
};

/// Mutable per-stream state: the sequential control-plane session plus the
/// reorder buffer that serialises MPMC-scheduled frames back into index
/// order. Guarded by its own mutex; different streams never contend.
struct StreamState {
  explicit StreamState(const core::AdaptiveSystem& system)
      : session(system.begin_session()) {}

  std::mutex mutex;
  core::AdaptiveSystem::StepSession session;
  int next_index = 0;
  std::map<int, data::SequenceFrame> pending;  // out-of-order frames
  std::atomic<std::uint64_t> backpressure_drops{0};
  std::atomic<int> frames_ingested{0};
};

}  // namespace

StreamServer::StreamServer(const core::AdaptiveSystem& system,
                           StreamServerConfig config)
    : system_(&system), config_(config) {
  config_.ingest_workers = std::max(1, config_.ingest_workers);
  config_.control_workers = std::max(1, config_.control_workers);
  config_.detect_workers = std::max(1, config_.detect_workers);
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
}

std::vector<StreamResult> StreamServer::serve_sequences(
    const std::vector<data::DriveSequence>& sequences) {
  std::vector<std::unique_ptr<FrameSource>> sources;
  sources.reserve(sequences.size());
  for (const data::DriveSequence& s : sequences) sources.push_back(make_source(s));
  return serve(std::move(sources));
}

std::vector<StreamResult> StreamServer::serve(
    std::vector<std::unique_ptr<FrameSource>> sources) {
  const int n_streams = static_cast<int>(sources.size());
  std::vector<StreamResult> results(sources.size());
  for (int s = 0; s < n_streams; ++s)
    results[static_cast<std::size_t>(s)].stream = s;
  if (n_streams == 0) return results;

  const Clock::time_point epoch = Clock::now();
  const auto now_tp = [&epoch] {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - epoch)
                        .count();
    return soc::TimePoint{static_cast<std::uint64_t>(ns) * 1000ull};
  };

  std::vector<std::unique_ptr<StreamState>> streams;
  streams.reserve(sources.size());
  for (int s = 0; s < n_streams; ++s)
    streams.push_back(std::make_unique<StreamState>(*system_));

  BoundedQueue<FrameTask> control_q(config_.queue_capacity,
                                    OverflowPolicy::Block);
  BoundedQueue<DetectTask> detect_q(config_.queue_capacity,
                                    config_.detect_policy);
  BoundedQueue<ReportTask> report_q(config_.queue_capacity,
                                    OverflowPolicy::Block);

  // Per-frame report slots, written only by the collector thread.
  std::vector<std::vector<core::AdaptiveFrameReport>> slots(sources.size());
  std::vector<std::vector<bool>> filled(sources.size());

  std::atomic<std::size_t> next_source{0};
  std::atomic<int> live_ingest{config_.ingest_workers};
  std::atomic<int> live_control{config_.control_workers};
  std::atomic<int> live_detect{config_.detect_workers};

  // --- stage 1: ingest -------------------------------------------------
  const auto ingest_loop = [&](int worker) {
    log_.record(now_tp(), "runtime/ingest",
                "worker " + std::to_string(worker) + " start");
    for (;;) {
      const std::size_t s = next_source.fetch_add(1);
      if (s >= sources.size()) break;
      FrameSource& src = *sources[s];
      StreamState& state = *streams[s];
      int index = 0;
      for (;;) {
        const obs::ScopedSpan span("ingest_frame", "runtime/ingest");
        const Clock::time_point t0 = Clock::now();
        std::optional<data::SequenceFrame> meta = src.next();
        if (!meta) break;
        metrics_.ingest.record_latency(Clock::now() - t0);
        FrameTask task;
        task.stream = static_cast<int>(s);
        task.index = index++;
        task.meta = std::move(*meta);
        control_q.push(std::move(task));
        metrics_.ingest.add_processed();
      }
      state.frames_ingested.store(index);
    }
    if (live_ingest.fetch_sub(1) == 1) control_q.close();
    log_.record(now_tp(), "runtime/ingest",
                "worker " + std::to_string(worker) + " done");
  };

  // A frame that overflowed the detect queue still produces a report — the
  // serving-layer twin of the paper's reconfiguration drop: the vehicle
  // engine misses the frame, the static pedestrian partition does not.
  const auto emit_dropped = [&](DetectTask&& task) {
    streams[static_cast<std::size_t>(task.stream)]
        ->backpressure_drops.fetch_add(1);
    metrics_.detect.add_dropped();
    core::ControlStep step = task.step;
    step.record.vehicle_processed = false;
    ReportTask out;
    out.stream = task.stream;
    out.report = system_->evaluate_frame(step, task.meta);
    report_q.push(std::move(out));
  };

  // --- stage 2: control (per-stream sequential) ------------------------
  const auto control_loop = [&](int worker) {
    log_.record(now_tp(), "runtime/control",
                "worker " + std::to_string(worker) + " start");
    while (std::optional<FrameTask> task = control_q.pop()) {
      StreamState& state = *streams[static_cast<std::size_t>(task->stream)];
      std::unique_lock<std::mutex> lock(state.mutex);
      if (task->index != state.next_index) {
        // Another worker holds an earlier frame of this stream; park this
        // one until the stream catches up.
        state.pending.emplace(task->index, std::move(task->meta));
        continue;
      }
      data::SequenceFrame meta = std::move(task->meta);
      for (;;) {
        const obs::ScopedSpan span("control_frame", "runtime/control");
        const Clock::time_point t0 = Clock::now();
        core::ControlStep step = state.session.control_step(meta);
        metrics_.control.record_latency(Clock::now() - t0);
        metrics_.control.add_processed();
        ++state.next_index;

        DetectTask dt;
        dt.stream = task->stream;
        dt.step = step;
        dt.meta = std::move(meta);
        // The queue hands any dropped task back (the stale one under
        // DropOldest, this one under DropNewest) so no frame vanishes.
        std::optional<DetectTask> displaced;
        detect_q.push(std::move(dt), &displaced);
        if (displaced) emit_dropped(std::move(*displaced));

        const auto it = state.pending.find(state.next_index);
        if (it == state.pending.end()) break;
        meta = std::move(it->second);
        state.pending.erase(it);
      }
    }
    if (live_control.fetch_sub(1) == 1) detect_q.close();
    log_.record(now_tp(), "runtime/control",
                "worker " + std::to_string(worker) + " done");
  };

  // --- stage 3: detect (parallel, const) -------------------------------
  const auto detect_loop = [&](int worker) {
    log_.record(now_tp(), "runtime/detect",
                "worker " + std::to_string(worker) + " start");
    while (std::optional<DetectTask> task = detect_q.pop()) {
      const obs::ScopedSpan span("detect_frame", "runtime/detect");
      const Clock::time_point t0 = Clock::now();
      ReportTask out;
      out.stream = task->stream;
      out.report = system_->evaluate_frame(task->step, task->meta);
      if (config_.simulated_accel_ms > 0.0 &&
          task->step.record.vehicle_processed) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            config_.simulated_accel_ms));
      }
      metrics_.detect.record_latency(Clock::now() - t0);
      metrics_.detect.add_processed();
      report_q.push(std::move(out));
    }
    if (live_detect.fetch_sub(1) == 1) report_q.close();
    log_.record(now_tp(), "runtime/detect",
                "worker " + std::to_string(worker) + " done");
  };

  // --- stage 4: report collector ---------------------------------------
  const auto collect_loop = [&] {
    log_.record(now_tp(), "runtime/report", "collector start");
    while (std::optional<ReportTask> task = report_q.pop()) {
      const obs::ScopedSpan span("collect_report", "runtime/report");
      const Clock::time_point t0 = Clock::now();
      auto& stream_slots = slots[static_cast<std::size_t>(task->stream)];
      auto& stream_filled = filled[static_cast<std::size_t>(task->stream)];
      const auto index = static_cast<std::size_t>(task->report.index);
      if (index >= stream_slots.size()) {
        stream_slots.resize(index + 1);
        stream_filled.resize(index + 1, false);
      }
      stream_slots[index] = std::move(task->report);
      stream_filled[index] = true;
      metrics_.report.record_latency(Clock::now() - t0);
      metrics_.report.add_processed();
    }
    log_.record(now_tp(), "runtime/report", "collector done");
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config_.ingest_workers +
                                           config_.control_workers +
                                           config_.detect_workers) +
                  1);
  for (int i = 0; i < config_.ingest_workers; ++i)
    workers.emplace_back(ingest_loop, i);
  for (int i = 0; i < config_.control_workers; ++i)
    workers.emplace_back(control_loop, i);
  for (int i = 0; i < config_.detect_workers; ++i)
    workers.emplace_back(detect_loop, i);
  workers.emplace_back(collect_loop);
  for (std::thread& t : workers) t.join();

  // Queue-depth high-water marks become stage attributes.
  metrics_.control.update_queue_high_water(control_q.stats().high_water);
  metrics_.detect.update_queue_high_water(detect_q.stats().high_water);
  metrics_.report.update_queue_high_water(report_q.stats().high_water);

  // --- assemble per-stream results -------------------------------------
  for (int s = 0; s < n_streams; ++s) {
    const auto us = static_cast<std::size_t>(s);
    StreamState& state = *streams[us];
    StreamResult& result = results[us];
    const int expected = state.frames_ingested.load();
    if (static_cast<int>(slots[us].size()) != expected)
      throw std::logic_error("StreamServer: stream " + std::to_string(s) +
                             " lost frames (" +
                             std::to_string(slots[us].size()) + "/" +
                             std::to_string(expected) + ")");
    for (std::size_t i = 0; i < filled[us].size(); ++i)
      if (!filled[us][i])
        throw std::logic_error("StreamServer: stream " + std::to_string(s) +
                               " missing frame " + std::to_string(i));
    result.report.frames = std::move(slots[us]);
    result.report.reconfigs = state.session.reconfigs();
    result.report.log = state.session.log();
    result.backpressure_drops = state.backpressure_drops.load();
    std::ostringstream os;
    os << "stream " << s << " complete: " << result.report.frames.size()
       << " frames, " << result.report.reconfigs.size() << " reconfigs, "
       << result.backpressure_drops << " backpressure drops";
    log_.record(now_tp(), "runtime/server", os.str());
  }
  return results;
}

}  // namespace avd::runtime
