#include "avd/runtime/thread_pool.hpp"

#include <algorithm>

namespace avd::runtime {

ThreadPool::ThreadPool(int threads) {
  threads_.reserve(static_cast<std::size_t>(std::max(0, threads)));
  for (int i = 0; i < threads; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::run_one(Batch& batch) {
  const int i = batch.next.fetch_add(1, std::memory_order_relaxed);
  if (i >= batch.count) return false;
  try {
    (*batch.fn)(i);
  } catch (...) {
    std::lock_guard<std::mutex> lock(batch.done_mutex);
    if (!batch.error) batch.error = std::current_exception();
  }
  if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      batch.count) {
    // Last task out wakes the batch's caller. Taking the lock orders the
    // notify after the caller's predicate check, so the wakeup cannot be
    // lost between "completed is not yet count" and the wait.
    std::lock_guard<std::mutex> lock(batch.done_mutex);
    batch.done_cv.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Drop exhausted batches from the front; their caller owns completion.
    while (!batches_.empty() &&
           batches_.front()->next.load(std::memory_order_relaxed) >=
               batches_.front()->count)
      batches_.pop_front();
    if (batches_.empty()) {
      if (stop_) return;
      cv_.wait(lock);
      continue;
    }
    const std::shared_ptr<Batch> batch = batches_.front();
    lock.unlock();
    while (run_one(*batch)) {
    }
    lock.lock();
  }
}

void ThreadPool::run_indexed(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->count = count;
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batches_.push_back(batch);
    }
    cv_.notify_all();
  }
  // The caller helps until no index is left to claim...
  while (run_one(*batch)) {
  }
  // ...then waits for tasks claimed by pool workers to finish.
  {
    std::unique_lock<std::mutex> lock(batch->done_mutex);
    batch->done_cv.wait(lock, [&] {
      return batch->completed.load(std::memory_order_acquire) >= batch->count;
    });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace avd::runtime
