#include "avd/runtime/sharded_server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "avd/obs/build_info.hpp"
#include "avd/obs/metrics.hpp"

namespace avd::runtime {
namespace {

obs::HealthState worse(obs::HealthState a, obs::HealthState b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

}  // namespace

std::uint64_t stable_stream_hash(std::string_view name) noexcept {
  // FNV-1a, 64-bit: offset basis / prime from the reference parameters.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

ShardedServer::ShardedServer(const core::AdaptiveSystem& system,
                             ShardedServerConfig config)
    : system_(&system), config_(std::move(config)) {
  config_.shards = std::max(1, config_.shards);
  // The fleet has one ops surface; a shard template smuggling its own in
  // would race M listeners for one port.
  config_.shard.ops.enabled = false;
  if (config_.ops_enabled) {
    ops_ = std::make_unique<obs::OpsServer>(config_.ops);
    install_ops_endpoints();
    if (!ops_->start())
      throw std::runtime_error("ShardedServer: ops server failed to bind " +
                               config_.ops.bind_address + ":" +
                               std::to_string(config_.ops.port));
  }
}

ShardedServer::~ShardedServer() {
  // Handler threads walk shard_servers_; take the listener down first.
  if (ops_) ops_->stop();
}

int ShardedServer::shard_of(const std::string& name) const {
  const auto it = config_.assign_override.find(name);
  if (it != config_.assign_override.end())
    return std::clamp(it->second, 0, config_.shards - 1);
  return static_cast<int>(stable_stream_hash(name) %
                          static_cast<std::uint64_t>(config_.shards));
}

std::vector<StreamResult> ShardedServer::serve_sequences(
    const std::vector<data::DriveSequence>& sequences) {
  std::vector<NamedStream> streams;
  streams.reserve(sequences.size());
  for (std::size_t i = 0; i < sequences.size(); ++i)
    streams.push_back({"s" + std::to_string(i), make_source(sequences[i])});
  return serve(std::move(streams));
}

std::vector<StreamResult> ShardedServer::serve(
    std::vector<NamedStream> streams) {
  const int m_shards = config_.shards;
  serve_count_.fetch_add(1);

  // --- gather: deterministic placement ---------------------------------
  struct Placement {
    int shard = 0;
    int local = 0;  ///< index within the shard's source list
  };
  std::vector<Placement> place(streams.size());
  std::vector<std::vector<std::unique_ptr<FrameSource>>> shard_sources(
      static_cast<std::size_t>(m_shards));
  std::vector<std::vector<std::string>> shard_names(
      static_cast<std::size_t>(m_shards));
  std::vector<int> assignment(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const int m = shard_of(streams[i].name);
    const auto um = static_cast<std::size_t>(m);
    place[i] = {m, static_cast<int>(shard_sources[um].size())};
    assignment[i] = m;
    shard_names[um].push_back(streams[i].name);
    shard_sources[um].push_back(std::move(streams[i].source));
  }

  // --- build this serve's shard servers --------------------------------
  // Published under the lock so the ops handlers never see a half-built
  // fleet; old servers (previous serve) are torn down here too.
  {
    std::lock_guard<std::mutex> lock(shards_mutex_);
    shard_servers_.clear();
    shard_stream_names_ = shard_names;
    last_assignment_ = assignment;
    for (int m = 0; m < m_shards; ++m) {
      StreamServerConfig sc = config_.shard;
      sc.ops.enabled = false;
      sc.metric_labels.emplace_back("shard", std::to_string(m));
      sc.stream_names = shard_names[static_cast<std::size_t>(m)];
      shard_servers_.push_back(
          std::make_unique<StreamServer>(*system_, sc));
      if (config_.fleet_pressure_fraction > 0.0)
        shard_servers_.back()->set_health_callback(
            [this](int, const obs::HealthTransition&) {
              update_fleet_pressure();
            });
    }
  }

  // --- serve all shards concurrently -----------------------------------
  // One thread per shard; each StreamServer spins its own stage workers
  // (and leans on the shared scan_pool when the template installs one).
  std::vector<std::vector<StreamResult>> shard_results(
      static_cast<std::size_t>(m_shards));
  std::vector<std::thread> shard_threads;
  shard_threads.reserve(static_cast<std::size_t>(m_shards));
  for (int m = 0; m < m_shards; ++m) {
    shard_threads.emplace_back([this, m, &shard_results, &shard_sources] {
      const auto um = static_cast<std::size_t>(m);
      shard_results[um] =
          shard_servers_[um]->serve(std::move(shard_sources[um]));
    });
  }
  for (std::thread& t : shard_threads) t.join();

  // Fold the shard= x stream= leaves into per-shard marginals and the
  // fleet base (idempotent on top of the per-shard serves' own rollups).
  obs::MetricsRegistry::global().rollup();

  // --- scatter: restore input order ------------------------------------
  std::vector<StreamResult> out(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    out[i] = std::move(
        shard_results[static_cast<std::size_t>(place[i].shard)]
                     [static_cast<std::size_t>(place[i].local)]);
    out[i].stream = static_cast<int>(i);
  }
  return out;
}

std::vector<int> ShardedServer::last_assignment() const {
  std::lock_guard<std::mutex> lock(shards_mutex_);
  return last_assignment_;
}

obs::HealthState ShardedServer::fleet_health() const {
  obs::HealthState worst = obs::HealthState::Healthy;
  std::lock_guard<std::mutex> lock(shards_mutex_);
  for (const auto& shard : shard_servers_) {
    const std::vector<obs::HealthState> states = shard->live_stream_health();
    worst = worse(worst, obs::worst_of(states));
  }
  return worst;
}

void ShardedServer::update_fleet_pressure() {
  // Fleet view: degraded-or-worse fraction across EVERY shard's streams.
  std::size_t total = 0, hot = 0;
  std::lock_guard<std::mutex> lock(shards_mutex_);
  for (const auto& shard : shard_servers_) {
    for (const obs::HealthState s : shard->live_stream_health()) {
      ++total;
      if (s != obs::HealthState::Healthy) ++hot;
    }
  }
  const bool pressure =
      total > 0 && static_cast<double>(hot) >=
                       config_.fleet_pressure_fraction *
                           static_cast<double>(total);
  for (const auto& shard : shard_servers_)
    if (AdmissionController* admission = shard->admission())
      admission->set_fleet_pressure(pressure);
}

// The fleet introspection surface. Handlers run on the front door's pool
// threads concurrently with serve(); everything crosses shards_mutex_ or
// is internally thread-safe (registry, shard accessors).
void ShardedServer::install_ops_endpoints() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();

  // One scrape answers for the whole fleet: prometheus_response folds the
  // registry first, so shard= marginals and the fleet base are fresh.
  ops_->handle("/metricsz", [&registry](const obs::HttpRequest&) {
    return obs::prometheus_response(registry);
  });
  ops_->handle("/metricsz.json", [&registry](const obs::HttpRequest&) {
    return obs::metrics_json_response(registry);
  });

  // Fleet health: worst-of across every shard; 503 when UNHEALTHY, so the
  // front door slots straight into a load balancer's readiness probe.
  ops_->handle("/healthz", [this](const obs::HttpRequest&) {
    std::ostringstream os;
    obs::HealthState fleet = obs::HealthState::Healthy;
    {
      std::lock_guard<std::mutex> lock(shards_mutex_);
      os << "{\"shards\":[";
      for (std::size_t m = 0; m < shard_servers_.size(); ++m) {
        const StreamServer& shard = *shard_servers_[m];
        const std::vector<obs::HealthState> states =
            shard.live_stream_health();
        fleet = worse(fleet, obs::worst_of(states));
        AdmissionController* admission = shard.admission();
        if (m != 0) os << ',';
        os << "{\"shard\":" << m << ",\"streams\":[";
        for (std::size_t s = 0; s < states.size(); ++s) {
          if (s != 0) os << ',';
          os << "{\"stream\":\""
             << (m < shard_stream_names_.size() &&
                         s < shard_stream_names_[m].size()
                     ? shard_stream_names_[m][s]
                     : std::to_string(s))
             << "\",\"state\":\"" << obs::to_string(states[s]) << '"';
          if (admission != nullptr)
            os << ",\"degrade_level\":"
               << static_cast<int>(admission->level(static_cast<int>(s)));
          os << '}';
        }
        os << "]}";
      }
      os << "],\"fleet\":\"" << obs::to_string(fleet) << "\"}";
    }
    obs::HttpResponse res;
    res.status = fleet == obs::HealthState::Unhealthy ? 503 : 200;
    res.content_type = "application/json";
    res.body = os.str();
    return res;
  });

  ops_->handle("/statusz", [this, &registry](const obs::HttpRequest&) {
    obs::publish_process_metrics(registry);
    std::ostringstream os;
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time_)
            .count();
    os << "{\"role\":\"sharded-front-door\",\"build\":{\"version\":\""
       << obs::build_version() << "\",\"mode\":\"" << obs::build_mode()
       << "\"},\"uptime_seconds\":" << uptime
       << ",\"serves\":" << serve_count_.load()
       << ",\"config\":{\"shards\":" << config_.shards
       << ",\"fleet_pressure_fraction\":" << config_.fleet_pressure_fraction
       << ",\"cross_stream_batching\":"
       << (config_.shard.cross_stream_batching ? "true" : "false")
       << ",\"detect_workers\":" << config_.shard.detect_workers
       << "},\"shards\":[";
    {
      std::lock_guard<std::mutex> lock(shards_mutex_);
      for (std::size_t m = 0; m < shard_stream_names_.size(); ++m) {
        if (m != 0) os << ',';
        os << "{\"shard\":" << m
           << ",\"streams\":" << shard_stream_names_[m].size() << '}';
      }
    }
    os << "]}";
    return obs::HttpResponse{200, "application/json", os.str()};
  });
}

}  // namespace avd::runtime
