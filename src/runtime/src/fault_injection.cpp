#include "avd/runtime/fault_injection.hpp"

#include <chrono>
#include <limits>
#include <string>
#include <thread>

namespace avd::runtime {
namespace {

/// splitmix64: tiny, seedable, no global state — all the chaos plan needs.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool in_range(const FaultSpec& spec, int stream, int frame) {
  if (spec.stream != -1 && spec.stream != stream) return false;
  return frame >= spec.from_frame && frame < spec.from_frame + spec.count;
}

/// The seed decides *which* non-finite value corrupts a frame, so garbage
/// is varied but reproducible.
double garbage_light_level(std::uint64_t seed, int stream, int frame) {
  std::uint64_t state = seed ^ (static_cast<std::uint64_t>(stream) << 32) ^
                        static_cast<std::uint64_t>(frame);
  switch (splitmix64(state) % 3) {
    case 0: return std::numeric_limits<double>::quiet_NaN();
    case 1: return std::numeric_limits<double>::infinity();
    default: return -std::numeric_limits<double>::infinity();
  }
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::SourceStall: return "source-stall";
    case FaultKind::SourceEof: return "source-eof";
    case FaultKind::SourceError: return "source-error";
    case FaultKind::GarbageFrame: return "garbage-frame";
    case FaultKind::DetectSlowdown: return "detect-slowdown";
    case FaultKind::ForceDegrade: return "force-degrade";
  }
  return "?";
}

FaultPlan FaultPlan::chaos(std::uint64_t seed, int n_streams, int n_frames) {
  FaultPlan plan;
  plan.seed = seed;
  std::uint64_t state = seed * 0x2545f4914f6cdd1dull + 1;
  for (int s = 0; s < n_streams; ++s) {
    // Roughly half the streams get one fault each; magnitudes stay small so
    // the chaos suite exercises paths, not wall-clock.
    if (splitmix64(state) % 2 != 0) continue;
    FaultSpec spec;
    spec.stream = s;
    spec.from_frame =
        n_frames > 1 ? static_cast<int>(splitmix64(state) %
                                        static_cast<std::uint64_t>(n_frames)) /
                           2
                     : 0;
    spec.count = 1 + static_cast<int>(splitmix64(state) % 3);
    switch (splitmix64(state) % 5) {
      case 0:
        spec.kind = FaultKind::SourceStall;
        spec.magnitude = 1.0 + static_cast<double>(splitmix64(state) % 4);
        break;
      case 1:
        spec.kind = FaultKind::SourceError;
        spec.count = 1 + static_cast<int>(splitmix64(state) % 2);
        break;
      case 2: spec.kind = FaultKind::GarbageFrame; break;
      case 3:
        spec.kind = FaultKind::DetectSlowdown;
        spec.magnitude = 1.0 + static_cast<double>(splitmix64(state) % 4);
        break;
      default:
        spec.kind = FaultKind::ForceDegrade;
        spec.magnitude = static_cast<double>(1 + splitmix64(state) % 3);
        break;
    }
    plan.faults.push_back(spec);
  }
  return plan;
}

// Not in the anonymous namespace: FaultInjector's friend declaration names
// avd::runtime::FaultySource.
/// FrameSource decorator applying the source-side fault kinds.
class FaultySource final : public FrameSource {
 public:
  FaultySource(FaultInjector* injector, int stream,
               std::unique_ptr<FrameSource> inner)
      : injector_(injector), stream_(stream), inner_(std::move(inner)) {}

  [[nodiscard]] int frame_count() const override {
    return inner_->frame_count();
  }

  [[nodiscard]] std::optional<data::SequenceFrame> next() override {
    FaultInjector& fi = *injector_;
    const int pos = position_;
    double stall_ms = 0.0;
    bool eof = false;
    bool garbage = false;
    {
      std::lock_guard<std::mutex> lock(fi.mutex_);
      for (std::size_t i = 0; i < fi.plan_.faults.size(); ++i) {
        const FaultSpec& spec = fi.plan_.faults[i];
        switch (spec.kind) {
          case FaultKind::SourceStall:
            if (in_range(spec, stream_, pos)) {
              stall_ms += spec.magnitude;
              ++fi.counters_.stalls;
            }
            break;
          case FaultKind::SourceEof:
            if ((spec.stream == -1 || spec.stream == stream_) &&
                pos >= spec.from_frame) {
              if (!eof_counted_) {
                ++fi.counters_.eofs;
                eof_counted_ = true;
              }
              eof = true;
            }
            break;
          case FaultKind::SourceError:
            if ((spec.stream == -1 || spec.stream == stream_) &&
                pos == spec.from_frame && fi.error_attempts_left_[i] > 0) {
              --fi.error_attempts_left_[i];
              ++fi.counters_.errors;
              throw TransientSourceError(
                  "injected source error: stream " + std::to_string(stream_) +
                  " frame " + std::to_string(pos));
            }
            break;
          case FaultKind::GarbageFrame:
            if (in_range(spec, stream_, pos)) {
              garbage = true;
              ++fi.counters_.garbage;
            }
            break;
          case FaultKind::DetectSlowdown:
          case FaultKind::ForceDegrade:
            break;  // pipeline-side kinds; not source faults
        }
      }
    }
    if (eof) return std::nullopt;
    if (stall_ms > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(stall_ms));
    std::optional<data::SequenceFrame> frame = inner_->next();
    ++position_;
    if (frame && garbage)
      frame->light_level = garbage_light_level(fi.plan_.seed, stream_, pos);
    return frame;
  }

 private:
  FaultInjector* injector_;
  int stream_;
  std::unique_ptr<FrameSource> inner_;
  int position_ = 0;  ///< source position (pre-validation; single-threaded)
  bool eof_counted_ = false;
};

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  error_attempts_left_.reserve(plan_.faults.size());
  for (const FaultSpec& spec : plan_.faults)
    error_attempts_left_.push_back(
        spec.kind == FaultKind::SourceError ? std::max(1, spec.count) : 0);
}

std::unique_ptr<FrameSource> FaultInjector::wrap(
    int stream, std::unique_ptr<FrameSource> inner) {
  return std::make_unique<FaultySource>(this, stream, std::move(inner));
}

double FaultInjector::detect_slowdown_ms(int stream, int frame) const {
  double ms = 0.0;
  bool slowed = false;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const FaultSpec& spec : plan_.faults) {
    if (spec.kind != FaultKind::DetectSlowdown) continue;
    if (in_range(spec, stream, frame)) {
      ms += spec.magnitude;
      slowed = true;
    }
  }
  if (slowed) ++counters_.slowdown_frames;
  return ms;
}

std::optional<int> FaultInjector::forced_degrade_level(int stream,
                                                       int frame) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<int> level;
  for (const FaultSpec& spec : plan_.faults) {
    if (spec.kind != FaultKind::ForceDegrade) continue;
    if (in_range(spec, stream, frame))
      level = static_cast<int>(spec.magnitude);
  }
  return level;
}

FaultInjector::Counters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace avd::runtime
