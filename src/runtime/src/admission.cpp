#include "avd/runtime/admission.hpp"

#include <algorithm>
#include <cmath>

namespace avd::runtime {
namespace {

constexpr int kLevels = 4;

DegradeLevel clamp_level(int raw) {
  return static_cast<DegradeLevel>(std::clamp(raw, 0, kLevels - 1));
}

DegradeLevel step_down(DegradeLevel level) {
  return clamp_level(static_cast<int>(level) - 1);
}

DegradeLevel step_up(DegradeLevel level) {
  return clamp_level(static_cast<int>(level) + 1);
}

}  // namespace

const char* to_string(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::Full: return "full";
    case DegradeLevel::CoarseScan: return "coarse-scan";
    case DegradeLevel::SkipCoast: return "skip-coast";
    case DegradeLevel::Shed: return "shed";
  }
  return "?";
}

AdmissionController::AdmissionController(int n_streams, AdmissionConfig config)
    : config_(config) {
  config_.ladder.coarse_stride_multiplier =
      std::max(1, config_.ladder.coarse_stride_multiplier);
  config_.ladder.coarse_max_levels =
      std::max(1, config_.ladder.coarse_max_levels);
  config_.ladder.skip_modulus = std::max(2, config_.ladder.skip_modulus);
  config_.ladder.escalate_after_windows =
      std::max(1, config_.ladder.escalate_after_windows);
  config_.ladder.max_degraded_level =
      std::clamp(config_.ladder.max_degraded_level, 1, kLevels - 1);
  config_.ladder.recover_after_windows =
      std::max(1, config_.ladder.recover_after_windows);
  streams_.resize(static_cast<std::size_t>(std::max(0, n_streams)));
  for (StreamSlot& slot : streams_) slot.tokens = config_.bucket.burst;
}

void AdmissionController::set_transition_callback(TransitionCallback cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  callback_ = std::move(cb);
}

void AdmissionController::set_level_locked(
    StreamSlot& slot, int stream, DegradeLevel to, int frame,
    const char* reason, std::uint64_t t_ns,
    std::vector<DegradeTransition>& fired) {
  if (slot.level == to) return;
  DegradeTransition t;
  t.stream = stream;
  t.from = slot.level;
  t.to = to;
  t.frame = frame;
  t.reason = reason;
  t.t_ns = t_ns;
  slot.level = to;
  slot.transitions.push_back(t);
  fired.push_back(std::move(t));
}

AdmissionDecision AdmissionController::decide(int stream, int frame_index,
                                              std::uint64_t now_ns,
                                              std::optional<int> forced_level) {
  AdmissionDecision d;
  std::vector<DegradeTransition> fired;
  TransitionCallback callback;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    StreamSlot& slot = streams_.at(static_cast<std::size_t>(stream));
    if (!slot.sticky) {
      if (forced_level) {
        // A fault plan pins the level from this frame until released.
        set_level_locked(slot, stream, clamp_level(*forced_level), frame_index,
                         "fault-plan", now_ns, fired);
        slot.plan_forced = true;
      } else if (slot.plan_forced) {
        // Plan released: fall back to whatever the health machine wants.
        set_level_locked(slot, stream, slot.health_target, frame_index,
                         "fault-plan-release", now_ns, fired);
        slot.plan_forced = false;
      }
    }
    d.level = slot.level;
    if (slot.level == DegradeLevel::Shed) {
      d.admit = false;
      d.shed_reason = "shed-level";
      ++slot.stats.shed;
    } else if (config_.bucket.rate_fps > 0.0) {
      // Refill on the caller's timeline so tests can drive it synthetically.
      if (!slot.bucket_primed) {
        slot.bucket_primed = true;
        slot.bucket_refill_ns = now_ns;
      }
      const std::uint64_t elapsed =
          now_ns >= slot.bucket_refill_ns ? now_ns - slot.bucket_refill_ns : 0;
      slot.bucket_refill_ns = now_ns;
      slot.tokens = std::min(
          config_.bucket.burst,
          slot.tokens +
              static_cast<double>(elapsed) * config_.bucket.rate_fps / 1e9);
      if (slot.tokens < 1.0) {
        d.admit = false;
        d.shed_reason = "token-bucket";
        ++slot.stats.shed;
        ++slot.stats.shed_by_bucket;
      } else {
        slot.tokens -= 1.0;
      }
    }
    if (d.admit) {
      ++slot.stats.admitted;
      if (slot.level == DegradeLevel::SkipCoast) {
        d.coast = (frame_index % config_.ladder.skip_modulus) != 0;
        if (d.coast)
          ++slot.stats.coasted;
        else
          ++slot.stats.degraded_scans;
      } else if (slot.level == DegradeLevel::CoarseScan) {
        ++slot.stats.degraded_scans;
      }
    }
    callback = callback_;
  }
  if (callback)
    for (const DegradeTransition& t : fired) callback(t);
  return d;
}

void AdmissionController::on_health_windows(
    const std::vector<obs::HealthState>& states) {
  std::vector<DegradeTransition> fired;
  TransitionCallback callback;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = std::min(states.size(), streams_.size());
    // Fleet pressure: enough of the fleet degraded at once and escalation
    // skips the per-stream dwell. The external flag carries the same signal
    // from across shards (set by the sharded front door).
    bool fleet_pressure = external_fleet_pressure_;
    if (!fleet_pressure && config_.ladder.fleet_escalate_fraction > 0.0 &&
        n > 0) {
      std::size_t hot = 0;
      for (std::size_t s = 0; s < n; ++s)
        if (states[s] != obs::HealthState::Healthy) ++hot;
      fleet_pressure =
          static_cast<double>(hot) >=
          config_.ladder.fleet_escalate_fraction * static_cast<double>(n);
    }
    for (std::size_t s = 0; s < n; ++s) {
      StreamSlot& slot = streams_[s];
      const char* reason = "health";
      switch (states[s]) {
        case obs::HealthState::Unhealthy:
          slot.healthy_streak = 0;
          slot.degraded_streak = 0;
          slot.health_target = DegradeLevel::Shed;
          reason = "health:unhealthy";
          break;
        case obs::HealthState::Degraded:
          slot.healthy_streak = 0;
          ++slot.degraded_streak;
          reason = fleet_pressure ? "health:fleet-pressure" : "health:degraded";
          if (slot.health_target == DegradeLevel::Full) {
            // Fast worsen: the first degraded window drops fidelity.
            slot.health_target = DegradeLevel::CoarseScan;
            slot.degraded_streak = 0;
          } else if (static_cast<int>(slot.health_target) <
                         config_.ladder.max_degraded_level &&
                     (fleet_pressure ||
                      slot.degraded_streak >=
                          config_.ladder.escalate_after_windows)) {
            slot.health_target = step_up(slot.health_target);
            slot.degraded_streak = 0;
          }
          break;
        case obs::HealthState::Healthy:
          slot.degraded_streak = 0;
          ++slot.healthy_streak;
          reason = "health:recovered";
          if (slot.health_target != DegradeLevel::Full &&
              slot.healthy_streak >= config_.ladder.recover_after_windows) {
            // Slow recover: one rung per streak of healthy windows.
            slot.health_target = step_down(slot.health_target);
            slot.healthy_streak = 0;
          }
          break;
      }
      if (!slot.sticky && !slot.plan_forced && slot.level != slot.health_target)
        set_level_locked(slot, static_cast<int>(s), slot.health_target, -1,
                         reason, 0, fired);
    }
    callback = callback_;
  }
  if (callback)
    for (const DegradeTransition& t : fired) callback(t);
}

void AdmissionController::set_fleet_pressure(bool pressure) {
  std::lock_guard<std::mutex> lock(mutex_);
  external_fleet_pressure_ = pressure;
}

void AdmissionController::force_level(int stream, DegradeLevel level,
                                      const std::string& reason) {
  std::vector<DegradeTransition> fired;
  TransitionCallback callback;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    StreamSlot& slot = streams_.at(static_cast<std::size_t>(stream));
    slot.sticky = true;
    slot.health_target = level;
    set_level_locked(slot, stream, level, -1, reason.c_str(), 0, fired);
    callback = callback_;
  }
  if (callback)
    for (const DegradeTransition& t : fired) callback(t);
}

DegradeLevel AdmissionController::level(int stream) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return streams_.at(static_cast<std::size_t>(stream)).level;
}

AdmissionStats AdmissionController::stats(int stream) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return streams_.at(static_cast<std::size_t>(stream)).stats;
}

std::vector<DegradeTransition> AdmissionController::transitions(
    int stream) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return streams_.at(static_cast<std::size_t>(stream)).transitions;
}

std::vector<DegradeTransition> AdmissionController::transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DegradeTransition> out;
  for (const StreamSlot& slot : streams_)
    out.insert(out.end(), slot.transitions.begin(), slot.transitions.end());
  return out;
}

}  // namespace avd::runtime
