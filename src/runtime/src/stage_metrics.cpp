#include "avd/runtime/stage_metrics.hpp"

#include <bit>
#include <sstream>

namespace avd::runtime {

int LatencyHistogram::bin_index(std::uint64_t ns) {
  if (ns < kLinearBins) return static_cast<int>(ns);
  const int octave = std::bit_width(ns) - 1;  // >= 4 here
  const int sub =
      static_cast<int>((ns >> (octave - 3)) & (kSubBuckets - 1));
  int index = kLinearBins + (octave - 4) * kSubBuckets + sub;
  if (index >= kBins) index = kBins - 1;
  return index;
}

std::uint64_t LatencyHistogram::bin_value(int index) {
  if (index < kLinearBins) return static_cast<std::uint64_t>(index);
  const int octave = 4 + (index - kLinearBins) / kSubBuckets;
  const int sub = (index - kLinearBins) % kSubBuckets;
  const std::uint64_t base = 1ull << octave;
  const std::uint64_t step = base / kSubBuckets;
  // Midpoint of [base + sub*step, base + (sub+1)*step).
  return base + static_cast<std::uint64_t>(sub) * step + step / 2;
}

std::uint64_t LatencyHistogram::percentile_ns(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(total) + 0.5);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBins; ++i) {
    cumulative += bins_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (cumulative >= target && cumulative > 0) return bin_value(i);
  }
  return max_ns();
}

StageSnapshot StageMetrics::snapshot() const {
  StageSnapshot s;
  s.stage = name_;
  s.processed = processed();
  s.dropped = dropped();
  s.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  s.count = latency_.count();
  s.mean_ns = latency_.mean_ns();
  s.p50_ns = latency_.percentile_ns(0.50);
  s.p95_ns = latency_.percentile_ns(0.95);
  s.p99_ns = latency_.percentile_ns(0.99);
  s.max_ns = latency_.max_ns();
  return s;
}

std::vector<StageSnapshot> RuntimeMetrics::snapshot() const {
  return {ingest.snapshot(), control.snapshot(), detect.snapshot(),
          report.snapshot()};
}

void append_metrics_events(const RuntimeMetrics& metrics, soc::TimePoint at,
                           soc::EventLog& log) {
  for (const StageSnapshot& s : metrics.snapshot()) {
    std::ostringstream os;
    os << "processed=" << s.processed << " dropped=" << s.dropped
       << " queue_hw=" << s.queue_high_water << " p50_us=" << (s.p50_ns / 1000)
       << " p95_us=" << (s.p95_ns / 1000) << " p99_us=" << (s.p99_ns / 1000)
       << " max_us=" << (s.max_ns / 1000);
    log.record(at, "runtime/" + s.stage, os.str());
  }
}

std::string metrics_to_json(const RuntimeMetrics& metrics) {
  std::ostringstream os;
  os << "{\"stages\":[";
  bool first = true;
  for (const StageSnapshot& s : metrics.snapshot()) {
    if (!first) os << ',';
    first = false;
    os << "{\"stage\":\"" << s.stage << "\",\"processed\":" << s.processed
       << ",\"dropped\":" << s.dropped
       << ",\"queue_high_water\":" << s.queue_high_water
       << ",\"samples\":" << s.count << ",\"mean_ns\":" << s.mean_ns
       << ",\"p50_ns\":" << s.p50_ns << ",\"p95_ns\":" << s.p95_ns
       << ",\"p99_ns\":" << s.p99_ns << ",\"max_ns\":" << s.max_ns << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace avd::runtime
