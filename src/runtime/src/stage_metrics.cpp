#include "avd/runtime/stage_metrics.hpp"

#include <sstream>

namespace avd::runtime {

StageSnapshot StageMetrics::snapshot() const {
  StageSnapshot s;
  s.stage = name_;
  s.processed = processed();
  s.dropped = dropped();
  s.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  const obs::HistogramSummary h = latency_.summary();
  s.count = h.count;
  s.mean_ns = h.mean_ns;
  s.p50_ns = h.p50_ns;
  s.p95_ns = h.p95_ns;
  s.p99_ns = h.p99_ns;
  s.max_ns = h.max_ns;
  return s;
}

std::vector<StageSnapshot> RuntimeMetrics::snapshot() const {
  return {ingest.snapshot(), control.snapshot(), detect.snapshot(),
          report.snapshot()};
}

void append_metrics_events(const RuntimeMetrics& metrics, soc::TimePoint at,
                           soc::EventLog& log) {
  for (const StageSnapshot& s : metrics.snapshot()) {
    std::ostringstream os;
    os << "processed=" << s.processed << " dropped=" << s.dropped
       << " queue_hw=" << s.queue_high_water << " p50_us=" << (s.p50_ns / 1000)
       << " p95_us=" << (s.p95_ns / 1000) << " p99_us=" << (s.p99_ns / 1000)
       << " max_us=" << (s.max_ns / 1000);
    log.record(at, "runtime/" + s.stage, os.str());
  }
}

void publish_runtime_metrics(const RuntimeMetrics& metrics,
                             obs::MetricsRegistry& registry,
                             const std::string& prefix) {
  for (const StageSnapshot& s : metrics.snapshot()) {
    const std::string base = prefix + "." + s.stage + ".";
    registry.gauge(base + "processed").set(static_cast<double>(s.processed));
    registry.gauge(base + "dropped").set(static_cast<double>(s.dropped));
    registry.gauge(base + "queue_high_water")
        .set(static_cast<double>(s.queue_high_water));
    registry.gauge(base + "latency_p50_ns").set(static_cast<double>(s.p50_ns));
    registry.gauge(base + "latency_p95_ns").set(static_cast<double>(s.p95_ns));
    registry.gauge(base + "latency_p99_ns").set(static_cast<double>(s.p99_ns));
    registry.gauge(base + "latency_max_ns").set(static_cast<double>(s.max_ns));
  }
}

std::string metrics_to_json(const RuntimeMetrics& metrics) {
  std::ostringstream os;
  os << "{\"stages\":[";
  bool first = true;
  for (const StageSnapshot& s : metrics.snapshot()) {
    if (!first) os << ',';
    first = false;
    os << "{\"stage\":\"" << s.stage << "\",\"processed\":" << s.processed
       << ",\"dropped\":" << s.dropped
       << ",\"queue_high_water\":" << s.queue_high_water
       << ",\"samples\":" << s.count << ",\"mean_ns\":" << s.mean_ns
       << ",\"p50_ns\":" << s.p50_ns << ",\"p95_ns\":" << s.p95_ns
       << ",\"p99_ns\":" << s.p99_ns << ",\"max_ns\":" << s.max_ns << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace avd::runtime
