#include "avd/core/lighting_classifier.hpp"

#include <algorithm>

#include "avd/image/stats.hpp"

namespace avd::core {

data::LightingCondition LightingClassifier::classify_raw(double level) const {
  using data::LightingCondition;
  // Hysteresis: moving away from the current stable condition requires
  // crossing the boundary by the hysteresis margin.
  const double h = config_.hysteresis;
  switch (stable_) {
    case LightingCondition::Day:
      if (level < config_.dusk_dark_boundary - h) return LightingCondition::Dark;
      if (level < config_.day_dusk_boundary - h) return LightingCondition::Dusk;
      return LightingCondition::Day;
    case LightingCondition::Dusk:
      if (level > config_.day_dusk_boundary + h) return LightingCondition::Day;
      if (level < config_.dusk_dark_boundary - h) return LightingCondition::Dark;
      return LightingCondition::Dusk;
    case LightingCondition::Dark:
      if (level > config_.day_dusk_boundary + h) return LightingCondition::Day;
      if (level > config_.dusk_dark_boundary + h) return LightingCondition::Dusk;
      return LightingCondition::Dark;
  }
  return stable_;
}

data::LightingCondition LightingClassifier::update(double light_level) {
  const data::LightingCondition raw = classify_raw(light_level);
  if (raw == stable_) {
    candidate_ = stable_;
    candidate_count_ = 0;
    return stable_;
  }
  if (raw == candidate_) {
    if (++candidate_count_ >= config_.debounce_frames) {
      stable_ = candidate_;
      candidate_count_ = 0;
    }
  } else {
    candidate_ = raw;
    candidate_count_ = 1;
    if (config_.debounce_frames <= 1) {
      stable_ = candidate_;
      candidate_count_ = 0;
    }
  }
  return stable_;
}

double LightingClassifier::estimate_light_level(const img::ImageU8& gray) {
  // Mean luminance normalised to [0,1], discounted by the fraction of
  // saturated pixels: point light sources in a dark scene raise the mean but
  // should not raise the ambient estimate.
  const double mean = img::mean_intensity(gray) / 255.0;
  const double bright = img::bright_fraction(gray, 240);
  const double ambient = std::max(0.0, mean - 0.8 * bright);
  // The scene generator's day frames average ~0.55, dusk ~0.25, dark ~0.04;
  // rescale so the canonical conditions land at their nominal sensor levels.
  return std::clamp(ambient * 1.55, 0.0, 1.0);
}

}  // namespace avd::core
