#include "avd/core/system_models.hpp"

namespace avd::core {

SystemModels build_system_models(const TrainingBudget& budget) {
  using data::LightingCondition;

  data::VehiclePatchSpec day_spec;
  day_spec.condition = LightingCondition::Day;
  day_spec.patch_size = budget.vehicle_window;
  day_spec.n_positive = budget.vehicle_pos;
  day_spec.n_negative = budget.vehicle_neg;
  day_spec.seed = budget.seed + 1;

  data::VehiclePatchSpec dusk_spec = day_spec;
  dusk_spec.condition = LightingCondition::Dusk;
  dusk_spec.seed = budget.seed + 2;

  const data::PatchDataset day_train = data::make_vehicle_patches(day_spec);
  const data::PatchDataset dusk_train = data::make_vehicle_patches(dusk_spec);
  const data::PatchDataset combined_train =
      data::PatchDataset::concat(day_train, dusk_train);

  data::PedestrianPatchSpec ped_spec;
  ped_spec.patch_size = budget.pedestrian_window;
  ped_spec.n_positive = budget.pedestrian_pos;
  ped_spec.n_negative = budget.pedestrian_neg;
  ped_spec.seed = budget.seed + 3;
  const data::PatchDataset ped_train = data::make_pedestrian_patches(ped_spec);

  det::HogSvmTrainOptions vehicle_opts;
  vehicle_opts.svm.seed = budget.seed + 4;
  det::HogSvmTrainOptions ped_opts;
  ped_opts.svm.seed = budget.seed + 5;
  ped_opts.class_id = det::kClassPedestrian;

  det::DarkTrainingSpec dark_spec;
  dark_spec.windows.per_class = budget.dbn_windows_per_class;
  dark_spec.pairing_scenes = budget.pairing_scenes;
  dark_spec.seed = budget.seed + 6;

  SystemModels models{
      det::train_hog_svm(day_train, "day", vehicle_opts),
      det::train_hog_svm(dusk_train, "dusk", vehicle_opts),
      det::train_hog_svm(combined_train, "combined", vehicle_opts),
      det::train_hog_svm(ped_train, "pedestrian", ped_opts),
      det::train_dark_detector(dark_spec),
      det::HogSvmModel{},
  };

  if (budget.animal_pos > 0 && budget.animal_neg > 0) {
    data::AnimalPatchSpec animal_spec;
    animal_spec.patch_size = budget.animal_window;
    animal_spec.n_positive = budget.animal_pos;
    animal_spec.n_negative = budget.animal_neg;
    animal_spec.seed = budget.seed + 7;
    det::HogSvmTrainOptions animal_opts;
    animal_opts.svm.seed = budget.seed + 8;
    animal_opts.class_id = det::kClassAnimal;
    models.animal = det::train_hog_svm(
        data::make_animal_patches(animal_spec), "animal", animal_opts);
  }
  return models;
}

}  // namespace avd::core
