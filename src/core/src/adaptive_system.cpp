#include "avd/core/adaptive_system.hpp"

#include <algorithm>

#include "avd/detect/multi_model_scan.hpp"
#include "avd/image/color.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/trace.hpp"

namespace avd::core {

int AdaptiveRunReport::dropped_vehicle_frames() const {
  return static_cast<int>(std::count_if(
      frames.begin(), frames.end(),
      [](const AdaptiveFrameReport& f) { return !f.vehicle_processed; }));
}

int AdaptiveRunReport::pedestrian_frames_processed() const {
  return static_cast<int>(std::count_if(
      frames.begin(), frames.end(),
      [](const AdaptiveFrameReport& f) { return f.pedestrian_processed; }));
}

double AdaptiveRunReport::vehicle_availability() const {
  if (frames.empty()) return 0.0;
  return 1.0 - static_cast<double>(dropped_vehicle_frames()) /
                   static_cast<double>(frames.size());
}

std::vector<ConditionSummary> AdaptiveRunReport::per_condition() const {
  std::vector<ConditionSummary> out(3);
  out[0].condition = data::LightingCondition::Day;
  out[1].condition = data::LightingCondition::Dusk;
  out[2].condition = data::LightingCondition::Dark;
  for (const AdaptiveFrameReport& f : frames) {
    ConditionSummary& s = out[static_cast<std::size_t>(f.sensed)];
    ++s.frames;
    s.dropped += !f.vehicle_processed;
    s.vehicle_match.true_positives += f.vehicle_match.true_positives;
    s.vehicle_match.false_negatives += f.vehicle_match.false_negatives;
    s.vehicle_match.false_positives += f.vehicle_match.false_positives;
  }
  return out;
}

det::MatchResult AdaptiveRunReport::total_vehicle_match() const {
  det::MatchResult total;
  for (const AdaptiveFrameReport& f : frames) {
    total.true_positives += f.vehicle_match.true_positives;
    total.false_negatives += f.vehicle_match.false_negatives;
    total.false_positives += f.vehicle_match.false_positives;
  }
  return total;
}

AdaptiveSystem::AdaptiveSystem(SystemModels models, AdaptiveSystemConfig config)
    : models_(std::move(models)),
      config_(config),
      platform_(soc::default_platform()) {
  // Both detector front ends share the one scan pool: the HOG scanner takes
  // it per call (sliding.pool), the dark detector's batched gather/score
  // tasks through set_scan_pool. Identical detections for every pool size
  // either way.
  models_.dark.set_scan_pool(config_.sliding.pool);
  const soc::DeviceResources device;
  const soc::ModuleResources partition = soc::floorplan_partition(
      soc::dark_blocks(), device, config_.floorplan);
  day_dusk_bits_ = soc::make_partial_bitstream("day-dusk", partition, device,
                                               config_.bitstream);
  dark_bits_ =
      soc::make_partial_bitstream("dark", partition, device, config_.bitstream);
  countryside_bits_ = soc::make_partial_bitstream("countryside", partition,
                                                  device, config_.bitstream);
}

std::vector<det::Detection> AdaptiveSystem::detect_vehicles(
    const img::RgbImage& frame, data::LightingCondition condition) const {
  if (condition == data::LightingCondition::Dark)
    return models_.dark.detect(frame);
  const img::ImageU8 gray = img::rgb_to_gray(frame);
  return det::detect_multiscale(gray, models_.vehicle_model_for(condition),
                                config_.sliding);
}

std::vector<det::Detection> AdaptiveSystem::detect_pedestrians(
    const img::ImageU8& gray) const {
  return det::detect_multiscale(gray, models_.pedestrian, config_.sliding);
}

AdaptiveSystem::StepSession::StepSession(const AdaptiveSystem& system)
    : system_(&system),
      controller_(system.platform_, system.config_.method),
      scheduler_(system.config_.scheduler),
      classifier_(system.config_.classifier) {
  controller_.stage(system.day_dusk_bits_);
  controller_.stage(system.dark_bits_);
  if (system.models_.has_animal_model()) controller_.stage(system.countryside_bits_);
}

const soc::EventLog& AdaptiveSystem::StepSession::log() const {
  return controller_.log();
}

ControlStep AdaptiveSystem::StepSession::control_step(
    const data::SequenceFrame& meta) {
  const obs::ScopedSpan span("control_step", "core/control");
  const AdaptiveSystemConfig& config = system_->config_;
  const int i = next_index_++;

  // Sensor trace -> condition (the paper's external light signal, or the
  // image-derived estimate).
  ControlStep step;
  step.index = i;
  step.light_level =
      config.use_image_light_estimate
          ? LightingClassifier::estimate_light_level(
                img::rgb_to_gray(data::render_scene(meta.scene)))
          : meta.light_level;
  step.sensed = classifier_.update(step.light_level);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("core.control_steps").inc();
  if (step.sensed != prev_sensed_) registry.counter("core.mode_switches").inc();
  prev_sensed_ = step.sensed;

  // Condition -> reconfiguration decision. Countryside selection only
  // applies when the animal model exists.
  const std::string wanted = system_->models_.has_animal_model()
                                 ? config_for(step.sensed, meta.road)
                                 : config_for(step.sensed);
  const soc::TimePoint now = scheduler_.frame_time(i);
  const soc::TimePoint dwell_until =
      busy_until_ +
      config.scheduler.frame_period() *
          static_cast<std::uint64_t>(std::max(0, config.min_dwell_frames));
  if (wanted != loaded_ &&
      (now < busy_until_ || (busy_until_.ps != 0 && now < dwell_until))) {
    // A wanted swap held back by an in-flight reconfiguration or the
    // min-dwell guard: the control decision the dwell knob exists to shape.
    registry.counter("core.dwell_blocked").inc();
  }
  if (wanted != loaded_ && now >= busy_until_ &&
      (busy_until_.ps == 0 || now >= dwell_until)) {
    // The engine drains its in-flight frame before the partition is opened.
    const soc::Duration drain =
        soc::day_dusk_pipeline_model().frame_time(soc::kHdtvFrame);
    const soc::TimePoint start = now + drain;
    const soc::PartialBitstream& bits =
        wanted == "dark" ? system_->dark_bits_
                         : (wanted == "countryside" ? system_->countryside_bits_
                                                    : system_->day_dusk_bits_);
    const soc::ReconfigResult result = controller_.reconfigure(start, bits);
    scheduler_.add_reconfig_window(start, result.duration(), wanted);
    reconfigs_.push_back(result);
    busy_until_ = result.end;
    loaded_ = wanted;
    step.reconfig_triggered = true;
    registry.counter("core.reconfigs_triggered").inc();
  }

  // Schedule decision. A window always opens strictly after the frame that
  // triggered it, so frame i's record is final once frames 0..i have been
  // stepped (FrameScheduler::record_at documents the invariant).
  step.record = scheduler_.record_at(i, "day-dusk");
  return step;
}

AdaptiveFrameReport AdaptiveSystem::evaluate_frame(
    const ControlStep& step, const data::SequenceFrame& meta) const {
  return evaluate_frame(step, meta, EvaluateOptions{});
}

AdaptiveFrameReport AdaptiveSystem::evaluate_frame(
    const ControlStep& step, const data::SequenceFrame& meta,
    const EvaluateOptions& options) const {
  const obs::ScopedSpan span("evaluate_frame", "core/detect");
  AdaptiveFrameReport fr;
  fr.index = step.index;
  fr.light_level = step.light_level;
  fr.sensed = step.sensed;
  fr.active_config = step.record.vehicle_config;
  fr.vehicle_processed = step.record.vehicle_processed;
  fr.pedestrian_processed = step.record.pedestrian_processed;
  fr.reconfig_triggered = step.reconfig_triggered;

  fr.vehicles_truth = static_cast<int>(meta.scene.vehicles.size());
  fr.animals_truth = static_cast<int>(meta.scene.animals.size());

  if (config_.run_detectors && fr.vehicle_processed) {
    const det::SlidingWindowParams& sliding =
        options.sliding_override != nullptr ? *options.sliding_override
                                            : config_.sliding;
    std::vector<det::Detection> dets;
    if (options.provided_detections != nullptr) {
      // Tracker-coast path: the caller already has this frame's boxes; the
      // frame is never rendered, which is the whole point of the ladder's
      // skip level.
      dets = *options.provided_detections;
      fr.detect_coasted = true;
    } else {
      // The detector that actually runs is determined by the *loaded*
      // configuration, not by the sensed condition: frames between a
      // condition change and the end of the reconfiguration still run the
      // previous pipeline.
      const img::RgbImage frame = data::render_scene(meta.scene);
      if (fr.active_config == "dark") {
        dets = models_.dark.detect(frame);
      } else if (fr.active_config == "countryside" &&
                 models_.has_animal_model()) {
        // The countryside configuration runs both classifiers behind one
        // shared HOG front end — the software mirror of the hardware block
        // sharing in soc::countryside_blocks().
        const img::ImageU8 gray = img::rgb_to_gray(frame);
        const det::HogSvmModel* shared_models[] = {
            &models_.vehicle_model_for(fr.sensed), &models_.animal};
        const auto all =
            det::detect_multiscale_multi(gray, shared_models, sliding);
        std::vector<det::Detection> animal_dets;
        for (const det::Detection& d : all) {
          if (d.class_id == det::kClassAnimal)
            animal_dets.push_back(d);
          else
            dets.push_back(d);
        }
        std::vector<img::Rect> animal_truth;
        for (const data::AnimalSpec& a : meta.scene.animals)
          animal_truth.push_back(a.body);
        fr.animal_match =
            det::match_detections(animal_dets, animal_truth, config_.match_iou);
      } else {
        const img::ImageU8 gray = img::rgb_to_gray(frame);
        dets = det::detect_multiscale(gray, models_.vehicle_model_for(fr.sensed),
                                      sliding);
      }
    }
    if (options.out_detections != nullptr) *options.out_detections = dets;
    std::vector<img::Rect> truth;
    for (const data::VehicleSpec& v : meta.scene.vehicles)
      truth.push_back(v.body);
    fr.vehicle_match = det::match_detections(dets, truth, config_.match_iou);
  }
  return fr;
}

AdaptiveRunReport AdaptiveSystem::run(const data::DriveSequence& sequence) const {
  // The batch path is the streaming path driven sequentially: one control
  // step per frame, then the pixel-level pass on each frame. Keeping a
  // single code path is what makes the runtime's per-stream determinism
  // guarantee checkable against this function.
  AdaptiveRunReport report;
  const int n = sequence.frame_count();
  StepSession session = begin_session();

  std::vector<ControlStep> steps;
  steps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    steps.push_back(session.control_step(sequence.frame(i)));

  report.frames.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    report.frames.push_back(
        evaluate_frame(steps[static_cast<std::size_t>(i)], sequence.frame(i)));

  report.reconfigs = session.reconfigs();
  report.log = session.log();
  return report;
}

}  // namespace avd::core
