// The complete set of trained models the deployed system carries:
// day / dusk / combined SVMs for the HOG pipeline, the pedestrian SVM for
// the static partition, and the dark-condition detector (DBN + pairing SVM).
#pragma once

#include "avd/detect/dark_detector.hpp"
#include "avd/detect/dark_training.hpp"
#include "avd/detect/hog_svm_detector.hpp"

namespace avd::core {

struct SystemModels {
  det::HogSvmModel day;
  det::HogSvmModel dusk;
  det::HogSvmModel combined;
  det::HogSvmModel pedestrian;
  det::DarkVehicleDetector dark;
  /// Countryside extension (paper §I): animal classifier carried by the
  /// third partial configuration. Untrained unless the budget enables it.
  det::HogSvmModel animal;

  [[nodiscard]] bool has_animal_model() const { return animal.svm.trained(); }

  /// Vehicle model the day/dusk configuration selects for a condition
  /// (a block-RAM model swap, not a reconfiguration — paper §III-A).
  [[nodiscard]] const det::HogSvmModel& vehicle_model_for(
      data::LightingCondition c) const {
    return c == data::LightingCondition::Day ? day : dusk;
  }
};

/// Training-set sizes for build_system_models. The defaults are sized for
/// interactive examples; benches reproducing Table I use larger sets.
struct TrainingBudget {
  int vehicle_pos = 150;
  int vehicle_neg = 150;
  int pedestrian_pos = 120;
  int pedestrian_neg = 120;
  int dbn_windows_per_class = 200;
  int pairing_scenes = 80;
  img::Size vehicle_window{64, 64};
  img::Size pedestrian_window{32, 64};
  /// Train the countryside animal model too (0 disables the extension).
  int animal_pos = 0;
  int animal_neg = 0;
  img::Size animal_window{64, 48};
  std::uint64_t seed = 20190325;  // DATE'19 session date
};

/// Train every model from synthetic data. Deterministic in the budget seed.
[[nodiscard]] SystemModels build_system_models(const TrainingBudget& budget = {});

}  // namespace avd::core
