// The adaptive detection system: the paper's end-to-end contribution.
//
// Owns the trained models, the lighting classifier and the simulated Zynq
// reconfiguration machinery. Driving a scripted sequence through run()
// reproduces the paper's operational story: HOG+SVM vehicle detection with a
// block-RAM model swap between day and dusk, a partial reconfiguration to the
// DBN-based dark pipeline when night falls, pedestrian detection never
// interrupted, and exactly one dropped vehicle frame per reconfiguration.
#pragma once

#include "avd/core/lighting_classifier.hpp"
#include "avd/core/system_models.hpp"
#include "avd/datasets/sequence.hpp"
#include "avd/soc/frame_scheduler.hpp"
#include "avd/soc/hw_pipeline.hpp"
#include "avd/soc/reconfig.hpp"

namespace avd::core {

/// Name of the partial configuration serving a lighting condition.
[[nodiscard]] inline const char* config_for(data::LightingCondition c) {
  return c == data::LightingCondition::Dark ? "dark" : "day-dusk";
}

/// Extended selection (countryside extension, paper §I): darkness always
/// wins; otherwise countryside roads load the configuration that carries
/// the animal classifier next to the vehicle pipeline.
[[nodiscard]] inline const char* config_for(data::LightingCondition c,
                                            data::RoadType road) {
  if (c == data::LightingCondition::Dark) return "dark";
  return road == data::RoadType::Countryside ? "countryside" : "day-dusk";
}

struct AdaptiveSystemConfig {
  soc::ReconfigMethod method = soc::ReconfigMethod::PlDmaIcap;
  soc::FrameSchedulerConfig scheduler;
  LightingClassifierConfig classifier;
  soc::FloorplanParams floorplan;
  soc::BitstreamParams bitstream;
  /// Minimum frames between the end of one reconfiguration and the trigger
  /// of the next. Each reconfiguration costs a dropped frame, so a flapping
  /// selection signal (light flicker at a class boundary, GPS jitter on the
  /// urban/countryside edge) must not be allowed to thrash the partition.
  /// 0 disables the dwell (the classifier's debounce is then the only guard).
  int min_dwell_frames = 0;
  /// Derive the light level from the captured frame itself
  /// (LightingClassifier::estimate_light_level) instead of the external
  /// sensor signal the paper assumes. Makes the system self-contained at the
  /// cost of rendering every frame during the control pass.
  bool use_image_light_estimate = false;
  /// Run the pixel-level detectors on processed frames (software models of
  /// the accelerators). Disable for long control-plane-only simulations.
  bool run_detectors = true;
  det::SlidingWindowParams sliding;
  double match_iou = 0.25;
};

/// Per-frame outcome of an adaptive run.
struct AdaptiveFrameReport {
  int index = 0;
  double light_level = 0.0;
  data::LightingCondition sensed = data::LightingCondition::Day;
  std::string active_config;       ///< partition contents when frame arrived
  bool vehicle_processed = false;  ///< false = dropped for reconfiguration
  bool pedestrian_processed = false;
  bool reconfig_triggered = false; ///< a PR started during this frame
  int vehicles_truth = 0;
  det::MatchResult vehicle_match;  ///< only populated when run_detectors
  int animals_truth = 0;
  det::MatchResult animal_match;   ///< populated under "countryside"
  /// Degradation-ladder level the serving runtime applied to this frame
  /// (runtime::DegradeLevel as int; 0 = full fidelity, always 0 from run()).
  int degrade_level = 0;
  /// True when the frame's vehicle detections came from tracker coasting
  /// (ladder level 2) rather than a pixel-level scan.
  bool detect_coasted = false;
};

/// Aggregate over the frames of one sensed lighting condition.
struct ConditionSummary {
  data::LightingCondition condition = data::LightingCondition::Day;
  int frames = 0;
  int dropped = 0;
  det::MatchResult vehicle_match;

  [[nodiscard]] double recall() const {
    const int truth =
        vehicle_match.true_positives + vehicle_match.false_negatives;
    return truth > 0 ? static_cast<double>(vehicle_match.true_positives) /
                           static_cast<double>(truth)
                     : 0.0;
  }
};

struct AdaptiveRunReport {
  std::vector<AdaptiveFrameReport> frames;
  std::vector<soc::ReconfigResult> reconfigs;
  soc::EventLog log;

  [[nodiscard]] int reconfig_count() const {
    return static_cast<int>(reconfigs.size());
  }
  [[nodiscard]] int dropped_vehicle_frames() const;
  [[nodiscard]] int pedestrian_frames_processed() const;
  /// Fraction of frames the vehicle engine processed.
  [[nodiscard]] double vehicle_availability() const;
  /// Aggregated detection quality over processed frames.
  [[nodiscard]] det::MatchResult total_vehicle_match() const;
  /// Per-condition breakdown (day/dusk/dark, in enum order; conditions with
  /// zero frames are included with zero counts).
  [[nodiscard]] std::vector<ConditionSummary> per_condition() const;
};

/// Control-plane outcome for one frame: everything pass-1/pass-2 of the
/// batch run decides about a frame, produced incrementally by
/// AdaptiveSystem::StepSession::control_step.
struct ControlStep {
  int index = 0;
  double light_level = 0.0;
  data::LightingCondition sensed = data::LightingCondition::Day;
  bool reconfig_triggered = false;
  soc::FrameRecord record;  ///< schedule decision (config, processed flags)
};

class AdaptiveSystem {
 public:
  AdaptiveSystem(SystemModels models, AdaptiveSystemConfig config = {});

  /// Mutable per-run control-plane state (lighting classifier, PR controller,
  /// frame scheduler). One session per stream; frames of a stream MUST be
  /// stepped in order. A session is not itself thread-safe, but independent
  /// sessions over the same (const) AdaptiveSystem may run on different
  /// threads concurrently — this is what the avd::runtime StreamServer does.
  class StepSession {
   public:
    explicit StepSession(const AdaptiveSystem& system);

    /// Run the control plane for the next frame (sensor reading -> lighting
    /// condition -> reconfiguration decision) and return the frame's final
    /// schedule record. Deterministic: stepping a whole sequence reproduces
    /// the batch run() control pass bit for bit.
    [[nodiscard]] ControlStep control_step(const data::SequenceFrame& meta);

    [[nodiscard]] int frames_stepped() const { return next_index_; }
    [[nodiscard]] const std::vector<soc::ReconfigResult>& reconfigs() const {
      return reconfigs_;
    }
    [[nodiscard]] const soc::EventLog& log() const;

   private:
    const AdaptiveSystem* system_;
    soc::ReconfigController controller_;
    soc::FrameScheduler scheduler_;
    LightingClassifier classifier_;
    std::string loaded_ = "day-dusk";  // boot configuration
    soc::TimePoint busy_until_{0};
    int next_index_ = 0;
    data::LightingCondition prev_sensed_ = data::LightingCondition::Day;
    std::vector<soc::ReconfigResult> reconfigs_;
  };

  /// Start a fresh control-plane session (the streaming equivalent of one
  /// run() call).
  [[nodiscard]] StepSession begin_session() const { return StepSession(*this); }

  /// Degraded-fidelity knobs for evaluate_frame, used by the serving
  /// runtime's degradation ladder. Defaults reproduce the plain overload.
  struct EvaluateOptions {
    /// Scan with these sliding-window params instead of config().sliding
    /// (the ladder's coarser pyramid). The dark detector's internal scan is
    /// unaffected. Not owned; may be null.
    const det::SlidingWindowParams* sliding_override = nullptr;
    /// Skip the pixel-level scan and use these vehicle detections instead
    /// (the ladder's tracker-coast path) — the frame is never rendered.
    /// Not owned; may be null.
    const std::vector<det::Detection>* provided_detections = nullptr;
    /// When non-null, receives the vehicle detections the frame produced
    /// (post-NMS, pre-matching) so the caller can feed its tracker.
    std::vector<det::Detection>* out_detections = nullptr;
  };

  /// Pixel-level pass for one frame given its control outcome. Const and
  /// thread-safe: a pure function of the trained models, so the runtime's
  /// detect workers may call it concurrently.
  [[nodiscard]] AdaptiveFrameReport evaluate_frame(
      const ControlStep& step, const data::SequenceFrame& meta) const;

  /// Same, with degraded-fidelity options (see EvaluateOptions).
  [[nodiscard]] AdaptiveFrameReport evaluate_frame(
      const ControlStep& step, const data::SequenceFrame& meta,
      const EvaluateOptions& options) const;

  /// Drive a scripted sequence through the system (sequentially; the
  /// concurrent equivalent is runtime::StreamServer).
  [[nodiscard]] AdaptiveRunReport run(const data::DriveSequence& sequence) const;

  /// Detect vehicles on one frame with the pipeline serving `condition`
  /// (assumes the right configuration is loaded).
  [[nodiscard]] std::vector<det::Detection> detect_vehicles(
      const img::RgbImage& frame, data::LightingCondition condition) const;

  /// Pedestrian detection (static partition).
  [[nodiscard]] std::vector<det::Detection> detect_pedestrians(
      const img::ImageU8& gray) const;

  [[nodiscard]] const SystemModels& models() const { return models_; }
  [[nodiscard]] const AdaptiveSystemConfig& config() const { return config_; }

 private:
  SystemModels models_;
  AdaptiveSystemConfig config_;
  soc::ZynqPlatform platform_;
  soc::PartialBitstream day_dusk_bits_;
  soc::PartialBitstream dark_bits_;
  soc::PartialBitstream countryside_bits_;
};

}  // namespace avd::core
