// Lighting-condition classification with hysteresis.
//
// The paper triggers reconfiguration from "an external signal which indicates
// the light intensity changes" (§I). This classifier accepts either that
// external sensor level or an image-derived estimate, and applies hysteresis
// plus a debounce interval so that noise at a class boundary cannot cause
// reconfiguration thrash (each spurious switch would cost a dropped frame).
#pragma once

#include <optional>

#include "avd/datasets/lighting.hpp"
#include "avd/image/image.hpp"

namespace avd::core {

struct LightingClassifierConfig {
  // Decision thresholds on the 0..1 light level, with hysteresis bands: a
  // transition in either direction must cross beyond the boundary by
  // `hysteresis` before it is accepted.
  double day_dusk_boundary = 0.55;
  double dusk_dark_boundary = 0.18;
  double hysteresis = 0.04;
  /// Consecutive frames a new condition must persist before it is reported.
  int debounce_frames = 3;
};

class LightingClassifier {
 public:
  explicit LightingClassifier(
      LightingClassifierConfig config = {},
      data::LightingCondition initial = data::LightingCondition::Day)
      : config_(config), stable_(initial), candidate_(initial) {}

  /// Feed one sensor reading; returns the (debounced) current condition.
  data::LightingCondition update(double light_level);

  /// Image-derived ambient light estimate in [0,1], usable in place of the
  /// external sensor: combines mean luminance with a bright-pixel fraction
  /// so that a dark frame full of light sources still reads as dark.
  [[nodiscard]] static double estimate_light_level(const img::ImageU8& gray);

  [[nodiscard]] data::LightingCondition current() const { return stable_; }
  [[nodiscard]] const LightingClassifierConfig& config() const { return config_; }

 private:
  /// Raw (hysteresis-adjusted) classification of one reading.
  [[nodiscard]] data::LightingCondition classify_raw(double level) const;

  LightingClassifierConfig config_;
  data::LightingCondition stable_;
  data::LightingCondition candidate_;
  int candidate_count_ = 0;
};

}  // namespace avd::core
