#include "avd/hog/block_grid.hpp"

#include <algorithm>
#include <stdexcept>

namespace avd::hog {

BlockGrid::BlockGrid(int anchors_x, int anchors_y, int block_len)
    : anchors_x_(anchors_x),
      anchors_y_(anchors_y),
      block_len_(block_len),
      data_(static_cast<std::size_t>(anchors_x) * anchors_y * block_len,
            0.0f) {}

std::span<float> BlockGrid::block(int ax, int ay) {
  return {data_.data() +
              (static_cast<std::size_t>(ay) * anchors_x_ + ax) * block_len_,
          static_cast<std::size_t>(block_len_)};
}

std::span<const float> BlockGrid::block(int ax, int ay) const {
  return {data_.data() +
              (static_cast<std::size_t>(ay) * anchors_x_ + ax) * block_len_,
          static_cast<std::size_t>(block_len_)};
}

BlockGrid compute_block_grid(const CellGrid& grid, const HogParams& params) {
  if (params.block_cells <= 0)
    throw std::invalid_argument("BlockGrid: bad block size");
  const int ax_count = grid.cells_x() - params.block_cells + 1;
  const int ay_count = grid.cells_y() - params.block_cells + 1;
  const int block_len = params.block_cells * params.block_cells * grid.bins();
  if (ax_count <= 0 || ay_count <= 0) return {};

  BlockGrid blocks(ax_count, ay_count, block_len);
  for (int ay = 0; ay < ay_count; ++ay) {
    for (int ax = 0; ax < ax_count; ++ax) {
      auto dst = blocks.block(ax, ay);
      std::size_t offset = 0;
      // Same gather order as window_descriptor: cells (cy, cx), then bins.
      for (int cy = 0; cy < params.block_cells; ++cy) {
        for (int cx = 0; cx < params.block_cells; ++cx) {
          auto hist = grid.cell(ax + cx, ay + cy);
          std::copy(hist.begin(), hist.end(), dst.begin() + offset);
          offset += hist.size();
        }
      }
      l2hys_normalise(dst, params.l2hys_clip);
    }
  }
  return blocks;
}

void window_descriptor(const BlockGrid& blocks, const HogParams& params,
                       int cell_x, int cell_y, int cells_w, int cells_h,
                       std::vector<float>& out) {
  const int blocks_x = params.blocks_along(cells_w);
  const int blocks_y = params.blocks_along(cells_h);
  if (cell_x < 0 || cell_y < 0 || blocks_x <= 0 || blocks_y <= 0 ||
      cell_x + (blocks_x - 1) * params.block_stride_cells >=
          blocks.anchors_x() ||
      cell_y + (blocks_y - 1) * params.block_stride_cells >=
          blocks.anchors_y())
    throw std::out_of_range("HOG: window outside block grid");

  const auto block_len = static_cast<std::size_t>(blocks.block_len());
  out.resize(static_cast<std::size_t>(blocks_x) * blocks_y * block_len);
  std::size_t offset = 0;
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      const auto src =
          blocks.block(cell_x + bx * params.block_stride_cells,
                       cell_y + by * params.block_stride_cells);
      std::copy(src.begin(), src.end(), out.begin() + offset);
      offset += block_len;
    }
  }
}

}  // namespace avd::hog
