#include "avd/hog/hog.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace avd::hog {

std::size_t HogParams::descriptor_length(img::Size size) const {
  if (size.width % cell_size != 0 || size.height % cell_size != 0)
    throw std::invalid_argument("HOG: window not aligned to cell size");
  const int cx = size.width / cell_size;
  const int cy = size.height / cell_size;
  if (cx < block_cells || cy < block_cells)
    throw std::invalid_argument("HOG: window smaller than one block");
  return static_cast<std::size_t>(blocks_along(cx)) * blocks_along(cy) *
         block_cells * block_cells * bins;
}

CellGrid::CellGrid(int cells_x, int cells_y, int bins)
    : cells_x_(cells_x),
      cells_y_(cells_y),
      bins_(bins),
      data_(static_cast<std::size_t>(cells_x) * cells_y * bins, 0.0f) {}

std::span<float> CellGrid::cell(int cx, int cy) {
  return {data_.data() +
              (static_cast<std::size_t>(cy) * cells_x_ + cx) * bins_,
          static_cast<std::size_t>(bins_)};
}

std::span<const float> CellGrid::cell(int cx, int cy) const {
  return {data_.data() +
              (static_cast<std::size_t>(cy) * cells_x_ + cx) * bins_,
          static_cast<std::size_t>(bins_)};
}

GradientField compute_gradients(const img::ImageU8& image) {
  GradientField field{img::ImageF32(image.size()), img::ImageF32(image.size())};
  constexpr float kRadToDeg = 180.0f / std::numbers::pi_v<float>;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const float gx = static_cast<float>(image.at_clamped(x + 1, y)) -
                       static_cast<float>(image.at_clamped(x - 1, y));
      const float gy = static_cast<float>(image.at_clamped(x, y + 1)) -
                       static_cast<float>(image.at_clamped(x, y - 1));
      field.magnitude(x, y) = std::sqrt(gx * gx + gy * gy);
      float deg = std::atan2(gy, gx) * kRadToDeg;  // [-180, 180]
      if (deg < 0.0f) deg += 180.0f;               // unsigned orientation
      if (deg >= 180.0f) deg -= 180.0f;
      field.orientation_deg(x, y) = deg;
    }
  }
  return field;
}

CellGrid compute_cell_grid(const img::ImageU8& image, const HogParams& params) {
  if (params.cell_size <= 0 || params.bins <= 0)
    throw std::invalid_argument("HOG: bad params");
  const int cells_x = image.width() / params.cell_size;
  const int cells_y = image.height() / params.cell_size;
  CellGrid grid(cells_x, cells_y, params.bins);
  if (cells_x == 0 || cells_y == 0) return grid;

  const GradientField grad = compute_gradients(image);
  const float bin_width = 180.0f / static_cast<float>(params.bins);

  const int usable_w = cells_x * params.cell_size;
  const int usable_h = cells_y * params.cell_size;
  for (int y = 0; y < usable_h; ++y) {
    const int cy = y / params.cell_size;
    for (int x = 0; x < usable_w; ++x) {
      const int cx = x / params.cell_size;
      const float mag = grad.magnitude(x, y);
      if (mag == 0.0f) continue;
      // Linear interpolation between the two nearest orientation bins.
      const float pos = grad.orientation_deg(x, y) / bin_width - 0.5f;
      int b0 = static_cast<int>(std::floor(pos));
      const float w1 = pos - static_cast<float>(b0);
      int b1 = b0 + 1;
      if (b0 < 0) b0 += params.bins;
      if (b1 >= params.bins) b1 -= params.bins;
      auto hist = grid.cell(cx, cy);
      hist[b0] += mag * (1.0f - w1);
      hist[b1] += mag * w1;
    }
  }
  return grid;
}

namespace {

// L2-hys: L2-normalise, clip at `clip`, renormalise.
void l2hys(std::span<float> v, float clip) {
  constexpr float kEps = 1e-6f;
  float norm2 = 0.0f;
  for (float x : v) norm2 += x * x;
  float inv = 1.0f / std::sqrt(norm2 + kEps);
  for (float& x : v) x = std::min(x * inv, clip);
  norm2 = 0.0f;
  for (float x : v) norm2 += x * x;
  inv = 1.0f / std::sqrt(norm2 + kEps);
  for (float& x : v) x *= inv;
}

}  // namespace

void window_descriptor(const CellGrid& grid, const HogParams& params, int cell_x,
                       int cell_y, int cells_w, int cells_h,
                       std::vector<float>& out) {
  if (cell_x < 0 || cell_y < 0 || cell_x + cells_w > grid.cells_x() ||
      cell_y + cells_h > grid.cells_y())
    throw std::out_of_range("HOG: window outside cell grid");

  const int blocks_x = params.blocks_along(cells_w);
  const int blocks_y = params.blocks_along(cells_h);
  const std::size_t block_len =
      static_cast<std::size_t>(params.block_cells) * params.block_cells *
      params.bins;
  out.resize(static_cast<std::size_t>(blocks_x) * blocks_y * block_len);

  std::size_t offset = 0;
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      const std::size_t block_start = offset;
      for (int cy = 0; cy < params.block_cells; ++cy) {
        for (int cx = 0; cx < params.block_cells; ++cx) {
          auto hist = grid.cell(cell_x + bx * params.block_stride_cells + cx,
                                cell_y + by * params.block_stride_cells + cy);
          std::copy(hist.begin(), hist.end(), out.begin() + offset);
          offset += hist.size();
        }
      }
      l2hys({out.data() + block_start, block_len}, params.l2hys_clip);
    }
  }
}

std::vector<float> compute_descriptor(const img::ImageU8& image,
                                      const HogParams& params) {
  (void)params.descriptor_length(image.size());  // validates alignment
  const CellGrid grid = compute_cell_grid(image, params);
  std::vector<float> out;
  window_descriptor(grid, params, 0, 0, grid.cells_x(), grid.cells_y(), out);
  return out;
}

}  // namespace avd::hog
