#include "avd/hog/hog.hpp"

#include <cmath>
#include <cstdint>
#include <numbers>
#include <stdexcept>

namespace avd::hog {

std::size_t HogParams::descriptor_length(img::Size size) const {
  if (size.width % cell_size != 0 || size.height % cell_size != 0)
    throw std::invalid_argument("HOG: window not aligned to cell size");
  const int cx = size.width / cell_size;
  const int cy = size.height / cell_size;
  if (cx < block_cells || cy < block_cells)
    throw std::invalid_argument("HOG: window smaller than one block");
  return static_cast<std::size_t>(blocks_along(cx)) * blocks_along(cy) *
         block_cells * block_cells * bins;
}

CellGrid::CellGrid(int cells_x, int cells_y, int bins)
    : cells_x_(cells_x),
      cells_y_(cells_y),
      bins_(bins),
      data_(static_cast<std::size_t>(cells_x) * cells_y * bins, 0.0f) {}

std::span<float> CellGrid::cell(int cx, int cy) {
  return {data_.data() +
              (static_cast<std::size_t>(cy) * cells_x_ + cx) * bins_,
          static_cast<std::size_t>(bins_)};
}

std::span<const float> CellGrid::cell(int cx, int cy) const {
  return {data_.data() +
              (static_cast<std::size_t>(cy) * cells_x_ + cx) * bins_,
          static_cast<std::size_t>(bins_)};
}

namespace {

/// Exact per-pixel gradient outputs, tabulated. A central-difference
/// gradient of a u8 image is an integer pair (gx, gy) in [-255, 255]^2, so
/// magnitude and orientation take at most 511*511 distinct values. The
/// table runs the very same float expressions compute_gradients runs, once
/// per pair at first use — a hit is bit-identical to computing inline, it
/// just skips the per-pixel sqrt/atan2 (the dominant cost of the HOG front
/// end). ~2 MB, and natural images cluster around small gradients, so the
/// hot centre rows stay cached.
struct GradientLut {
  static constexpr int kRange = 511;  // gradient values -255..255
  /// Interleaved {magnitude, orientation_deg} pairs so one pixel's lookup
  /// touches one cache line, not two arrays.
  std::vector<float> mag_deg;

  GradientLut() : mag_deg(2 * static_cast<std::size_t>(kRange) * kRange) {
    constexpr float kRadToDeg = 180.0f / std::numbers::pi_v<float>;
    std::size_t i = 0;
    for (int dy = -255; dy <= 255; ++dy) {
      for (int dx = -255; dx <= 255; ++dx, i += 2) {
        const float gx = static_cast<float>(dx);
        const float gy = static_cast<float>(dy);
        mag_deg[i] = std::sqrt(gx * gx + gy * gy);
        float deg = std::atan2(gy, gx) * kRadToDeg;  // [-180, 180]
        if (deg < 0.0f) deg += 180.0f;               // unsigned orientation
        if (deg >= 180.0f) deg -= 180.0f;
        mag_deg[i + 1] = deg;
      }
    }
  }

  /// Index of the {mag, deg} pair for gradient (gx, gy).
  [[nodiscard]] std::size_t index(int gx, int gy) const {
    return 2 * (static_cast<std::size_t>(gy + 255) * kRange +
                static_cast<std::size_t>(gx + 255));
  }
};

const GradientLut& gradient_lut() {
  static const GradientLut lut;
  return lut;
}

}  // namespace

GradientField compute_gradients(const img::ImageU8& image) {
  GradientField field{img::ImageF32(image.size()), img::ImageF32(image.size())};
  constexpr float kRadToDeg = 180.0f / std::numbers::pi_v<float>;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const float gx = static_cast<float>(image.at_clamped(x + 1, y)) -
                       static_cast<float>(image.at_clamped(x - 1, y));
      const float gy = static_cast<float>(image.at_clamped(x, y + 1)) -
                       static_cast<float>(image.at_clamped(x, y - 1));
      field.magnitude(x, y) = std::sqrt(gx * gx + gy * gy);
      float deg = std::atan2(gy, gx) * kRadToDeg;  // [-180, 180]
      if (deg < 0.0f) deg += 180.0f;               // unsigned orientation
      if (deg >= 180.0f) deg -= 180.0f;
      field.orientation_deg(x, y) = deg;
    }
  }
  return field;
}

CellGrid compute_cell_grid(const img::ImageU8& image, const HogParams& params) {
  if (params.cell_size <= 0 || params.bins <= 0)
    throw std::invalid_argument("HOG: bad params");
  const int cells_x = image.width() / params.cell_size;
  const int cells_y = image.height() / params.cell_size;
  CellGrid grid(cells_x, cells_y, params.bins);
  if (cells_x == 0 || cells_y == 0) return grid;

  // Fused gradient + vote: same per-pixel arithmetic as
  // compute_gradients() followed by the vote below, but the (gx, gy) pair
  // indexes GradientLut instead of calling sqrt/atan2 per pixel — the
  // looked-up values are bit-identical by construction
  // (tests/hog/test_cell_grid.cpp asserts the fused grid equals the
  // gradient-field vote path float for float).
  const GradientLut& lut = gradient_lut();
  const float bin_width = 180.0f / static_cast<float>(params.bins);

  const int usable_w = cells_x * params.cell_size;
  const int usable_h = cells_y * params.cell_size;
  const int w = image.width();
  for (int y = 0; y < usable_h; ++y) {
    const int cy = y / params.cell_size;
    const std::span<const std::uint8_t> mid = image.row(y);
    const std::span<const std::uint8_t> up = image.row(y > 0 ? y - 1 : 0);
    const std::span<const std::uint8_t> down =
        image.row(y < image.height() - 1 ? y + 1 : image.height() - 1);
    int cx = 0;
    int cell_end = params.cell_size;
    std::span<float> hist = grid.cell(0, cy);
    for (int x = 0; x < usable_w; ++x) {
      if (x == cell_end) {
        ++cx;
        cell_end += params.cell_size;
        hist = grid.cell(cx, cy);
      }
      const int gx = static_cast<int>(mid[static_cast<std::size_t>(
                         x < w - 1 ? x + 1 : w - 1)]) -
                     static_cast<int>(mid[static_cast<std::size_t>(
                         x > 0 ? x - 1 : 0)]);
      const int gy = static_cast<int>(down[static_cast<std::size_t>(x)]) -
                     static_cast<int>(up[static_cast<std::size_t>(x)]);
      if (gx == 0 && gy == 0) continue;  // magnitude 0: no vote
      const std::size_t li = lut.index(gx, gy);
      const float mag = lut.mag_deg[li];
      // Linear interpolation between the two nearest orientation bin
      // CENTRES (centre of bin b sits at (b + 0.5) * bin_width). The
      // unsigned-orientation wraparound pairs the last bin with bin 0:
      //   deg in [0, bin_width/2)          -> pos in [-0.5, 0), b0 = -1
      //     wraps to bins-1; mass splits across {bins-1, 0}.   (deg ~ 0)
      //   deg in [180 - bin_width/2, 180)  -> b0 = bins-1, b1 = bins
      //     wraps to 0; the same {bins-1, 0} pair.             (deg ~ 180)
      // compute_gradients guarantees deg < 180 (180 - eps may round up to
      // 180.0f in float, but its wrap-to-zero runs after the +180 shift), so
      // pos < bins - 0.5 and b0 <= bins - 1 always. The two weights sum to
      // 1 whatever the boundary, so per-cell histogram mass equals per-cell
      // gradient mass exactly — tests/hog/test_cell_grid.cpp asserts both
      // properties at the exact boundary angles.
      const float pos = lut.mag_deg[li + 1] / bin_width - 0.5f;
      int b0 = static_cast<int>(std::floor(pos));
      const float w1 = pos - static_cast<float>(b0);
      int b1 = b0 + 1;
      if (b0 < 0) b0 += params.bins;
      if (b1 >= params.bins) b1 -= params.bins;
      hist[b0] += mag * (1.0f - w1);
      hist[b1] += mag * w1;
    }
  }
  return grid;
}

void l2hys_normalise(std::span<float> v, float clip) {
  constexpr float kEps = 1e-6f;
  float norm2 = 0.0f;
  for (float x : v) norm2 += x * x;
  float inv = 1.0f / std::sqrt(norm2 + kEps);
  for (float& x : v) x = std::min(x * inv, clip);
  norm2 = 0.0f;
  for (float x : v) norm2 += x * x;
  inv = 1.0f / std::sqrt(norm2 + kEps);
  for (float& x : v) x *= inv;
}

void window_descriptor(const CellGrid& grid, const HogParams& params, int cell_x,
                       int cell_y, int cells_w, int cells_h,
                       std::vector<float>& out) {
  if (cell_x < 0 || cell_y < 0 || cell_x + cells_w > grid.cells_x() ||
      cell_y + cells_h > grid.cells_y())
    throw std::out_of_range("HOG: window outside cell grid");

  const int blocks_x = params.blocks_along(cells_w);
  const int blocks_y = params.blocks_along(cells_h);
  const std::size_t block_len =
      static_cast<std::size_t>(params.block_cells) * params.block_cells *
      params.bins;
  out.resize(static_cast<std::size_t>(blocks_x) * blocks_y * block_len);

  std::size_t offset = 0;
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      const std::size_t block_start = offset;
      for (int cy = 0; cy < params.block_cells; ++cy) {
        for (int cx = 0; cx < params.block_cells; ++cx) {
          auto hist = grid.cell(cell_x + bx * params.block_stride_cells + cx,
                                cell_y + by * params.block_stride_cells + cy);
          std::copy(hist.begin(), hist.end(), out.begin() + offset);
          offset += hist.size();
        }
      }
      l2hys_normalise({out.data() + block_start, block_len},
                      params.l2hys_clip);
    }
  }
}

std::vector<float> compute_descriptor(const img::ImageU8& image,
                                      const HogParams& params) {
  (void)params.descriptor_length(image.size());  // validates alignment
  const CellGrid grid = compute_cell_grid(image, params);
  std::vector<float> out;
  window_descriptor(grid, params, 0, 0, grid.cells_x(), grid.cells_y(), out);
  return out;
}

}  // namespace avd::hog
