#include "avd/hog/visualization.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace avd::hog {
namespace {

// Draw a brightness-`v` stroke through the cell centre at angle `deg`
// (edge direction = gradient direction + 90°, the convention HOG glyph
// renderings use so edges look like edges).
void draw_stroke(img::ImageU8& out, int cx, int cy, int half_len, float deg,
                 std::uint8_t v) {
  const float rad =
      (deg + 90.0f) * std::numbers::pi_v<float> / 180.0f;
  const float dx = std::cos(rad);
  const float dy = std::sin(rad);
  for (int s = -half_len; s <= half_len; ++s) {
    const int x = cx + static_cast<int>(std::lround(dx * static_cast<float>(s)));
    const int y = cy + static_cast<int>(std::lround(dy * static_cast<float>(s)));
    if (out.in_bounds(x, y)) out(x, y) = std::max(out(x, y), v);
  }
}

}  // namespace

img::ImageU8 render_hog_glyphs(const CellGrid& grid, const GlyphParams& params) {
  img::ImageU8 out(grid.cells_x() * params.cell_pixels,
                   grid.cells_y() * params.cell_pixels, 0);
  if (grid.cells_x() == 0 || grid.cells_y() == 0) return out;

  float max_bin = 1e-6f;
  for (int cy = 0; cy < grid.cells_y(); ++cy)
    for (int cx = 0; cx < grid.cells_x(); ++cx)
      for (float v : grid.cell(cx, cy)) max_bin = std::max(max_bin, v);

  const float bin_width = 180.0f / static_cast<float>(grid.bins());
  const int half_len = params.cell_pixels / 2 - 1;
  for (int cy = 0; cy < grid.cells_y(); ++cy) {
    for (int cx = 0; cx < grid.cells_x(); ++cx) {
      const int px = cx * params.cell_pixels + params.cell_pixels / 2;
      const int py = cy * params.cell_pixels + params.cell_pixels / 2;
      auto hist = grid.cell(cx, cy);
      for (int b = 0; b < grid.bins(); ++b) {
        const float norm = hist[b] / max_bin;
        const auto v = static_cast<std::uint8_t>(std::clamp(
            std::lround(255.0f * norm * params.gain), 0L, 255L));
        if (v == 0) continue;
        const float deg = (static_cast<float>(b) + 0.5f) * bin_width;
        draw_stroke(out, px, py, half_len, deg, v);
      }
    }
  }
  return out;
}

img::ImageU8 visualize_hog(const img::ImageU8& image, const HogParams& hog,
                           const GlyphParams& params) {
  return render_hog_glyphs(compute_cell_grid(image, hog), params);
}

}  // namespace avd::hog
