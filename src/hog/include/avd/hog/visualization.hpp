// HOG descriptor visualisation: the classic "glyph" rendering where each
// cell draws its orientation histogram as a star of oriented strokes whose
// brightness encodes bin weight. Invaluable for debugging what a trained
// model actually sees; used by the model-inspection example.
#pragma once

#include "avd/hog/hog.hpp"

namespace avd::hog {

struct GlyphParams {
  int cell_pixels = 16;     ///< rendered size of one cell
  float gain = 2.0f;        ///< brightness multiplier before clamping
};

/// Render a cell grid as a glyph image of size
/// (cells_x * cell_pixels) x (cells_y * cell_pixels).
/// Cell histograms are max-normalised over the whole grid first.
[[nodiscard]] img::ImageU8 render_hog_glyphs(const CellGrid& grid,
                                             const GlyphParams& params = {});

/// Convenience: compute the grid of `image` and render it.
[[nodiscard]] img::ImageU8 visualize_hog(const img::ImageU8& image,
                                         const HogParams& hog = {},
                                         const GlyphParams& params = {});

}  // namespace avd::hog
