// Histogram-of-Oriented-Gradients feature extraction (Dalal & Triggs [12]),
// the front end of the day/dusk vehicle detector and the pedestrian detector
// (paper Figs. 1-2).
//
// The extraction mirrors the paper's three hardware pipeline stages:
//   1. gradient + cell histogram generation   -> CellGrid   ("HOG memory")
//   2. block normalisation                    -> per-window ("normalised HOG memory")
//   3. SVM classification                     -> ml::LinearSvm (detect module)
// Computing the cell grid once per image and assembling per-window descriptors
// from it is the same memory-reuse structure the hardware uses.
#pragma once

#include <vector>

#include "avd/image/image.hpp"

namespace avd::hog {

/// HOG hyper-parameters. Defaults are the classic Dalal-Triggs values.
struct HogParams {
  int cell_size = 8;        ///< pixels per cell side
  int bins = 9;             ///< orientation bins over [0, 180) degrees
  int block_cells = 2;      ///< block is block_cells x block_cells cells
  int block_stride_cells = 1;  ///< block step in cells
  float l2hys_clip = 0.2f;  ///< clipping threshold of L2-hys normalisation

  /// Descriptor length for a window of `size` pixels (must align to cells).
  [[nodiscard]] std::size_t descriptor_length(img::Size size) const;
  /// Number of blocks along one axis for `cells` cells.
  [[nodiscard]] int blocks_along(int cells) const {
    return (cells - block_cells) / block_stride_cells + 1;
  }
};

/// Grid of per-cell orientation histograms covering a whole image.
class CellGrid {
 public:
  CellGrid() = default;
  CellGrid(int cells_x, int cells_y, int bins);

  [[nodiscard]] int cells_x() const { return cells_x_; }
  [[nodiscard]] int cells_y() const { return cells_y_; }
  [[nodiscard]] int bins() const { return bins_; }

  /// Histogram of cell (cx, cy): `bins` consecutive floats.
  [[nodiscard]] std::span<float> cell(int cx, int cy);
  [[nodiscard]] std::span<const float> cell(int cx, int cy) const;

 private:
  int cells_x_ = 0;
  int cells_y_ = 0;
  int bins_ = 0;
  std::vector<float> data_;
};

/// Gradient magnitude/orientation computed with centred [-1,0,1] masks.
struct GradientField {
  img::ImageF32 magnitude;
  img::ImageF32 orientation_deg;  ///< unsigned, [0, 180)
};

[[nodiscard]] GradientField compute_gradients(const img::ImageU8& image);

/// L2-hys block normalisation in place: L2-normalise, clip at `clip`,
/// renormalise (with an epsilon so zero-energy blocks stay zero). The single
/// normalisation primitive shared by window_descriptor and BlockGrid — both
/// paths must produce bit-identical vectors from the same raw block.
void l2hys_normalise(std::span<float> block, float clip);

/// Stage 1: cell histograms with bilinear orientation-bin interpolation.
[[nodiscard]] CellGrid compute_cell_grid(const img::ImageU8& image,
                                         const HogParams& params = {});

/// Stage 2: assemble the L2-hys-normalised descriptor of the window whose
/// top-left cell is (cell_x, cell_y) spanning cells_w x cells_h cells.
/// `out` must have capacity descriptor_length; it is overwritten.
void window_descriptor(const CellGrid& grid, const HogParams& params, int cell_x,
                       int cell_y, int cells_w, int cells_h,
                       std::vector<float>& out);

/// Convenience: full descriptor of an entire image (window == image).
/// Image dimensions must be multiples of cell_size.
[[nodiscard]] std::vector<float> compute_descriptor(const img::ImageU8& image,
                                                    const HogParams& params = {});

}  // namespace avd::hog
