// Precomputed normalised block grid: HOG stage 2 hoisted out of the window
// loop.
//
// window_descriptor() re-runs L2-hys on every overlapping block of every
// window it assembles; in a dense sliding-window scan each block is shared by
// up to block-count-per-window windows, so the same normalisation ran ~49
// times (default 64x64 window) per block. A BlockGrid normalises every block
// of a pyramid level exactly once — the software twin of the paper's
// "normalised HOG memory" stage, which also writes each normalised block to
// block RAM once and lets every downstream classifier read it.
//
// Blocks are anchored at EVERY cell position (stride-1 anchors), not just at
// multiples of block_stride_cells: a window whose top-left cell is not a
// multiple of the block stride still needs the blocks anchored at its own
// offsets. Window block (wbx, wby) of a window anchored at cell (cx, cy) is
// grid block (cx + wbx * block_stride_cells, cy + wby * block_stride_cells).
//
// Equivalence guarantee: a block's stored vector is bit-identical to what
// window_descriptor would have produced for that block (same gather order,
// same l2hys arithmetic) — tests/hog/test_block_grid.cpp enforces this, and
// the scanner's bit-exactness against the scalar reference rests on it.
#pragma once

#include "avd/hog/hog.hpp"

namespace avd::hog {

/// Every L2-hys-normalised block of a cell grid, each computed once.
class BlockGrid {
 public:
  BlockGrid() = default;
  BlockGrid(int anchors_x, int anchors_y, int block_len);

  /// Block anchors along x/y: cells - block_cells + 1 (0 when the grid is
  /// smaller than one block).
  [[nodiscard]] int anchors_x() const { return anchors_x_; }
  [[nodiscard]] int anchors_y() const { return anchors_y_; }
  /// Floats per block: block_cells^2 * bins.
  [[nodiscard]] int block_len() const { return block_len_; }

  /// The normalised block anchored at cell (ax, ay): block_len floats, cell
  /// histograms in (cell_y, cell_x) order — the window_descriptor layout.
  [[nodiscard]] std::span<float> block(int ax, int ay);
  [[nodiscard]] std::span<const float> block(int ax, int ay) const;

 private:
  int anchors_x_ = 0;
  int anchors_y_ = 0;
  int block_len_ = 0;
  std::vector<float> data_;
};

/// Normalise every block of `grid` once. O(cells) memory and work, after
/// which any window descriptor (or sliced dot product) is pure reads.
[[nodiscard]] BlockGrid compute_block_grid(const CellGrid& grid,
                                           const HogParams& params);

/// Assemble the descriptor of the window anchored at cell (cell_x, cell_y)
/// from precomputed blocks. Bit-identical to the CellGrid overload of
/// window_descriptor (the per-window renormalising path).
void window_descriptor(const BlockGrid& blocks, const HogParams& params,
                       int cell_x, int cell_y, int cells_w, int cells_h,
                       std::vector<float>& out);

}  // namespace avd::hog
