// Color-space conversion: RGB <-> YCbCr (BT.601 full-range).
//
// The dark-condition pipeline (paper Fig. 4, "Split Chroma & Luminance")
// thresholds the luminance channel for brightness and the Cr channel for the
// red hue of taillights; these conversions feed that stage.
#pragma once

#include <cstdint>

#include "avd/image/image.hpp"

namespace avd::img {

/// Planar YCbCr image. Y in [0,255]; Cb/Cr offset-binary with 128 = neutral.
struct YcbcrImage {
  ImageU8 y;
  ImageU8 cb;
  ImageU8 cr;

  [[nodiscard]] int width() const { return y.width(); }
  [[nodiscard]] int height() const { return y.height(); }
  [[nodiscard]] Size size() const { return y.size(); }
};

/// Per-pixel BT.601 full-range forward conversion.
[[nodiscard]] YcbcrImage rgb_to_ycbcr(const RgbImage& rgb);

/// Per-pixel BT.601 full-range inverse conversion (values clamped to [0,255]).
[[nodiscard]] RgbImage ycbcr_to_rgb(const YcbcrImage& ycc);

/// Luminance-only conversion (Y plane of rgb_to_ycbcr, cheaper).
[[nodiscard]] ImageU8 rgb_to_gray(const RgbImage& rgb);

/// Replicate a grayscale image into three identical RGB planes.
[[nodiscard]] RgbImage gray_to_rgb(const ImageU8& gray);

/// Scalar conversions (used by the image ops and by tests as ground truth).
[[nodiscard]] std::uint8_t luma_of(std::uint8_t r, std::uint8_t g, std::uint8_t b);
[[nodiscard]] std::uint8_t cb_of(std::uint8_t r, std::uint8_t g, std::uint8_t b);
[[nodiscard]] std::uint8_t cr_of(std::uint8_t r, std::uint8_t g, std::uint8_t b);

}  // namespace avd::img
