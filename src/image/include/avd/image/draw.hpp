// Simple rasterisation used by the scene generator and by examples that dump
// annotated detection results (Fig. 5-style imagery).
#pragma once

#include "avd/image/image.hpp"

namespace avd::img {

/// Fill a rectangle (clipped to bounds) with a solid color.
void fill_rect(RgbImage& image, const Rect& r, RgbPixel color);
void fill_rect(ImageU8& image, const Rect& r, std::uint8_t value);

/// 1-pixel-wide rectangle outline with configurable thickness (grows inward).
void draw_rect(RgbImage& image, const Rect& r, RgbPixel color, int thickness = 1);
void draw_rect(ImageU8& image, const Rect& r, std::uint8_t value, int thickness = 1);

/// Bresenham line segment.
void draw_line(RgbImage& image, Point a, Point b, RgbPixel color);

/// Filled axis-aligned ellipse inscribed in `r` (used for lights/blobs).
void fill_ellipse(RgbImage& image, const Rect& r, RgbPixel color);
void fill_ellipse(ImageU8& image, const Rect& r, std::uint8_t value);

/// Additively blend a radial light glow centred at `center`: intensity falls
/// off quadratically to zero at `radius`. Saturating arithmetic.
void add_glow(RgbImage& image, Point center, int radius, RgbPixel color);

/// Alpha-blend a solid rect: dst = dst*(1-alpha) + color*alpha, alpha in [0,1].
void blend_rect(RgbImage& image, const Rect& r, RgbPixel color, float alpha);

/// Render an unsigned number with a built-in 3x5 bitmap digit font, each
/// glyph scaled by `scale` pixels per font pixel. Used to stamp track ids
/// and frame numbers into dumped frames. Returns the width drawn in pixels.
int draw_number(RgbImage& image, Point top_left, std::uint64_t value,
                RgbPixel color, int scale = 2);

}  // namespace avd::img
