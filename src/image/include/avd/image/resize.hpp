// Image resampling.
//
// The dark pipeline downsamples the 1920x1080 binary frame to 640x360
// (paper Fig. 4) before morphology and the sliding DBN; the multi-scale HOG
// scan resizes the frame to a pyramid of scales.
#pragma once

#include "avd/image/image.hpp"

namespace avd::img {

/// Bilinear resize to exactly `out_size`. Degenerate sizes throw.
[[nodiscard]] ImageU8 resize_bilinear(const ImageU8& src, Size out_size);
[[nodiscard]] RgbImage resize_bilinear(const RgbImage& src, Size out_size);

/// Nearest-neighbour resize (used for binary masks, where interpolation would
/// invent gray values).
[[nodiscard]] ImageU8 resize_nearest(const ImageU8& src, Size out_size);

/// Integer-factor box downsample: each output pixel is the mean of a
/// `factor` x `factor` source block. Source dims must divide evenly.
[[nodiscard]] ImageU8 downsample_box(const ImageU8& src, int factor);

/// Binary-aware downsample: output pixel is 255 if any source pixel in the
/// block is non-zero ("OR pooling"). Preserves small blobs such as distant
/// taillights that a mean filter would wash out.
[[nodiscard]] ImageU8 downsample_or(const ImageU8& src, int factor);

}  // namespace avd::img
