// Planar single-channel image container plus a 3-plane RGB wrapper.
//
// The container is deliberately simple: contiguous row-major storage,
// value-semantic, bounds-checked access in debug builds via at(). All image
// algorithms in the library operate on these types.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "avd/image/geometry.hpp"

namespace avd::img {

/// Single-channel row-major image.
template <typename T>
class Image {
 public:
  using value_type = T;

  Image() = default;
  Image(int width, int height, T fill = T{})
      : width_(width), height_(height), data_(checked_area(width, height), fill) {}
  explicit Image(Size size, T fill = T{}) : Image(size.width, size.height, fill) {}

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] Size size() const { return {width_, height_}; }
  [[nodiscard]] Rect bounds() const { return {0, 0, width_, height_}; }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t pixel_count() const { return data_.size(); }

  /// Unchecked access (asserts in debug builds).
  [[nodiscard]] T& operator()(int x, int y) {
    assert(in_bounds(x, y));
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  [[nodiscard]] const T& operator()(int x, int y) const {
    assert(in_bounds(x, y));
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Checked access; throws std::out_of_range.
  [[nodiscard]] T& at(int x, int y) {
    if (!in_bounds(x, y)) throw std::out_of_range("Image::at");
    return (*this)(x, y);
  }
  [[nodiscard]] const T& at(int x, int y) const {
    if (!in_bounds(x, y)) throw std::out_of_range("Image::at");
    return (*this)(x, y);
  }

  /// Clamped read: coordinates outside the image are clamped to the border.
  [[nodiscard]] T at_clamped(int x, int y) const {
    if (empty()) return T{};
    x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
    y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
    return (*this)(x, y);
  }

  [[nodiscard]] bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  [[nodiscard]] std::span<T> row(int y) {
    assert(y >= 0 && y < height_);
    return {data_.data() + static_cast<std::size_t>(y) * width_,
            static_cast<std::size_t>(width_)};
  }
  [[nodiscard]] std::span<const T> row(int y) const {
    assert(y >= 0 && y < height_);
    return {data_.data() + static_cast<std::size_t>(y) * width_,
            static_cast<std::size_t>(width_)};
  }

  [[nodiscard]] std::span<T> pixels() { return data_; }
  [[nodiscard]] std::span<const T> pixels() const { return data_; }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Copy of the sub-image at `roi` (clipped to bounds).
  [[nodiscard]] Image crop(const Rect& roi) const {
    const Rect r = intersect(roi, bounds());
    Image out(r.width, r.height);
    for (int y = 0; y < r.height; ++y) {
      auto src = row(r.y + y);
      std::copy(src.begin() + r.x, src.begin() + r.x + r.width, out.row(y).begin());
    }
    return out;
  }

  /// Paste `patch` with its top-left corner at `origin` (clipped).
  void paste(const Image& patch, Point origin) {
    const Rect dst = intersect({origin.x, origin.y, patch.width(), patch.height()},
                               bounds());
    for (int y = 0; y < dst.height; ++y) {
      auto src = patch.row(y + (dst.y - origin.y));
      auto dstrow = row(dst.y + y);
      const int sx = dst.x - origin.x;
      std::copy(src.begin() + sx, src.begin() + sx + dst.width,
                dstrow.begin() + dst.x);
    }
  }

  friend bool operator==(const Image& a, const Image& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ && a.data_ == b.data_;
  }

 private:
  static std::size_t checked_area(int w, int h) {
    if (w < 0 || h < 0) throw std::invalid_argument("Image: negative dimensions");
    return static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

using ImageU8 = Image<std::uint8_t>;
using ImageF32 = Image<float>;

/// Planar RGB image (three same-sized U8 planes).
class RgbImage {
 public:
  RgbImage() = default;
  RgbImage(int width, int height)
      : r_(width, height), g_(width, height), b_(width, height) {}
  explicit RgbImage(Size size) : RgbImage(size.width, size.height) {}
  RgbImage(ImageU8 r, ImageU8 g, ImageU8 b)
      : r_(std::move(r)), g_(std::move(g)), b_(std::move(b)) {
    if (r_.size() != g_.size() || g_.size() != b_.size())
      throw std::invalid_argument("RgbImage: plane size mismatch");
  }

  [[nodiscard]] int width() const { return r_.width(); }
  [[nodiscard]] int height() const { return r_.height(); }
  [[nodiscard]] Size size() const { return r_.size(); }
  [[nodiscard]] Rect bounds() const { return r_.bounds(); }
  [[nodiscard]] bool empty() const { return r_.empty(); }

  [[nodiscard]] ImageU8& r() { return r_; }
  [[nodiscard]] ImageU8& g() { return g_; }
  [[nodiscard]] ImageU8& b() { return b_; }
  [[nodiscard]] const ImageU8& r() const { return r_; }
  [[nodiscard]] const ImageU8& g() const { return g_; }
  [[nodiscard]] const ImageU8& b() const { return b_; }

  struct Pixel {
    std::uint8_t r = 0, g = 0, b = 0;
    friend constexpr bool operator==(const Pixel&, const Pixel&) = default;
  };

  [[nodiscard]] Pixel pixel(int x, int y) const {
    return {r_(x, y), g_(x, y), b_(x, y)};
  }
  void set_pixel(int x, int y, Pixel p) {
    r_(x, y) = p.r;
    g_(x, y) = p.g;
    b_(x, y) = p.b;
  }
  void set_pixel_clipped(int x, int y, Pixel p) {
    if (r_.in_bounds(x, y)) set_pixel(x, y, p);
  }

  void fill(Pixel p) {
    r_.fill(p.r);
    g_.fill(p.g);
    b_.fill(p.b);
  }

  [[nodiscard]] RgbImage crop(const Rect& roi) const {
    return {r_.crop(roi), g_.crop(roi), b_.crop(roi)};
  }

 private:
  ImageU8 r_, g_, b_;
};

using RgbPixel = RgbImage::Pixel;

}  // namespace avd::img
