// Spatial filters: median despeckle and separable Gaussian blur.
//
// Fig. 3 of the paper places a "Noise Reduction & Contour Smoothing" block
// ahead of the DBN; the morphological closing covers contour smoothing, and
// the 3x3 median here is the classic despeckle companion (exposed as an
// optional pre-filter in DarkDetectorConfig and exercised by ablation A2).
#pragma once

#include "avd/image/image.hpp"

namespace avd::img {

/// 3x3 median filter. Border pixels use clamped neighbourhoods. On binary
/// masks this is a majority vote: isolated specks vanish, solid blobs keep
/// their shape.
[[nodiscard]] ImageU8 median3x3(const ImageU8& src);

/// Separable Gaussian blur with the given sigma (kernel radius = ceil(3
/// sigma), clamped borders). sigma <= 0 returns the input unchanged.
[[nodiscard]] ImageU8 gaussian_blur(const ImageU8& src, double sigma);

}  // namespace avd::img
