// Connected-component extraction on binary masks.
//
// The dark pipeline uses blobs twice: to seed candidate taillight windows for
// the sliding DBN, and (in the ablation baseline) as a direct heuristic
// taillight detector.
#pragma once

#include <cstdint>
#include <vector>

#include "avd/image/image.hpp"

namespace avd::img {

/// A connected component of non-zero pixels.
struct Blob {
  Rect bbox;             ///< tight bounding box
  long long area = 0;    ///< number of pixels
  double centroid_x = 0;  ///< pixel-weighted centroid
  double centroid_y = 0;

  /// bbox fill ratio: area / bbox area. Circular/square lights score high,
  /// elongated streaks and lane reflections score low.
  [[nodiscard]] double extent() const {
    const long long box = bbox.area();
    return box > 0 ? static_cast<double>(area) / static_cast<double>(box) : 0.0;
  }
  /// bbox aspect ratio (width / height).
  [[nodiscard]] double aspect() const {
    return bbox.height > 0 ? static_cast<double>(bbox.width) / bbox.height : 0.0;
  }
};

/// Pixel connectivity used by the labelling pass.
enum class Connectivity { Four, Eight };

/// Labels connected components of the binary mask and returns one Blob per
/// component, ordered by label (scan order of first pixel). Components smaller
/// than `min_area` pixels are discarded.
[[nodiscard]] std::vector<Blob> find_blobs(const ImageU8& mask,
                                           Connectivity conn = Connectivity::Eight,
                                           long long min_area = 1);

/// Full labelling: returns a label image (0 = background, 1..N = components)
/// along with the blobs. Blob i has label i+1.
struct LabelResult {
  Image<std::int32_t> labels;
  std::vector<Blob> blobs;
};
[[nodiscard]] LabelResult label_components(const ImageU8& mask,
                                           Connectivity conn = Connectivity::Eight,
                                           long long min_area = 1);

}  // namespace avd::img
