// Basic integer geometry primitives shared across the library.
#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>

namespace avd::img {

/// 2-D integer point (pixel coordinates; origin top-left, y grows down).
struct Point {
  int x = 0;
  int y = 0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

/// Width/height pair.
struct Size {
  int width = 0;
  int height = 0;

  [[nodiscard]] constexpr long long area() const {
    return static_cast<long long>(width) * height;
  }
  [[nodiscard]] constexpr bool empty() const { return width <= 0 || height <= 0; }

  friend constexpr bool operator==(const Size&, const Size&) = default;
};

/// Axis-aligned rectangle: [x, x+width) x [y, y+height).
struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  [[nodiscard]] constexpr int left() const { return x; }
  [[nodiscard]] constexpr int top() const { return y; }
  [[nodiscard]] constexpr int right() const { return x + width; }    // exclusive
  [[nodiscard]] constexpr int bottom() const { return y + height; }  // exclusive
  [[nodiscard]] constexpr long long area() const {
    return static_cast<long long>(width) * height;
  }
  [[nodiscard]] constexpr bool empty() const { return width <= 0 || height <= 0; }
  [[nodiscard]] constexpr Point center() const {
    return {x + width / 2, y + height / 2};
  }
  [[nodiscard]] constexpr bool contains(Point p) const {
    return p.x >= x && p.x < right() && p.y >= y && p.y < bottom();
  }
  [[nodiscard]] constexpr bool contains(const Rect& r) const {
    return r.x >= x && r.y >= y && r.right() <= right() && r.bottom() <= bottom();
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

/// Intersection of two rectangles (empty rect if disjoint).
[[nodiscard]] constexpr Rect intersect(const Rect& a, const Rect& b) {
  const int x0 = std::max(a.x, b.x);
  const int y0 = std::max(a.y, b.y);
  const int x1 = std::min(a.right(), b.right());
  const int y1 = std::min(a.bottom(), b.bottom());
  if (x1 <= x0 || y1 <= y0) return {};
  return {x0, y0, x1 - x0, y1 - y0};
}

/// Smallest rectangle covering both inputs (empty inputs are ignored).
[[nodiscard]] constexpr Rect bounding_union(const Rect& a, const Rect& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const int x0 = std::min(a.x, b.x);
  const int y0 = std::min(a.y, b.y);
  const int x1 = std::max(a.right(), b.right());
  const int y1 = std::max(a.bottom(), b.bottom());
  return {x0, y0, x1 - x0, y1 - y0};
}

/// Intersection-over-union; 0 when either rect is empty.
[[nodiscard]] constexpr double iou(const Rect& a, const Rect& b) {
  if (a.empty() || b.empty()) return 0.0;
  const long long inter = intersect(a, b).area();
  const long long uni = a.area() + b.area() - inter;
  return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
}

/// Clip `r` to lie within `bounds`.
[[nodiscard]] constexpr Rect clip(const Rect& r, const Rect& bounds) {
  return intersect(r, bounds);
}

/// Scale a rectangle's coordinates by (sx, sy), rounding toward zero.
[[nodiscard]] constexpr Rect scaled(const Rect& r, double sx, double sy) {
  return {static_cast<int>(r.x * sx), static_cast<int>(r.y * sy),
          static_cast<int>(r.width * sx), static_cast<int>(r.height * sy)};
}

/// Grow (or shrink, with negative margin) a rect by `margin` on every side.
[[nodiscard]] constexpr Rect inflated(const Rect& r, int margin) {
  return {r.x - margin, r.y - margin, r.width + 2 * margin, r.height + 2 * margin};
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}
inline std::ostream& operator<<(std::ostream& os, const Size& s) {
  return os << s.width << 'x' << s.height;
}
inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.x << ',' << r.y << ' ' << r.width << 'x' << r.height << ']';
}

}  // namespace avd::img
