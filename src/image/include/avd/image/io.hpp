// Minimal binary PGM (P5) / PPM (P6) reading and writing.
//
// These formats keep the library dependency-free while letting examples dump
// viewable frames (Fig. 5-style qualitative results).
#pragma once

#include <string>

#include "avd/image/image.hpp"

namespace avd::img {

/// Write an 8-bit grayscale image as binary PGM. Throws std::runtime_error on
/// I/O failure.
void write_pgm(const ImageU8& image, const std::string& path);

/// Write an RGB image as binary PPM. Throws std::runtime_error on I/O failure.
void write_ppm(const RgbImage& image, const std::string& path);

/// Read a binary PGM file. Throws std::runtime_error on malformed input.
[[nodiscard]] ImageU8 read_pgm(const std::string& path);

/// Read a binary PPM file. Throws std::runtime_error on malformed input.
[[nodiscard]] RgbImage read_ppm(const std::string& path);

}  // namespace avd::img
