// Image scale pyramid.
//
// Both multi-scale detectors resize the frame level by level; this type
// computes the levels once so several consumers (the multi-model scanner,
// visualisation, benchmarking) can share them.
#pragma once

#include <vector>

#include "avd/image/image.hpp"

namespace avd::img {

struct PyramidParams {
  double scale_step = 1.25;  ///< ratio between consecutive levels (> 1)
  int max_levels = 6;
  Size min_size{16, 16};     ///< stop before a level falls below this
};

struct PyramidLevel {
  ImageU8 image;
  double scale = 1.0;  ///< original = level * scale
};

class Pyramid {
 public:
  Pyramid() = default;
  /// Build by repeated bilinear resampling of `base`. Level 0 shares the
  /// base image unscaled. Throws for scale_step <= 1 or empty base.
  Pyramid(const ImageU8& base, const PyramidParams& params = {});

  [[nodiscard]] std::size_t levels() const { return levels_.size(); }
  [[nodiscard]] const PyramidLevel& level(std::size_t i) const {
    return levels_.at(i);
  }
  [[nodiscard]] auto begin() const { return levels_.begin(); }
  [[nodiscard]] auto end() const { return levels_.end(); }

  /// Map a rectangle in level `i` coordinates back to base coordinates.
  [[nodiscard]] Rect to_base(std::size_t i, const Rect& r) const;

 private:
  std::vector<PyramidLevel> levels_;
};

}  // namespace avd::img
