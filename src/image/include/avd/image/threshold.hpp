// Binary thresholding and mask logic.
//
// Paper Fig. 4: the dark pipeline thresholds the luminance channel (bright
// light sources) AND the chrominance channel (red hue of taillights), then
// merges the two binary selections.
#pragma once

#include <cstdint>

#include "avd/image/color.hpp"
#include "avd/image/image.hpp"

namespace avd::img {

/// out = (src >= threshold) ? 255 : 0.
[[nodiscard]] ImageU8 threshold_binary(const ImageU8& src, std::uint8_t threshold);

/// out = (lo <= src && src <= hi) ? 255 : 0.
[[nodiscard]] ImageU8 threshold_band(const ImageU8& src, std::uint8_t lo,
                                     std::uint8_t hi);

/// Per-pixel logical AND of two same-sized binary masks.
[[nodiscard]] ImageU8 mask_and(const ImageU8& a, const ImageU8& b);

/// Per-pixel logical OR of two same-sized binary masks.
[[nodiscard]] ImageU8 mask_or(const ImageU8& a, const ImageU8& b);

/// Per-pixel logical NOT (0 <-> 255).
[[nodiscard]] ImageU8 mask_not(const ImageU8& a);

/// Count of non-zero pixels.
[[nodiscard]] std::size_t count_nonzero(const ImageU8& mask);

/// Parameters of the taillight region-of-interest threshold (Fig. 4 front end).
struct TaillightThresholdParams {
  std::uint8_t luma_min = 90;   ///< bright light sources (red lamps: Y ~100-140)
  std::uint8_t cr_min = 150;    ///< red chroma of taillights
  std::uint8_t cb_max = 135;    ///< suppress blue-ish street lighting
};

/// Binary ROI mask of candidate taillight pixels: bright AND red.
/// Headlights/road lights are white-to-blue (Cr near/below 128) and are
/// rejected by the chroma gates.
[[nodiscard]] ImageU8 taillight_roi_mask(const YcbcrImage& ycc,
                                         const TaillightThresholdParams& p = {});

}  // namespace avd::img
