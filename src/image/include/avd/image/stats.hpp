// Image statistics: histograms, moments, percentiles, integral images.
//
// The lighting classifier (core module) decides day/dusk/dark from luminance
// statistics of the incoming frame; these helpers provide them.
#pragma once

#include <array>
#include <cstdint>

#include "avd/image/image.hpp"

namespace avd::img {

/// 256-bin intensity histogram.
[[nodiscard]] std::array<std::uint64_t, 256> histogram(const ImageU8& image);

/// Mean intensity (0 for empty images).
[[nodiscard]] double mean_intensity(const ImageU8& image);

/// Population standard deviation of intensity.
[[nodiscard]] double stddev_intensity(const ImageU8& image);

/// Intensity value below which `fraction` (in [0,1]) of pixels fall.
/// fraction=0.5 gives the median.
[[nodiscard]] std::uint8_t percentile(const ImageU8& image, double fraction);

/// Fraction of pixels with intensity >= threshold.
[[nodiscard]] double bright_fraction(const ImageU8& image, std::uint8_t threshold);

/// Summed-area table: S(x,y) = sum of pixels in [0,x) x [0,y).
/// Table is (w+1) x (h+1); box sums are O(1) via box_sum().
class IntegralImage {
 public:
  IntegralImage() = default;
  explicit IntegralImage(const ImageU8& image);

  /// Sum of pixels inside `r` (clipped to the source bounds).
  [[nodiscard]] std::uint64_t box_sum(const Rect& r) const;
  /// Mean of pixels inside `r`; 0 if the clipped rect is empty.
  [[nodiscard]] double box_mean(const Rect& r) const;

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

 private:
  [[nodiscard]] std::uint64_t tab(int x, int y) const {
    return table_[static_cast<std::size_t>(y) * (width_ + 1) + x];
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint64_t> table_;
};

}  // namespace avd::img
