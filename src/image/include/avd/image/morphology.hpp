// Binary morphology with rectangular structuring elements.
//
// Paper Fig. 4: "Closing (Dilate & Erode)" removes threshold noise and closes
// small holes in taillight blobs before the sliding DBN.
#pragma once

#include "avd/image/image.hpp"

namespace avd::img {

/// Rectangular structuring element of odd dimensions centred on the origin.
struct StructuringElement {
  int width = 3;
  int height = 3;

  [[nodiscard]] int radius_x() const { return width / 2; }
  [[nodiscard]] int radius_y() const { return height / 2; }
};

/// Binary dilation: output pixel set if any input pixel under the SE is set.
/// Pixels outside the image are treated as background (0).
[[nodiscard]] ImageU8 dilate(const ImageU8& mask, StructuringElement se = {});

/// Binary erosion: output pixel set only if every in-bounds pixel under the
/// SE is set. Pixels outside the image are treated as background, so blobs
/// touching the border erode from the border too.
[[nodiscard]] ImageU8 erode(const ImageU8& mask, StructuringElement se = {});

/// Closing = dilate then erode. Fills holes/gaps smaller than the SE.
[[nodiscard]] ImageU8 close(const ImageU8& mask, StructuringElement se = {});

/// Opening = erode then dilate. Removes specks smaller than the SE.
[[nodiscard]] ImageU8 open(const ImageU8& mask, StructuringElement se = {});

}  // namespace avd::img
