#include "avd/image/pyramid.hpp"

#include <cmath>
#include <stdexcept>

#include "avd/image/resize.hpp"

namespace avd::img {

Pyramid::Pyramid(const ImageU8& base, const PyramidParams& params) {
  if (base.empty()) throw std::invalid_argument("Pyramid: empty base image");
  if (params.scale_step <= 1.0)
    throw std::invalid_argument("Pyramid: scale_step must exceed 1");
  if (params.max_levels <= 0)
    throw std::invalid_argument("Pyramid: max_levels must be positive");

  double scale = 1.0;
  for (int i = 0; i < params.max_levels; ++i, scale *= params.scale_step) {
    const Size size{static_cast<int>(std::lround(base.width() / scale)),
                    static_cast<int>(std::lround(base.height() / scale))};
    if (size.width < params.min_size.width ||
        size.height < params.min_size.height)
      break;
    PyramidLevel level;
    level.scale = scale;
    level.image = i == 0 ? base : resize_bilinear(base, size);
    levels_.push_back(std::move(level));
  }
}

Rect Pyramid::to_base(std::size_t i, const Rect& r) const {
  const double s = levels_.at(i).scale;
  return scaled(r, s, s);
}

}  // namespace avd::img
