#include "avd/image/filter.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace avd::img {

ImageU8 median3x3(const ImageU8& src) {
  ImageU8 out(src.size());
  std::array<std::uint8_t, 9> window;
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      int k = 0;
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx)
          window[static_cast<std::size_t>(k++)] =
              src.at_clamped(x + dx, y + dy);
      std::nth_element(window.begin(), window.begin() + 4, window.end());
      out(x, y) = window[4];
    }
  }
  return out;
}

ImageU8 gaussian_blur(const ImageU8& src, double sigma) {
  if (sigma <= 0.0 || src.empty()) return src;
  const int radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  float sum = 0.0f;
  for (int i = -radius; i <= radius; ++i) {
    const auto w = static_cast<float>(
        std::exp(-0.5 * (static_cast<double>(i) * i) / (sigma * sigma)));
    kernel[static_cast<std::size_t>(i + radius)] = w;
    sum += w;
  }
  for (float& w : kernel) w /= sum;

  // Horizontal pass into a float buffer, then vertical pass back to u8.
  ImageF32 tmp(src.size());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      float acc = 0.0f;
      for (int i = -radius; i <= radius; ++i)
        acc += kernel[static_cast<std::size_t>(i + radius)] *
               static_cast<float>(src.at_clamped(x + i, y));
      tmp(x, y) = acc;
    }
  }
  ImageU8 out(src.size());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      float acc = 0.0f;
      for (int i = -radius; i <= radius; ++i)
        acc += kernel[static_cast<std::size_t>(i + radius)] *
               tmp.at_clamped(x, y + i);
      out(x, y) = static_cast<std::uint8_t>(
          std::clamp(std::lround(acc), 0L, 255L));
    }
  }
  return out;
}

}  // namespace avd::img
