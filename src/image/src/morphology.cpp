#include "avd/image/morphology.hpp"

#include <stdexcept>

namespace avd::img {
namespace {

void check_se(StructuringElement se) {
  if (se.width <= 0 || se.height <= 0 || se.width % 2 == 0 || se.height % 2 == 0)
    throw std::invalid_argument("morphology: SE dimensions must be positive odd");
}

// Rectangular SEs are separable: a horizontal 1xW pass followed by a vertical
// Hx1 pass. `Any` selects dilation (true = any set) vs erosion (false = all set).
template <bool Any>
ImageU8 horizontal_pass(const ImageU8& src, int rx) {
  ImageU8 out(src.size());
  for (int y = 0; y < src.height(); ++y) {
    auto s = src.row(y);
    auto o = out.row(y);
    for (int x = 0; x < src.width(); ++x) {
      bool hit = !Any;
      for (int dx = -rx; dx <= rx; ++dx) {
        const int xx = x + dx;
        const bool set = xx >= 0 && xx < src.width() && s[xx] != 0;
        if constexpr (Any) {
          if (set) {
            hit = true;
            break;
          }
        } else {
          if (!set) {
            hit = false;
            break;
          }
        }
      }
      o[x] = hit ? 255 : 0;
    }
  }
  return out;
}

template <bool Any>
ImageU8 vertical_pass(const ImageU8& src, int ry) {
  ImageU8 out(src.size());
  for (int y = 0; y < src.height(); ++y) {
    auto o = out.row(y);
    for (int x = 0; x < src.width(); ++x) {
      bool hit = !Any;
      for (int dy = -ry; dy <= ry; ++dy) {
        const int yy = y + dy;
        const bool set = yy >= 0 && yy < src.height() && src(x, yy) != 0;
        if constexpr (Any) {
          if (set) {
            hit = true;
            break;
          }
        } else {
          if (!set) {
            hit = false;
            break;
          }
        }
      }
      o[x] = hit ? 255 : 0;
    }
  }
  return out;
}

}  // namespace

ImageU8 dilate(const ImageU8& mask, StructuringElement se) {
  check_se(se);
  return vertical_pass<true>(horizontal_pass<true>(mask, se.radius_x()),
                             se.radius_y());
}

ImageU8 erode(const ImageU8& mask, StructuringElement se) {
  check_se(se);
  return vertical_pass<false>(horizontal_pass<false>(mask, se.radius_x()),
                              se.radius_y());
}

ImageU8 close(const ImageU8& mask, StructuringElement se) {
  return erode(dilate(mask, se), se);
}

ImageU8 open(const ImageU8& mask, StructuringElement se) {
  return dilate(erode(mask, se), se);
}

}  // namespace avd::img
