#include "avd/image/draw.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace avd::img {
namespace {

std::uint8_t sat_add(std::uint8_t a, int b) {
  return static_cast<std::uint8_t>(std::clamp(static_cast<int>(a) + b, 0, 255));
}

std::uint8_t mix(std::uint8_t a, std::uint8_t b, float alpha) {
  return static_cast<std::uint8_t>(
      std::lround(static_cast<float>(a) * (1.0f - alpha) +
                  static_cast<float>(b) * alpha));
}

}  // namespace

void fill_rect(ImageU8& image, const Rect& r, std::uint8_t value) {
  const Rect c = intersect(r, image.bounds());
  for (int y = c.y; y < c.bottom(); ++y) {
    auto row = image.row(y);
    std::fill(row.begin() + c.x, row.begin() + c.right(), value);
  }
}

void fill_rect(RgbImage& image, const Rect& r, RgbPixel color) {
  fill_rect(image.r(), r, color.r);
  fill_rect(image.g(), r, color.g);
  fill_rect(image.b(), r, color.b);
}

void draw_rect(ImageU8& image, const Rect& r, std::uint8_t value, int thickness) {
  if (r.empty() || thickness <= 0) return;
  const int t = std::min({thickness, (r.width + 1) / 2, (r.height + 1) / 2});
  fill_rect(image, {r.x, r.y, r.width, t}, value);                     // top
  fill_rect(image, {r.x, r.bottom() - t, r.width, t}, value);          // bottom
  fill_rect(image, {r.x, r.y, t, r.height}, value);                    // left
  fill_rect(image, {r.right() - t, r.y, t, r.height}, value);          // right
}

void draw_rect(RgbImage& image, const Rect& r, RgbPixel color, int thickness) {
  draw_rect(image.r(), r, color.r, thickness);
  draw_rect(image.g(), r, color.g, thickness);
  draw_rect(image.b(), r, color.b, thickness);
}

void draw_line(RgbImage& image, Point a, Point b, RgbPixel color) {
  const int dx = std::abs(b.x - a.x);
  const int dy = -std::abs(b.y - a.y);
  const int sx = a.x < b.x ? 1 : -1;
  const int sy = a.y < b.y ? 1 : -1;
  int err = dx + dy;
  Point p = a;
  while (true) {
    image.set_pixel_clipped(p.x, p.y, color);
    if (p == b) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      p.x += sx;
    }
    if (e2 <= dx) {
      err += dx;
      p.y += sy;
    }
  }
}

void fill_ellipse(ImageU8& image, const Rect& r, std::uint8_t value) {
  if (r.empty()) return;
  const double cx = r.x + r.width / 2.0 - 0.5;
  const double cy = r.y + r.height / 2.0 - 0.5;
  const double rx = r.width / 2.0;
  const double ry = r.height / 2.0;
  const Rect c = intersect(r, image.bounds());
  for (int y = c.y; y < c.bottom(); ++y) {
    const double ny = (y - cy) / ry;
    auto row = image.row(y);
    for (int x = c.x; x < c.right(); ++x) {
      const double nx = (x - cx) / rx;
      if (nx * nx + ny * ny <= 1.0) row[x] = value;
    }
  }
}

void fill_ellipse(RgbImage& image, const Rect& r, RgbPixel color) {
  fill_ellipse(image.r(), r, color.r);
  fill_ellipse(image.g(), r, color.g);
  fill_ellipse(image.b(), r, color.b);
}

void add_glow(RgbImage& image, Point center, int radius, RgbPixel color) {
  if (radius <= 0) return;
  const Rect roi = intersect(
      {center.x - radius, center.y - radius, 2 * radius + 1, 2 * radius + 1},
      image.bounds());
  const double r2 = static_cast<double>(radius) * radius;
  for (int y = roi.y; y < roi.bottom(); ++y) {
    for (int x = roi.x; x < roi.right(); ++x) {
      const double d2 = static_cast<double>(x - center.x) * (x - center.x) +
                        static_cast<double>(y - center.y) * (y - center.y);
      if (d2 > r2) continue;
      const double w = 1.0 - d2 / r2;  // quadratic falloff
      const double w2 = w * w;
      image.r()(x, y) = sat_add(image.r()(x, y), static_cast<int>(color.r * w2));
      image.g()(x, y) = sat_add(image.g()(x, y), static_cast<int>(color.g * w2));
      image.b()(x, y) = sat_add(image.b()(x, y), static_cast<int>(color.b * w2));
    }
  }
}

namespace {

// 3x5 digit font, one row per byte (3 LSBs used).
constexpr std::uint8_t kDigitFont[10][5] = {
    {0b111, 0b101, 0b101, 0b101, 0b111},  // 0
    {0b010, 0b110, 0b010, 0b010, 0b111},  // 1
    {0b111, 0b001, 0b111, 0b100, 0b111},  // 2
    {0b111, 0b001, 0b111, 0b001, 0b111},  // 3
    {0b101, 0b101, 0b111, 0b001, 0b001},  // 4
    {0b111, 0b100, 0b111, 0b001, 0b111},  // 5
    {0b111, 0b100, 0b111, 0b101, 0b111},  // 6
    {0b111, 0b001, 0b010, 0b010, 0b010},  // 7
    {0b111, 0b101, 0b111, 0b101, 0b111},  // 8
    {0b111, 0b101, 0b111, 0b001, 0b111},  // 9
};

void draw_digit(RgbImage& image, Point top_left, int digit, RgbPixel color,
                int scale) {
  for (int row = 0; row < 5; ++row) {
    for (int col = 0; col < 3; ++col) {
      if ((kDigitFont[digit][row] >> (2 - col)) & 1) {
        fill_rect(image,
                  {top_left.x + col * scale, top_left.y + row * scale, scale,
                   scale},
                  color);
      }
    }
  }
}

}  // namespace

int draw_number(RgbImage& image, Point top_left, std::uint64_t value,
                RgbPixel color, int scale) {
  if (scale <= 0) return 0;
  char digits[21];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);

  int x = top_left.x;
  for (int i = n - 1; i >= 0; --i) {
    draw_digit(image, {x, top_left.y}, digits[i] - '0', color, scale);
    x += 4 * scale;  // 3-wide glyph + 1 column spacing
  }
  return x - top_left.x;
}

void blend_rect(RgbImage& image, const Rect& r, RgbPixel color, float alpha) {
  alpha = std::clamp(alpha, 0.0f, 1.0f);
  const Rect c = intersect(r, image.bounds());
  for (int y = c.y; y < c.bottom(); ++y) {
    auto rr = image.r().row(y);
    auto gg = image.g().row(y);
    auto bb = image.b().row(y);
    for (int x = c.x; x < c.right(); ++x) {
      rr[x] = mix(rr[x], color.r, alpha);
      gg[x] = mix(gg[x], color.g, alpha);
      bb[x] = mix(bb[x], color.b, alpha);
    }
  }
}

}  // namespace avd::img
