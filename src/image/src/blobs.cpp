#include "avd/image/blobs.hpp"

#include <algorithm>
#include <vector>

namespace avd::img {
namespace {

// BFS flood fill from each unvisited foreground pixel. Iterative with an
// explicit queue so deep components cannot overflow the stack.
struct Accumulator {
  int min_x, min_y, max_x, max_y;
  long long area = 0;
  long long sum_x = 0;
  long long sum_y = 0;

  explicit Accumulator(Point seed)
      : min_x(seed.x), min_y(seed.y), max_x(seed.x), max_y(seed.y) {}

  void add(int x, int y) {
    min_x = std::min(min_x, x);
    min_y = std::min(min_y, y);
    max_x = std::max(max_x, x);
    max_y = std::max(max_y, y);
    ++area;
    sum_x += x;
    sum_y += y;
  }

  [[nodiscard]] Blob to_blob() const {
    Blob b;
    b.bbox = {min_x, min_y, max_x - min_x + 1, max_y - min_y + 1};
    b.area = area;
    b.centroid_x = static_cast<double>(sum_x) / static_cast<double>(area);
    b.centroid_y = static_cast<double>(sum_y) / static_cast<double>(area);
    return b;
  }
};

}  // namespace

LabelResult label_components(const ImageU8& mask, Connectivity conn,
                             long long min_area) {
  LabelResult result;
  result.labels = Image<std::int32_t>(mask.width(), mask.height(), 0);
  if (mask.empty()) return result;

  static constexpr Point kN4[] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  static constexpr Point kN8[] = {{1, 0},  {-1, 0}, {0, 1},  {0, -1},
                                  {1, 1},  {1, -1}, {-1, 1}, {-1, -1}};
  const std::span<const Point> neighbours =
      conn == Connectivity::Four ? std::span<const Point>(kN4)
                                 : std::span<const Point>(kN8);

  std::vector<Point> queue;
  std::int32_t next_label = 1;

  for (int sy = 0; sy < mask.height(); ++sy) {
    for (int sx = 0; sx < mask.width(); ++sx) {
      if (mask(sx, sy) == 0 || result.labels(sx, sy) != 0) continue;

      Accumulator acc({sx, sy});
      queue.clear();
      queue.push_back({sx, sy});
      result.labels(sx, sy) = next_label;
      std::size_t head = 0;
      while (head < queue.size()) {
        const Point p = queue[head++];
        acc.add(p.x, p.y);
        for (const Point d : neighbours) {
          const int nx = p.x + d.x;
          const int ny = p.y + d.y;
          if (!mask.in_bounds(nx, ny)) continue;
          if (mask(nx, ny) == 0 || result.labels(nx, ny) != 0) continue;
          result.labels(nx, ny) = next_label;
          queue.push_back({nx, ny});
        }
      }

      if (acc.area >= min_area) {
        result.blobs.push_back(acc.to_blob());
        ++next_label;
      } else {
        // Erase the labels of the rejected component so the label image stays
        // consistent with the blob list (blob i <-> label i+1).
        for (const Point p : queue) result.labels(p.x, p.y) = 0;
      }
    }
  }
  return result;
}

std::vector<Blob> find_blobs(const ImageU8& mask, Connectivity conn,
                             long long min_area) {
  return label_components(mask, conn, min_area).blobs;
}

}  // namespace avd::img
