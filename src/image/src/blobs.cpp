#include "avd/image/blobs.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

namespace avd::img {
namespace {

// BFS flood fill from each unvisited foreground pixel. Iterative with an
// explicit queue so deep components cannot overflow the stack.
struct Accumulator {
  int min_x, min_y, max_x, max_y;
  long long area = 0;
  long long sum_x = 0;
  long long sum_y = 0;

  explicit Accumulator(Point seed)
      : min_x(seed.x), min_y(seed.y), max_x(seed.x), max_y(seed.y) {}

  void add(int x, int y) {
    min_x = std::min(min_x, x);
    min_y = std::min(min_y, y);
    max_x = std::max(max_x, x);
    max_y = std::max(max_y, y);
    ++area;
    sum_x += x;
    sum_y += y;
  }

  [[nodiscard]] Blob to_blob() const {
    Blob b;
    b.bbox = {min_x, min_y, max_x - min_x + 1, max_y - min_y + 1};
    b.area = area;
    b.centroid_x = static_cast<double>(sum_x) / static_cast<double>(area);
    b.centroid_y = static_cast<double>(sum_y) / static_cast<double>(area);
    return b;
  }
};

/// The scan + BFS core shared by label_components and find_blobs. `labels`
/// must be all-zero on entry. When `touched` is non-null, every labelled
/// point (accepted or rejected) is appended to it, so a caller with a
/// reusable scratch label image can undo exactly the writes instead of
/// clearing the whole image.
void scan_components(const ImageU8& mask, Connectivity conn,
                     long long min_area, Image<std::int32_t>& labels,
                     std::vector<Blob>& blobs, std::vector<Point>* touched) {
  static constexpr Point kN4[] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  static constexpr Point kN8[] = {{1, 0},  {-1, 0}, {0, 1},  {0, -1},
                                  {1, 1},  {1, -1}, {-1, 1}, {-1, -1}};
  const std::span<const Point> neighbours =
      conn == Connectivity::Four ? std::span<const Point>(kN4)
                                 : std::span<const Point>(kN8);

  std::vector<Point> queue;
  std::int32_t next_label = 1;
  const int w = mask.width();
  const std::uint8_t* pixels = mask.pixels().data();

  for (int sy = 0; sy < mask.height(); ++sy) {
    const std::uint8_t* row = pixels + static_cast<std::size_t>(sy) * w;
    int sx = 0;
    while (sx < w) {
      // Candidate masks are overwhelmingly background: skip zero runs eight
      // bytes at a time before falling back to the per-pixel checks.
      if (row[sx] == 0) {
        if (sx + 8 <= w) {
          std::uint64_t word;
          std::memcpy(&word, row + sx, sizeof word);
          if (word == 0) {
            sx += 8;
            continue;
          }
        }
        ++sx;
        continue;
      }
      if (labels(sx, sy) != 0) {
        ++sx;
        continue;
      }

      Accumulator acc({sx, sy});
      queue.clear();
      queue.push_back({sx, sy});
      labels(sx, sy) = next_label;
      std::size_t head = 0;
      while (head < queue.size()) {
        const Point p = queue[head++];
        acc.add(p.x, p.y);
        for (const Point d : neighbours) {
          const int nx = p.x + d.x;
          const int ny = p.y + d.y;
          if (!mask.in_bounds(nx, ny)) continue;
          if (mask(nx, ny) == 0 || labels(nx, ny) != 0) continue;
          labels(nx, ny) = next_label;
          queue.push_back({nx, ny});
        }
      }

      if (touched != nullptr)
        touched->insert(touched->end(), queue.begin(), queue.end());
      if (acc.area >= min_area) {
        blobs.push_back(acc.to_blob());
        ++next_label;
      } else {
        // Erase the labels of the rejected component so the label image stays
        // consistent with the blob list (blob i <-> label i+1).
        for (const Point p : queue) labels(p.x, p.y) = 0;
      }
      ++sx;
    }
  }
}

}  // namespace

LabelResult label_components(const ImageU8& mask, Connectivity conn,
                             long long min_area) {
  LabelResult result;
  result.labels = Image<std::int32_t>(mask.width(), mask.height(), 0);
  if (mask.empty()) return result;
  scan_components(mask, conn, min_area, result.labels, result.blobs, nullptr);
  return result;
}

std::vector<Blob> find_blobs(const ImageU8& mask, Connectivity conn,
                             long long min_area) {
  if (mask.empty()) return {};
  // Hot path (the dark scan calls this per frame): reuse a per-thread label
  // image and reset only the points the scan actually wrote, so steady-state
  // cost scales with the foreground, not the frame area.
  static thread_local Image<std::int32_t> scratch;
  static thread_local std::vector<Point> touched;
  if (scratch.size() != mask.size())
    scratch = Image<std::int32_t>(mask.width(), mask.height(), 0);
  touched.clear();
  std::vector<Blob> blobs;
  scan_components(mask, conn, min_area, scratch, blobs, &touched);
  for (const Point p : touched) scratch(p.x, p.y) = 0;
  return blobs;
}

}  // namespace avd::img
