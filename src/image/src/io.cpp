#include "avd/image/io.hpp"

#include <fstream>
#include <sstream>

namespace avd::img {
namespace {

void write_header(std::ofstream& out, const char* magic, int w, int h) {
  out << magic << '\n' << w << ' ' << h << "\n255\n";
}

// Reads the next whitespace-separated token, skipping '#' comment lines.
std::string next_token(std::istream& in) {
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    return tok;
  }
  throw std::runtime_error("pnm: unexpected end of header");
}

struct PnmHeader {
  int width = 0;
  int height = 0;
  int maxval = 0;
};

PnmHeader read_header(std::istream& in, const std::string& expected_magic) {
  const std::string magic = next_token(in);
  if (magic != expected_magic)
    throw std::runtime_error("pnm: bad magic '" + magic + "', expected " +
                             expected_magic);
  PnmHeader h;
  h.width = std::stoi(next_token(in));
  h.height = std::stoi(next_token(in));
  h.maxval = std::stoi(next_token(in));
  if (h.width <= 0 || h.height <= 0 || h.maxval != 255)
    throw std::runtime_error("pnm: unsupported header");
  in.get();  // single whitespace before binary payload
  return h;
}

}  // namespace

void write_pgm(const ImageU8& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  write_header(out, "P5", image.width(), image.height());
  out.write(reinterpret_cast<const char*>(image.pixels().data()),
            static_cast<std::streamsize>(image.pixel_count()));
  if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

void write_ppm(const RgbImage& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
  write_header(out, "P6", image.width(), image.height());
  std::vector<std::uint8_t> rowbuf(static_cast<std::size_t>(image.width()) * 3);
  for (int y = 0; y < image.height(); ++y) {
    auto r = image.r().row(y);
    auto g = image.g().row(y);
    auto b = image.b().row(y);
    for (int x = 0; x < image.width(); ++x) {
      rowbuf[3 * x + 0] = r[x];
      rowbuf[3 * x + 1] = g[x];
      rowbuf[3 * x + 2] = b[x];
    }
    out.write(reinterpret_cast<const char*>(rowbuf.data()),
              static_cast<std::streamsize>(rowbuf.size()));
  }
  if (!out) throw std::runtime_error("write_ppm: write failed for " + path);
}

ImageU8 read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pgm: cannot open " + path);
  const PnmHeader h = read_header(in, "P5");
  ImageU8 image(h.width, h.height);
  in.read(reinterpret_cast<char*>(image.pixels().data()),
          static_cast<std::streamsize>(image.pixel_count()));
  if (!in) throw std::runtime_error("read_pgm: truncated payload in " + path);
  return image;
}

RgbImage read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_ppm: cannot open " + path);
  const PnmHeader h = read_header(in, "P6");
  RgbImage image(h.width, h.height);
  std::vector<std::uint8_t> rowbuf(static_cast<std::size_t>(h.width) * 3);
  for (int y = 0; y < h.height; ++y) {
    in.read(reinterpret_cast<char*>(rowbuf.data()),
            static_cast<std::streamsize>(rowbuf.size()));
    if (!in) throw std::runtime_error("read_ppm: truncated payload in " + path);
    auto r = image.r().row(y);
    auto g = image.g().row(y);
    auto b = image.b().row(y);
    for (int x = 0; x < h.width; ++x) {
      r[x] = rowbuf[3 * x + 0];
      g[x] = rowbuf[3 * x + 1];
      b[x] = rowbuf[3 * x + 2];
    }
  }
  return image;
}

}  // namespace avd::img
