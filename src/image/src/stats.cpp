#include "avd/image/stats.hpp"

#include <cmath>

namespace avd::img {

std::array<std::uint64_t, 256> histogram(const ImageU8& image) {
  std::array<std::uint64_t, 256> h{};
  for (auto v : image.pixels()) ++h[v];
  return h;
}

double mean_intensity(const ImageU8& image) {
  if (image.empty()) return 0.0;
  std::uint64_t sum = 0;
  for (auto v : image.pixels()) sum += v;
  return static_cast<double>(sum) / static_cast<double>(image.pixel_count());
}

double stddev_intensity(const ImageU8& image) {
  if (image.empty()) return 0.0;
  const double mean = mean_intensity(image);
  double acc = 0.0;
  for (auto v : image.pixels()) {
    const double d = static_cast<double>(v) - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(image.pixel_count()));
}

std::uint8_t percentile(const ImageU8& image, double fraction) {
  if (image.empty()) return 0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto h = histogram(image);
  const auto target = static_cast<std::uint64_t>(
      fraction * static_cast<double>(image.pixel_count()));
  std::uint64_t cum = 0;
  for (int v = 0; v < 256; ++v) {
    cum += h[v];
    if (cum >= target && cum > 0) return static_cast<std::uint8_t>(v);
  }
  return 255;
}

double bright_fraction(const ImageU8& image, std::uint8_t threshold) {
  if (image.empty()) return 0.0;
  std::size_t n = 0;
  for (auto v : image.pixels()) n += v >= threshold;
  return static_cast<double>(n) / static_cast<double>(image.pixel_count());
}

IntegralImage::IntegralImage(const ImageU8& image)
    : width_(image.width()),
      height_(image.height()),
      table_(static_cast<std::size_t>(width_ + 1) * (height_ + 1), 0) {
  for (int y = 0; y < height_; ++y) {
    auto src = image.row(y);
    std::uint64_t row_sum = 0;
    for (int x = 0; x < width_; ++x) {
      row_sum += src[x];
      table_[static_cast<std::size_t>(y + 1) * (width_ + 1) + (x + 1)] =
          tab(x + 1, y) + row_sum;
    }
  }
}

std::uint64_t IntegralImage::box_sum(const Rect& r) const {
  const Rect c = intersect(r, {0, 0, width_, height_});
  if (c.empty()) return 0;
  return tab(c.right(), c.bottom()) - tab(c.x, c.bottom()) -
         tab(c.right(), c.y) + tab(c.x, c.y);
}

double IntegralImage::box_mean(const Rect& r) const {
  const Rect c = intersect(r, {0, 0, width_, height_});
  if (c.empty()) return 0.0;
  return static_cast<double>(box_sum(c)) / static_cast<double>(c.area());
}

}  // namespace avd::img
