#include "avd/image/color.hpp"

#include <algorithm>
#include <cmath>

namespace avd::img {
namespace {

std::uint8_t clamp_u8(float v) {
  return static_cast<std::uint8_t>(std::clamp(std::lround(v), 0L, 255L));
}

}  // namespace

std::uint8_t luma_of(std::uint8_t r, std::uint8_t g, std::uint8_t b) {
  return clamp_u8(0.299f * r + 0.587f * g + 0.114f * b);
}

std::uint8_t cb_of(std::uint8_t r, std::uint8_t g, std::uint8_t b) {
  return clamp_u8(128.0f - 0.168736f * r - 0.331264f * g + 0.5f * b);
}

std::uint8_t cr_of(std::uint8_t r, std::uint8_t g, std::uint8_t b) {
  return clamp_u8(128.0f + 0.5f * r - 0.418688f * g - 0.081312f * b);
}

YcbcrImage rgb_to_ycbcr(const RgbImage& rgb) {
  YcbcrImage out{ImageU8(rgb.size()), ImageU8(rgb.size()), ImageU8(rgb.size())};
  for (int yy = 0; yy < rgb.height(); ++yy) {
    auto r = rgb.r().row(yy);
    auto g = rgb.g().row(yy);
    auto b = rgb.b().row(yy);
    auto oy = out.y.row(yy);
    auto ocb = out.cb.row(yy);
    auto ocr = out.cr.row(yy);
    for (int x = 0; x < rgb.width(); ++x) {
      oy[x] = luma_of(r[x], g[x], b[x]);
      ocb[x] = cb_of(r[x], g[x], b[x]);
      ocr[x] = cr_of(r[x], g[x], b[x]);
    }
  }
  return out;
}

RgbImage ycbcr_to_rgb(const YcbcrImage& ycc) {
  RgbImage out(ycc.size());
  for (int yy = 0; yy < ycc.height(); ++yy) {
    auto iy = ycc.y.row(yy);
    auto icb = ycc.cb.row(yy);
    auto icr = ycc.cr.row(yy);
    auto r = out.r().row(yy);
    auto g = out.g().row(yy);
    auto b = out.b().row(yy);
    for (int x = 0; x < ycc.width(); ++x) {
      const float y = iy[x];
      const float cb = static_cast<float>(icb[x]) - 128.0f;
      const float cr = static_cast<float>(icr[x]) - 128.0f;
      r[x] = clamp_u8(y + 1.402f * cr);
      g[x] = clamp_u8(y - 0.344136f * cb - 0.714136f * cr);
      b[x] = clamp_u8(y + 1.772f * cb);
    }
  }
  return out;
}

ImageU8 rgb_to_gray(const RgbImage& rgb) {
  ImageU8 out(rgb.size());
  for (int yy = 0; yy < rgb.height(); ++yy) {
    auto r = rgb.r().row(yy);
    auto g = rgb.g().row(yy);
    auto b = rgb.b().row(yy);
    auto o = out.row(yy);
    for (int x = 0; x < rgb.width(); ++x) o[x] = luma_of(r[x], g[x], b[x]);
  }
  return out;
}

RgbImage gray_to_rgb(const ImageU8& gray) {
  return {gray, gray, gray};
}

}  // namespace avd::img
