#include "avd/image/resize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace avd::img {
namespace {

void check_out_size(Size out) {
  if (out.width <= 0 || out.height <= 0)
    throw std::invalid_argument("resize: non-positive output size");
}

// Maps output pixel centre to source coordinates (align-centres convention).
struct LinearMap {
  float scale;
  [[nodiscard]] float operator()(int out_coord) const {
    return (static_cast<float>(out_coord) + 0.5f) * scale - 0.5f;
  }
};

}  // namespace

ImageU8 resize_bilinear(const ImageU8& src, Size out_size) {
  check_out_size(out_size);
  if (src.empty()) throw std::invalid_argument("resize: empty source");
  if (src.size() == out_size) return src;

  ImageU8 out(out_size);
  const LinearMap mx{static_cast<float>(src.width()) / out_size.width};
  const LinearMap my{static_cast<float>(src.height()) / out_size.height};

  // The x mapping is identical for every row: hoist the per-column source
  // indices (with at_clamped's border clamp baked in) and lerp weights out
  // of the pixel loop. Same per-pixel arithmetic as computing them inline —
  // output bytes are unchanged, the map is just computed once per column
  // instead of once per pixel.
  std::vector<int> x0c(static_cast<std::size_t>(out_size.width));
  std::vector<int> x1c(static_cast<std::size_t>(out_size.width));
  std::vector<float> wxs(static_cast<std::size_t>(out_size.width));
  for (int ox = 0; ox < out_size.width; ++ox) {
    const float fx = mx(ox);
    const int x0 = static_cast<int>(std::floor(fx));
    x0c[static_cast<std::size_t>(ox)] = std::clamp(x0, 0, src.width() - 1);
    x1c[static_cast<std::size_t>(ox)] = std::clamp(x0 + 1, 0, src.width() - 1);
    wxs[static_cast<std::size_t>(ox)] = fx - static_cast<float>(x0);
  }

  for (int oy = 0; oy < out_size.height; ++oy) {
    const float fy = my(oy);
    const int y0 = static_cast<int>(std::floor(fy));
    const float wy = fy - static_cast<float>(y0);
    const auto r0 = src.row(std::clamp(y0, 0, src.height() - 1));
    const auto r1 = src.row(std::clamp(y0 + 1, 0, src.height() - 1));
    auto orow = out.row(oy);
    for (int ox = 0; ox < out_size.width; ++ox) {
      const std::size_t sx0 = static_cast<std::size_t>(x0c[static_cast<std::size_t>(ox)]);
      const std::size_t sx1 = static_cast<std::size_t>(x1c[static_cast<std::size_t>(ox)]);
      const float wx = wxs[static_cast<std::size_t>(ox)];
      const float p00 = r0[sx0];
      const float p10 = r0[sx1];
      const float p01 = r1[sx0];
      const float p11 = r1[sx1];
      const float top = p00 + (p10 - p00) * wx;
      const float bot = p01 + (p11 - p01) * wx;
      orow[ox] = static_cast<std::uint8_t>(std::lround(top + (bot - top) * wy));
    }
  }
  return out;
}

RgbImage resize_bilinear(const RgbImage& src, Size out_size) {
  return {resize_bilinear(src.r(), out_size), resize_bilinear(src.g(), out_size),
          resize_bilinear(src.b(), out_size)};
}

ImageU8 resize_nearest(const ImageU8& src, Size out_size) {
  check_out_size(out_size);
  if (src.empty()) throw std::invalid_argument("resize: empty source");
  ImageU8 out(out_size);
  // Same align-centres LinearMap as resize_bilinear: each output pixel takes
  // the source pixel whose centre is nearest its own mapped centre. The old
  // top-left mapping (ox * sw / ow) sampled up to half a source pixel to the
  // upper-left of bilinear, so a nearest-resized mask drifted relative to
  // the bilinear-resized frame it annotates.
  const LinearMap mx{static_cast<float>(src.width()) / out_size.width};
  const LinearMap my{static_cast<float>(src.height()) / out_size.height};
  for (int oy = 0; oy < out_size.height; ++oy) {
    const int sy = std::clamp(
        static_cast<int>(std::floor(my(oy) + 0.5f)), 0, src.height() - 1);
    auto srow = src.row(sy);
    auto orow = out.row(oy);
    for (int ox = 0; ox < out_size.width; ++ox) {
      const int sx = std::clamp(
          static_cast<int>(std::floor(mx(ox) + 0.5f)), 0, src.width() - 1);
      orow[ox] = srow[sx];
    }
  }
  return out;
}

ImageU8 downsample_box(const ImageU8& src, int factor) {
  if (factor <= 0) throw std::invalid_argument("downsample: factor must be positive");
  if (src.width() % factor != 0 || src.height() % factor != 0)
    throw std::invalid_argument("downsample: dimensions not divisible by factor");
  ImageU8 out(src.width() / factor, src.height() / factor);
  const int area = factor * factor;
  for (int oy = 0; oy < out.height(); ++oy) {
    auto orow = out.row(oy);
    for (int ox = 0; ox < out.width(); ++ox) {
      int sum = 0;
      for (int dy = 0; dy < factor; ++dy) {
        auto srow = src.row(oy * factor + dy);
        for (int dx = 0; dx < factor; ++dx) sum += srow[ox * factor + dx];
      }
      orow[ox] = static_cast<std::uint8_t>((sum + area / 2) / area);
    }
  }
  return out;
}

ImageU8 downsample_or(const ImageU8& src, int factor) {
  if (factor <= 0) throw std::invalid_argument("downsample: factor must be positive");
  if (src.width() % factor != 0 || src.height() % factor != 0)
    throw std::invalid_argument("downsample: dimensions not divisible by factor");
  ImageU8 out(src.width() / factor, src.height() / factor);
  for (int oy = 0; oy < out.height(); ++oy) {
    auto orow = out.row(oy);
    for (int ox = 0; ox < out.width(); ++ox) {
      std::uint8_t v = 0;
      for (int dy = 0; dy < factor && v == 0; ++dy) {
        auto srow = src.row(oy * factor + dy);
        for (int dx = 0; dx < factor; ++dx) {
          if (srow[ox * factor + dx] != 0) {
            v = 255;
            break;
          }
        }
      }
      orow[ox] = v;
    }
  }
  return out;
}

}  // namespace avd::img
