#include "avd/image/resize.hpp"

#include <cmath>
#include <stdexcept>

namespace avd::img {
namespace {

void check_out_size(Size out) {
  if (out.width <= 0 || out.height <= 0)
    throw std::invalid_argument("resize: non-positive output size");
}

// Maps output pixel centre to source coordinates (align-centres convention).
struct LinearMap {
  float scale;
  [[nodiscard]] float operator()(int out_coord) const {
    return (static_cast<float>(out_coord) + 0.5f) * scale - 0.5f;
  }
};

}  // namespace

ImageU8 resize_bilinear(const ImageU8& src, Size out_size) {
  check_out_size(out_size);
  if (src.empty()) throw std::invalid_argument("resize: empty source");
  if (src.size() == out_size) return src;

  ImageU8 out(out_size);
  const LinearMap mx{static_cast<float>(src.width()) / out_size.width};
  const LinearMap my{static_cast<float>(src.height()) / out_size.height};

  for (int oy = 0; oy < out_size.height; ++oy) {
    const float fy = my(oy);
    const int y0 = static_cast<int>(std::floor(fy));
    const float wy = fy - static_cast<float>(y0);
    auto orow = out.row(oy);
    for (int ox = 0; ox < out_size.width; ++ox) {
      const float fx = mx(ox);
      const int x0 = static_cast<int>(std::floor(fx));
      const float wx = fx - static_cast<float>(x0);
      const float p00 = src.at_clamped(x0, y0);
      const float p10 = src.at_clamped(x0 + 1, y0);
      const float p01 = src.at_clamped(x0, y0 + 1);
      const float p11 = src.at_clamped(x0 + 1, y0 + 1);
      const float top = p00 + (p10 - p00) * wx;
      const float bot = p01 + (p11 - p01) * wx;
      orow[ox] = static_cast<std::uint8_t>(std::lround(top + (bot - top) * wy));
    }
  }
  return out;
}

RgbImage resize_bilinear(const RgbImage& src, Size out_size) {
  return {resize_bilinear(src.r(), out_size), resize_bilinear(src.g(), out_size),
          resize_bilinear(src.b(), out_size)};
}

ImageU8 resize_nearest(const ImageU8& src, Size out_size) {
  check_out_size(out_size);
  if (src.empty()) throw std::invalid_argument("resize: empty source");
  ImageU8 out(out_size);
  for (int oy = 0; oy < out_size.height; ++oy) {
    const int sy = std::min(
        src.height() - 1,
        static_cast<int>((static_cast<long long>(oy) * src.height()) / out_size.height));
    auto srow = src.row(sy);
    auto orow = out.row(oy);
    for (int ox = 0; ox < out_size.width; ++ox) {
      const int sx = std::min(
          src.width() - 1,
          static_cast<int>((static_cast<long long>(ox) * src.width()) / out_size.width));
      orow[ox] = srow[sx];
    }
  }
  return out;
}

ImageU8 downsample_box(const ImageU8& src, int factor) {
  if (factor <= 0) throw std::invalid_argument("downsample: factor must be positive");
  if (src.width() % factor != 0 || src.height() % factor != 0)
    throw std::invalid_argument("downsample: dimensions not divisible by factor");
  ImageU8 out(src.width() / factor, src.height() / factor);
  const int area = factor * factor;
  for (int oy = 0; oy < out.height(); ++oy) {
    auto orow = out.row(oy);
    for (int ox = 0; ox < out.width(); ++ox) {
      int sum = 0;
      for (int dy = 0; dy < factor; ++dy) {
        auto srow = src.row(oy * factor + dy);
        for (int dx = 0; dx < factor; ++dx) sum += srow[ox * factor + dx];
      }
      orow[ox] = static_cast<std::uint8_t>((sum + area / 2) / area);
    }
  }
  return out;
}

ImageU8 downsample_or(const ImageU8& src, int factor) {
  if (factor <= 0) throw std::invalid_argument("downsample: factor must be positive");
  if (src.width() % factor != 0 || src.height() % factor != 0)
    throw std::invalid_argument("downsample: dimensions not divisible by factor");
  ImageU8 out(src.width() / factor, src.height() / factor);
  for (int oy = 0; oy < out.height(); ++oy) {
    auto orow = out.row(oy);
    for (int ox = 0; ox < out.width(); ++ox) {
      std::uint8_t v = 0;
      for (int dy = 0; dy < factor && v == 0; ++dy) {
        auto srow = src.row(oy * factor + dy);
        for (int dx = 0; dx < factor; ++dx) {
          if (srow[ox * factor + dx] != 0) {
            v = 255;
            break;
          }
        }
      }
      orow[ox] = v;
    }
  }
  return out;
}

}  // namespace avd::img
