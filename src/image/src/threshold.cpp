#include "avd/image/threshold.hpp"

#include <stdexcept>

namespace avd::img {
namespace {

void check_same_size(const ImageU8& a, const ImageU8& b, const char* what) {
  if (a.size() != b.size())
    throw std::invalid_argument(std::string(what) + ": size mismatch");
}

}  // namespace

ImageU8 threshold_binary(const ImageU8& src, std::uint8_t threshold) {
  ImageU8 out(src.size());
  auto s = src.pixels();
  auto o = out.pixels();
  for (std::size_t i = 0; i < s.size(); ++i) o[i] = s[i] >= threshold ? 255 : 0;
  return out;
}

ImageU8 threshold_band(const ImageU8& src, std::uint8_t lo, std::uint8_t hi) {
  if (lo > hi) throw std::invalid_argument("threshold_band: lo > hi");
  ImageU8 out(src.size());
  auto s = src.pixels();
  auto o = out.pixels();
  for (std::size_t i = 0; i < s.size(); ++i)
    o[i] = (s[i] >= lo && s[i] <= hi) ? 255 : 0;
  return out;
}

ImageU8 mask_and(const ImageU8& a, const ImageU8& b) {
  check_same_size(a, b, "mask_and");
  ImageU8 out(a.size());
  auto pa = a.pixels();
  auto pb = b.pixels();
  auto o = out.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i)
    o[i] = (pa[i] != 0 && pb[i] != 0) ? 255 : 0;
  return out;
}

ImageU8 mask_or(const ImageU8& a, const ImageU8& b) {
  check_same_size(a, b, "mask_or");
  ImageU8 out(a.size());
  auto pa = a.pixels();
  auto pb = b.pixels();
  auto o = out.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i)
    o[i] = (pa[i] != 0 || pb[i] != 0) ? 255 : 0;
  return out;
}

ImageU8 mask_not(const ImageU8& a) {
  ImageU8 out(a.size());
  auto pa = a.pixels();
  auto o = out.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) o[i] = pa[i] != 0 ? 0 : 255;
  return out;
}

std::size_t count_nonzero(const ImageU8& mask) {
  std::size_t n = 0;
  for (auto v : mask.pixels()) n += v != 0;
  return n;
}

ImageU8 taillight_roi_mask(const YcbcrImage& ycc, const TaillightThresholdParams& p) {
  ImageU8 out(ycc.size());
  for (int y = 0; y < ycc.height(); ++y) {
    auto ly = ycc.y.row(y);
    auto cb = ycc.cb.row(y);
    auto cr = ycc.cr.row(y);
    auto o = out.row(y);
    for (int x = 0; x < ycc.width(); ++x) {
      const bool bright = ly[x] >= p.luma_min;
      const bool red = cr[x] >= p.cr_min && cb[x] <= p.cb_max;
      o[x] = (bright && red) ? 255 : 0;
    }
  }
  return out;
}

}  // namespace avd::img
