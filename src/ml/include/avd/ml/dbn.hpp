// Deep Belief Network: stacked RBMs with a softmax classification head.
//
// Paper §III-B: "We train a DBN with 81 visible inputs corresponding to the
// binary values of a 9x9 window of the image. Our DBN consists of two hidden
// layers with 20 and 8 hidden nodes, respectively. ... The final output layer
// consists of 4 nodes which determine the size and shape class of taillights."
//
// Training is the classical two-phase scheme: greedy layer-wise unsupervised
// RBM pre-training, then supervised fine-tuning of the whole stack (sigmoid
// layers + softmax head) with backpropagation.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "avd/ml/rbm.hpp"

namespace avd::ml {

struct DbnTrainParams {
  RbmTrainParams pretrain;       ///< per-layer RBM pre-training
  int finetune_epochs = 60;
  double finetune_lr = 0.1;
  int finetune_batch = 16;
  double weight_decay = 1e-4;
  std::uint64_t seed = 11;
};

struct DbnTrainReport {
  std::vector<std::vector<double>> pretrain_errors;  ///< per layer, per epoch
  std::vector<double> finetune_loss;                 ///< per epoch mean CE loss
  double final_train_accuracy = 0.0;
};

/// Preallocated per-layer activation buffers for Dbn::posterior_batch.
/// Owned by the caller, one per scoring thread: a scratch reused across
/// calls makes the batched forward allocation-free once warm. The buffers
/// are resized on demand, so one scratch serves any batch size.
struct DbnBatchScratch {
  std::vector<std::vector<float>> activations;  ///< one buffer per RBM layer
};

/// A feed-forward classifier net built from pre-trained RBM layers.
class Dbn {
 public:
  Dbn() = default;
  /// `layer_sizes` = {visible, hidden1, ..., hiddenK}; `classes` = softmax
  /// output width. E.g. the paper's net: {81, 20, 8}, classes = 4.
  Dbn(std::vector<int> layer_sizes, int classes, std::uint64_t seed = 11);

  [[nodiscard]] int input_size() const { return layer_sizes_.front(); }
  [[nodiscard]] int classes() const { return classes_; }
  [[nodiscard]] std::size_t hidden_layers() const { return rbms_.size(); }
  [[nodiscard]] const Rbm& rbm(std::size_t i) const { return rbms_[i]; }

  /// Class posteriors P(c|x).
  [[nodiscard]] std::vector<float> posterior(std::span<const float> x) const;
  /// argmax class.
  [[nodiscard]] int predict(std::span<const float> x) const;

  /// Batched posteriors: `xs` holds `batch` input rows of input_size()
  /// floats, row-major; writes batch x classes() posteriors into `out`
  /// (row r = P(c|xs row r)). Every RBM layer and the softmax head run as
  /// one GEMM over the whole batch (ml::gemm), reusing `scratch`'s
  /// activation buffers. Bit-exactness: row r equals posterior(row r)
  /// exactly, for every batch size — the gemm contract guarantees each
  /// element's FP op sequence matches the per-vector path.
  void posterior_batch(std::span<const float> xs, int batch,
                       DbnBatchScratch& scratch, std::span<float> out) const;
  /// Convenience overload allocating its own scratch and output.
  [[nodiscard]] std::vector<float> posterior_batch(std::span<const float> xs,
                                                   int batch) const;

  /// Phase 1: greedy unsupervised pre-training on unlabelled inputs.
  void pretrain(std::span<const std::vector<float>> data,
                const DbnTrainParams& params, DbnTrainReport& report);

  /// Phase 2: supervised fine-tuning; labels in [0, classes).
  void finetune(std::span<const std::vector<float>> data,
                std::span<const int> labels, const DbnTrainParams& params,
                DbnTrainReport& report);

  /// Convenience: pretrain + finetune.
  DbnTrainReport train(std::span<const std::vector<float>> data,
                       std::span<const int> labels,
                       const DbnTrainParams& params);

  /// Text (de)serialisation of the full stack.
  void save(std::ostream& out) const;
  static Dbn load(std::istream& in);

 private:
  /// Forward pass storing every layer's activations (incl. input, excl.
  /// softmax). Returns logits of the head.
  std::vector<float> forward(std::span<const float> x,
                             std::vector<std::vector<float>>& activations) const;

  std::vector<int> layer_sizes_;
  int classes_ = 0;
  std::vector<Rbm> rbms_;
  Matrix head_w_;               // classes x last_hidden
  std::vector<float> head_b_;
};

}  // namespace avd::ml
