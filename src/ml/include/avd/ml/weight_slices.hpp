// Per-block weight slices of a linear SVM.
//
// A HOG window descriptor is a concatenation of equal-length normalised
// blocks, so the linear decision w.x + b decomposes into a sum of per-block
// dot products against contiguous slices of w. The block-grid scanner
// (det::detect_multiscale_multi) exploits this: instead of materialising a
// window's descriptor and running one full-length dot per window, it streams
// the window's precomputed blocks through accumulate() — same arithmetic,
// no copy.
//
// Bit-exactness contract: accumulate() adds element products into the
// caller's double accumulator in element order, so accumulating slice 0..n-1
// over the window's blocks in descriptor order performs the EXACT floating-
// point operation sequence of LinearSvm::decision on the concatenated
// descriptor (ml::dot's left-to-right double accumulation). The scanner's
// identical-detections guarantee against the scalar reference rests on this;
// tests/ml/test_weight_slices.cpp enforces it.
#pragma once

#include <span>
#include <vector>

#include "avd/ml/svm.hpp"

namespace avd::ml {

/// Read-only view of a trained LinearSvm's weights as consecutive
/// equal-length slices. The SVM must outlive the view.
class WeightSlices {
 public:
  WeightSlices() = default;
  /// Slice `svm`'s weight vector into blocks of `block_len` weights.
  /// Throws if the SVM is untrained or its dimension is not a multiple of
  /// block_len.
  WeightSlices(const LinearSvm& svm, std::size_t block_len);

  [[nodiscard]] std::size_t block_count() const {
    return block_len_ == 0 ? 0 : weights_.size() / block_len_;
  }
  [[nodiscard]] std::size_t block_length() const { return block_len_; }
  [[nodiscard]] float bias() const { return bias_; }

  /// Weights of block `block`: block_length consecutive floats.
  [[nodiscard]] std::span<const float> slice(std::size_t block) const {
    return weights_.subspan(block * block_len_, block_len_);
  }

  /// acc += sum_i slice(block)[i] * values[i], accumulated left to right in
  /// double — the same operation order as ml::dot over the concatenation.
  void accumulate(std::size_t block, std::span<const float> values,
                  double& acc) const;

  /// N-window variant: for each lane j, acc[j] += the dot of slice(block)
  /// against values[j], every lane accumulated left to right. values[j]
  /// must point at block_length() doubles that are EXACT conversions of the
  /// block's floats (float -> double is lossless), matching the weights'
  /// own pre-converted double copy — so every product and sum is bit-equal
  /// to accumulate()'s float-operand sequence, and lane scores stay
  /// bit-equal to LinearSvm::decision. The payoff is mechanical, not
  /// numerical: lanes are independent dependency chains the CPU overlaps
  /// (the per-window accumulator is otherwise serial-latency bound), and
  /// pre-converted operands drop the two float->double converts per
  /// multiply-add. No length check (hot path).
  template <int N>
  void accumulate_lanes(std::size_t block, const double* const* values,
                        double* acc) const {
    static_assert(N > 0 && N % 4 == 0, "lanes must come in fours");
    const double* w = weights_d_.data() + block * block_len_;
    for (int j = 0; j < N; j += 4) {
      double a0 = acc[j], a1 = acc[j + 1], a2 = acc[j + 2], a3 = acc[j + 3];
      const double* p0 = values[j];
      const double* p1 = values[j + 1];
      const double* p2 = values[j + 2];
      const double* p3 = values[j + 3];
      for (std::size_t i = 0; i < block_len_; ++i) {
        const double wi = w[i];
        a0 += wi * p0[i];
        a1 += wi * p1[i];
        a2 += wi * p2[i];
        a3 += wi * p3[i];
      }
      acc[j] = a0;
      acc[j + 1] = a1;
      acc[j + 2] = a2;
      acc[j + 3] = a3;
    }
  }

  /// accumulate_lanes for lanes at a constant pointer stride: lane j reads
  /// base + j * stride. The dense scan's common case — consecutive window
  /// anchors read consecutive grid blocks — needs no per-lane pointer table.
  /// Identical arithmetic to accumulate_lanes, element for element.
  template <int N>
  void accumulate_lanes_strided(std::size_t block, const double* base,
                                std::size_t stride, double* acc) const {
    static_assert(N > 0 && N % 4 == 0, "lanes must come in fours");
    const double* w = weights_d_.data() + block * block_len_;
    for (int j = 0; j < N; j += 4, base += 4 * stride) {
      double a0 = acc[j], a1 = acc[j + 1], a2 = acc[j + 2], a3 = acc[j + 3];
      const double* p0 = base;
      const double* p1 = base + stride;
      const double* p2 = base + 2 * stride;
      const double* p3 = base + 3 * stride;
      for (std::size_t i = 0; i < block_len_; ++i) {
        const double wi = w[i];
        a0 += wi * p0[i];
        a1 += wi * p1[i];
        a2 += wi * p2[i];
        a3 += wi * p3[i];
      }
      acc[j] = a0;
      acc[j + 1] = a1;
      acc[j + 2] = a2;
      acc[j + 3] = a3;
    }
  }

 private:
  std::span<const float> weights_;
  std::vector<double> weights_d_;  ///< exact double copy for accumulate_lanes
  float bias_ = 0.0f;
  std::size_t block_len_ = 0;
};

}  // namespace avd::ml
