// Per-feature standardisation (zero mean, unit variance).
//
// Dual coordinate descent converges fastest when features share a scale;
// the pairing SVM's geometric features (pixel distances vs ratios vs flags)
// span two orders of magnitude before scaling. Fit on training data, apply
// everywhere, bake into the model via transform-at-inference or fold the
// affine map into the SVM weights with fold_into().
#pragma once

#include <span>
#include <vector>

#include "avd/ml/svm.hpp"

namespace avd::ml {

class Standardizer {
 public:
  Standardizer() = default;

  /// Fit means and standard deviations per feature. Features with zero
  /// variance get scale 1 (they pass through shifted only).
  static Standardizer fit(std::span<const std::vector<float>> data);

  /// z = (x - mean) / std, element-wise.
  [[nodiscard]] std::vector<float> transform(std::span<const float> x) const;

  /// Transform every feature vector of a problem (labels unchanged).
  [[nodiscard]] SvmProblem transform(const SvmProblem& problem) const;

  /// Fold the standardisation into a linear model trained on standardised
  /// data, producing an equivalent model that consumes RAW features:
  ///   w'_i = w_i / std_i,   b' = b - sum_i w_i mean_i / std_i.
  [[nodiscard]] LinearSvm fold_into(const LinearSvm& standardized_model) const;

  [[nodiscard]] std::span<const float> means() const { return means_; }
  [[nodiscard]] std::span<const float> stddevs() const { return stds_; }
  [[nodiscard]] std::size_t dimension() const { return means_.size(); }

 private:
  std::vector<float> means_;
  std::vector<float> stds_;
};

}  // namespace avd::ml
