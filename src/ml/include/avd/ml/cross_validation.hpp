// K-fold cross-validation and C-grid search for the linear SVM.
//
// The paper trains its models once per dataset with LibLINEAR defaults; this
// utility is the standard companion for choosing the soft-margin cost and
// for reporting variance across folds, used by the model-selection example
// and the HOG-parameter ablation bench.
#pragma once

#include "avd/ml/metrics.hpp"
#include "avd/ml/svm.hpp"

namespace avd::ml {

struct CrossValidationResult {
  std::vector<double> fold_accuracies;
  BinaryCounts pooled;  ///< confusion counts pooled over all folds

  [[nodiscard]] double mean_accuracy() const;
  [[nodiscard]] double stddev_accuracy() const;
};

/// Stratified k-fold CV: every fold receives the same positive/negative
/// ratio as the full problem (up to rounding). Deterministic in `seed`.
/// Throws for k < 2 or k larger than the size of either class.
[[nodiscard]] CrossValidationResult cross_validate(
    const SvmProblem& problem, int folds, const SvmTrainParams& params = {},
    std::uint64_t seed = 303);

struct GridSearchResult {
  double best_c = 1.0;
  double best_accuracy = 0.0;
  std::vector<std::pair<double, double>> tried;  ///< (C, mean accuracy)
};

/// Pick the best soft-margin cost from `candidates` by k-fold CV accuracy.
/// Ties resolve to the smaller C (stronger regularisation).
[[nodiscard]] GridSearchResult grid_search_c(
    const SvmProblem& problem, const std::vector<double>& candidates,
    int folds = 5, SvmTrainParams base = {}, std::uint64_t seed = 304);

}  // namespace avd::ml
