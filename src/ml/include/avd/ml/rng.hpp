// Seeded random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so datasets, training runs and benchmarks are bit-reproducible (see
// DESIGN.md §6).
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>

namespace avd::ml {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }
  /// Gaussian with the given mean/stddev.
  [[nodiscard]] double gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }
  /// Derive an independent child stream (stable function of parent state).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    std::shuffle(c.begin(), c.end(), engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace avd::ml
