// Linear support-vector machine: model, inference, and a LibLINEAR-style
// trainer (dual coordinate descent for L2-regularised L2-loss SVC [16]).
//
// The paper trains its day/dusk/combined vehicle models and the taillight
// pairing classifier with LibLINEAR; this is the same algorithm family,
// implemented from scratch and deterministic under a fixed seed.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "avd/ml/rng.hpp"

namespace avd::ml {

/// Trained linear model: f(x) = w.x + b, predicted label = sign(f).
class LinearSvm {
 public:
  LinearSvm() = default;
  LinearSvm(std::vector<float> weights, float bias);

  /// Raw decision value w.x + b.
  [[nodiscard]] double decision(std::span<const float> x) const;
  /// +1 / -1 prediction.
  [[nodiscard]] int predict(std::span<const float> x) const {
    return decision(x) >= 0.0 ? +1 : -1;
  }

  [[nodiscard]] std::span<const float> weights() const { return weights_; }
  [[nodiscard]] float bias() const { return bias_; }
  [[nodiscard]] std::size_t dimension() const { return weights_.size(); }
  [[nodiscard]] bool trained() const { return !weights_.empty(); }

  /// Text (de)serialisation: "svm <dim> <bias> w0 w1 ...".
  void save(std::ostream& out) const;
  static LinearSvm load(std::istream& in);

 private:
  std::vector<float> weights_;
  float bias_ = 0.0f;
};

/// A labelled training set. Labels are +1 / -1. All feature vectors must have
/// equal length.
struct SvmProblem {
  std::vector<std::vector<float>> features;
  std::vector<int> labels;

  void add(std::vector<float> x, int label);
  [[nodiscard]] std::size_t size() const { return features.size(); }
  [[nodiscard]] std::size_t dimension() const {
    return features.empty() ? 0 : features.front().size();
  }
};

struct SvmTrainParams {
  double c = 1.0;            ///< soft-margin cost
  int max_epochs = 200;      ///< passes over the data
  double epsilon = 1e-3;     ///< stop when max projected gradient < epsilon
  std::uint64_t seed = 1;    ///< shuffling seed (determinism)
  double positive_weight = 1.0;  ///< class-imbalance reweighting of C for +1
};

struct SvmTrainReport {
  int epochs_run = 0;
  double final_pg_max = 0.0;  ///< largest projected gradient at termination
  bool converged = false;
};

/// Dual coordinate descent for L2-regularised L2-loss SVC (the LibLINEAR
/// L2R_L2LOSS_SVC_DUAL solver). A constant bias feature is appended
/// internally, matching LibLINEAR's -B 1 option.
class SvmTrainer {
 public:
  explicit SvmTrainer(SvmTrainParams params = {}) : params_(params) {}

  [[nodiscard]] LinearSvm train(const SvmProblem& problem) const {
    SvmTrainReport report;
    return train(problem, report);
  }
  [[nodiscard]] LinearSvm train(const SvmProblem& problem,
                                SvmTrainReport& report) const;

 private:
  SvmTrainParams params_;
};

}  // namespace avd::ml
