// Platt scaling: map raw SVM decision values to calibrated probabilities
// P(y=+1 | f) = 1 / (1 + exp(A f + B)).
//
// Why the system needs it: the adaptive detector hands off between models
// (day SVM, dusk SVM, pairing SVM) whose raw margins are not comparable —
// a 0.7 from the day model and a 0.7 from the dusk model mean different
// things. Calibrated probabilities put downstream consumers (tracking,
// fusion, planners) on one scale across configurations.
#pragma once

#include <span>
#include <vector>

#include "avd/ml/svm.hpp"

namespace avd::ml {

/// The fitted sigmoid.
struct PlattScaler {
  double a = -1.0;
  double b = 0.0;

  /// Calibrated P(positive | decision).
  [[nodiscard]] double probability(double decision) const;
};

struct PlattFitParams {
  int max_iterations = 100;
  double min_step = 1e-10;
  double sigma = 1e-12;  ///< Hessian regulariser
};

/// Fit A, B by regularised maximum likelihood on (decision, label) pairs
/// (labels +1/-1), using Lin/Weng/Keerthi's Newton method with backtracking.
/// Throws if either class is missing.
[[nodiscard]] PlattScaler fit_platt(std::span<const double> decisions,
                                    std::span<const int> labels,
                                    const PlattFitParams& params = {});

/// Convenience: score a trained SVM on a labelled set and fit the scaler.
[[nodiscard]] PlattScaler calibrate_svm(const LinearSvm& svm,
                                        const SvmProblem& holdout,
                                        const PlattFitParams& params = {});

/// Brier score (mean squared probability error) of a scaler on a labelled
/// set: lower is better; 0.25 is the score of always answering 0.5.
[[nodiscard]] double brier_score(const PlattScaler& scaler,
                                 std::span<const double> decisions,
                                 std::span<const int> labels);

}  // namespace avd::ml
