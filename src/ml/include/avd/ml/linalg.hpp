// Minimal dense vector helpers shared by the SVM / RBM / DBN code.
#pragma once

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

namespace avd::ml {

[[nodiscard]] inline double dot(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  return acc;
}

/// y += alpha * x
inline void axpy(double alpha, std::span<const float> x, std::span<float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i)
    y[i] += static_cast<float>(alpha * static_cast<double>(x[i]));
}

[[nodiscard]] inline double squared_norm(std::span<const float> v) {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  return acc;
}

[[nodiscard]] inline float sigmoidf(float x) {
  return 1.0f / (1.0f + std::exp(-x));
}

/// In-place numerically stable softmax.
inline void softmax(std::span<float> v) {
  if (v.empty()) return;
  float maxv = v[0];
  for (float x : v) maxv = std::max(maxv, x);
  double sum = 0.0;
  for (float& x : v) {
    x = std::exp(x - maxv);
    sum += x;
  }
  const auto inv = static_cast<float>(1.0 / sum);
  for (float& x : v) x *= inv;
}

/// Row-major dense matrix of floats with (rows x cols) shape.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::span<float> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace avd::ml
