// Minimal dense vector helpers shared by the SVM / RBM / DBN code.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace avd::ml {

[[nodiscard]] inline double dot(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  return acc;
}

/// y += alpha * x
inline void axpy(double alpha, std::span<const float> x, std::span<float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i)
    y[i] += static_cast<float>(alpha * static_cast<double>(x[i]));
}

[[nodiscard]] inline double squared_norm(std::span<const float> v) {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  return acc;
}

/// Polynomial expf (Cephes-style, ~2e-7 relative error) used by every
/// sigmoid/softmax in the DBN stack. Two properties matter more than the
/// last bit of libm accuracy here:
///  - it is branch-free element-wise float arithmetic, so the batched
///    activation loops auto-vectorise instead of calling out to libm, and
///  - vector and scalar evaluation run the *same* per-element op sequence
///    (no cross-element math), so the batched and per-window DBN paths stay
///    bit-identical no matter how either TU is compiled (FMA contraction is
///    disabled on the vectorised TU for the same reason).
[[nodiscard]] inline float fast_expf(float x) {
  // Clamp so 2^n below stays a normal float (|n| <= 126); the saturated
  // results (~1.2e-38 / ~3.4e38) are indistinguishable from 0 / inf for
  // every sigmoid or softmax consumer.
  x = std::min(x, 87.33654f);
  x = std::max(x, -87.33654f);
  // Round-to-nearest n = x / ln2 via the 2^23 magic-number trick: exact in
  // float, branch-free, and vectorises on every ISA.
  const float magic = 12582912.0f;  // 1.5 * 2^23
  const float n = (x * 1.44269504f + magic) - magic;
  // Cody-Waite two-step reduction: r = x - n*ln2 with ln2 split so the
  // first product is exact.
  float r = x - n * 0.693359375f;
  r = r - n * -2.12194440e-4f;
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  p = (p * r) * r + r + 1.0f;
  // Scale by 2^n through the exponent bits.
  const std::int32_t bits = (static_cast<std::int32_t>(n) + 127) << 23;
  float scale;
  std::memcpy(&scale, &bits, sizeof scale);
  return p * scale;
}

[[nodiscard]] inline float sigmoidf(float x) {
  return 1.0f / (1.0f + fast_expf(-x));
}

/// In-place numerically stable softmax.
inline void softmax(std::span<float> v) {
  if (v.empty()) return;
  float maxv = v[0];
  for (float x : v) maxv = std::max(maxv, x);
  double sum = 0.0;
  for (float& x : v) {
    x = fast_expf(x - maxv);
    sum += x;
  }
  const auto inv = static_cast<float>(1.0 / sum);
  for (float& x : v) x *= inv;
}

// --- Batched (GEMM-backed) inference primitives ---------------------------
//
// The batched DBN forward pass (Dbn::posterior_batch) and the dark scan's
// batch scorer are built on one kernel: a row-major GEMM against a
// transposed weight matrix,
//
//   C[r, j] = bias[j] + sum_k A[r, k] * B[j, k]        (bias empty -> 0)
//
// with A = batch x k activations, B = n x k weights (each row one neuron,
// exactly the layout Rbm/Dbn store), C = batch x n pre-activations.
//
// Bit-exactness contract: every C element starts from bias[j] and
// accumulates its products in float in ascending-k order — the exact
// operation sequence of the plain triple loop (gemm_reference) and of the
// per-vector paths Rbm::hidden_probs / Dbn::forward. gemm() packs B into a
// k-major panel and runs a register-blocked microkernel whose inner loop
// vectorises across *output columns* — independent accumulators, so the
// reordering never touches any single element's FP op sequence, and the
// batched and per-window DBN paths agree to the last bit for every batch
// size. tests/ml/test_linalg.cpp enforces this.

/// Plain-loop reference kernel; the oracle gemm() must match bit-for-bit.
void gemm_reference(std::span<const float> a, std::size_t m, std::size_t k,
                    std::span<const float> b, std::size_t n,
                    std::span<const float> bias, std::span<float> c);

/// Packed, register-blocked GEMM, bit-identical to gemm_reference.
void gemm(std::span<const float> a, std::size_t m, std::size_t k,
          std::span<const float> b, std::size_t n,
          std::span<const float> bias, std::span<float> c);

/// Elementwise in-place sigmoid over a batch of pre-activations.
void sigmoid_inplace(std::span<float> v);

/// In-place stable softmax over each `cols`-wide row of a batch. Applies
/// the exact per-row op sequence of softmax() above.
void softmax_rows(std::span<float> data, std::size_t cols);

/// Row-major dense matrix of floats with (rows x cols) shape.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::span<float> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace avd::ml
