// ROC analysis over raw decision values.
//
// The paper reports single-operating-point accuracy (Table I); ROC curves
// show the whole trade-off and let the operating threshold of each
// configuration be chosen deliberately (the detection modules expose that
// threshold as an AXI-Lite parameter register).
#pragma once

#include <span>
#include <vector>

namespace avd::ml {

struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;   ///< recall
  double false_positive_rate = 0.0;
};

struct RocCurve {
  /// Points ordered by descending threshold: (0,0) first, (1,1) last.
  std::vector<RocPoint> points;

  /// Area under the curve by trapezoid rule. 0.5 = chance, 1.0 = perfect.
  [[nodiscard]] double auc() const;

  /// The threshold whose point lies closest to the perfect corner (0,1)
  /// (Youden-style operating point).
  [[nodiscard]] double best_threshold() const;
};

/// Build the ROC curve of (decision, label) pairs; labels are +1/-1.
/// Throws if either class is absent.
[[nodiscard]] RocCurve roc_curve(std::span<const double> decisions,
                                 std::span<const int> labels);

}  // namespace avd::ml
