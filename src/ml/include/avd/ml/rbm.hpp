// Restricted Boltzmann Machine with contrastive-divergence training.
//
// The dark-condition detector (paper §III-B) stacks RBMs into a deep belief
// network: "These layers are separately trained restricted Boltzmann machines
// (RBM) which are stacked on top of each other to extract the hidden features."
#pragma once

#include <span>
#include <vector>

#include "avd/ml/linalg.hpp"
#include "avd/ml/rng.hpp"

namespace avd::ml {

struct RbmTrainParams {
  int epochs = 30;
  double learning_rate = 0.1;
  int cd_steps = 1;        ///< CD-k Gibbs steps
  int batch_size = 16;
  double weight_decay = 1e-4;
  double momentum = 0.5;
  std::uint64_t seed = 7;
};

/// Bernoulli-Bernoulli RBM.
class Rbm {
 public:
  Rbm() = default;
  /// Weights initialised N(0, 0.01), biases zero.
  Rbm(int visible, int hidden, std::uint64_t seed = 7);

  [[nodiscard]] int visible() const { return static_cast<int>(vbias_.size()); }
  [[nodiscard]] int hidden() const { return static_cast<int>(hbias_.size()); }

  /// P(h_j = 1 | v) for all hidden units.
  void hidden_probs(std::span<const float> v, std::span<float> h_out) const;
  /// P(v_i = 1 | h) for all visible units.
  void visible_probs(std::span<const float> h, std::span<float> v_out) const;

  /// Deterministic up-pass used when stacking into a DBN.
  [[nodiscard]] std::vector<float> transform(std::span<const float> v) const;

  /// One CD-k parameter update over a mini-batch; returns mean reconstruction
  /// error (mean squared difference between data and reconstruction).
  double train_batch(std::span<const std::vector<float>> batch,
                     const RbmTrainParams& params, Rng& rng);

  /// Full training loop over `data`; returns per-epoch reconstruction error.
  std::vector<double> train(std::span<const std::vector<float>> data,
                            const RbmTrainParams& params);

  /// Reconstruction error of a single vector (squared error of one up-down
  /// deterministic pass). Useful as an anomaly score.
  [[nodiscard]] double reconstruction_error(std::span<const float> v) const;

  [[nodiscard]] const Matrix& weights() const { return w_; }
  [[nodiscard]] Matrix& weights() { return w_; }
  [[nodiscard]] std::span<const float> visible_bias() const { return vbias_; }
  [[nodiscard]] std::span<const float> hidden_bias() const { return hbias_; }
  [[nodiscard]] std::span<float> visible_bias() { return vbias_; }
  [[nodiscard]] std::span<float> hidden_bias() { return hbias_; }

 private:
  Matrix w_;  // hidden x visible
  std::vector<float> vbias_;
  std::vector<float> hbias_;
  Matrix w_velocity_;  // momentum buffer
};

}  // namespace avd::ml
