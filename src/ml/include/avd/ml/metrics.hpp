// Classification metrics matching the paper's Table I quantities:
// TP / TN / FP / FN and Accuracy = (TP+TN)/(TP+TN+FP+FN)  (Eq. 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace avd::ml {

/// Binary confusion counts. "Positive" = vehicle present.
struct BinaryCounts {
  std::uint64_t tp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fp = 0;
  std::uint64_t fn = 0;

  void record(bool truth_positive, bool predicted_positive) {
    if (truth_positive)
      predicted_positive ? ++tp : ++fn;
    else
      predicted_positive ? ++fp : ++tn;
  }

  [[nodiscard]] std::uint64_t total() const { return tp + tn + fp + fn; }
  /// Eq. (1) of the paper.
  [[nodiscard]] double accuracy() const {
    const auto t = total();
    return t ? static_cast<double>(tp + tn) / static_cast<double>(t) : 0.0;
  }
  [[nodiscard]] double precision() const {
    const auto d = tp + fp;
    return d ? static_cast<double>(tp) / static_cast<double>(d) : 0.0;
  }
  [[nodiscard]] double recall() const {
    const auto d = tp + fn;
    return d ? static_cast<double>(tp) / static_cast<double>(d) : 0.0;
  }
  [[nodiscard]] double f1() const {
    const double p = precision();
    const double r = recall();
    return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }

  BinaryCounts& operator+=(const BinaryCounts& o) {
    tp += o.tp;
    tn += o.tn;
    fp += o.fp;
    fn += o.fn;
    return *this;
  }
};

/// K-class confusion matrix (rows = truth, cols = prediction).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int classes);

  void record(int truth, int predicted);
  [[nodiscard]] std::uint64_t at(int truth, int predicted) const;
  [[nodiscard]] int classes() const { return classes_; }
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] double accuracy() const;
  /// One-vs-rest binary counts for class `c`.
  [[nodiscard]] BinaryCounts one_vs_rest(int c) const;
  /// Pretty multi-line table for logs.
  [[nodiscard]] std::string to_string() const;

 private:
  int classes_;
  std::vector<std::uint64_t> cells_;
};

}  // namespace avd::ml
