#include "avd/ml/svm.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "avd/ml/linalg.hpp"

namespace avd::ml {

LinearSvm::LinearSvm(std::vector<float> weights, float bias)
    : weights_(std::move(weights)), bias_(bias) {}

double LinearSvm::decision(std::span<const float> x) const {
  if (x.size() != weights_.size())
    throw std::invalid_argument("LinearSvm: dimension mismatch");
  return dot(weights_, x) + bias_;
}

void LinearSvm::save(std::ostream& out) const {
  out << "svm " << weights_.size() << ' ' << bias_ << '\n';
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    out << weights_[i] << (i + 1 == weights_.size() ? '\n' : ' ');
  }
}

LinearSvm LinearSvm::load(std::istream& in) {
  std::string magic;
  std::size_t dim = 0;
  float bias = 0.0f;
  if (!(in >> magic >> dim >> bias) || magic != "svm")
    throw std::runtime_error("LinearSvm::load: bad header");
  std::vector<float> w(dim);
  for (auto& v : w)
    if (!(in >> v)) throw std::runtime_error("LinearSvm::load: truncated weights");
  return {std::move(w), bias};
}

void SvmProblem::add(std::vector<float> x, int label) {
  if (label != 1 && label != -1)
    throw std::invalid_argument("SvmProblem: label must be +1/-1");
  if (!features.empty() && x.size() != features.front().size())
    throw std::invalid_argument("SvmProblem: inconsistent feature dimension");
  features.push_back(std::move(x));
  labels.push_back(label);
}

LinearSvm SvmTrainer::train(const SvmProblem& problem,
                            SvmTrainReport& report) const {
  const std::size_t n = problem.size();
  if (n == 0) throw std::invalid_argument("SvmTrainer: empty problem");
  if (problem.labels.size() != n)
    throw std::invalid_argument("SvmTrainer: label/feature count mismatch");
  const std::size_t dim = problem.dimension();
  if (dim == 0) throw std::invalid_argument("SvmTrainer: zero-dimensional data");
  if (params_.c <= 0.0) throw std::invalid_argument("SvmTrainer: C must be > 0");

  // Augmented weight vector: w has dim+1 entries, the last multiplying the
  // implicit constant-1 bias feature.
  std::vector<float> w(dim + 1, 0.0f);
  std::vector<double> alpha(n, 0.0);

  // Per-example diagonal of the dual Hessian: Q_ii = x_i.x_i + 1 + 1/(2 C_i).
  // (The +1 is the bias feature; the 1/(2C) term comes from the L2 loss.)
  std::vector<double> q_diag(n);
  std::vector<double> c_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    c_of[i] = params_.c *
              (problem.labels[i] > 0 ? params_.positive_weight : 1.0);
    q_diag[i] = squared_norm(problem.features[i]) + 1.0 + 1.0 / (2.0 * c_of[i]);
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(params_.seed);

  report = {};
  for (int epoch = 0; epoch < params_.max_epochs; ++epoch) {
    rng.shuffle(order);
    double pg_max = 0.0;
    for (const std::size_t i : order) {
      const auto& x = problem.features[i];
      const double y = problem.labels[i];
      // Gradient of the dual objective in coordinate i, using the decision
      // value including the bias feature.
      double g = 0.0;
      {
        double acc = 0.0;
        for (std::size_t k = 0; k < dim; ++k)
          acc += static_cast<double>(w[k]) * x[k];
        acc += w[dim];  // bias feature = 1
        g = y * acc - 1.0 + alpha[i] / (2.0 * c_of[i]);
      }

      // Projected gradient: alpha_i is lower-bounded at 0 (no upper bound for
      // L2 loss).
      double pg = g;
      if (alpha[i] == 0.0) pg = std::min(g, 0.0);
      pg_max = std::max(pg_max, std::abs(pg));
      if (pg == 0.0) continue;

      const double alpha_old = alpha[i];
      alpha[i] = std::max(alpha[i] - g / q_diag[i], 0.0);
      const double delta = (alpha[i] - alpha_old) * y;
      if (delta != 0.0) {
        for (std::size_t k = 0; k < dim; ++k)
          w[k] += static_cast<float>(delta * x[k]);
        w[dim] += static_cast<float>(delta);
      }
    }
    report.epochs_run = epoch + 1;
    report.final_pg_max = pg_max;
    if (pg_max < params_.epsilon) {
      report.converged = true;
      break;
    }
  }

  const float bias = w[dim];
  w.resize(dim);
  return {std::move(w), bias};
}

}  // namespace avd::ml
