#include "avd/ml/roc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace avd::ml {

double RocCurve::auc() const {
  double area = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double dx =
        points[i].false_positive_rate - points[i - 1].false_positive_rate;
    area += dx * 0.5 *
            (points[i].true_positive_rate + points[i - 1].true_positive_rate);
  }
  return area;
}

double RocCurve::best_threshold() const {
  double best_d2 = std::numeric_limits<double>::infinity();
  double best_t = 0.0;
  for (const RocPoint& p : points) {
    const double d2 = p.false_positive_rate * p.false_positive_rate +
                      (1.0 - p.true_positive_rate) * (1.0 - p.true_positive_rate);
    if (d2 < best_d2) {
      best_d2 = d2;
      best_t = p.threshold;
    }
  }
  return best_t;
}

RocCurve roc_curve(std::span<const double> decisions,
                   std::span<const int> labels) {
  if (decisions.size() != labels.size() || decisions.empty())
    throw std::invalid_argument("roc_curve: bad input sizes");
  std::size_t n_pos = 0, n_neg = 0;
  for (int y : labels) {
    if (y == 1)
      ++n_pos;
    else if (y == -1)
      ++n_neg;
    else
      throw std::invalid_argument("roc_curve: labels must be +1/-1");
  }
  if (n_pos == 0 || n_neg == 0)
    throw std::invalid_argument("roc_curve: need both classes");

  std::vector<std::size_t> order(decisions.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return decisions[a] > decisions[b];
  });

  RocCurve curve;
  curve.points.push_back(
      {std::numeric_limits<double>::infinity(), 0.0, 0.0});
  std::size_t tp = 0, fp = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t i = order[k];
    if (labels[i] == 1)
      ++tp;
    else
      ++fp;
    // Emit a point only when the next decision value differs (ties share a
    // single point, keeping the curve well-defined).
    if (k + 1 < order.size() &&
        decisions[order[k + 1]] == decisions[i])
      continue;
    curve.points.push_back(
        {decisions[i], static_cast<double>(tp) / static_cast<double>(n_pos),
         static_cast<double>(fp) / static_cast<double>(n_neg)});
  }
  return curve;
}

}  // namespace avd::ml
