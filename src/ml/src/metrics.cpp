#include "avd/ml/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace avd::ml {

ConfusionMatrix::ConfusionMatrix(int classes)
    : classes_(classes),
      cells_(static_cast<std::size_t>(classes) * classes, 0) {
  if (classes < 2) throw std::invalid_argument("ConfusionMatrix: classes < 2");
}

void ConfusionMatrix::record(int truth, int predicted) {
  if (truth < 0 || truth >= classes_ || predicted < 0 || predicted >= classes_)
    throw std::out_of_range("ConfusionMatrix::record");
  ++cells_[static_cast<std::size_t>(truth) * classes_ + predicted];
}

std::uint64_t ConfusionMatrix::at(int truth, int predicted) const {
  if (truth < 0 || truth >= classes_ || predicted < 0 || predicted >= classes_)
    throw std::out_of_range("ConfusionMatrix::at");
  return cells_[static_cast<std::size_t>(truth) * classes_ + predicted];
}

std::uint64_t ConfusionMatrix::total() const {
  std::uint64_t t = 0;
  for (auto v : cells_) t += v;
  return t;
}

double ConfusionMatrix::accuracy() const {
  const std::uint64_t t = total();
  if (t == 0) return 0.0;
  std::uint64_t diag = 0;
  for (int c = 0; c < classes_; ++c) diag += at(c, c);
  return static_cast<double>(diag) / static_cast<double>(t);
}

BinaryCounts ConfusionMatrix::one_vs_rest(int c) const {
  if (c < 0 || c >= classes_) throw std::out_of_range("one_vs_rest");
  BinaryCounts b;
  for (int t = 0; t < classes_; ++t) {
    for (int p = 0; p < classes_; ++p) {
      const auto n = at(t, p);
      if (t == c && p == c)
        b.tp += n;
      else if (t == c)
        b.fn += n;
      else if (p == c)
        b.fp += n;
      else
        b.tn += n;
    }
  }
  return b;
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << "truth\\pred";
  for (int p = 0; p < classes_; ++p) os << '\t' << p;
  os << '\n';
  for (int t = 0; t < classes_; ++t) {
    os << t;
    for (int p = 0; p < classes_; ++p) os << '\t' << at(t, p);
    os << '\n';
  }
  return os.str();
}

}  // namespace avd::ml
