#include "avd/ml/calibration.hpp"

#include <cmath>
#include <stdexcept>

namespace avd::ml {

double PlattScaler::probability(double decision) const {
  const double z = a * decision + b;
  // Numerically stable logistic.
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return e / (1.0 + e);
  }
  return 1.0 / (1.0 + std::exp(z));
}

PlattScaler fit_platt(std::span<const double> decisions,
                      std::span<const int> labels,
                      const PlattFitParams& params) {
  if (decisions.size() != labels.size() || decisions.empty())
    throw std::invalid_argument("fit_platt: bad input sizes");

  std::size_t n_pos = 0, n_neg = 0;
  for (int y : labels) {
    if (y == 1)
      ++n_pos;
    else if (y == -1)
      ++n_neg;
    else
      throw std::invalid_argument("fit_platt: labels must be +1/-1");
  }
  if (n_pos == 0 || n_neg == 0)
    throw std::invalid_argument("fit_platt: need both classes");

  // Target probabilities with the Platt prior correction.
  const double hi = (static_cast<double>(n_pos) + 1.0) /
                    (static_cast<double>(n_pos) + 2.0);
  const double lo = 1.0 / (static_cast<double>(n_neg) + 2.0);
  const std::size_t n = decisions.size();
  std::vector<double> t(n);
  for (std::size_t i = 0; i < n; ++i) t[i] = labels[i] == 1 ? hi : lo;

  double a = 0.0;
  double b = std::log((static_cast<double>(n_neg) + 1.0) /
                      (static_cast<double>(n_pos) + 1.0));

  // Negative log likelihood with p = P(+1|f) = 1 / (1 + exp(a f + b)).
  auto objective = [&](double aa, double bb) {
    double obj = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double z = aa * decisions[i] + bb;
      const double p = 1.0 / (1.0 + std::exp(z));
      const double pc = std::min(std::max(p, 1e-15), 1.0 - 1e-15);
      obj -= t[i] * std::log(pc) + (1.0 - t[i]) * std::log(1.0 - pc);
    }
    return obj;
  };

  double best_obj = objective(a, b);
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    // Gradient and Hessian of the negative log likelihood.
    double g_a = 0.0, g_b = 0.0, h_aa = params.sigma, h_ab = 0.0,
           h_bb = params.sigma;
    for (std::size_t i = 0; i < n; ++i) {
      const double z = a * decisions[i] + b;
      const double p = 1.0 / (1.0 + std::exp(z));  // P(+1)
      // dNLL/dz = t - p (p falls as z grows); d2NLL/dz2 = p(1-p).
      const double d1 = t[i] - p;
      const double d2 = p * (1.0 - p);
      g_a += decisions[i] * d1;
      g_b += d1;
      h_aa += decisions[i] * decisions[i] * d2;
      h_ab += decisions[i] * d2;
      h_bb += d2;
    }
    // Newton step: solve H dx = -g.
    const double det = h_aa * h_bb - h_ab * h_ab;
    if (std::abs(det) < 1e-30) break;
    const double da = -(h_bb * g_a - h_ab * g_b) / det;
    const double db = -(h_aa * g_b - h_ab * g_a) / det;
    if (std::abs(da) < params.min_step && std::abs(db) < params.min_step)
      break;

    // Backtracking line search.
    double step = 1.0;
    bool improved = false;
    while (step >= params.min_step) {
      const double na = a + step * da;
      const double nb = b + step * db;
      const double obj = objective(na, nb);
      if (obj < best_obj - 1e-12) {
        a = na;
        b = nb;
        best_obj = obj;
        improved = true;
        break;
      }
      step /= 2.0;
    }
    if (!improved) break;
  }
  return {a, b};
}

PlattScaler calibrate_svm(const LinearSvm& svm, const SvmProblem& holdout,
                          const PlattFitParams& params) {
  std::vector<double> decisions;
  decisions.reserve(holdout.size());
  for (const auto& x : holdout.features) decisions.push_back(svm.decision(x));
  return fit_platt(decisions, holdout.labels, params);
}

double brier_score(const PlattScaler& scaler,
                   std::span<const double> decisions,
                   std::span<const int> labels) {
  if (decisions.size() != labels.size() || decisions.empty())
    throw std::invalid_argument("brier_score: bad input sizes");
  double sum = 0.0;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const double target = labels[i] == 1 ? 1.0 : 0.0;
    const double p = scaler.probability(decisions[i]);
    sum += (p - target) * (p - target);
  }
  return sum / static_cast<double>(decisions.size());
}

}  // namespace avd::ml
