#include "avd/ml/dbn.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace avd::ml {

Dbn::Dbn(std::vector<int> layer_sizes, int classes, std::uint64_t seed)
    : layer_sizes_(std::move(layer_sizes)), classes_(classes) {
  if (layer_sizes_.size() < 2)
    throw std::invalid_argument("Dbn: need at least one hidden layer");
  if (classes_ < 2) throw std::invalid_argument("Dbn: need >= 2 classes");
  Rng rng(seed);
  for (std::size_t i = 0; i + 1 < layer_sizes_.size(); ++i)
    rbms_.emplace_back(layer_sizes_[i], layer_sizes_[i + 1], rng.engine()());

  const auto nh = static_cast<std::size_t>(layer_sizes_.back());
  head_w_ = Matrix(static_cast<std::size_t>(classes_), nh);
  head_b_.assign(static_cast<std::size_t>(classes_), 0.0f);
  for (float& x : head_w_.data()) x = static_cast<float>(rng.gaussian(0.0, 0.05));
}

std::vector<float> Dbn::forward(
    std::span<const float> x, std::vector<std::vector<float>>& activations) const {
  if (static_cast<int>(x.size()) != input_size())
    throw std::invalid_argument("Dbn: input dimension mismatch");
  activations.clear();
  activations.emplace_back(x.begin(), x.end());
  for (const Rbm& rbm : rbms_) activations.push_back(rbm.transform(activations.back()));

  const auto& top = activations.back();
  std::vector<float> logits(static_cast<std::size_t>(classes_));
  for (int c = 0; c < classes_; ++c) {
    float acc = head_b_[c];
    auto wrow = head_w_.row(static_cast<std::size_t>(c));
    for (std::size_t i = 0; i < top.size(); ++i) acc += wrow[i] * top[i];
    logits[c] = acc;
  }
  return logits;
}

std::vector<float> Dbn::posterior(std::span<const float> x) const {
  std::vector<std::vector<float>> acts;
  std::vector<float> logits = forward(x, acts);
  softmax(logits);
  return logits;
}

void Dbn::posterior_batch(std::span<const float> xs, int batch,
                          DbnBatchScratch& scratch, std::span<float> out) const {
  if (batch < 0) throw std::invalid_argument("Dbn::posterior_batch: batch < 0");
  const auto rows = static_cast<std::size_t>(batch);
  if (xs.size() != rows * static_cast<std::size_t>(input_size()))
    throw std::invalid_argument("Dbn::posterior_batch: input size mismatch");
  if (out.size() != rows * static_cast<std::size_t>(classes_))
    throw std::invalid_argument("Dbn::posterior_batch: output size mismatch");
  if (batch == 0) return;

  scratch.activations.resize(rbms_.size());
  std::span<const float> prev = xs;
  for (std::size_t l = 0; l < rbms_.size(); ++l) {
    const Rbm& rbm = rbms_[l];
    const auto nh = static_cast<std::size_t>(rbm.hidden());
    std::vector<float>& act = scratch.activations[l];
    act.resize(rows * nh);
    gemm(prev, rows, static_cast<std::size_t>(rbm.visible()),
         rbm.weights().data(), nh, rbm.hidden_bias(), act);
    sigmoid_inplace(act);
    prev = act;
  }
  gemm(prev, rows, static_cast<std::size_t>(layer_sizes_.back()),
       head_w_.data(), static_cast<std::size_t>(classes_), head_b_, out);
  softmax_rows(out, static_cast<std::size_t>(classes_));
}

std::vector<float> Dbn::posterior_batch(std::span<const float> xs,
                                        int batch) const {
  std::vector<float> out(static_cast<std::size_t>(batch) *
                         static_cast<std::size_t>(classes_));
  DbnBatchScratch scratch;
  posterior_batch(xs, batch, scratch, out);
  return out;
}

int Dbn::predict(std::span<const float> x) const {
  const auto p = posterior(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

void Dbn::pretrain(std::span<const std::vector<float>> data,
                   const DbnTrainParams& params, DbnTrainReport& report) {
  std::vector<std::vector<float>> layer_input(data.begin(), data.end());
  Rng seed_rng(params.seed);
  for (std::size_t layer = 0; layer < rbms_.size(); ++layer) {
    RbmTrainParams p = params.pretrain;
    p.seed = seed_rng.engine()();
    report.pretrain_errors.push_back(rbms_[layer].train(layer_input, p));
    // Propagate (deterministic probabilities) to feed the next layer.
    if (layer + 1 < rbms_.size()) {
      for (auto& v : layer_input) v = rbms_[layer].transform(v);
    }
  }
}

void Dbn::finetune(std::span<const std::vector<float>> data,
                   std::span<const int> labels, const DbnTrainParams& params,
                   DbnTrainReport& report) {
  if (data.size() != labels.size())
    throw std::invalid_argument("Dbn::finetune: data/label size mismatch");
  if (data.empty()) throw std::invalid_argument("Dbn::finetune: empty data");
  for (int l : labels)
    if (l < 0 || l >= classes_)
      throw std::invalid_argument("Dbn::finetune: label out of range");

  Rng rng(params.seed + 1);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<std::vector<float>> acts;
  // Backprop deltas, one per layer above the input.
  std::vector<std::vector<float>> deltas(rbms_.size() + 1);

  for (int epoch = 0; epoch < params.finetune_epochs; ++epoch) {
    rng.shuffle(order);
    double loss_sum = 0.0;

    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(params.finetune_batch)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(params.finetune_batch));
      const double inv_batch = 1.0 / static_cast<double>(end - start);

      // Accumulated gradients (simple SGD, per-batch application).
      Matrix g_head_w(head_w_.rows(), head_w_.cols());
      std::vector<double> g_head_b(head_b_.size(), 0.0);
      std::vector<Matrix> g_w;
      std::vector<std::vector<double>> g_b;
      for (const Rbm& r : rbms_) {
        g_w.emplace_back(r.weights().rows(), r.weights().cols());
        g_b.emplace_back(static_cast<std::size_t>(r.hidden()), 0.0);
      }

      for (std::size_t k = start; k < end; ++k) {
        const std::size_t idx = order[k];
        std::vector<float> logits = forward(data[idx], acts);
        softmax(logits);
        const int y = labels[idx];
        loss_sum += -std::log(std::max(1e-12, static_cast<double>(logits[y])));

        // Softmax + cross-entropy gradient.
        std::vector<float> dlogits = logits;
        dlogits[y] -= 1.0f;

        // Head gradients and delta into top hidden layer.
        const auto& top = acts.back();
        std::vector<float>& dtop = deltas[rbms_.size()];
        dtop.assign(top.size(), 0.0f);
        for (int c = 0; c < classes_; ++c) {
          auto gw = g_head_w.row(static_cast<std::size_t>(c));
          auto wr = head_w_.row(static_cast<std::size_t>(c));
          const float dc = dlogits[c];
          for (std::size_t i = 0; i < top.size(); ++i) {
            gw[i] += dc * top[i];
            dtop[i] += dc * wr[i];
          }
          g_head_b[c] += dc;
        }

        // Backwards through sigmoid layers.
        for (std::size_t layer = rbms_.size(); layer-- > 0;) {
          const auto& out = acts[layer + 1];   // sigmoid outputs of this layer
          const auto& in = acts[layer];        // inputs to this layer
          std::vector<float>& dout = deltas[layer + 1];
          // dpre = dout * out * (1-out)
          for (std::size_t j = 0; j < dout.size(); ++j)
            dout[j] *= out[j] * (1.0f - out[j]);

          auto& gw = g_w[layer];
          auto& gb = g_b[layer];
          const Matrix& w = rbms_[layer].weights();
          std::vector<float>& din = deltas[layer];
          din.assign(in.size(), 0.0f);
          for (std::size_t j = 0; j < dout.size(); ++j) {
            const float dj = dout[j];
            if (dj == 0.0f) continue;
            auto gwr = gw.row(j);
            auto wr = w.row(j);
            for (std::size_t i = 0; i < in.size(); ++i) {
              gwr[i] += dj * in[i];
              din[i] += dj * wr[i];
            }
            gb[j] += dj;
          }
        }
      }

      // Apply batch gradients.
      const double lr = params.finetune_lr;
      {
        auto w = head_w_.data();
        auto g = g_head_w.data();
        for (std::size_t i = 0; i < w.size(); ++i)
          w[i] -= static_cast<float>(lr * (g[i] * inv_batch +
                                           params.weight_decay * w[i]));
        for (std::size_t c = 0; c < head_b_.size(); ++c)
          head_b_[c] -= static_cast<float>(lr * g_head_b[c] * inv_batch);
      }
      for (std::size_t layer = 0; layer < rbms_.size(); ++layer) {
        auto w = rbms_[layer].weights().data();
        auto g = g_w[layer].data();
        for (std::size_t i = 0; i < w.size(); ++i)
          w[i] -= static_cast<float>(lr * (g[i] * inv_batch +
                                           params.weight_decay * w[i]));
        auto hb = rbms_[layer].hidden_bias();
        for (std::size_t j = 0; j < hb.size(); ++j)
          hb[j] -= static_cast<float>(lr * g_b[layer][j] * inv_batch);
      }
    }

    report.finetune_loss.push_back(loss_sum / static_cast<double>(data.size()));
  }

  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    correct += predict(data[i]) == labels[i];
  report.final_train_accuracy =
      static_cast<double>(correct) / static_cast<double>(data.size());
}

DbnTrainReport Dbn::train(std::span<const std::vector<float>> data,
                          std::span<const int> labels,
                          const DbnTrainParams& params) {
  DbnTrainReport report;
  pretrain(data, params, report);
  finetune(data, labels, params, report);
  return report;
}

void Dbn::save(std::ostream& out) const {
  out << "dbn " << layer_sizes_.size() << ' ' << classes_ << '\n';
  for (int s : layer_sizes_) out << s << ' ';
  out << '\n';
  for (const Rbm& r : rbms_) {
    for (std::size_t j = 0; j < r.weights().rows(); ++j)
      for (std::size_t i = 0; i < r.weights().cols(); ++i)
        out << r.weights()(j, i) << ' ';
    out << '\n';
    for (float v : r.visible_bias()) out << v << ' ';
    out << '\n';
    for (float v : r.hidden_bias()) out << v << ' ';
    out << '\n';
  }
  for (std::size_t c = 0; c < head_w_.rows(); ++c)
    for (std::size_t i = 0; i < head_w_.cols(); ++i) out << head_w_(c, i) << ' ';
  out << '\n';
  for (float v : head_b_) out << v << ' ';
  out << '\n';
}

Dbn Dbn::load(std::istream& in) {
  std::string magic;
  std::size_t nlayers = 0;
  int classes = 0;
  if (!(in >> magic >> nlayers >> classes) || magic != "dbn")
    throw std::runtime_error("Dbn::load: bad header");
  std::vector<int> sizes(nlayers);
  for (auto& s : sizes)
    if (!(in >> s)) throw std::runtime_error("Dbn::load: truncated sizes");
  Dbn dbn(sizes, classes, 0);
  for (Rbm& r : dbn.rbms_) {
    for (std::size_t j = 0; j < r.weights().rows(); ++j)
      for (std::size_t i = 0; i < r.weights().cols(); ++i)
        if (!(in >> r.weights()(j, i)))
          throw std::runtime_error("Dbn::load: truncated weights");
    for (float& v : r.visible_bias())
      if (!(in >> v)) throw std::runtime_error("Dbn::load: truncated vbias");
    for (float& v : r.hidden_bias())
      if (!(in >> v)) throw std::runtime_error("Dbn::load: truncated hbias");
  }
  for (std::size_t c = 0; c < dbn.head_w_.rows(); ++c)
    for (std::size_t i = 0; i < dbn.head_w_.cols(); ++i)
      if (!(in >> dbn.head_w_(c, i)))
        throw std::runtime_error("Dbn::load: truncated head");
  for (float& v : dbn.head_b_)
    if (!(in >> v)) throw std::runtime_error("Dbn::load: truncated head bias");
  return dbn;
}

}  // namespace avd::ml
