// Batched activation kernels, split out of linalg.cpp so this TU can be
// built with the auto-vectoriser fully on: fast_expf is branch-free
// element-wise arithmetic, so the sigmoid loop vectorises to the machine's
// SIMD width here while scalar callers (the per-window DBN path) inline the
// identical per-element op sequence — results are bit-equal either way.
// linalg.cpp keeps its own flag set, tuned for the GEMM microkernel.
#include "avd/ml/linalg.hpp"

namespace avd::ml {

void sigmoid_inplace(std::span<float> v) {
  for (float& x : v) x = sigmoidf(x);
}

void softmax_rows(std::span<float> data, std::size_t cols) {
  if (cols == 0) throw std::invalid_argument("softmax_rows: zero columns");
  if (data.size() % cols != 0)
    throw std::invalid_argument("softmax_rows: size not a multiple of cols");
  for (std::size_t r = 0; r * cols < data.size(); ++r)
    softmax(data.subspan(r * cols, cols));
}

}  // namespace avd::ml
