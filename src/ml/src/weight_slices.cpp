#include "avd/ml/weight_slices.hpp"

#include <stdexcept>

namespace avd::ml {

WeightSlices::WeightSlices(const LinearSvm& svm, std::size_t block_len)
    : weights_(svm.weights()), bias_(svm.bias()), block_len_(block_len) {
  if (!svm.trained())
    throw std::invalid_argument("WeightSlices: untrained SVM");
  if (block_len == 0 || svm.dimension() % block_len != 0)
    throw std::invalid_argument(
        "WeightSlices: dimension not a multiple of block length");
  weights_d_.assign(weights_.begin(), weights_.end());  // exact float->double
}

void WeightSlices::accumulate(std::size_t block, std::span<const float> values,
                              double& acc) const {
  if (values.size() != block_len_)
    throw std::invalid_argument("WeightSlices: value length mismatch");
  const std::span<const float> w = slice(block);
  for (std::size_t i = 0; i < block_len_; ++i)
    acc += static_cast<double>(w[i]) * static_cast<double>(values[i]);
}

}  // namespace avd::ml
