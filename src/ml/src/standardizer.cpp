#include "avd/ml/standardizer.hpp"

#include <cmath>
#include <stdexcept>

namespace avd::ml {

Standardizer Standardizer::fit(std::span<const std::vector<float>> data) {
  if (data.empty()) throw std::invalid_argument("Standardizer: empty data");
  const std::size_t dim = data.front().size();
  if (dim == 0) throw std::invalid_argument("Standardizer: zero dimension");

  Standardizer s;
  s.means_.assign(dim, 0.0f);
  s.stds_.assign(dim, 0.0f);

  std::vector<double> sum(dim, 0.0), sum2(dim, 0.0);
  for (const auto& x : data) {
    if (x.size() != dim)
      throw std::invalid_argument("Standardizer: inconsistent dimensions");
    for (std::size_t i = 0; i < dim; ++i) {
      sum[i] += x[i];
      sum2[i] += static_cast<double>(x[i]) * x[i];
    }
  }
  const double n = static_cast<double>(data.size());
  for (std::size_t i = 0; i < dim; ++i) {
    const double mean = sum[i] / n;
    const double var = std::max(0.0, sum2[i] / n - mean * mean);
    s.means_[i] = static_cast<float>(mean);
    const double sd = std::sqrt(var);
    s.stds_[i] = sd > 1e-12 ? static_cast<float>(sd) : 1.0f;
  }
  return s;
}

std::vector<float> Standardizer::transform(std::span<const float> x) const {
  if (x.size() != means_.size())
    throw std::invalid_argument("Standardizer: dimension mismatch");
  std::vector<float> z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    z[i] = (x[i] - means_[i]) / stds_[i];
  return z;
}

SvmProblem Standardizer::transform(const SvmProblem& problem) const {
  SvmProblem out;
  for (std::size_t i = 0; i < problem.size(); ++i)
    out.add(transform(problem.features[i]), problem.labels[i]);
  return out;
}

LinearSvm Standardizer::fold_into(const LinearSvm& standardized_model) const {
  if (standardized_model.dimension() != means_.size())
    throw std::invalid_argument("Standardizer: model dimension mismatch");
  std::vector<float> w(means_.size());
  double bias = standardized_model.bias();
  const auto sw = standardized_model.weights();
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = sw[i] / stds_[i];
    bias -= static_cast<double>(sw[i]) * means_[i] / stds_[i];
  }
  return {std::move(w), static_cast<float>(bias)};
}

}  // namespace avd::ml
