#include "avd/ml/rbm.hpp"

#include <stdexcept>

namespace avd::ml {

namespace {

// Validates unit counts before any allocation can misbehave on negatives.
std::size_t checked_units(int n) {
  if (n <= 0) throw std::invalid_argument("Rbm: unit counts must be positive");
  return static_cast<std::size_t>(n);
}

}  // namespace

Rbm::Rbm(int visible, int hidden, std::uint64_t seed)
    : w_(checked_units(hidden), checked_units(visible)),
      vbias_(static_cast<std::size_t>(visible), 0.0f),
      hbias_(static_cast<std::size_t>(hidden), 0.0f),
      w_velocity_(static_cast<std::size_t>(hidden),
                  static_cast<std::size_t>(visible)) {
  Rng rng(seed);
  for (float& x : w_.data()) x = static_cast<float>(rng.gaussian(0.0, 0.01));
}

void Rbm::hidden_probs(std::span<const float> v, std::span<float> h_out) const {
  if (v.size() != vbias_.size() || h_out.size() != hbias_.size())
    throw std::invalid_argument("Rbm::hidden_probs: dimension mismatch");
  for (std::size_t j = 0; j < hbias_.size(); ++j) {
    float act = hbias_[j];
    auto wrow = w_.row(j);
    for (std::size_t i = 0; i < v.size(); ++i) act += wrow[i] * v[i];
    h_out[j] = sigmoidf(act);
  }
}

void Rbm::visible_probs(std::span<const float> h, std::span<float> v_out) const {
  if (h.size() != hbias_.size() || v_out.size() != vbias_.size())
    throw std::invalid_argument("Rbm::visible_probs: dimension mismatch");
  for (std::size_t i = 0; i < vbias_.size(); ++i) v_out[i] = vbias_[i];
  for (std::size_t j = 0; j < hbias_.size(); ++j) {
    const float hj = h[j];
    if (hj == 0.0f) continue;
    auto wrow = w_.row(j);
    for (std::size_t i = 0; i < v_out.size(); ++i) v_out[i] += wrow[i] * hj;
  }
  for (float& x : v_out) x = sigmoidf(x);
}

std::vector<float> Rbm::transform(std::span<const float> v) const {
  std::vector<float> h(hbias_.size());
  hidden_probs(v, h);
  return h;
}

double Rbm::train_batch(std::span<const std::vector<float>> batch,
                        const RbmTrainParams& params, Rng& rng) {
  if (batch.empty()) return 0.0;
  const std::size_t nv = vbias_.size();
  const std::size_t nh = hbias_.size();

  Matrix dw(nh, nv);
  std::vector<double> dvb(nv, 0.0);
  std::vector<double> dhb(nh, 0.0);

  std::vector<float> h0(nh), h0_sample(nh), vk(nv), hk(nh);
  double recon_err = 0.0;

  for (const auto& v0 : batch) {
    if (v0.size() != nv)
      throw std::invalid_argument("Rbm::train_batch: bad input dimension");

    hidden_probs(v0, h0);
    // Positive phase statistics use probabilities; the Gibbs chain samples.
    for (std::size_t j = 0; j < nh; ++j)
      h0_sample[j] = rng.bernoulli(h0[j]) ? 1.0f : 0.0f;

    std::vector<float>* h_prev = &h0_sample;
    for (int k = 0; k < params.cd_steps; ++k) {
      visible_probs(*h_prev, vk);
      hidden_probs(vk, hk);
      if (k + 1 < params.cd_steps) {
        for (std::size_t j = 0; j < nh; ++j)
          h0_sample[j] = rng.bernoulli(hk[j]) ? 1.0f : 0.0f;
        h_prev = &h0_sample;
      }
    }

    for (std::size_t j = 0; j < nh; ++j) {
      auto drow = dw.row(j);
      const float pj = h0[j];
      const float nj = hk[j];
      for (std::size_t i = 0; i < nv; ++i)
        drow[i] += pj * v0[i] - nj * vk[i];
      dhb[j] += pj - nj;
    }
    for (std::size_t i = 0; i < nv; ++i) {
      dvb[i] += v0[i] - vk[i];
      const double d = static_cast<double>(v0[i]) - vk[i];
      recon_err += d * d;
    }
  }

  const double scale = params.learning_rate / static_cast<double>(batch.size());
  auto vel = w_velocity_.data();
  auto grad = dw.data();
  auto wts = w_.data();
  for (std::size_t i = 0; i < wts.size(); ++i) {
    vel[i] = static_cast<float>(
        params.momentum * vel[i] + scale * grad[i] -
        params.learning_rate * params.weight_decay * wts[i]);
    wts[i] += vel[i];
  }
  for (std::size_t i = 0; i < nv; ++i)
    vbias_[i] += static_cast<float>(scale * dvb[i]);
  for (std::size_t j = 0; j < nh; ++j)
    hbias_[j] += static_cast<float>(scale * dhb[j]);

  return recon_err / (static_cast<double>(batch.size()) * static_cast<double>(nv));
}

std::vector<double> Rbm::train(std::span<const std::vector<float>> data,
                               const RbmTrainParams& params) {
  if (data.empty()) throw std::invalid_argument("Rbm::train: empty data");
  Rng rng(params.seed);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<double> epoch_errors;
  std::vector<std::vector<float>> batch;
  for (int epoch = 0; epoch < params.epochs; ++epoch) {
    rng.shuffle(order);
    double err_sum = 0.0;
    int batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(params.batch_size)) {
      batch.clear();
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(params.batch_size));
      for (std::size_t k = start; k < end; ++k) batch.push_back(data[order[k]]);
      err_sum += train_batch(batch, params, rng);
      ++batches;
    }
    epoch_errors.push_back(batches > 0 ? err_sum / batches : 0.0);
  }
  return epoch_errors;
}

double Rbm::reconstruction_error(std::span<const float> v) const {
  std::vector<float> h(hbias_.size()), vr(vbias_.size());
  hidden_probs(v, h);
  visible_probs(h, vr);
  double err = 0.0;
  for (std::size_t i = 0; i < vr.size(); ++i) {
    const double d = static_cast<double>(v[i]) - vr[i];
    err += d * d;
  }
  return err / static_cast<double>(vr.size());
}

}  // namespace avd::ml
