#include "avd/ml/linalg.hpp"

#include <algorithm>

namespace avd::ml {

namespace {

void validate_gemm(std::span<const float> a, std::size_t m, std::size_t k,
                   std::span<const float> b, std::size_t n,
                   std::span<const float> bias, std::span<float> c) {
  if (a.size() != m * k) throw std::invalid_argument("gemm: A size mismatch");
  if (b.size() != n * k) throw std::invalid_argument("gemm: B size mismatch");
  if (c.size() != m * n) throw std::invalid_argument("gemm: C size mismatch");
  if (!bias.empty() && bias.size() != n)
    throw std::invalid_argument("gemm: bias size mismatch");
}

// Register-blocked microkernel: an IR x JR tile of C lives entirely in
// registers while k streams through once. B is pre-packed k-major (all
// neurons' weight k side by side per k), so the j-inner loop reads
// contiguous floats and auto-vectorises — the accumulators are *different* C
// elements, so vectorising across j reorders nothing within any element's
// sum. Per element the loop is still bias-first, k-ascending float adds:
// gemm_reference's exact op sequence.
template <int IR, int JR>
void microkernel(const float* __restrict a, std::size_t lda, std::size_t k,
                 const float* __restrict pack, std::size_t n,
                 const float* __restrict bias, float* __restrict c,
                 std::size_t ldc) {
  float acc[IR][JR];
  for (int i = 0; i < IR; ++i)
    for (int j = 0; j < JR; ++j) acc[i][j] = bias == nullptr ? 0.0f : bias[j];
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* __restrict bp = pack + kk * n;
    for (int i = 0; i < IR; ++i) {
      const float av = a[static_cast<std::size_t>(i) * lda + kk];
      for (int j = 0; j < JR; ++j) acc[i][j] += av * bp[j];
    }
  }
  for (int i = 0; i < IR; ++i)
    for (int j = 0; j < JR; ++j)
      c[static_cast<std::size_t>(i) * ldc + j] = acc[i][j];
}

/// One IR-row block of C: full 8-wide column tiles, then a 4-wide tile, then
/// scalar columns for the remainder.
template <int IR>
void row_block(const float* __restrict a, std::size_t k,
               const float* __restrict pack, std::size_t n,
               const float* __restrict bias, float* __restrict c) {
  std::size_t j0 = 0;
  for (; j0 + 8 <= n; j0 += 8)
    microkernel<IR, 8>(a, k, k, pack + j0, n,
                       bias == nullptr ? nullptr : bias + j0, c + j0, n);
  for (; j0 + 4 <= n; j0 += 4)
    microkernel<IR, 4>(a, k, k, pack + j0, n,
                       bias == nullptr ? nullptr : bias + j0, c + j0, n);
  for (; j0 < n; ++j0)
    microkernel<IR, 1>(a, k, k, pack + j0, n,
                       bias == nullptr ? nullptr : bias + j0, c + j0, n);
}

}  // namespace

void gemm_reference(std::span<const float> a, std::size_t m, std::size_t k,
                    std::span<const float> b, std::size_t n,
                    std::span<const float> bias, std::span<float> c) {
  validate_gemm(a, m, k, b, n, bias, c);
  for (std::size_t r = 0; r < m; ++r) {
    const float* ar = a.data() + r * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* br = b.data() + j * k;
      float acc = bias.empty() ? 0.0f : bias[j];
      for (std::size_t kk = 0; kk < k; ++kk) acc += ar[kk] * br[kk];
      c[r * n + j] = acc;
    }
  }
}

void gemm(std::span<const float> a, std::size_t m, std::size_t k,
          std::span<const float> b, std::size_t n,
          std::span<const float> bias, std::span<float> c) {
  validate_gemm(a, m, k, b, n, bias, c);
  if (m == 0 || n == 0) return;

  // Pack B k-major once per call: row kk holds every neuron's kk-th weight,
  // so the microkernel's j loop is a contiguous, vectorisable read. The
  // buffer is per-thread and reused across calls — allocation-free once the
  // scoring thread is warm (the batched dark scan calls gemm per layer per
  // chunk).
  static thread_local std::vector<float> packed;
  packed.resize(k * n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t kk = 0; kk < k; ++kk)
      packed[kk * n + j] = b[j * k + kk];

  const float* bias_ptr = bias.empty() ? nullptr : bias.data();
  std::size_t r0 = 0;
  for (; r0 + 4 <= m; r0 += 4)
    row_block<4>(a.data() + r0 * k, k, packed.data(), n, bias_ptr,
                 c.data() + r0 * n);
  for (; r0 < m; ++r0)
    row_block<1>(a.data() + r0 * k, k, packed.data(), n, bias_ptr,
                 c.data() + r0 * n);
}

}  // namespace avd::ml
