#include "avd/ml/cross_validation.hpp"

#include <cmath>
#include <stdexcept>

#include "avd/ml/rng.hpp"

namespace avd::ml {

double CrossValidationResult::mean_accuracy() const {
  if (fold_accuracies.empty()) return 0.0;
  double sum = 0.0;
  for (double a : fold_accuracies) sum += a;
  return sum / static_cast<double>(fold_accuracies.size());
}

double CrossValidationResult::stddev_accuracy() const {
  if (fold_accuracies.size() < 2) return 0.0;
  const double mean = mean_accuracy();
  double acc = 0.0;
  for (double a : fold_accuracies) acc += (a - mean) * (a - mean);
  return std::sqrt(acc / static_cast<double>(fold_accuracies.size()));
}

CrossValidationResult cross_validate(const SvmProblem& problem, int folds,
                                     const SvmTrainParams& params,
                                     std::uint64_t seed) {
  if (folds < 2) throw std::invalid_argument("cross_validate: folds < 2");
  if (problem.size() == 0)
    throw std::invalid_argument("cross_validate: empty problem");

  // Stratify: shuffle each class separately, then deal round-robin.
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < problem.size(); ++i)
    (problem.labels[i] > 0 ? pos : neg).push_back(i);
  if (static_cast<int>(pos.size()) < folds ||
      static_cast<int>(neg.size()) < folds)
    throw std::invalid_argument(
        "cross_validate: a class has fewer examples than folds");

  Rng rng(seed);
  rng.shuffle(pos);
  rng.shuffle(neg);
  std::vector<int> fold_of(problem.size());
  for (std::size_t i = 0; i < pos.size(); ++i)
    fold_of[pos[i]] = static_cast<int>(i % static_cast<std::size_t>(folds));
  for (std::size_t i = 0; i < neg.size(); ++i)
    fold_of[neg[i]] = static_cast<int>(i % static_cast<std::size_t>(folds));

  CrossValidationResult result;
  for (int f = 0; f < folds; ++f) {
    SvmProblem train;
    std::vector<std::size_t> test_idx;
    for (std::size_t i = 0; i < problem.size(); ++i) {
      if (fold_of[i] == f)
        test_idx.push_back(i);
      else
        train.add(problem.features[i], problem.labels[i]);
    }

    const LinearSvm model = SvmTrainer(params).train(train);
    BinaryCounts fold_counts;
    for (std::size_t i : test_idx)
      fold_counts.record(problem.labels[i] > 0,
                         model.predict(problem.features[i]) > 0);
    result.fold_accuracies.push_back(fold_counts.accuracy());
    result.pooled += fold_counts;
  }
  return result;
}

GridSearchResult grid_search_c(const SvmProblem& problem,
                               const std::vector<double>& candidates,
                               int folds, SvmTrainParams base,
                               std::uint64_t seed) {
  if (candidates.empty())
    throw std::invalid_argument("grid_search_c: no candidates");
  GridSearchResult result;
  result.best_accuracy = -1.0;
  for (double c : candidates) {
    SvmTrainParams params = base;
    params.c = c;
    const CrossValidationResult cv =
        cross_validate(problem, folds, params, seed);
    const double acc = cv.mean_accuracy();
    result.tried.emplace_back(c, acc);
    if (acc > result.best_accuracy ||
        (acc == result.best_accuracy && c < result.best_c)) {
      result.best_accuracy = acc;
      result.best_c = c;
    }
  }
  return result;
}

}  // namespace avd::ml
