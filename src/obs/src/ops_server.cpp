#include "avd/obs/ops_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <string_view>
#include <utility>

#include "avd/obs/build_info.hpp"
#include "avd/obs/metrics.hpp"

namespace avd::obs {
namespace {

constexpr int kAcceptPollMs = 100;  // stop() latency bound for the acceptor

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// %XX and '+' decoding for query components; malformed escapes pass through
// literally (this is a debug surface, not a web framework).
std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && hex_digit(s[i + 1]) >= 0 &&
               hex_digit(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>(hex_digit(s[i + 1]) * 16 +
                                      hex_digit(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

// Duplicate keys are first-wins: a clamp-relevant value set early in the
// query string (`?seconds=1&seconds=999`) cannot be overridden by a later
// repeat. `std::map::emplace` is a no-op when the key already exists.
void parse_query(std::string_view raw, std::map<std::string, std::string>& out) {
  std::size_t pos = 0;
  while (pos < raw.size()) {
    std::size_t amp = raw.find('&', pos);
    if (amp == std::string_view::npos) amp = raw.size();
    const std::string_view pair = raw.substr(pos, amp - pos);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out.emplace(url_decode(pair), "");
      } else {
        out.emplace(url_decode(pair.substr(0, eq)),
                    url_decode(pair.substr(eq + 1)));
      }
    }
    pos = amp + 1;
  }
}

// Read from `fd` until the end of the header block or one of the bounds
// trips. Returns false (with `overflow` set accordingly) on failure.
bool read_request_head(int fd, std::size_t max_bytes, std::string& head,
                       bool& overflow) {
  overflow = false;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return false;  // peer closed, timeout or error
    head.append(buf, static_cast<std::size_t>(n));
    if (head.size() > max_bytes) {
      overflow = true;
      return false;
    }
  }
  return true;
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string render_response(const HttpResponse& res) {
  std::ostringstream os;
  os << "HTTP/1.1 " << res.status << ' ' << status_text(res.status) << "\r\n"
     << "Content-Type: " << res.content_type << "\r\n"
     << "Content-Length: " << res.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << res.body;
  return os.str();
}

}  // namespace

std::string HttpRequest::query_value(const std::string& key,
                                     const std::string& fallback) const {
  const auto it = query.find(key);
  return it == query.end() ? fallback : it->second;
}

OpsServer::OpsServer(OpsServerConfig config) : config_(std::move(config)) {
  if (config_.handler_threads < 1) config_.handler_threads = 1;
  if (config_.max_request_bytes < 64) config_.max_request_bytes = 64;
  if (config_.max_pending_connections == 0) config_.max_pending_connections = 1;
}

OpsServer::~OpsServer() { stop(); }

void OpsServer::handle(std::string path, HttpHandler handler) {
  routes_[std::move(path)] = std::move(handler);
}

bool OpsServer::start() {
  if (running_.load()) return true;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return false;
  }
  port_.store(ntohs(bound.sin_port));

  listen_fd_ = fd;
  stop_requested_.store(false);
  running_.store(true);
  acceptor_ = std::thread(&OpsServer::accept_loop, this);
  handlers_.reserve(static_cast<std::size_t>(config_.handler_threads));
  for (int i = 0; i < config_.handler_threads; ++i)
    handlers_.emplace_back(&OpsServer::handler_loop, this);
  return true;
}

void OpsServer::stop() {
  if (!running_.load()) return;
  stop_requested_.store(true);
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : handlers_)
    if (t.joinable()) t.join();
  handlers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (int fd : pending_) ::close(fd);
    pending_.clear();
  }
  running_.store(false);
}

bool OpsServer::running() const { return running_.load(); }
std::uint16_t OpsServer::port() const { return port_.load(); }
std::uint64_t OpsServer::requests_served() const {
  return requests_served_.load();
}

void OpsServer::accept_loop() {
  while (!stop_requested_.load()) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, kAcceptPollMs);
    if (r <= 0 || !(p.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    timeval tv{};
    tv.tv_sec = config_.recv_timeout_ms / 1000;
    tv.tv_usec = (config_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (pending_.size() >= config_.max_pending_connections) {
      ::close(fd);  // shed load instead of queueing unboundedly
      continue;
    }
    pending_.push_back(fd);
    queue_cv_.notify_one();
  }
}

void OpsServer::handler_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stop_requested_.load() || !pending_.empty();
      });
      if (pending_.empty()) return;  // only on stop
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void OpsServer::serve_connection(int fd) {
  std::string head;
  bool overflow = false;
  if (!read_request_head(fd, config_.max_request_bytes, head, overflow)) {
    if (overflow) {
      HttpResponse res{413, "text/plain; charset=utf-8",
                       "request exceeds max_request_bytes\n"};
      send_all(fd, render_response(res));
    }
    return;  // unparseable / stalled: nothing sensible to answer
  }

  // Request line: METHOD SP target SP version.
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  std::istringstream ls(line);
  std::string method, target, version;
  ls >> method >> target >> version;

  HttpResponse res;
  if (method.empty() || target.empty() || target[0] != '/') {
    res = {400, "text/plain; charset=utf-8", "malformed request line\n"};
  } else if (method != "GET") {
    res = {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  } else {
    HttpRequest req;
    req.method = method;
    const std::size_t q = target.find('?');
    req.path = url_decode(target.substr(0, q));
    if (q != std::string::npos) parse_query(target.substr(q + 1), req.query);

    const auto it = routes_.find(req.path);
    if (it == routes_.end()) {
      res = {404, "text/plain; charset=utf-8", "no such endpoint: " + req.path +
                                                   "\n"};
    } else {
      try {
        res = it->second(req);
      } catch (const std::exception& e) {
        res = {500, "text/plain; charset=utf-8",
               std::string("handler error: ") + e.what() + "\n"};
      } catch (...) {
        res = {500, "text/plain; charset=utf-8", "handler error\n"};
      }
    }
  }
  send_all(fd, render_response(res));
}

HttpResponse prometheus_response(MetricsRegistry& registry) {
  publish_process_metrics(registry);  // refresh uptime at scrape time
  registry.rollup();
  HttpResponse res;
  res.content_type = kPrometheusContentType;
  res.body = registry.to_prometheus();
  if (res.body.empty() || res.body.back() != '\n') res.body.push_back('\n');
  return res;
}

HttpResponse metrics_json_response(MetricsRegistry& registry) {
  publish_process_metrics(registry);
  registry.rollup();
  return {200, "application/json", registry.to_json()};
}

std::optional<HttpResponse> http_get(std::uint16_t port,
                                     const std::string& target,
                                     int timeout_ms) {
  // `timeout_ms` is an OVERALL deadline for the whole call, not a per-recv
  // allowance: a stalled or trickling handler (one byte every timeout-epsilon)
  // must not be able to hold the caller past it. The socket timeouts below
  // only bound connect/send; the receive loop polls against the deadline.
  const std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;

  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }

  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!send_all(fd, request)) {
    ::close(fd);
    return std::nullopt;
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      ::close(fd);
      return std::nullopt;  // overall deadline exceeded
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready <= 0) {
      ::close(fd);
      return std::nullopt;  // deadline hit (0) or poll error (<0)
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      ::close(fd);
      return std::nullopt;  // transport error mid-response
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // Split status line / headers / body.
  std::size_t head_end = raw.find("\r\n\r\n");
  std::size_t body_off = head_end + 4;
  if (head_end == std::string::npos) {
    head_end = raw.find("\n\n");
    body_off = head_end + 2;
    if (head_end == std::string::npos) return std::nullopt;
  }
  const std::string head = raw.substr(0, head_end);
  std::istringstream hs(head);
  std::string status_line;
  std::getline(hs, status_line);
  std::istringstream sl(status_line);
  std::string version;
  int status = 0;
  sl >> version >> status;
  if (status == 0) return std::nullopt;

  HttpResponse res;
  res.status = status;
  res.body = raw.substr(body_off);
  std::string header;
  while (std::getline(hs, header)) {
    if (!header.empty() && header.back() == '\r') header.pop_back();
    constexpr std::string_view kCt = "content-type:";
    if (header.size() > kCt.size()) {
      std::string lower = header.substr(0, kCt.size());
      for (char& c : lower) c = static_cast<char>(std::tolower(c));
      if (lower == kCt) {
        std::string v = header.substr(kCt.size());
        const std::size_t b = v.find_first_not_of(' ');
        res.content_type = b == std::string::npos ? "" : v.substr(b);
      }
    }
  }
  return res;
}

}  // namespace avd::obs
