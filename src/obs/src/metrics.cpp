#include "avd/obs/metrics.hpp"

#include <bit>
#include <cctype>
#include <cstdio>
#include <limits>
#include <set>
#include <sstream>

namespace avd::obs {
namespace {

void append_double(std::ostringstream& os, double v) {
  // Round-trippable doubles; integral values print without an exponent so
  // the JSON stays readable.
  const auto saved = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  os.precision(saved);
}

// Metric names are user-supplied strings and may contain anything; escape
// them like any other JSON string value.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  char buf[8];
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9')
    out.insert(out.begin(), '_');
  return out;
}

// Sanitisation is lossy ("a.b" and "a_b" both map to "a_b"); distinct raw
// names must not silently merge into one exposition series. First claimant
// keeps the clean name, later ones get _2, _3, ... — deterministic because
// callers iterate sorted maps. Histograms claim their _sum/_count suffixes
// too so a raw name like "x_sum" can't collide with histogram "x"'s series.
class PrometheusNamer {
 public:
  std::string unique(const std::string& raw, bool reserve_summary_suffixes) {
    const std::string base = prometheus_name(raw);
    std::string candidate = base;
    for (std::uint64_t n = 2; !claim(candidate, reserve_summary_suffixes);
         ++n)
      candidate = base + '_' + std::to_string(n);
    return candidate;
  }

 private:
  bool claim(const std::string& name, bool reserve_summary_suffixes) {
    if (taken_.contains(name)) return false;
    if (reserve_summary_suffixes &&
        (taken_.contains(name + "_sum") || taken_.contains(name + "_count")))
      return false;
    taken_.insert(name);
    if (reserve_summary_suffixes) {
      taken_.insert(name + "_sum");
      taken_.insert(name + "_count");
    }
    return true;
  }

  std::set<std::string> taken_;
};

// # HELP values may not contain raw newlines or backslashes.
std::string prometheus_help(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

void append_histogram_json(std::ostringstream& os, const HistogramSummary& s) {
  os << "{\"count\":" << s.count << ",\"sum_ns\":" << s.sum_ns
     << ",\"mean_ns\":";
  append_double(os, s.mean_ns);
  os << ",\"p50_ns\":" << s.p50_ns << ",\"p95_ns\":" << s.p95_ns
     << ",\"p99_ns\":" << s.p99_ns << ",\"max_ns\":" << s.max_ns << '}';
}

}  // namespace

int Histogram::bin_index(std::uint64_t ns) {
  if (ns < kLinearBins) return static_cast<int>(ns);
  const int octave = std::bit_width(ns) - 1;  // >= 4 here
  const int sub = static_cast<int>((ns >> (octave - 3)) & (kSubBuckets - 1));
  int index = kLinearBins + (octave - 4) * kSubBuckets + sub;
  if (index >= kBins) index = kBins - 1;
  return index;
}

std::uint64_t Histogram::bin_value(int index) {
  if (index < kLinearBins) return static_cast<std::uint64_t>(index);
  const int octave = 4 + (index - kLinearBins) / kSubBuckets;
  const int sub = (index - kLinearBins) % kSubBuckets;
  const std::uint64_t base = 1ull << octave;
  const std::uint64_t step = base / kSubBuckets;
  // Midpoint of [base + sub*step, base + (sub+1)*step).
  return base + static_cast<std::uint64_t>(sub) * step + step / 2;
}

std::uint64_t Histogram::percentile_ns(double p) const {
  // One pass copying the bins keeps the computation self-consistent: the
  // target is derived from the same values the cumulative walk sees, so even
  // a read racing record_ns() resolves inside the copied distribution
  // instead of walking past the last populated bin.
  std::array<std::uint64_t, kBins> local;
  std::uint64_t total = 0;
  for (int i = 0; i < kBins; ++i) {
    local[static_cast<std::size_t>(i)] =
        bins_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += local[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  auto target =
      static_cast<std::uint64_t>(p * static_cast<double>(total) + 0.5);
  if (target > total) target = total;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBins; ++i) {
    cumulative += local[static_cast<std::size_t>(i)];
    if (cumulative >= target && cumulative > 0) return bin_value(i);
  }
  return max_ns();  // unreachable: cumulative reaches total >= target
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.count = count();
  s.sum_ns = sum_ns();
  s.mean_ns = mean_ns();
  s.p50_ns = percentile_ns(0.50);
  s.p95_ns = percentile_ns(0.95);
  s.p99_ns = percentile_ns(0.99);
  s.max_ns = max_ns();
  return s;
}

void Histogram::reset() {
  for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name,
                                       std::uint64_t fallback) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return fallback;
}

double MetricsSnapshot::gauge(std::string_view name, double fallback) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return v;
  return fallback;
}

const HistogramSummary* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& [n, v] : histograms)
    if (n == name) return &v;
  return nullptr;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snapshot.gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":";
    append_double(os, v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, s] : snapshot.histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":";
    append_histogram_json(os, s);
  }
  os << "}}";
  return os.str();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    out.histograms.emplace_back(name, h->summary());
  return out;
}

std::string MetricsRegistry::to_json() const {
  return obs::to_json(snapshot());
}

std::string MetricsRegistry::to_prometheus() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  PrometheusNamer namer;
  for (const auto& [name, v] : snap.counters) {
    const std::string n = namer.unique(name, false);
    os << "# HELP " << n << ' ' << prometheus_help(name) << '\n';
    os << "# TYPE " << n << " counter\n" << n << ' ' << v << '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = namer.unique(name, false);
    os << "# HELP " << n << ' ' << prometheus_help(name) << '\n';
    os << "# TYPE " << n << " gauge\n" << n << ' ';
    append_double(os, v);
    os << '\n';
  }
  for (const auto& [name, s] : snap.histograms) {
    const std::string n = namer.unique(name, true);
    os << "# HELP " << n << ' ' << prometheus_help(name) << '\n';
    os << "# TYPE " << n << " summary\n";
    os << n << "{quantile=\"0.5\"} " << s.p50_ns << '\n';
    os << n << "{quantile=\"0.95\"} " << s.p95_ns << '\n';
    os << n << "{quantile=\"0.99\"} " << s.p99_ns << '\n';
    os << n << "_sum " << s.sum_ns << '\n';
    os << n << "_count " << s.count << '\n';
  }
  return os.str();
}

}  // namespace avd::obs
