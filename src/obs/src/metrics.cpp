#include "avd/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "avd/obs/build_info.hpp"
#include "avd/obs/json.hpp"

namespace avd::obs {
namespace {

void append_double(std::ostringstream& os, double v) {
  // Round-trippable doubles; integral values print without an exponent so
  // the JSON stays readable.
  const auto saved = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  os.precision(saved);
}

// The text exposition spells special values `+Inf`/`-Inf`/`NaN`; iostreams
// would print `inf`/`nan`, which Prometheus rejects at scrape time.
void append_prometheus_value(std::ostringstream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0.0 ? "+Inf" : "-Inf");
  } else {
    append_double(os, v);
  }
}

// Metric names are user-supplied strings and may contain anything; escape
// them like any other JSON string value.
std::string json_escape(const std::string& s) { return json::escape(s); }

bool label_key_char_ok(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_';
  return first ? alpha : (alpha || (c >= '0' && c <= '9'));
}

// Label values use the Prometheus escape set, which labeled_name() shares:
// backslash, double-quote and newline. Everything else passes through.
std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9')
    out.insert(out.begin(), '_');
  return out;
}

// Sanitisation is lossy ("a.b" and "a_b" both map to "a_b"); distinct raw
// names must not silently merge into one exposition series. First claimant
// keeps the clean name, later ones get _2, _3, ... — deterministic because
// callers iterate sorted maps. Histograms claim their _sum/_count suffixes
// too so a raw name like "x_sum" can't collide with histogram "x"'s series.
class PrometheusNamer {
 public:
  std::string unique(const std::string& raw, bool reserve_summary_suffixes) {
    const std::string base = prometheus_name(raw);
    std::string candidate = base;
    for (std::uint64_t n = 2; !claim(candidate, reserve_summary_suffixes);
         ++n)
      candidate = base + '_' + std::to_string(n);
    return candidate;
  }

 private:
  bool claim(const std::string& name, bool reserve_summary_suffixes) {
    if (taken_.contains(name)) return false;
    if (reserve_summary_suffixes &&
        (taken_.contains(name + "_sum") || taken_.contains(name + "_count")))
      return false;
    taken_.insert(name);
    if (reserve_summary_suffixes) {
      taken_.insert(name + "_sum");
      taken_.insert(name + "_count");
    }
    return true;
  }

  std::set<std::string> taken_;
};

// Every series of one family — same raw base name within one section
// (counter/gauge/histogram), any label set — shares one exposition name,
// claimed once on first sight. Sections are distinct keys so a counter and a
// gauge with the same raw base still diverge (x / x_2), exactly as before
// labels existed.
class FamilyNamer {
 public:
  const std::string& family(int section, const std::string& raw_base,
                            bool reserve_summary_suffixes) {
    const auto key = std::make_pair(section, raw_base);
    auto it = families_.find(key);
    if (it == families_.end())
      it = families_
               .emplace(key, namer_.unique(raw_base, reserve_summary_suffixes))
               .first;
    return it->second;
  }

 private:
  PrometheusNamer namer_;
  std::map<std::pair<int, std::string>, std::string> families_;
};

// A flat registry name resolved for exposition: the family's sanitised name
// plus the inner label block ('stream="0"', no braces; empty when the series
// is unlabeled), with label values re-escaped for the exposition format.
struct ResolvedSeries {
  std::string family;
  std::string raw_base;  // pre-sanitisation name, for # HELP
  std::string label_block;
};

ResolvedSeries resolve_series(FamilyNamer& namer, int section,
                              const std::string& flat_name,
                              bool reserve_summary_suffixes) {
  ResolvedSeries out;
  if (auto parsed = parse_labeled_name(flat_name)) {
    out.family =
        namer.family(section, parsed->base, reserve_summary_suffixes);
    out.raw_base = std::move(parsed->base);
    bool first = true;
    for (const auto& [k, v] : parsed->labels) {
      if (!first) out.label_block += ',';
      first = false;
      out.label_block += k;
      out.label_block += "=\"";
      out.label_block += escape_label_value(v);
      out.label_block += '"';
    }
  } else {
    out.family = namer.family(section, flat_name, reserve_summary_suffixes);
    out.raw_base = flat_name;
  }
  return out;
}

// # HELP values may not contain raw newlines or backslashes.
std::string prometheus_help(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

void append_histogram_json(std::ostringstream& os, const HistogramSummary& s) {
  os << "{\"count\":" << s.count << ",\"sum_ns\":" << s.sum_ns
     << ",\"mean_ns\":";
  append_double(os, s.mean_ns);
  os << ",\"p50_ns\":" << s.p50_ns << ",\"p95_ns\":" << s.p95_ns
     << ",\"p99_ns\":" << s.p99_ns << ",\"max_ns\":" << s.max_ns << '}';
}

}  // namespace

std::string labeled_name(std::string_view name, Labels labels) {
  std::string base(name);
  for (char& c : base)
    if (c == '{' || c == '}') c = '_';
  if (labels.empty()) return base;
  for (auto& [k, v] : labels) {
    if (k.empty()) k = "_";
    for (std::size_t i = 0; i < k.size(); ++i)
      if (!label_key_char_ok(k[i], i == 0)) k[i] = '_';
  }
  std::sort(labels.begin(), labels.end());
  std::string out = std::move(base);
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  out += '}';
  return out;
}

std::optional<ParsedSeriesName> parse_labeled_name(std::string_view flat) {
  const std::size_t open = flat.find('{');
  if (open == std::string_view::npos) return std::nullopt;
  if (flat.back() != '}') return std::nullopt;
  ParsedSeriesName out;
  out.base.assign(flat.substr(0, open));
  if (out.base.find('}') != std::string::npos) return std::nullopt;
  const std::string_view body = flat.substr(open + 1, flat.size() - open - 2);
  if (body.empty()) return std::nullopt;  // labeled_name never emits "{}"
  std::size_t pos = 0;
  for (;;) {
    const std::size_t key_start = pos;
    if (pos >= body.size() || !label_key_char_ok(body[pos], true))
      return std::nullopt;
    ++pos;
    while (pos < body.size() && label_key_char_ok(body[pos], false)) ++pos;
    std::string key(body.substr(key_start, pos - key_start));
    if (pos + 1 >= body.size() || body[pos] != '=' || body[pos + 1] != '"')
      return std::nullopt;
    pos += 2;
    std::string value;
    bool closed = false;
    while (pos < body.size()) {
      const char c = body[pos++];
      if (c == '"') {
        closed = true;
        break;
      }
      if (c == '\\') {
        if (pos >= body.size()) return std::nullopt;
        const char esc = body[pos++];
        if (esc == '\\') value += '\\';
        else if (esc == '"') value += '"';
        else if (esc == 'n') value += '\n';
        else return std::nullopt;
      } else {
        value += c;
      }
    }
    if (!closed) return std::nullopt;
    out.labels.emplace_back(std::move(key), std::move(value));
    if (pos == body.size()) break;
    if (body[pos] != ',') return std::nullopt;
    ++pos;
    if (pos == body.size()) return std::nullopt;  // trailing comma
  }
  return out;
}

int Histogram::bin_index(std::uint64_t ns) {
  if (ns < kLinearBins) return static_cast<int>(ns);
  const int octave = std::bit_width(ns) - 1;  // >= 4 here
  const int sub = static_cast<int>((ns >> (octave - 3)) & (kSubBuckets - 1));
  int index = kLinearBins + (octave - 4) * kSubBuckets + sub;
  if (index >= kBins) index = kBins - 1;
  return index;
}

std::uint64_t Histogram::bin_value(int index) {
  if (index < kLinearBins) return static_cast<std::uint64_t>(index);
  const int octave = 4 + (index - kLinearBins) / kSubBuckets;
  const int sub = (index - kLinearBins) % kSubBuckets;
  const std::uint64_t base = 1ull << octave;
  const std::uint64_t step = base / kSubBuckets;
  // Midpoint of [base + sub*step, base + (sub+1)*step).
  return base + static_cast<std::uint64_t>(sub) * step + step / 2;
}

std::uint64_t Histogram::percentile_ns(double p) const {
  // One pass copying the bins keeps the computation self-consistent: the
  // target is derived from the same values the cumulative walk sees, so even
  // a read racing record_ns() resolves inside the copied distribution
  // instead of walking past the last populated bin.
  std::array<std::uint64_t, kBins> local;
  std::uint64_t total = 0;
  for (int i = 0; i < kBins; ++i) {
    local[static_cast<std::size_t>(i)] =
        bins_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += local[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  auto target =
      static_cast<std::uint64_t>(p * static_cast<double>(total) + 0.5);
  if (target > total) target = total;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBins; ++i) {
    cumulative += local[static_cast<std::size_t>(i)];
    if (cumulative >= target && cumulative > 0) return bin_value(i);
  }
  return max_ns();  // unreachable: cumulative reaches total >= target
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.count = count();
  s.sum_ns = sum_ns();
  s.mean_ns = mean_ns();
  s.p50_ns = percentile_ns(0.50);
  s.p95_ns = percentile_ns(0.95);
  s.p99_ns = percentile_ns(0.99);
  s.max_ns = max_ns();
  return s;
}

void Histogram::merge_from(const Histogram& other) {
  for (int i = 0; i < kBins; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint64_t n = other.bins_[idx].load(std::memory_order_relaxed);
    if (n != 0) bins_[idx].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_ns_.fetch_add(other.sum_ns(), std::memory_order_relaxed);
  update_max(max_ns_, other.max_ns());
}

void Histogram::reset() {
  for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  // The default process-identity series (process.uptime_seconds,
  // build.info{mode=,version=}) exist from the very first snapshot; ops
  // scrapes republish to keep uptime current. Leaked like the tracer.
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    publish_process_metrics(*r);
    return r;
  }();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return counter(labeled_name(name, labels));
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return gauge(labeled_name(name, labels));
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  return histogram(labeled_name(name, labels));
}

namespace {

// The flat name of a labeled series with its last (sorted) label dropped —
// the series' rollup parent ("runtime.frames{shard="0",stream="3"}" ->
// "runtime.frames{shard="0"}"). Empty labels have no parent (their fold
// target is the base name).
std::string parent_name(const ParsedSeriesName& parsed) {
  Labels parent(parsed.labels.begin(), parsed.labels.end() - 1);
  return labeled_name(parsed.base, std::move(parent));
}

// The rollup fold must be idempotent: /metricsz scrapes and end-of-serve
// both call rollup(), and a marginal produced by one fold must never be
// re-summed into the base by the next (the shard=xstream= double-count).
// Products are recognised structurally, with no stored state: a labeled
// series is a *product* (and therefore not a source) exactly when some
// other series of the same section has it as its parent. Leaves — series no
// one folds into — are the only sources; each leaf contributes to its base
// and, when it carries >= 2 labels, to its one-label-shorter parent.
// Consequence (documented on rollup()): do not write directly to a series
// that is another series' parent, e.g. `x{shard="0"}` next to
// `x{shard="0",stream="1"}` — rollup overwrites the parent from its leaves.
template <typename Map>
std::set<std::string> rollup_products(const Map& section) {
  std::set<std::string> products;
  for (const auto& [name, _] : section)
    if (auto parsed = parse_labeled_name(name))
      if (parsed->labels.size() >= 2) products.insert(parent_name(*parsed));
  return products;
}

}  // namespace

void MetricsRegistry::rollup() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Two passes per section: collect the fold from the labeled leaves first,
  // then find-or-create the target entries. Inserting targets while
  // iterating would both invalidate nothing (std::map) and double-count
  // nothing (bases never parse as labeled, marginal products are excluded
  // as sources), but the separation keeps the overwrite semantics obvious.
  {
    const std::set<std::string> products = rollup_products(counters_);
    std::map<std::string, std::uint64_t> sums;
    for (const auto& [name, c] : counters_)
      if (auto parsed = parse_labeled_name(name)) {
        if (products.contains(name)) continue;  // a prior fold's marginal
        sums[parsed->base] += c->value();
        if (parsed->labels.size() >= 2) sums[parent_name(*parsed)] += c->value();
      }
    for (const auto& [base, sum] : sums) {
      auto& slot = counters_[base];
      if (!slot) slot = std::make_unique<Counter>();
      slot->set(sum);
    }
  }
  {
    const std::set<std::string> products = rollup_products(gauges_);
    std::map<std::string, double> sums;
    for (const auto& [name, g] : gauges_)
      if (auto parsed = parse_labeled_name(name)) {
        if (products.contains(name)) continue;
        sums[parsed->base] += g->value();
        if (parsed->labels.size() >= 2) sums[parent_name(*parsed)] += g->value();
      }
    for (const auto& [base, sum] : sums) {
      auto& slot = gauges_[base];
      if (!slot) slot = std::make_unique<Gauge>();
      slot->set(sum);
    }
  }
  {
    const std::set<std::string> products = rollup_products(histograms_);
    std::map<std::string, std::vector<const Histogram*>> children;
    for (const auto& [name, h] : histograms_)
      if (auto parsed = parse_labeled_name(name)) {
        if (products.contains(name)) continue;
        children[parsed->base].push_back(h.get());
        if (parsed->labels.size() >= 2)
          children[parent_name(*parsed)].push_back(h.get());
      }
    for (const auto& [base, kids] : children) {
      auto& slot = histograms_[base];
      if (!slot) slot = std::make_unique<Histogram>();
      slot->reset();
      for (const Histogram* kid : kids) slot->merge_from(*kid);
    }
  }
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name,
                                       std::uint64_t fallback) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return fallback;
}

double MetricsSnapshot::gauge(std::string_view name, double fallback) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return v;
  return fallback;
}

const HistogramSummary* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& [n, v] : histograms)
    if (n == name) return &v;
  return nullptr;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snapshot.gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":";
    append_double(os, v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, s] : snapshot.histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":";
    append_histogram_json(os, s);
  }
  os << "}}";
  return os.str();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    out.histograms.emplace_back(name, h->summary());
  return out;
}

std::string MetricsRegistry::to_json() const {
  return obs::to_json(snapshot());
}

std::string MetricsRegistry::to_prometheus() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  FamilyNamer namer;
  std::set<std::string> described;  // family names with # HELP/# TYPE out
  const auto describe = [&](const ResolvedSeries& r, const char* type) {
    if (!described.insert(r.family).second) return;
    os << "# HELP " << r.family << ' ' << prometheus_help(r.raw_base) << '\n';
    os << "# TYPE " << r.family << ' ' << type << '\n';
  };
  for (const auto& [name, v] : snap.counters) {
    const ResolvedSeries r = resolve_series(namer, 0, name, false);
    describe(r, "counter");
    os << r.family;
    if (!r.label_block.empty()) os << '{' << r.label_block << '}';
    os << ' ' << v << '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    const ResolvedSeries r = resolve_series(namer, 1, name, false);
    describe(r, "gauge");
    os << r.family;
    if (!r.label_block.empty()) os << '{' << r.label_block << '}';
    os << ' ';
    append_prometheus_value(os, v);
    os << '\n';
  }
  for (const auto& [name, s] : snap.histograms) {
    const ResolvedSeries r = resolve_series(namer, 2, name, true);
    describe(r, "summary");
    // The quantile label joins the series' own labels in one block.
    const std::string prefix =
        r.label_block.empty() ? std::string{} : r.label_block + ',';
    const std::string suffix =
        r.label_block.empty() ? std::string{} : '{' + r.label_block + '}';
    os << r.family << '{' << prefix << "quantile=\"0.5\"} " << s.p50_ns
       << '\n';
    os << r.family << '{' << prefix << "quantile=\"0.95\"} " << s.p95_ns
       << '\n';
    os << r.family << '{' << prefix << "quantile=\"0.99\"} " << s.p99_ns
       << '\n';
    os << r.family << "_sum" << suffix << ' ' << s.sum_ns << '\n';
    os << r.family << "_count" << suffix << ' ' << s.count << '\n';
  }
  return os.str();
}

}  // namespace avd::obs
