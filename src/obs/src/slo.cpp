#include "avd/obs/slo.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace avd::obs {
namespace {

HealthState worse(HealthState a, HealthState b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

HealthState one_step_better(HealthState s) {
  switch (s) {
    case HealthState::Unhealthy: return HealthState::Degraded;
    case HealthState::Degraded: return HealthState::Healthy;
    case HealthState::Healthy: return HealthState::Healthy;
  }
  return HealthState::Healthy;
}

}  // namespace

const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::Healthy: return "HEALTHY";
    case HealthState::Degraded: return "DEGRADED";
    case HealthState::Unhealthy: return "UNHEALTHY";
  }
  return "?";
}

SloMonitor::SloMonitor(std::string entity, std::vector<SloRule> rules,
                       SloConfig config)
    : entity_(std::move(entity)),
      rules_(std::move(rules)),
      config_(config) {
  config_.breaches_to_worsen = std::max(1, config_.breaches_to_worsen);
  config_.clears_to_recover = std::max(1, config_.clears_to_recover);
}

void SloMonitor::set_callback(Callback cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  callback_ = std::move(cb);
}

HealthState SloMonitor::observe(const TelemetrySample& prev,
                                const TelemetrySample& cur) {
  // Evaluate rules outside the lock; counter lookups only touch the two
  // immutable samples.
  std::vector<SloRuleValue> values;
  values.reserve(rules_.size());
  HealthState observed = HealthState::Healthy;
  const SloRuleValue* worst = nullptr;
  for (const SloRule& rule : rules_) {
    SloRuleValue v;
    v.rule = rule.name;
    const std::uint64_t bad_delta = cur.metrics.counter(rule.bad_counter) -
                                    prev.metrics.counter(rule.bad_counter);
    if (rule.total_counter.empty()) {
      v.value = static_cast<double>(bad_delta);
      v.evaluated = true;
    } else {
      const std::uint64_t total_delta =
          cur.metrics.counter(rule.total_counter) -
          prev.metrics.counter(rule.total_counter);
      if (total_delta < rule.min_total) {
        values.push_back(std::move(v));  // skipped: no evidence this window
        continue;
      }
      v.value = static_cast<double>(bad_delta) / static_cast<double>(total_delta);
      v.evaluated = true;
    }
    if (v.value > rule.unhealthy_above) v.observed = HealthState::Unhealthy;
    else if (v.value > rule.degraded_above) v.observed = HealthState::Degraded;
    observed = worse(observed, v.observed);
    values.push_back(std::move(v));
    if (values.back().observed == observed &&
        observed != HealthState::Healthy)
      worst = &values.back();
  }

  HealthTransition transition;
  bool fired = false;
  Callback callback_copy;
  HealthState after;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_values_ = values;
    const HealthState before = state_;
    if (static_cast<int>(observed) > static_cast<int>(state_)) {
      clear_streak_ = 0;
      if (++breach_streak_ >= config_.breaches_to_worsen) {
        state_ = observed;  // worsening jumps straight to the observed level
        breach_streak_ = 0;
      }
    } else if (static_cast<int>(observed) < static_cast<int>(state_)) {
      breach_streak_ = 0;
      if (++clear_streak_ >= config_.clears_to_recover) {
        state_ = one_step_better(state_);  // recovery is gradual
        clear_streak_ = 0;
      }
    } else {
      breach_streak_ = 0;
      clear_streak_ = 0;
    }
    if (state_ != before) {
      transition.entity = entity_;
      transition.from = before;
      transition.to = state_;
      transition.t_ns = cur.t_ns;
      std::ostringstream os;
      if (worst != nullptr)
        os << worst->rule << '=' << worst->value;
      else
        os << "all rules clear";
      transition.reason = os.str();
      transitions_.push_back(transition);
      callback_copy = callback_;
      fired = true;
    }
    after = state_;
  }
  if (fired && callback_copy) callback_copy(transition);
  return after;
}

HealthState SloMonitor::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::vector<SloRuleValue> SloMonitor::last_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_values_;
}

std::vector<HealthTransition> SloMonitor::transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

std::vector<SloRule> standard_stream_rules(const std::string& prefix,
                                           double deadline_miss_degraded,
                                           double deadline_miss_unhealthy,
                                           double drop_rate_degraded,
                                           double drop_rate_unhealthy) {
  std::vector<SloRule> rules;
  {
    SloRule r;
    r.name = "frame_deadline";
    r.bad_counter = prefix + ".deadline_miss";
    r.total_counter = prefix + ".frames";
    r.degraded_above = deadline_miss_degraded;
    r.unhealthy_above = deadline_miss_unhealthy;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "queue_drops";
    r.bad_counter = prefix + ".backpressure_drops";
    r.total_counter = prefix + ".frames";
    r.degraded_above = drop_rate_degraded;
    r.unhealthy_above = drop_rate_unhealthy;
    rules.push_back(std::move(r));
  }
  {
    // The paper's contract: one reconfiguration costs exactly one frame.
    // More than one lost frame per reconfiguration window breaks it.
    SloRule r;
    r.name = "reconfig_frame_loss";
    r.bad_counter = prefix + ".reconfig_drops";
    r.total_counter = prefix + ".reconfigs";
    r.degraded_above = 1.0;   // > 1 frame per window: already off-contract
    r.unhealthy_above = 2.0;  // > 2 frames per window
    rules.push_back(std::move(r));
  }
  return rules;
}

std::vector<SloRule> standard_stream_rules_labeled(
    std::int64_t stream_id, double deadline_miss_degraded,
    double deadline_miss_unhealthy, double drop_rate_degraded,
    double drop_rate_unhealthy) {
  return standard_stream_rules_labeled(
      Labels{{"stream", std::to_string(stream_id)}}, deadline_miss_degraded,
      deadline_miss_unhealthy, drop_rate_degraded, drop_rate_unhealthy);
}

std::vector<SloRule> standard_stream_rules_labeled(
    const Labels& labels, double deadline_miss_degraded,
    double deadline_miss_unhealthy, double drop_rate_degraded,
    double drop_rate_unhealthy) {
  std::vector<SloRule> rules =
      standard_stream_rules("runtime", deadline_miss_degraded,
                            deadline_miss_unhealthy, drop_rate_degraded,
                            drop_rate_unhealthy);
  for (SloRule& r : rules) {
    r.bad_counter = labeled_name(r.bad_counter, labels);
    r.total_counter = labeled_name(r.total_counter, labels);
  }
  return rules;
}

HealthState worst_of(std::span<const HealthState> states) {
  HealthState out = HealthState::Healthy;
  for (const HealthState s : states) out = worse(out, s);
  return out;
}

}  // namespace avd::obs
