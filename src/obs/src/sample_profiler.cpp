#include "avd/obs/sample_profiler.hpp"

#include <algorithm>
#include <sstream>

#include "avd/obs/json.hpp"

namespace avd::obs {
namespace {

// Collapsed frames may not contain the separators flamegraph.pl splits on.
std::string collapsed_frame(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (c == ';' || c == ' ' || c == '\n') c = '_';
  return out;
}

}  // namespace

std::string ProfileReport::to_collapsed() const {
  std::ostringstream os;
  for (const ProfileStack& s : stacks) {
    bool first = true;
    for (const std::string& f : s.frames) {
      if (!first) os << ';';
      first = false;
      os << collapsed_frame(f);
    }
    os << ' ' << s.samples << '\n';
  }
  return os.str();
}

std::string ProfileReport::to_json() const {
  std::ostringstream os;
  os << "{\"hz\":" << hz << ",\"duration_ns\":" << duration_ns
     << ",\"ticks\":" << ticks << ",\"samples\":" << samples
     << ",\"idle_ticks\":" << idle_ticks
     << ",\"dropped_samples\":" << dropped_samples << ",\"stacks\":[";
  bool first_stack = true;
  for (const ProfileStack& s : stacks) {
    if (!first_stack) os << ',';
    first_stack = false;
    os << "{\"frames\":[";
    bool first_frame = true;
    for (const std::string& f : s.frames) {
      if (!first_frame) os << ',';
      first_frame = false;
      os << '"' << json::escape(f) << '"';
    }
    os << "],\"samples\":" << s.samples << '}';
  }
  os << "]}";
  return os.str();
}

SampleProfiler::SampleProfiler(SampleProfilerConfig config, Tracer& tracer)
    : config_([&config] {
        if (!(config.hz > 0.0)) config.hz = 97.0;
        if (config.hz > 1000.0) config.hz = 1000.0;
        if (config.max_unique_stacks == 0) config.max_unique_stacks = 1;
        return config;
      }()),
      tracer_(&tracer) {}

SampleProfiler::~SampleProfiler() { stop(); }

void SampleProfiler::start() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (running_) return;
    stop_requested_ = false;
    running_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(data_mutex_);
    window_begin_ = std::chrono::steady_clock::now();
  }
  thread_ = std::thread(&SampleProfiler::loop, this);
}

bool SampleProfiler::running() const {
  std::lock_guard<std::mutex> lock(wake_mutex_);
  return running_;
}

ProfileReport SampleProfiler::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (running_) {
      stop_requested_ = true;
      wake_.notify_all();
    }
  }
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    running_ = false;
  }

  ProfileReport report;
  std::lock_guard<std::mutex> lock(data_mutex_);
  report.hz = config_.hz;
  report.ticks = ticks_;
  report.samples = samples_;
  report.idle_ticks = idle_ticks_;
  report.dropped_samples = dropped_samples_;
  if (ticks_ > 0)
    report.duration_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - window_begin_)
            .count());
  report.stacks.reserve(counts_.size());
  for (const auto& [frames, n] : counts_) {
    ProfileStack s;
    s.samples = n;
    s.frames.reserve(frames.size());
    for (const char* f : frames) s.frames.emplace_back(f);
    report.stacks.push_back(std::move(s));
  }
  std::sort(report.stacks.begin(), report.stacks.end(),
            [](const ProfileStack& a, const ProfileStack& b) {
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.frames < b.frames;  // deterministic ties
            });
  counts_.clear();
  ticks_ = samples_ = idle_ticks_ = dropped_samples_ = 0;
  return report;
}

ProfileReport SampleProfiler::run_for(std::chrono::milliseconds duration) {
  std::lock_guard<std::mutex> serial(run_mutex_);
  start();
  std::this_thread::sleep_for(duration);
  return stop();
}

void SampleProfiler::loop() {
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / config_.hz));
  std::unique_lock<std::mutex> lock(wake_mutex_);
  auto next = std::chrono::steady_clock::now() + period;
  while (!stop_requested_) {
    wake_.wait_until(lock, next, [this] { return stop_requested_; });
    if (stop_requested_) break;
    next += period;
    lock.unlock();
    tick();
    lock.lock();
  }
}

void SampleProfiler::tick() {
  const std::vector<Tracer::OpenStack> open = tracer_->sample_open_stacks();
  std::lock_guard<std::mutex> lock(data_mutex_);
  ++ticks_;
  bool any = false;
  std::vector<const char*> key;
  for (const Tracer::OpenStack& s : open) {
    key.assign(s.frames.begin(), s.frames.begin() + s.depth);
    auto it = counts_.find(key);
    if (it == counts_.end()) {
      if (counts_.size() >= config_.max_unique_stacks) {
        ++dropped_samples_;
        continue;
      }
      it = counts_.emplace(key, 0).first;
    }
    ++it->second;
    ++samples_;
    any = true;
  }
  if (!any) ++idle_ticks_;
}

}  // namespace avd::obs
