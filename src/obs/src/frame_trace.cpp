#include "avd/obs/frame_trace.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace avd::obs {

std::size_t FrameTrace::thread_count() const {
  std::set<int> threads;
  for (const SpanRecord& s : spans) threads.insert(s.thread);
  return threads.size();
}

bool FrameTrace::has_span(std::string_view name) const {
  return std::any_of(spans.begin(), spans.end(), [&](const SpanRecord& s) {
    return std::string_view(s.name) == name;
  });
}

bool FrameTrace::connected() const {
  std::set<std::uint64_t> ids;
  for (const SpanRecord& s : spans) ids.insert(s.span_id);
  for (const SpanRecord& s : spans)
    if (s.parent_span_id != 0 && !ids.contains(s.parent_span_id)) return false;
  return true;
}

std::vector<FrameTrace> assemble_frame_traces(
    std::span<const SpanRecord> spans) {
  std::unordered_map<std::uint64_t, FrameTrace> by_id;
  for (const SpanRecord& s : spans) {
    if (s.trace_id == 0) continue;
    FrameTrace& t = by_id[s.trace_id];
    t.trace_id = s.trace_id;
    t.spans.push_back(s);
    if (t.stream < 0) t.stream = s.arg("stream");
    if (t.frame < 0) t.frame = s.arg("frame");
  }
  std::vector<FrameTrace> out;
  out.reserve(by_id.size());
  for (auto& [id, t] : by_id) {
    std::sort(t.spans.begin(), t.spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                                : a.end_ns < b.end_ns;
              });
    t.begin_ns = t.spans.front().begin_ns;
    for (const SpanRecord& s : t.spans) t.end_ns = std::max(t.end_ns, s.end_ns);
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(), [](const FrameTrace& a, const FrameTrace& b) {
    return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                    : a.trace_id < b.trace_id;
  });
  return out;
}

}  // namespace avd::obs
