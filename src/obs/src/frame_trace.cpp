#include "avd/obs/frame_trace.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

#include "avd/obs/json.hpp"

namespace avd::obs {

std::size_t FrameTrace::thread_count() const {
  std::set<int> threads;
  for (const SpanRecord& s : spans) threads.insert(s.thread);
  return threads.size();
}

bool FrameTrace::has_span(std::string_view name) const {
  return std::any_of(spans.begin(), spans.end(), [&](const SpanRecord& s) {
    return std::string_view(s.name) == name;
  });
}

bool FrameTrace::connected() const {
  std::set<std::uint64_t> ids;
  for (const SpanRecord& s : spans) ids.insert(s.span_id);
  for (const SpanRecord& s : spans)
    if (s.parent_span_id != 0 && !ids.contains(s.parent_span_id)) return false;
  return true;
}

std::vector<FrameTrace> assemble_frame_traces(
    std::span<const SpanRecord> spans) {
  std::unordered_map<std::uint64_t, FrameTrace> by_id;
  for (const SpanRecord& s : spans) {
    if (s.trace_id == 0) continue;
    FrameTrace& t = by_id[s.trace_id];
    t.trace_id = s.trace_id;
    t.spans.push_back(s);
    if (t.stream < 0) t.stream = s.arg("stream");
    if (t.frame < 0) t.frame = s.arg("frame");
  }
  std::vector<FrameTrace> out;
  out.reserve(by_id.size());
  for (auto& [id, t] : by_id) {
    std::sort(t.spans.begin(), t.spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                                : a.end_ns < b.end_ns;
              });
    t.begin_ns = t.spans.front().begin_ns;
    for (const SpanRecord& s : t.spans) t.end_ns = std::max(t.end_ns, s.end_ns);
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(), [](const FrameTrace& a, const FrameTrace& b) {
    return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                    : a.trace_id < b.trace_id;
  });
  return out;
}

std::string to_json(const SpanRecord& span) {
  std::ostringstream os;
  os << "{\"name\":\"" << json::escape(span.name != nullptr ? span.name : "")
     << "\",\"source\":\""
     << json::escape(span.source != nullptr ? span.source : "")
     << "\",\"begin_ns\":" << span.begin_ns << ",\"end_ns\":" << span.end_ns
     << ",\"thread\":" << span.thread << ",\"trace_id\":" << span.trace_id
     << ",\"span_id\":" << span.span_id
     << ",\"parent_span_id\":" << span.parent_span_id << ",\"args\":{";
  for (int i = 0; i < span.arg_count; ++i) {
    if (i != 0) os << ',';
    const SpanArg& a = span.args[i];
    os << '"' << json::escape(a.name != nullptr ? a.name : "")
       << "\":" << a.value;
  }
  os << "}}";
  return os.str();
}

std::string to_json(const FrameTrace& trace) {
  std::ostringstream os;
  os << "{\"trace_id\":" << trace.trace_id << ",\"stream\":" << trace.stream
     << ",\"frame\":" << trace.frame << ",\"begin_ns\":" << trace.begin_ns
     << ",\"end_ns\":" << trace.end_ns
     << ",\"critical_path_ns\":" << trace.critical_path_ns()
     << ",\"connected\":" << (trace.connected() ? "true" : "false")
     << ",\"spans\":[";
  bool first = true;
  for (const SpanRecord& s : trace.spans) {
    if (!first) os << ',';
    first = false;
    os << to_json(s);
  }
  os << "]}";
  return os.str();
}

}  // namespace avd::obs
