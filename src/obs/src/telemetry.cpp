#include "avd/obs/telemetry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "avd/obs/trace.hpp"

namespace avd::obs {

std::string to_json(const TelemetrySample& sample) {
  std::ostringstream os;
  // Splice the metrics object into the sample object: both are '{...}'.
  const std::string metrics = to_json(sample.metrics);
  os << "{\"t_ns\":" << sample.t_ns << ",\"seq\":" << sample.seq << ','
     << metrics.substr(1);
  return os.str();
}

TelemetryExporter::TelemetryExporter(MetricsRegistry& registry,
                                     TelemetryConfig config)
    : registry_(&registry), config_(std::move(config)) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  if (config_.period.count() <= 0) config_.period = std::chrono::milliseconds(1);
}

TelemetryExporter::~TelemetryExporter() { stop(); }

void TelemetryExporter::start() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (running_) return;
    stop_requested_ = false;
    running_ = true;
  }
  if (!config_.jsonl_path.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!sink_.is_open()) {
      sink_.open(config_.jsonl_path, std::ios::app);
      if (!sink_) {
        {
          std::lock_guard<std::mutex> wl(wake_mutex_);
          running_ = false;
        }
        throw std::runtime_error("TelemetryExporter: cannot open " +
                                 config_.jsonl_path);
      }
    }
  }
  thread_ = std::thread([this] { run_loop(); });
}

void TelemetryExporter::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  // One final sample so even a run shorter than one period leaves a row,
  // and the last partial window is never lost.
  take_sample();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sink_.is_open()) sink_.flush();
  }
  std::lock_guard<std::mutex> lock(wake_mutex_);
  running_ = false;
}

bool TelemetryExporter::running() const {
  std::lock_guard<std::mutex> lock(wake_mutex_);
  return running_;
}

void TelemetryExporter::sample_now() { take_sample(); }

std::vector<TelemetrySample> TelemetryExporter::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t TelemetryExporter::total_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_samples_;
}

void TelemetryExporter::run_loop() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  while (!stop_requested_) {
    // wait_for returns early (true) only on stop; spurious wakes re-check.
    if (wake_.wait_for(lock, config_.period,
                       [this] { return stop_requested_; }))
      break;
    lock.unlock();
    take_sample();
    lock.lock();
  }
}

void TelemetryExporter::take_sample() {
  if (config_.rollup_before_sample) registry_->rollup();
  TelemetrySample sample;
  sample.t_ns = Tracer::global().now_ns();
  sample.metrics = registry_->snapshot();

  TelemetrySample prev;
  bool has_prev = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // seq is assigned under the ring mutex, so rows are gapless and ordered
    // even when sample_now() races the background thread.
    sample.seq = total_samples_;
    if (!ring_.empty()) {
      prev = ring_.back();
      has_prev = true;
    }
    ring_.push_back(sample);
    while (ring_.size() > config_.ring_capacity) ring_.pop_front();
    ++total_samples_;
    if (sink_.is_open()) sink_ << to_json(sample) << '\n';
  }
  if (config_.on_sample)
    config_.on_sample(has_prev ? &prev : nullptr, sample);
}

}  // namespace avd::obs
