#include "avd/obs/flight_recorder.hpp"

#include <fstream>
#include <sstream>

#include "avd/obs/json.hpp"

namespace avd::obs {

void FlightRecorder::set_config_json(std::string config_json) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_json_ = std::move(config_json);
}

void FlightRecorder::record_frame(const FrameTrace& frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& ring = frames_[frame.stream];
  ring.push_back(frame);
  while (ring.size() > config_.max_frames_per_stream) ring.pop_front();
  ++frames_recorded_;
}

void FlightRecorder::record_telemetry_row(std::string row_json) {
  std::lock_guard<std::mutex> lock(mutex_);
  telemetry_.push_back(std::move(row_json));
  while (telemetry_.size() > config_.max_telemetry_rows)
    telemetry_.pop_front();
}

void FlightRecorder::record_transition(const HealthTransition& transition) {
  std::lock_guard<std::mutex> lock(mutex_);
  transitions_.push_back(transition);
  while (transitions_.size() > config_.max_transitions)
    transitions_.pop_front();
}

std::string FlightRecorder::dump(std::string_view reason) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"reason\":\"" << json::escape(reason) << "\",\"config\":";
  // Embed verbatim only when it really is JSON; never let a caller's typo
  // make the whole bundle unparseable.
  if (!config_json_.empty() && json::valid(config_json_))
    os << config_json_;
  else if (config_json_.empty())
    os << "null";
  else
    os << '"' << json::escape(config_json_) << '"';
  os << ",\"streams\":{";
  bool first_stream = true;
  for (const auto& [stream, ring] : frames_) {
    if (!first_stream) os << ',';
    first_stream = false;
    os << '"' << stream << "\":{\"frames\":[";
    bool first = true;
    for (const FrameTrace& f : ring) {
      if (!first) os << ',';
      first = false;
      os << to_json(f);
    }
    os << "]}";
  }
  os << "},\"telemetry\":[";
  bool first = true;
  for (const std::string& row : telemetry_) {
    if (!first) os << ',';
    first = false;
    if (json::valid(row))
      os << row;
    else
      os << '"' << json::escape(row) << '"';
  }
  os << "],\"slo_transitions\":[";
  first = true;
  for (const HealthTransition& t : transitions_) {
    if (!first) os << ',';
    first = false;
    os << "{\"entity\":\"" << json::escape(t.entity) << "\",\"from\":\""
       << to_string(t.from) << "\",\"to\":\"" << to_string(t.to)
       << "\",\"t_ns\":" << t.t_ns << ",\"reason\":\""
       << json::escape(t.reason) << "\"}";
  }
  os << "]}";
  return os.str();
}

bool FlightRecorder::dump_to_file(const std::string& path,
                                  std::string_view reason) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << dump(reason) << '\n';
  return out.good();
}

std::uint64_t FlightRecorder::frames_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_recorded_;
}

}  // namespace avd::obs
