#include "avd/obs/trace.hpp"

#include <algorithm>
#include <string>
#include <string_view>

#include "avd/obs/metrics.hpp"

namespace avd::obs {
namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// The calling thread's position in a causal chain. Plain thread_local (no
// atomics): only the owning thread reads or writes it.
thread_local TraceContext t_current_context;

}  // namespace

std::int64_t SpanRecord::arg(const char* name, std::int64_t fallback) const {
  for (int i = 0; i < arg_count; ++i)
    if (std::string_view(args[i].name) == name) return args[i].value;
  return fallback;
}

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()), id_(next_tracer_id()) {}

Tracer& Tracer::global() {
  // Leaked on purpose: worker threads may record right up to process exit.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint64_t Tracer::new_trace_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Tracer::new_span_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

TraceContext Tracer::current_context() { return t_current_context; }

TraceScope::TraceScope(TraceContext ctx) : prev_(t_current_context) {
  t_current_context = ctx;
}

TraceScope::~TraceScope() { t_current_context = prev_; }

void ScopedSpan::install_context(TraceContext ctx) {
  t_current_context = ctx;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // One-slot cache: the common case is a thread recording into one tracer
  // (the global one) for its whole life. A thread alternating between
  // tracers re-registers on each switch, which only costs memory.
  struct Cache {
    std::uint64_t tracer_id = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local Cache cache;
  if (cache.tracer_id == id_) return *cache.buffer;

  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = buffers_.back().get();
  buffer->ring.resize(kRingCapacity);
  buffer->index = static_cast<int>(buffers_.size()) - 1;
  // Resolved once at registration so the drop path in record() is a single
  // relaxed add. Only the global tracer publishes: secondary tracer
  // instances (tests) would otherwise fight over the same metric names.
  if (this == &global()) {
    MetricsRegistry& registry = MetricsRegistry::global();
    buffer->dropped_per_thread = &registry.counter(
        "obs.trace.dropped_spans.t" + std::to_string(buffer->index));
    buffer->dropped_total = &registry.counter("obs.trace.dropped_spans");
  }
  cache = {id_, buffer};
  return *buffer;
}

void Tracer::record(SpanRecord span) {
  ThreadBuffer& tb = local_buffer();
  const std::uint64_t head = tb.head.load(std::memory_order_relaxed);
  if (head >= kRingCapacity) {
    // This write overwrites the ring's oldest span — make the loss visible
    // where dashboards look, not only in the post-run drain.
    if (tb.dropped_per_thread != nullptr) tb.dropped_per_thread->inc();
    if (tb.dropped_total != nullptr) tb.dropped_total->inc();
  }
  span.thread = tb.index;
  tb.ring[head & (kRingCapacity - 1)] = span;
  tb.head.store(head + 1, std::memory_order_release);
}

void Tracer::push_open_span(const char* name) {
  ThreadBuffer& tb = local_buffer();
  const int d = tb.open_depth.load(std::memory_order_relaxed);
  if (d >= 0 && d < kMaxOpenDepth)
    tb.open_stack[static_cast<std::size_t>(d)].store(
        name, std::memory_order_relaxed);
  // Publish the slot before the new depth so a sampler that observes d+1
  // also observes the name written above.
  tb.open_depth.store(d + 1, std::memory_order_release);
}

void Tracer::pop_open_span() {
  ThreadBuffer& tb = local_buffer();
  const int d = tb.open_depth.load(std::memory_order_relaxed);
  if (d > 0) tb.open_depth.store(d - 1, std::memory_order_release);
}

std::vector<Tracer::OpenStack> Tracer::sample_open_stacks() const {
  std::vector<OpenStack> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tb : buffers_) {
    int d = tb->open_depth.load(std::memory_order_acquire);
    if (d <= 0) continue;
    if (d > kMaxOpenDepth) d = kMaxOpenDepth;
    OpenStack s;
    s.thread = tb->index;
    for (int i = 0; i < d; ++i) {
      // A pop/push racing this read can leave a just-replaced name in a
      // slot; every value ever stored is an immortal literal, so the worst
      // case is one sample attributed to the neighbouring span.
      const char* f = tb->open_stack[static_cast<std::size_t>(i)].load(
          std::memory_order_relaxed);
      if (f != nullptr) s.frames[static_cast<std::size_t>(s.depth++)] = f;
    }
    if (s.depth > 0) out.push_back(s);
  }
  return out;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tb : buffers_) {
    const std::uint64_t head = tb->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, kRingCapacity);
    for (std::uint64_t i = head - n; i < head; ++i)
      out.push_back(tb->ring[i & (kRingCapacity - 1)]);
  }
  return out;
}

std::vector<SpanRecord> Tracer::drain() {
  std::vector<SpanRecord> out = snapshot();
  clear();
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tb : buffers_) tb->head.store(0, std::memory_order_release);
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tb : buffers_) {
    const std::uint64_t head = tb->head.load(std::memory_order_acquire);
    if (head > kRingCapacity) dropped += head - kRingCapacity;
  }
  return dropped;
}

std::size_t Tracer::thread_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffers_.size();
}

}  // namespace avd::obs
