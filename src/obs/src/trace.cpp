#include "avd/obs/trace.hpp"

#include <algorithm>

namespace avd::obs {
namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()), id_(next_tracer_id()) {}

Tracer& Tracer::global() {
  // Leaked on purpose: worker threads may record right up to process exit.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // One-slot cache: the common case is a thread recording into one tracer
  // (the global one) for its whole life. A thread alternating between
  // tracers re-registers on each switch, which only costs memory.
  struct Cache {
    std::uint64_t tracer_id = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local Cache cache;
  if (cache.tracer_id == id_) return *cache.buffer;

  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = buffers_.back().get();
  buffer->ring.resize(kRingCapacity);
  buffer->index = static_cast<int>(buffers_.size()) - 1;
  cache = {id_, buffer};
  return *buffer;
}

void Tracer::record(const char* name, const char* source,
                    std::uint64_t begin_ns, std::uint64_t end_ns) {
  ThreadBuffer& tb = local_buffer();
  const std::uint64_t head = tb.head.load(std::memory_order_relaxed);
  SpanRecord& slot = tb.ring[head & (kRingCapacity - 1)];
  slot.name = name;
  slot.source = source;
  slot.begin_ns = begin_ns;
  slot.end_ns = end_ns;
  slot.thread = tb.index;
  tb.head.store(head + 1, std::memory_order_release);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tb : buffers_) {
    const std::uint64_t head = tb->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, kRingCapacity);
    for (std::uint64_t i = head - n; i < head; ++i)
      out.push_back(tb->ring[i & (kRingCapacity - 1)]);
  }
  return out;
}

std::vector<SpanRecord> Tracer::drain() {
  std::vector<SpanRecord> out = snapshot();
  clear();
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tb : buffers_) tb->head.store(0, std::memory_order_release);
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tb : buffers_) {
    const std::uint64_t head = tb->head.load(std::memory_order_acquire);
    if (head > kRingCapacity) dropped += head - kRingCapacity;
  }
  return dropped;
}

std::size_t Tracer::thread_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffers_.size();
}

}  // namespace avd::obs
