#include "avd/obs/trace_sampler.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "avd/obs/json.hpp"
#include "avd/obs/metrics.hpp"

namespace avd::obs {

// Aggregation is histogram-backed so stats() can answer quantiles, not just
// mean/max. ~10 span names in the full pipeline, so the 4 KB-per-name cost
// is irrelevant next to the rings it replaces.
struct TraceSampler::NameAgg {
  std::string name;
  Histogram hist;
};

TraceSampler::TraceSampler(TraceSamplerConfig config) : config_(config) {}

TraceSampler::~TraceSampler() = default;

const char* to_string(RetainReason r) {
  switch (r) {
    case RetainReason::Marked: return "marked";
    case RetainReason::SlowChain: return "slow_chain";
    case RetainReason::HeadSample: return "head_sample";
  }
  return "unknown";
}

std::string to_json(const SpanStats& stats) {
  std::ostringstream os;
  os << "{\"name\":\"" << json::escape(stats.name)
     << "\",\"count\":" << stats.count << ",\"sum_ns\":" << stats.sum_ns
     << ",\"mean_ns\":" << static_cast<std::uint64_t>(stats.mean_ns())
     << ",\"max_ns\":" << stats.max_ns << ",\"p50_ns\":" << stats.p50_ns
     << ",\"p95_ns\":" << stats.p95_ns << ",\"p99_ns\":" << stats.p99_ns
     << '}';
  return os.str();
}

std::string to_json(const RetainedFrame& frame) {
  std::ostringstream os;
  os << "{\"reason\":\"" << to_string(frame.reason)
     << "\",\"trace\":" << to_json(frame.trace) << '}';
  return os.str();
}

void TraceSampler::mark_interesting(std::uint64_t trace_id) {
  if (trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  marked_.insert(trace_id);
}

void TraceSampler::retain_locked(const FrameTrace& frame,
                                 RetainReason reason) {
  ++frames_retained_;
  retained_.push_back({frame, reason});
  while (retained_.size() > config_.max_retained) {
    retained_.pop_front();
    ++retained_evicted_;
  }
}

void TraceSampler::ingest(std::span<const FrameTrace> frames) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const FrameTrace& frame : frames) {
    const std::uint64_t index = frames_seen_++;
    for (const SpanRecord& span : frame.spans) {
      ++spans_seen_;
      if (span.name == nullptr) continue;
      // Binary search by name keeps stats() trivially sorted and ingest at
      // O(log names) per span.
      auto it = std::lower_bound(
          aggs_.begin(), aggs_.end(), span.name,
          [](const std::unique_ptr<NameAgg>& a, const char* n) {
            return std::strcmp(a->name.c_str(), n) < 0;
          });
      if (it == aggs_.end() || (*it)->name != span.name) {
        auto agg = std::make_unique<NameAgg>();
        agg->name = span.name;
        it = aggs_.insert(it, std::move(agg));
      }
      (*it)->hist.record_ns(span.end_ns - span.begin_ns);
    }
    if (const auto marked = marked_.find(frame.trace_id);
        marked != marked_.end()) {
      marked_.erase(marked);
      retain_locked(frame, RetainReason::Marked);
    } else if (config_.deadline_ns != 0 &&
               frame.critical_path_ns() > config_.deadline_ns) {
      retain_locked(frame, RetainReason::SlowChain);
    } else if (config_.head_sample_every != 0 &&
               index % config_.head_sample_every == 0) {
      retain_locked(frame, RetainReason::HeadSample);
    }
  }
}

std::vector<RetainedFrame> TraceSampler::retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {retained_.begin(), retained_.end()};
}

std::vector<SpanStats> TraceSampler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanStats> out;
  out.reserve(aggs_.size());
  for (const auto& agg : aggs_) {
    SpanStats s;
    s.name = agg->name;
    s.count = agg->hist.count();
    s.sum_ns = agg->hist.sum_ns();
    s.max_ns = agg->hist.max_ns();
    s.p50_ns = agg->hist.percentile_ns(0.50);
    s.p95_ns = agg->hist.percentile_ns(0.95);
    s.p99_ns = agg->hist.percentile_ns(0.99);
    out.push_back(std::move(s));
  }
  return out;
}

std::uint64_t TraceSampler::frames_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_seen_;
}

std::uint64_t TraceSampler::frames_retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_retained_;
}

std::uint64_t TraceSampler::spans_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_seen_;
}

std::uint64_t TraceSampler::retained_evicted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retained_evicted_;
}

}  // namespace avd::obs
