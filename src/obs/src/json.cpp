#include "avd/obs/json.hpp"

#include <cstdio>
#include <cstdlib>

namespace avd::obs::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> parse_document() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char expected) {
    if (eof() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (eof()) return false;
    switch (peek()) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.type = Value::Type::String;
        return parse_string(out.string);
      case 't':
        out.type = Value::Type::Bool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.type = Value::Type::Bool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.type = Value::Type::Null;
        return consume_literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::Object;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      Value member;
      if (!parse_value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::Array;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      Value element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          append_utf8(out, code);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_hex4(unsigned& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) return false;
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9')
        out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        out |= static_cast<unsigned>(c - 'A' + 10);
      else
        return false;
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    // Surrogate pairs are not combined — fine for a validator; the repo
    // only escapes control characters, which are single units.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool parse_number(Value& out) {
    out.type = Value::Type::Number;
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (eof()) return false;
    if (!consume('0')) {  // leading zeros are invalid
      if (eof() || peek() < '1' || peek() > '9') return false;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (consume('.')) {
      if (eof() || peek() < '0' || peek() > '9') return false;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') return false;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.number = std::strtod(token.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

std::optional<Value> parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  char buf[8];
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace avd::obs::json
