#include "avd/obs/build_info.hpp"

#include <chrono>

#include "avd/obs/metrics.hpp"

#ifndef AVD_BUILD_VERSION
#define AVD_BUILD_VERSION "dev"
#endif
#ifndef AVD_BUILD_MODE
#define AVD_BUILD_MODE "unspecified"
#endif

namespace avd::obs {
namespace {

// Function-local so the anchor works regardless of static-init order; the
// first caller (normally MetricsRegistry::global()'s creation) pins it.
std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

const char* build_version() { return AVD_BUILD_VERSION; }

const char* build_mode() { return AVD_BUILD_MODE; }

double process_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_epoch())
      .count();
}

void publish_process_metrics(MetricsRegistry& registry) {
  registry.gauge("process.uptime_seconds").set(process_uptime_seconds());
  registry
      .gauge("build.info",
             {{"mode", build_mode()}, {"version", build_version()}})
      .set(1.0);
}

}  // namespace avd::obs
