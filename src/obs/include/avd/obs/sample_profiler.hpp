// On-demand span-stack sampling profiler: what is the pipeline doing *right
// now*?
//
// The tracer's per-thread rings answer "what happened" once writers
// quiesce; they cannot answer a live operator asking why p99 is climbing
// mid-serve. SampleProfiler is the pprof-style complement: a timer thread
// wakes at `hz` (default 97 Hz — deliberately prime and off the 50 fps /
// 20 ms frame grid, so samples cannot phase-lock with frame boundaries),
// snapshots every registered thread's *open span stack* (the lock-free
// shadow stack armed ScopedSpans maintain — Tracer::sample_open_stacks) and
// accumulates one unit of weight per (thread-)stack per tick. The aggregate
// renders as flamegraph.pl-compatible collapsed text ("outer;inner N") and
// as JSON — the payloads behind OpsServer's /profilez?seconds=N.
//
// Bounds and lifecycle:
//  * Memory is bounded: at most max_unique_stacks distinct stacks are ever
//    held; samples landing on new stacks beyond that are counted in
//    dropped_stacks, never allocated.
//  * start()/stop() are clean and idempotent; stop() returns the report and
//    resets, so consecutive profiles don't bleed into each other.
//  * run_for() serialises concurrent callers (two /profilez requests queue
//    rather than interleave), each getting its own window's report.
//
// Stacks populate only while the tracer is enabled — unarmed spans do not
// maintain the shadow stack — so profiling a quiet or untraced process
// yields idle ticks, not garbage.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "avd/obs/trace.hpp"

namespace avd::obs {

struct SampleProfilerConfig {
  /// Sampling frequency. Keep it prime-ish and off the frame rate.
  double hz = 97.0;
  /// Hard cap on distinct stacks held; excess samples are dropped+counted.
  std::size_t max_unique_stacks = 4096;
};

/// One unique open-span stack and its accumulated sample weight.
struct ProfileStack {
  std::vector<std::string> frames;  ///< outermost first
  std::uint64_t samples = 0;
};

/// Everything one profiling window produced.
struct ProfileReport {
  std::uint64_t ticks = 0;           ///< timer wakeups in the window
  std::uint64_t samples = 0;         ///< thread-stacks accumulated
  std::uint64_t idle_ticks = 0;      ///< wakeups that found no open span
  std::uint64_t dropped_samples = 0; ///< lost to the unique-stack cap
  std::uint64_t duration_ns = 0;
  double hz = 0.0;
  std::vector<ProfileStack> stacks;  ///< samples-descending

  /// flamegraph.pl collapsed format: "outer;inner <count>\n" per stack
  /// (spaces/semicolons in frame names mapped to '_'). Empty string when no
  /// samples landed.
  [[nodiscard]] std::string to_collapsed() const;
  /// {"hz":...,"ticks":...,"stacks":[{"frames":[...],"samples":N},...]};
  /// parses with obs::json.
  [[nodiscard]] std::string to_json() const;
};

class SampleProfiler {
 public:
  explicit SampleProfiler(SampleProfilerConfig config = {},
                          Tracer& tracer = Tracer::global());
  ~SampleProfiler();  ///< stops a running window
  SampleProfiler(const SampleProfiler&) = delete;
  SampleProfiler& operator=(const SampleProfiler&) = delete;

  /// Launch the timer thread (no-op when already running).
  void start();
  /// Stop the timer thread, return the window's report, reset state.
  /// Idempotent: stopping a stopped profiler returns an empty report.
  ProfileReport stop();
  [[nodiscard]] bool running() const;

  /// start(), sleep `duration`, stop() — the /profilez request body.
  /// Concurrent callers serialise; each gets its own window.
  ProfileReport run_for(std::chrono::milliseconds duration);

  [[nodiscard]] const SampleProfilerConfig& config() const { return config_; }

 private:
  void loop();
  void tick();

  const SampleProfilerConfig config_;
  Tracer* tracer_;

  std::mutex run_mutex_;  ///< serialises run_for() windows

  mutable std::mutex data_mutex_;  ///< guards everything below
  // Keyed by the frame-pointer vector: span names are immortal literals, so
  // pointer identity is name identity and sampling never copies strings.
  std::map<std::vector<const char*>, std::uint64_t> counts_;
  std::uint64_t ticks_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t idle_ticks_ = 0;
  std::uint64_t dropped_samples_ = 0;
  std::chrono::steady_clock::time_point window_begin_;

  mutable std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace avd::obs
