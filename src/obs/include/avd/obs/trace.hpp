// Span-based tracing: the simulation's answer to "what did each stage of the
// pipeline actually spend its time on" — the software twin of the paper's
// Vivado ILA captures, which show begin/end of hardware activity on a shared
// timeline.
//
// Design:
//  * `ScopedSpan` is an RAII begin/end pair. Construction checks one relaxed
//    atomic (the tracer's enable flag); when tracing is disabled that load is
//    the *entire* cost, so instrumentation can stay in hot paths permanently.
//  * Completed spans land in per-thread ring buffers. The recording thread is
//    the only writer of its ring (a relaxed head index published with
//    release), so the hot path takes no lock and touches no shared cache
//    line. A full ring overwrites its oldest spans (drop count is reported,
//    and published live into MetricsRegistry as obs.trace.dropped_spans so
//    span loss is itself observable).
//  * **Causal frame tracing** (Dapper-style): a `TraceContext` names one
//    logical frame's journey (`trace_id`) and the span it is currently
//    inside (`parent_span_id`). The context travels two ways: explicitly,
//    carried with the frame across queue hops (runtime::FrameTask), and
//    implicitly, through a thread-local that `TraceScope` installs and every
//    armed `ScopedSpan` inherits and re-installs for its own children. A
//    frame's spans therefore form one linked tree across worker threads,
//    which soc::to_chrome_trace renders as Perfetto flow arcs.
//  * `drain()` / `snapshot()` collect every thread's spans into one vector.
//    Like the rest of the repo's instrumentation (EventLog, StageMetrics)
//    the read side is meant for quiesced writers: join your workers, then
//    export. Span names/sources must be string literals (or otherwise
//    outlive the tracer) — records store the pointers, not copies.
//
// Export: soc::to_chrome_trace(log, spans) merges spans (Chrome "X"
// complete events, plus flow events for linked spans) with EventLog instants
// into one Perfetto-loadable file. obs::frame_trace reassembles per-frame
// chains and critical-path latency offline.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <vector>

namespace avd::obs {

class Counter;

/// Identity of one causal chain (one frame) plus the span to parent on.
/// trace_id 0 means "not part of any trace" — spans still record, they just
/// don't link.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] bool linked() const { return trace_id != 0; }
};

/// One numeric span attribute (frame index, stream id, mode, ...). The name
/// must be a string literal, like span names.
struct SpanArg {
  const char* name = nullptr;
  std::int64_t value = 0;
};

/// One completed span. Timestamps are wall-clock nanoseconds since the
/// tracer's construction (steady clock), so spans from every thread share a
/// timebase.
struct SpanRecord {
  static constexpr int kMaxArgs = 4;

  const char* name = nullptr;    ///< static string: what ran
  const char* source = nullptr;  ///< static string: component ("detect/dark")
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  int thread = 0;  ///< per-tracer thread index (rows in the trace)

  std::uint64_t trace_id = 0;        ///< 0 = not part of a frame trace
  std::uint64_t span_id = 0;         ///< unique per recorded span (when armed)
  std::uint64_t parent_span_id = 0;  ///< 0 = root of its trace
  int arg_count = 0;
  SpanArg args[kMaxArgs] = {};

  /// Value of the named arg, or `fallback` when absent.
  [[nodiscard]] std::int64_t arg(const char* name,
                                 std::int64_t fallback = -1) const;
};

class Tracer {
 public:
  /// Spans kept per thread; a full ring overwrites its oldest entries.
  static constexpr std::size_t kRingCapacity = std::size_t{1} << 14;
  /// Open-span shadow-stack depth exposed per thread; deeper nesting still
  /// balances (the depth counter keeps counting) but only the outermost
  /// kMaxOpenDepth names are visible to samplers.
  static constexpr int kMaxOpenDepth = 32;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every ScopedSpan records into. Never destroyed.
  static Tracer& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since tracer construction (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Allocate a fresh, process-unique, nonzero trace id (one per frame).
  [[nodiscard]] static std::uint64_t new_trace_id();
  /// Allocate a fresh, process-unique, nonzero span id.
  [[nodiscard]] static std::uint64_t new_span_id();

  /// The calling thread's current trace context (set by TraceScope /
  /// ScopedSpan). Zeroes when the thread is outside any trace.
  [[nodiscard]] static TraceContext current_context();

  /// Record a completed span (normally via ScopedSpan, not directly).
  void record(const char* name, const char* source, std::uint64_t begin_ns,
              std::uint64_t end_ns) {
    record(SpanRecord{name, source, begin_ns, end_ns});
  }
  /// Record a fully populated span; `thread` is filled in by the tracer.
  void record(SpanRecord span);

  /// All spans from all threads, oldest-first per thread, concatenated by
  /// thread registration order. Writers must be quiesced.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  /// snapshot(), then reset every ring (drop counters included).
  std::vector<SpanRecord> drain();
  /// Reset every ring without reading it. Writers must be quiesced.
  void clear();

  /// Spans lost to ring overwrite since the last drain()/clear().
  [[nodiscard]] std::uint64_t dropped() const;
  /// Threads that have recorded at least one span since construction.
  [[nodiscard]] std::size_t thread_count() const;

  /// One thread's open (begun, not yet ended) span stack at sampling time,
  /// outermost first. `frames` entries are the same static strings span
  /// names are.
  struct OpenStack {
    int thread = 0;
    int depth = 0;  ///< valid frames; clamped to kMaxOpenDepth
    std::array<const char*, kMaxOpenDepth> frames{};
  };

  /// Maintain the calling thread's open-span shadow stack. Called by armed
  /// ScopedSpans on entry/exit: a relaxed slot store plus a release depth
  /// store, so the stack is readable from other threads without locks.
  void push_open_span(const char* name);
  void pop_open_span();

  /// Every registered thread's current open-span stack (threads with no
  /// span open are omitted). Safe against live writers: a sample races
  /// pushes/pops by design and may be one frame stale — sampling noise, not
  /// corruption, since names are immortal string literals. This is the
  /// read side SampleProfiler drives at ~100 Hz.
  [[nodiscard]] std::vector<OpenStack> sample_open_stacks() const;

 private:
  friend class TraceScope;

  struct ThreadBuffer {
    std::atomic<std::uint64_t> head{0};  ///< total spans ever written
    std::vector<SpanRecord> ring;        ///< size kRingCapacity, lazily filled
    int index = 0;                       ///< per-tracer thread index
    Counter* dropped_per_thread = nullptr;  ///< obs.trace.dropped_spans.t<N>
    Counter* dropped_total = nullptr;       ///< obs.trace.dropped_spans
    /// Open-span shadow stack: written only by the owning thread, read by
    /// sampling threads (see sample_open_stacks).
    std::atomic<int> open_depth{0};
    std::array<std::atomic<const char*>, kMaxOpenDepth> open_stack{};
  };

  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t id_ = 0;  ///< distinguishes tracer instances in the TL cache
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII: installs `ctx` as the calling thread's current trace context and
/// restores the previous one on destruction. The runtime wraps each queue
/// hop's processing in one of these so spans recorded on whatever worker
/// picked the frame up join the frame's trace.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
};

/// RAII span: times its own scope and records into Tracer::global() at
/// destruction. `name`, `source` and arg names must be string literals (or
/// otherwise outlive the tracer's records).
///
/// When armed (tracing enabled at construction) the span inherits the
/// thread's current TraceContext as its parent, allocates its own span id,
/// and installs itself as the current context so nested spans (and spans in
/// called-into layers: core, detect, soc) become its children.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* source)
      : ScopedSpan(name, source, {}) {}

  ScopedSpan(const char* name, const char* source,
             std::initializer_list<SpanArg> args) {
    Tracer& tracer = Tracer::global();
    if (!tracer.enabled()) return;
    tracer_ = &tracer;
    span_.name = name;
    span_.source = source;
    for (const SpanArg& a : args) {
      if (span_.arg_count >= SpanRecord::kMaxArgs) break;
      span_.args[span_.arg_count++] = a;
    }
    const TraceContext parent = Tracer::current_context();
    span_.trace_id = parent.trace_id;
    span_.parent_span_id = parent.parent_span_id;
    span_.span_id = Tracer::new_span_id();
    prev_context_ = parent;
    install_context({parent.trace_id, span_.span_id});
    tracer.push_open_span(name);
    span_.begin_ns = tracer.now_ns();
  }

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    span_.end_ns = tracer_->now_ns();
    tracer_->pop_open_span();
    install_context(prev_context_);
    tracer_->record(span_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Append one numeric attribute (no-op when unarmed or already at 4).
  void arg(const char* name, std::int64_t value) {
    if (tracer_ != nullptr && span_.arg_count < SpanRecord::kMaxArgs)
      span_.args[span_.arg_count++] = {name, value};
  }

  /// Context children of this span should carry: {trace_id, this span's id}.
  /// Zeroes when the span is unarmed — callers can pass it along regardless.
  [[nodiscard]] TraceContext context() const {
    return {span_.trace_id, span_.span_id};
  }

 private:
  static void install_context(TraceContext ctx);

  Tracer* tracer_ = nullptr;  ///< null when tracing was off at construction
  SpanRecord span_;
  TraceContext prev_context_;
};

}  // namespace avd::obs
