// Span-based tracing: the simulation's answer to "what did each stage of the
// pipeline actually spend its time on" — the software twin of the paper's
// Vivado ILA captures, which show begin/end of hardware activity on a shared
// timeline.
//
// Design:
//  * `ScopedSpan` is an RAII begin/end pair. Construction checks one relaxed
//    atomic (the tracer's enable flag); when tracing is disabled that load is
//    the *entire* cost, so instrumentation can stay in hot paths permanently.
//  * Completed spans land in per-thread ring buffers. The recording thread is
//    the only writer of its ring (a relaxed head index published with
//    release), so the hot path takes no lock and touches no shared cache
//    line. A full ring overwrites its oldest spans (drop count is reported).
//  * `drain()` / `snapshot()` collect every thread's spans into one vector.
//    Like the rest of the repo's instrumentation (EventLog, StageMetrics)
//    the read side is meant for quiesced writers: join your workers, then
//    export. Span names/sources must be string literals (or otherwise
//    outlive the tracer) — records store the pointers, not copies.
//
// Export: soc::to_chrome_trace(log, spans) merges spans (Chrome "X"
// complete events) with EventLog instants into one Perfetto-loadable file.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace avd::obs {

/// One completed span. Timestamps are wall-clock nanoseconds since the
/// tracer's construction (steady clock), so spans from every thread share a
/// timebase.
struct SpanRecord {
  const char* name = nullptr;    ///< static string: what ran
  const char* source = nullptr;  ///< static string: component ("detect/dark")
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  int thread = 0;  ///< per-tracer thread index (rows in the trace)
};

class Tracer {
 public:
  /// Spans kept per thread; a full ring overwrites its oldest entries.
  static constexpr std::size_t kRingCapacity = std::size_t{1} << 14;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every ScopedSpan records into. Never destroyed.
  static Tracer& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since tracer construction (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Record a completed span (normally via ScopedSpan, not directly).
  void record(const char* name, const char* source, std::uint64_t begin_ns,
              std::uint64_t end_ns);

  /// All spans from all threads, oldest-first per thread, concatenated by
  /// thread registration order. Writers must be quiesced.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  /// snapshot(), then reset every ring (drop counters included).
  std::vector<SpanRecord> drain();
  /// Reset every ring without reading it. Writers must be quiesced.
  void clear();

  /// Spans lost to ring overwrite since the last drain()/clear().
  [[nodiscard]] std::uint64_t dropped() const;
  /// Threads that have recorded at least one span since construction.
  [[nodiscard]] std::size_t thread_count() const;

 private:
  struct ThreadBuffer {
    std::atomic<std::uint64_t> head{0};  ///< total spans ever written
    std::vector<SpanRecord> ring;        ///< size kRingCapacity, lazily filled
    int index = 0;                       ///< per-tracer thread index
  };

  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t id_ = 0;  ///< distinguishes tracer instances in the TL cache
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: times its own scope and records into Tracer::global() at
/// destruction. `name` and `source` must be string literals (or otherwise
/// outlive the tracer's records).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* source)
      : name_(name), source_(source) {
    Tracer& tracer = Tracer::global();
    if (tracer.enabled()) {
      tracer_ = &tracer;
      begin_ns_ = tracer.now_ns();
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr)
      tracer_->record(name_, source_, begin_ns_, tracer_->now_ns());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* source_;
  Tracer* tracer_ = nullptr;  ///< null when tracing was off at construction
  std::uint64_t begin_ns_ = 0;
};

}  // namespace avd::obs
