// Minimal strict JSON parser: just enough to validate and round-trip the
// documents this repo emits (Chrome traces, metrics dumps) in tests and
// smoke checks, with no third-party dependency.
//
// Supports the full JSON grammar (objects, arrays, strings with escapes
// incl. \uXXXX, numbers, booleans, null). Rejects trailing garbage,
// unterminated strings, bad escapes and malformed numbers. Not meant to be
// fast or memory-frugal — use it on test-sized documents.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace avd::obs::json {

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  /// First member with `key`, or nullptr (objects only).
  [[nodiscard]] const Value* find(std::string_view key) const;
};

/// Parse a complete JSON document; nullopt on any syntax error (including
/// trailing non-whitespace).
[[nodiscard]] std::optional<Value> parse(std::string_view text);

/// True iff `text` is a valid, complete JSON document.
[[nodiscard]] inline bool valid(std::string_view text) {
  return parse(text).has_value();
}

/// Escape `s` for use inside a JSON string literal (quotes not included):
/// the emitters' shared counterpart of parse(). Control characters become
/// \uXXXX, quote/backslash and the common whitespace escapes their short
/// forms.
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace avd::obs::json
