// Always-on telemetry: a background thread that snapshots a MetricsRegistry
// on a fixed period into (a) a bounded in-memory time-series ring and (b) an
// optional append-only JSONL sink — the machine-readable perf trajectory the
// SLO monitor and offline tooling read.
//
// Design constraints, in order:
//  * Zero hot-path cost: sampling reads the registry's relaxed atomics from
//    one background thread; pipeline workers never see the exporter.
//  * Bounded memory: the ring keeps the newest `ring_capacity` samples and
//    evicts the oldest (total_samples() still counts everything).
//  * Clean shutdown: stop() (and the destructor) wakes the thread, takes one
//    final sample so short runs are never empty, flushes the sink and joins.
//
// Timestamps share the span tracer's timebase (Tracer::global().now_ns())
// so telemetry rows line up with trace spans in post-processing.
//
// JSONL schema, one sample per line (parses with obs::json):
//   {"t_ns":<u64>,"seq":<u64>,"counters":{...},"gauges":{...},
//    "histograms":{...}}
// `seq` increases by exactly 1 per row: a consumer can detect reordering or
// duplication in transport even after the in-memory ring has evicted rows.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "avd/obs/metrics.hpp"

namespace avd::obs {

/// One row of the telemetry time series.
struct TelemetrySample {
  std::uint64_t t_ns = 0;  ///< Tracer::global().now_ns() at snapshot time
  std::uint64_t seq = 0;   ///< 0-based sample index, gapless per exporter
  MetricsSnapshot metrics;
};

/// One JSONL line for `sample` (no trailing newline).
[[nodiscard]] std::string to_json(const TelemetrySample& sample);

struct TelemetryConfig {
  /// Snapshot period. The paper's frame budget is 20 ms; the default samples
  /// at 50 Hz so every frame window lands in some sample's delta.
  std::chrono::milliseconds period{20};
  /// Newest samples kept in memory; older ones are evicted (JSONL keeps all).
  std::size_t ring_capacity = 512;
  /// Append-only JSONL sink; empty = in-memory only.
  std::string jsonl_path;
  /// Fold labeled series into their base names (MetricsRegistry::rollup())
  /// right before each snapshot, so every row carries the per-stream and the
  /// fleet view. O(series) on the exporter thread, zero on the hot path.
  bool rollup_before_sample = false;
  /// Invoked on the exporter thread after each sample lands, with the
  /// previous sample (nullptr on the first) and the new one — the hook the
  /// SLO monitor evaluates windows from. Keep it cheap; it blocks sampling.
  std::function<void(const TelemetrySample* prev, const TelemetrySample& cur)>
      on_sample;
};

class TelemetryExporter {
 public:
  explicit TelemetryExporter(MetricsRegistry& registry,
                             TelemetryConfig config = {});
  ~TelemetryExporter();  ///< stop()s if still running
  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Launch the background thread (no-op when already running). Opens the
  /// JSONL sink; throws std::runtime_error if the sink cannot be opened.
  void start();
  /// Take one final sample, flush the sink, join the thread. Idempotent.
  void stop();
  [[nodiscard]] bool running() const;

  /// Take a sample right now, from the calling thread (works whether or not
  /// the background thread runs — tests and one-shot dumps use this).
  void sample_now();

  /// Copy of the current ring, oldest first.
  [[nodiscard]] std::vector<TelemetrySample> samples() const;
  /// Samples taken since construction (ring evictions included).
  [[nodiscard]] std::uint64_t total_samples() const;

  [[nodiscard]] const TelemetryConfig& config() const { return config_; }

 private:
  void run_loop();
  void take_sample();

  MetricsRegistry* registry_;
  TelemetryConfig config_;

  mutable std::mutex mutex_;  ///< guards ring_, sink_, last emitted sample
  std::deque<TelemetrySample> ring_;
  std::uint64_t total_samples_ = 0;
  std::ofstream sink_;

  mutable std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace avd::obs
