// OpsServer: the live introspection plane's front door.
//
// A small, dependency-free blocking HTTP/1.1 listener over POSIX sockets —
// the per-process scrape/health/debug surface a sharded fleet presupposes
// (Monarch-style pull exposition; you cannot operate a fleet you can only
// inspect post-mortem). Deliberately minimal:
//
//  * one acceptor thread (poll + accept, so stop() is prompt) feeding a
//    small handler pool through a bounded fd queue — connections beyond the
//    bound are closed, never buffered unboundedly;
//  * requests are size-bounded (413 beyond max_request_bytes) and
//    recv-timeout-bounded, so a stalled client cannot wedge a handler;
//  * GET only (405 otherwise), exact-path routing (404 otherwise),
//    Connection: close on every response — no keep-alive state machine;
//  * handlers run on the pool threads and must be thread-safe against the
//    process they introspect; a throwing handler becomes a 500, never a
//    dead handler thread.
//
// StreamServer embeds one (StreamServerConfig::ops) and installs the
// standard endpoints: /metricsz, /metricsz.json, /healthz, /tracez,
// /flightz, /statusz, /profilez. prometheus_response()/
// metrics_json_response() are the reusable scrape payloads, and http_get()
// is the matching minimal client used by tests, examples and smoke checks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace avd::obs {

class MetricsRegistry;

struct HttpRequest {
  std::string method;
  std::string path;  ///< request target before '?'
  /// Decoded query parameters. Duplicate keys are first-wins: the first
  /// occurrence in the raw query string is kept and later repeats are
  /// ignored, so `?seconds=1&seconds=999` yields `seconds=1` and a repeated
  /// param can never override an earlier clamp-relevant value.
  std::map<std::string, std::string> query;

  /// Value of one query parameter, or `fallback` when absent.
  [[nodiscard]] std::string query_value(const std::string& key,
                                        const std::string& fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct OpsServerConfig {
  /// Loopback by default: the ops plane is a debug surface, not a public API.
  std::string bind_address = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; read the result back via port().
  std::uint16_t port = 0;
  /// Handler pool size (>= 1). /profilez blocks its handler for the whole
  /// window, so keep at least 2 when profiling live systems.
  int handler_threads = 2;
  /// Requests larger than this are answered 413 and closed.
  std::size_t max_request_bytes = 8192;
  /// Per-connection receive timeout; a stalled client is dropped after it.
  int recv_timeout_ms = 2000;
  /// Accepted-but-unserved connections held; more are closed immediately.
  std::size_t max_pending_connections = 32;
};

class OpsServer {
 public:
  explicit OpsServer(OpsServerConfig config = {});
  ~OpsServer();  ///< stop()
  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  /// Register `handler` for exact-match `path`. Register before start();
  /// routes are not mutated while the server runs.
  void handle(std::string path, HttpHandler handler);

  /// Bind, listen, launch acceptor + handler pool. False when the socket
  /// cannot be bound (port taken, bad address). Idempotent while running.
  bool start();
  /// Close the listener, join every thread, drop pending connections.
  /// Idempotent.
  void stop();
  [[nodiscard]] bool running() const;

  /// The actually bound port (resolves ephemeral port 0); 0 before start().
  [[nodiscard]] std::uint16_t port() const;
  /// Responses completed (any status) since construction.
  [[nodiscard]] std::uint64_t requests_served() const;
  [[nodiscard]] const OpsServerConfig& config() const { return config_; }

 private:
  void accept_loop();
  void handler_loop();
  void serve_connection(int fd);

  OpsServerConfig config_;
  std::map<std::string, HttpHandler> routes_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint16_t> port_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  int listen_fd_ = -1;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a handler

  std::thread acceptor_;
  std::vector<std::thread> handlers_;
};

/// The standard Prometheus scrape payload: republished process identity,
/// rollup(), text exposition under kPrometheusContentType with guaranteed
/// trailing newline. One implementation for StreamServer's /metricsz and
/// every test that checks wire conformance.
[[nodiscard]] HttpResponse prometheus_response(MetricsRegistry& registry);

/// The /metricsz.json payload: same refresh + rollup, JSON snapshot under
/// application/json.
[[nodiscard]] HttpResponse metrics_json_response(MetricsRegistry& registry);

/// Minimal blocking HTTP/1.1 GET against 127.0.0.1:`port` (the client half
/// of OpsServer, for tests/examples/smoke): returns the response, or
/// nullopt on connect/transport failure. `target` includes the query
/// string ("/profilez?seconds=1").
[[nodiscard]] std::optional<HttpResponse> http_get(std::uint16_t port,
                                                   const std::string& target,
                                                   int timeout_ms = 10000);

}  // namespace avd::obs
