// SLO health monitoring over the telemetry time series.
//
// A SloRule is declarative: "the ratio of counter A's growth to counter B's
// growth over one telemetry window must stay below X (degraded) / Y
// (unhealthy)". Rules are evaluated on consecutive TelemetrySample pairs —
// i.e. on *rates*, so a registry that accumulates across runs still
// evaluates correctly — and drive a three-state health machine
// (HEALTHY / DEGRADED / UNHEALTHY) with hysteresis: worsening needs
// `breaches_to_worsen` consecutive breaching windows, recovery needs
// `clears_to_recover` consecutive clean windows and steps one level at a
// time, so a flapping metric cannot flap the health state.
//
// The paper's temporal claims map directly onto rules:
//   frame-deadline misses  — bad=deadline_miss, total=frames  (20 ms budget)
//   queue drop rate        — bad=drops,         total=frames
//   reconfig frame loss >1 — bad=reconfig_drops, total=reconfigs, limit 1.0
//
// Transitions fire a callback (on whatever thread called observe(); when
// driven by TelemetryExporter::on_sample, the exporter thread).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "avd/obs/telemetry.hpp"

namespace avd::obs {

enum class HealthState { Healthy = 0, Degraded = 1, Unhealthy = 2 };

[[nodiscard]] const char* to_string(HealthState s);

/// One declarative rule over counter growth in a telemetry window.
struct SloRule {
  std::string name;           ///< "frame_deadline", "queue_drops", ...
  std::string bad_counter;    ///< numerator counter name
  /// Denominator counter name; empty means the rule evaluates the absolute
  /// growth of bad_counter per window instead of a ratio.
  std::string total_counter;
  double degraded_above = 0.0;   ///< value > this  => at least DEGRADED
  double unhealthy_above = 1e9;  ///< value > this  => UNHEALTHY
  /// Windows whose denominator grew less than this are skipped (no events =
  /// no evidence; an idle stream is not unhealthy).
  std::uint64_t min_total = 1;
};

/// Value of one rule over the last evaluated window.
struct SloRuleValue {
  std::string rule;
  double value = 0.0;         ///< ratio (or absolute growth)
  bool evaluated = false;     ///< false when the window was skipped
  HealthState observed = HealthState::Healthy;
};

struct HealthTransition {
  std::string entity;
  HealthState from = HealthState::Healthy;
  HealthState to = HealthState::Healthy;
  std::uint64_t t_ns = 0;   ///< timestamp of the window's closing sample
  std::string reason;       ///< worst rule and its value, human-readable
};

/// Hysteresis shape of the health state machine.
struct SloConfig {
  int breaches_to_worsen = 1;  ///< consecutive breaching windows to worsen
  int clears_to_recover = 3;   ///< consecutive clean windows per step back
};

/// Health state machine for one entity (one stream), fed telemetry windows.
/// Thread-safe: observe() and the read accessors may race.
class SloMonitor {
 public:
  using Callback = std::function<void(const HealthTransition&)>;

  SloMonitor(std::string entity, std::vector<SloRule> rules,
             SloConfig config = {});

  /// Invoked on every state transition, from observe()'s calling thread.
  void set_callback(Callback cb);

  /// Evaluate every rule over the window [prev, cur] and advance the state
  /// machine. Returns the state after this observation.
  HealthState observe(const TelemetrySample& prev, const TelemetrySample& cur);

  [[nodiscard]] HealthState state() const;
  [[nodiscard]] const std::string& entity() const { return entity_; }
  /// Rule values from the most recent observe().
  [[nodiscard]] std::vector<SloRuleValue> last_values() const;
  /// Every transition so far, in order.
  [[nodiscard]] std::vector<HealthTransition> transitions() const;

 private:
  std::string entity_;
  std::vector<SloRule> rules_;
  SloConfig config_;

  mutable std::mutex mutex_;
  HealthState state_ = HealthState::Healthy;
  int breach_streak_ = 0;
  int clear_streak_ = 0;
  std::vector<SloRuleValue> last_values_;
  std::vector<HealthTransition> transitions_;
  Callback callback_;
};

/// The standard per-stream rule set the StreamServer installs, targeting the
/// paper's budgets: frame-deadline misses (vs the 20 ms / 50 fps window),
/// queue drop rate, and reconfiguration frame loss beyond the paper's
/// one-frame cost. `prefix` is the stream's metric prefix, e.g.
/// "runtime.stream0".
[[nodiscard]] std::vector<SloRule> standard_stream_rules(
    const std::string& prefix, double deadline_miss_degraded = 0.05,
    double deadline_miss_unhealthy = 0.25, double drop_rate_degraded = 0.01,
    double drop_rate_unhealthy = 0.10);

/// Same rules over the labeled series `runtime.frames{stream="<id>"}` etc. —
/// the form the StreamServer publishes since per-stream metrics moved from
/// name prefixes to a label dimension.
[[nodiscard]] std::vector<SloRule> standard_stream_rules_labeled(
    std::int64_t stream_id, double deadline_miss_degraded = 0.05,
    double deadline_miss_unhealthy = 0.25, double drop_rate_degraded = 0.01,
    double drop_rate_unhealthy = 0.10);

/// Same rules over an arbitrary label set — the sharded front door publishes
/// per-stream series as `runtime.frames{shard="2",stream="s3"}`, and its
/// monitors must read exactly those flat names.
[[nodiscard]] std::vector<SloRule> standard_stream_rules_labeled(
    const Labels& labels, double deadline_miss_degraded = 0.05,
    double deadline_miss_unhealthy = 0.25, double drop_rate_degraded = 0.01,
    double drop_rate_unhealthy = 0.10);

/// Fleet rollup of per-stream health: the worst state present (Healthy when
/// `states` is empty). One saturated stream therefore surfaces in the fleet
/// view no matter how many healthy neighbours it has.
[[nodiscard]] HealthState worst_of(std::span<const HealthState> states);

}  // namespace avd::obs
