// Offline reassembly of causal frame traces from drained spans.
//
// The tracer records spans per thread; a frame's journey through the
// serving pipeline (ingest → control → detect → report) is therefore
// shredded across rings. This module groups spans back by trace_id and
// answers the questions the paper's temporal claims hinge on:
//
//  * critical-path latency — first span begin to last span end of one
//    trace, i.e. ingest-enqueue to report-dequeue for a runtime frame;
//  * chain completeness — did every expected stage record a span, and do
//    parent links resolve inside the trace;
//  * concurrency shape — how many distinct threads one frame crossed.
//
// Used by tests (flow-linkage validation), examples/profile_pipeline
// (self-check) and examples/frame_slo_monitor.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "avd/obs/trace.hpp"

namespace avd::obs {

/// All spans of one trace_id, begin-ordered, plus derived shape.
struct FrameTrace {
  std::uint64_t trace_id = 0;
  /// "stream" / "frame" args, taken from any span in the chain carrying
  /// them (-1 when no span did).
  std::int64_t stream = -1;
  std::int64_t frame = -1;
  std::vector<SpanRecord> spans;  ///< sorted by begin_ns
  std::uint64_t begin_ns = 0;     ///< earliest span begin
  std::uint64_t end_ns = 0;       ///< latest span end

  /// End-to-end wall-clock latency of the chain (ingest-enqueue to
  /// report-dequeue when the runtime produced it).
  [[nodiscard]] std::uint64_t critical_path_ns() const {
    return end_ns - begin_ns;
  }
  /// Number of distinct recording threads the chain crossed.
  [[nodiscard]] std::size_t thread_count() const;
  /// True iff some span in the chain has this name.
  [[nodiscard]] bool has_span(std::string_view name) const;
  /// True iff every non-root span's parent_span_id is another span of this
  /// chain — i.e. the chain is connected, not merely co-labelled.
  [[nodiscard]] bool connected() const;
};

/// Group spans by trace_id (spans with trace_id 0 are skipped), ordered by
/// first-span begin time.
[[nodiscard]] std::vector<FrameTrace> assemble_frame_traces(
    std::span<const SpanRecord> spans);

/// One span as a JSON object (name, source, timestamps, link ids, args);
/// parses with obs::json. Used by the flight recorder's bundles.
[[nodiscard]] std::string to_json(const SpanRecord& span);

/// One chain as a JSON object: identity, derived shape (critical path,
/// connectedness) and the full span list.
[[nodiscard]] std::string to_json(const FrameTrace& trace);

}  // namespace avd::obs
