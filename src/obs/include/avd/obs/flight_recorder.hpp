// Black-box flight recorder: the last N frames of evidence, dumped on
// breach.
//
// At fleet scale nobody is watching one stream's dashboards when it goes
// unhealthy; by the time a human looks, the interesting frames have been
// overwritten in the tracer rings and the telemetry window has moved on.
// FlightRecorder keeps a bounded ring of recent evidence per stream —
// assembled frame chains, telemetry rows, SLO health transitions and the
// serving configuration — and dump() emits all of it as one self-contained
// JSON bundle that obs::json parses and a human can debug from, with no
// access to the process that produced it.
//
// The runtime wires it to the existing health-callback path: a transition to
// Unhealthy requests a dump, which StreamServer finalises once writers have
// quiesced (so the breaching frame's chain is complete in the bundle).
//
// Thread safety: every member takes one internal mutex; record_* calls may
// race each other and dump().
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "avd/obs/frame_trace.hpp"
#include "avd/obs/slo.hpp"

namespace avd::obs {

struct FlightRecorderConfig {
  /// Frame chains kept per stream id (oldest evicted).
  std::size_t max_frames_per_stream = 32;
  /// Telemetry rows kept (oldest evicted).
  std::size_t max_telemetry_rows = 64;
  /// SLO transitions kept (oldest evicted).
  std::size_t max_transitions = 128;
};

/// Bounded rings of recent frames/telemetry/transitions, dumpable as one
/// JSON bundle. See file comment for the wiring.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {})
      : config_(config) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Serving configuration to embed in bundles, as a JSON object. Embedded
  /// verbatim when it parses; otherwise embedded as an escaped string so
  /// the bundle stays parseable regardless.
  void set_config_json(std::string config_json);

  /// Remember one assembled chain, keyed by its stream id (-1 when the
  /// chain carried no stream arg).
  void record_frame(const FrameTrace& frame);

  /// Remember one telemetry JSONL row (one JSON object, no newline).
  void record_telemetry_row(std::string row_json);

  /// Remember one SLO health transition.
  void record_transition(const HealthTransition& transition);

  /// The whole ring as one JSON bundle:
  /// {"reason":...,"config":...,"streams":{"<id>":{"frames":[...]}},
  ///  "telemetry":[...],"slo_transitions":[...]}
  [[nodiscard]] std::string dump(std::string_view reason) const;

  /// dump() straight to a file; false when the file cannot be written.
  bool dump_to_file(const std::string& path, std::string_view reason) const;

  [[nodiscard]] std::uint64_t frames_recorded() const;

 private:
  const FlightRecorderConfig config_;
  mutable std::mutex mutex_;
  std::string config_json_;
  std::map<std::int64_t, std::deque<FrameTrace>> frames_;  ///< by stream id
  std::deque<std::string> telemetry_;
  std::deque<HealthTransition> transitions_;
  std::uint64_t frames_recorded_ = 0;
};

}  // namespace avd::obs
