// Named metrics: counters, gauges and latency histograms behind one
// registry, with JSON and Prometheus text exposition — the generalisation of
// the runtime's per-stage StageMetrics (which keeps its API and publishes
// into a registry) and the simulation's ARM-performance-counter reads.
//
// Series can carry a label dimension (stream=<id>, later shard=<id>):
// labels flatten into the registry name via labeled_name(), each labeled
// series is an ordinary lock-free metric, and an explicit rollup() folds
// every label family into the unlabeled series of the same base name so
// per-stream and fleet views export side by side at O(series) cost.
//
// Thread safety: every mutator is a relaxed atomic operation, safe and cheap
// from any thread. Registry lookups (counter()/gauge()/histogram()) take a
// mutex — resolve them once and keep the returned reference; entries are
// never deallocated while the registry lives, so references stay valid
// (reset_values() zeroes values but keeps registrations and addresses).
//
// Read-side contract: counter/gauge reads are exact. Histogram snapshots
// taken while writers are still recording are approximate (count/sum/bins
// may mutually disagree mid-update); see Histogram::percentile_ns.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace avd::obs {

/// The exact Content-Type the text exposition format must be served under —
/// Prometheus negotiates on the version parameter, so ad-hoc "text/plain"
/// responses are not conformant. Used by OpsServer's /metricsz.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/// One label dimension of a metric series, as sorted key/value pairs
/// (`{{"stream", "3"}}`, or `{{"shard", "1"}, {"stream", "3"}}` from the
/// sharded front door). Labels
/// are flattened into the series' registry name by labeled_name(), so a
/// labeled series costs exactly what an unlabeled one does after the
/// one-time lookup: resolve the reference once, mutate relaxed atomics.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical flat rendering of a labeled series: `name{k="v",...}` with keys
/// sorted and sanitised to [a-zA-Z0-9_] and values escaped (\\ \" \n). This
/// string is simultaneously the registry key, the JSON object key and — via
/// parse_labeled_name — the Prometheus series identity, so every view of a
/// labeled metric agrees on what it is. Braces in `name` itself are mapped
/// to '_' to keep the rendering unambiguous. Empty labels return `name`
/// unchanged.
[[nodiscard]] std::string labeled_name(std::string_view name, Labels labels);

/// A flat series name split back into base name + unescaped labels.
struct ParsedSeriesName {
  std::string base;
  Labels labels;
};

/// Inverse of labeled_name: nullopt when `flat` is not a strict labeled
/// rendering (no '{', bad key syntax, bad escape, trailing characters) — in
/// which case it is a plain unlabeled name.
[[nodiscard]] std::optional<ParsedSeriesName> parse_labeled_name(
    std::string_view flat);

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  /// Overwrite the value. Not for instrumentation (counters are monotone to
  /// their writers) — this is how rollup() folds labeled children into the
  /// base series.
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written scalar (bandwidth, queue depth, light level, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Summary of one histogram, safe to copy and serialise. Meaningful only
/// once writers have quiesced (see Histogram).
struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  double mean_ns = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Lock-free log-linear latency histogram over nanosecond samples.
/// Values 0..15 get exact unit bins; above that, 8 sub-buckets per
/// power-of-two octave (≤ ~6-7 % relative error on the representative value).
///
/// Recording is a few relaxed atomic adds. Reads taken mid-run may observe
/// torn state (a sample counted in `count()` but not yet binned, or vice
/// versa); percentile_ns() computes from a single self-consistent copy of
/// the bins, so a torn read degrades to a slightly-off quantile, never an
/// out-of-range bin. Exact summaries require quiesced writers.
class Histogram {
 public:
  static constexpr int kLinearBins = 16;
  static constexpr int kSubBuckets = 8;
  static constexpr int kOctaves = 60;  // covers > 10^18 ns
  static constexpr int kBins = kLinearBins + kSubBuckets * kOctaves;

  void record_ns(std::uint64_t ns) {
    bins_[static_cast<std::size_t>(bin_index(ns))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    update_max(max_ns_, ns);
  }
  void record(std::chrono::nanoseconds d) {
    record_ns(d.count() < 0 ? 0u : static_cast<std::uint64_t>(d.count()));
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean_ns() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_ns()) / static_cast<double>(n);
  }

  /// Approximate p-quantile (p in [0,1]) as the representative value of the
  /// first bin whose cumulative count reaches p * total, where total is the
  /// sum of one consistent copy of the bins (not the count() counter — the
  /// two can disagree mid-record). 0 when empty.
  [[nodiscard]] std::uint64_t percentile_ns(double p) const;

  [[nodiscard]] HistogramSummary summary() const;

  /// Add every bin/count/sum of `other` into this histogram (max is joined).
  /// Relaxed adds, so concurrent readers see the usual approximate state.
  void merge_from(const Histogram& other);

  void reset();

  [[nodiscard]] static int bin_index(std::uint64_t ns);
  /// Midpoint of the value range bin `index` covers.
  [[nodiscard]] static std::uint64_t bin_value(int index);

 private:
  static void update_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBins> bins_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Point-in-time copy of every metric in a registry, safe to hold, diff and
/// serialise after the registry has moved on. Entries are sorted by name
/// (std::map iteration order). This is the unit the telemetry ring stores.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;

  /// Value of the named counter, or `fallback` when absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name,
                                      std::uint64_t fallback = 0) const;
  [[nodiscard]] double gauge(std::string_view name,
                             double fallback = 0.0) const;
  /// The named histogram summary, or nullptr when absent.
  [[nodiscard]] const HistogramSummary* histogram(std::string_view name) const;
};

/// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":...}}}
/// with names sorted; parses with obs::json.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// Owns named metrics. Lookup is find-or-create by name; the same name
/// always returns the same object, so components instrumented independently
/// aggregate into one metric. Counter, gauge and histogram namespaces are
/// separate (one name may exist in each).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the built-in instrumentation publishes into.
  static MetricsRegistry& global();

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Labeled lookups: find-or-create the series labeled_name(name, labels).
  /// Same contract as the unlabeled forms — resolve once (the lookup takes
  /// the registry mutex and builds the flat name), then mutate the returned
  /// reference lock-free from any thread.
  [[nodiscard]] Counter& counter(const std::string& name, const Labels& labels);
  [[nodiscard]] Gauge& gauge(const std::string& name, const Labels& labels);
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     const Labels& labels);

  /// Fold every labeled *leaf* series into the unlabeled series of its base
  /// name: `runtime.frames{stream="0"}` + `runtime.frames{stream="1"}`
  /// overwrite `runtime.frames` (counters and gauges sum; histograms merge
  /// bins), so exports carry the per-stream and the fleet view side by side.
  /// Leaves with two or more labels additionally fold into their *parent*
  /// marginal — the series with the last sorted label dropped — so a sharded
  /// fleet's `runtime.frames{shard="0",stream="3"}` leaves also produce
  /// per-shard `runtime.frames{shard="0"}` series. Fold targets (bases and
  /// marginals) are created on demand, *overwritten* on every rollup, and
  /// never treated as fold sources themselves — rollup() is idempotent, so
  /// a /metricsz scrape racing an end-of-serve fold cannot double-count.
  /// Do not mix direct writes to a fold target with labeled children of the
  /// same name (a base, or a parent of a deeper-labeled series): rollup
  /// overwrites them. O(series) under the registry mutex; labeled writers
  /// are never blocked (their references bypass the map).
  void rollup();

  /// Zero every value. Registrations (and therefore references handed out
  /// by counter()/gauge()/histogram()) survive.
  void reset_values();

  /// Copy every metric's current value (histograms as summaries). Safe with
  /// live writers under the usual read-side contract: counters/gauges are
  /// exact, histogram summaries approximate.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// obs::to_json(snapshot()).
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format: counters and gauges as-is,
  /// histograms as summaries (quantile series + _sum + _count). Labeled
  /// series (labeled_name renderings) are split back into base name +
  /// label set: the base is sanitised, the label values re-escaped for the
  /// exposition (\\ \" \n), and every series of one family (same raw base,
  /// any labels) shares one sanitised name, one # HELP and one # TYPE
  /// line. Base names are sanitised to [a-zA-Z0-9_:] with other characters
  /// mapped to '_'; when two raw bases sanitise to the same family name,
  /// later ones get a numeric suffix (_2, _3, ...) instead of silently
  /// colliding. # HELP carries the raw base name, so the sanitisation
  /// stays reversible by a human. Wire conformance: gauge specials render
  /// +Inf/-Inf/NaN and every emitted line (hence the body) ends in '\n' —
  /// serve it under kPrometheusContentType.
  [[nodiscard]] std::string to_prometheus() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace avd::obs
