// Process identity: who is this binary and how long has it been up?
//
// A fleet of shards is only debuggable when every scrape target answers
// "which build, which mode, since when" the same way everywhere — the
// Prometheus exposition, /statusz and the flight bundles must agree.
// The answers live in two default registry series:
//
//   process.uptime_seconds          gauge, refreshed on every publish call
//   build.info{mode=,version=}      info-style gauge pinned to 1 (the value
//                                   is meaningless; the labels carry the
//                                   identity, Prometheus-idiomatically)
//
// MetricsRegistry::global() publishes both once at creation so they exist
// from the first snapshot; every /metricsz and /statusz request republishes
// so uptime is current at scrape time.
#pragma once

namespace avd::obs {

class MetricsRegistry;

/// Version baked in by CMake (AVD_BUILD_VERSION compile definition);
/// "dev" when built without it.
[[nodiscard]] const char* build_version();

/// Build mode baked in by CMake (AVD_BUILD_MODE, normally CMAKE_BUILD_TYPE);
/// "unspecified" when built without it.
[[nodiscard]] const char* build_mode();

/// Seconds since this process first touched the obs layer (steady clock,
/// anchored on first call — MetricsRegistry::global() anchors it early).
[[nodiscard]] double process_uptime_seconds();

/// Write the default identity series described above into `registry`.
/// Idempotent; cheap enough to call per scrape.
void publish_process_metrics(MetricsRegistry& registry);

}  // namespace avd::obs
