// Tail-based trace sampling: keep the frames that matter, aggregate the
// rest.
//
// The tracer records every span into per-thread rings; at fleet scale
// (hundreds of streams) exporting every frame's chain is unbounded in both
// memory and export volume. TraceSampler sits between the rings and any
// export: assembled frame chains (obs::assemble_frame_traces) are *retained*
// only when
//
//  * the chain was marked interesting (the runtime marks deadline misses and
//    SLO breaches by trace id, before or after ingest),
//  * its critical path exceeded the configured deadline, or
//  * it falls on the head-sample grid (every Nth frame), keeping a baseline
//    of healthy frames for comparison.
//
// Every span of every frame — retained or not — feeds per-span-name
// SpanStats aggregates, so the sampler's steady-state footprint is O(span
// names), not O(frames), while still accounting for 100% of frames.
//
// Thread safety: all members take one internal mutex. mark_interesting() is
// cheap and safe from collector threads mid-run; ingest() expects chains
// assembled from quiesced tracer rings (the usual drain()/snapshot()
// contract) but may itself run concurrently with marking.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "avd/obs/frame_trace.hpp"

namespace avd::obs {

/// Latency/count aggregate over every observed span of one name.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;

  [[nodiscard]] double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
};

/// Why one frame chain was retained.
enum class RetainReason {
  Marked,      ///< mark_interesting(trace_id) — deadline miss / SLO breach
  SlowChain,   ///< critical_path_ns() > deadline_ns
  HeadSample,  ///< on the every-Nth baseline grid
};

[[nodiscard]] const char* to_string(RetainReason r);

/// One retained chain plus its retention cause.
struct RetainedFrame {
  FrameTrace trace;
  RetainReason reason = RetainReason::Marked;
};

/// {"name":...,"count":...,"sum_ns":...,"mean_ns":...,"max_ns":...,
///  "p50_ns":...,"p95_ns":...,"p99_ns":...}; parses with obs::json.
[[nodiscard]] std::string to_json(const SpanStats& stats);

/// {"reason":"slow_chain","trace":<to_json(FrameTrace)>} — the /tracez
/// rendering of one retained chain.
[[nodiscard]] std::string to_json(const RetainedFrame& frame);

struct TraceSamplerConfig {
  /// Retain chains whose critical path exceeds this (0 disables the rule).
  std::uint64_t deadline_ns = 0;
  /// Retain every Nth ingested frame as a healthy baseline (0 disables).
  std::uint64_t head_sample_every = 0;
  /// Bounded FIFO of retained chains; the oldest is evicted when full.
  std::size_t max_retained = 256;
};

class TraceSampler {
 public:
  // Both out of line: NameAgg is incomplete here.
  explicit TraceSampler(TraceSamplerConfig config = {});
  ~TraceSampler();
  TraceSampler(const TraceSampler&) = delete;
  TraceSampler& operator=(const TraceSampler&) = delete;

  /// Flag one chain for retention regardless of latency — the runtime calls
  /// this when a frame misses its deadline or trips an SLO rule. Marks must
  /// precede the chain's ingest (the runtime marks mid-run as frames
  /// complete and ingests once writers quiesce, so this holds naturally); a
  /// chain already ingested unretained has had its spans folded into
  /// SpanStats and cannot be resurrected.
  void mark_interesting(std::uint64_t trace_id);

  /// Account every frame into SpanStats and retain the interesting ones.
  /// Chains come from assemble_frame_traces over quiesced rings.
  void ingest(std::span<const FrameTrace> frames);

  /// Retained chains, oldest first.
  [[nodiscard]] std::vector<RetainedFrame> retained() const;
  /// Aggregates, sorted by span name.
  [[nodiscard]] std::vector<SpanStats> stats() const;

  [[nodiscard]] std::uint64_t frames_seen() const;
  [[nodiscard]] std::uint64_t frames_retained() const;
  [[nodiscard]] std::uint64_t spans_seen() const;
  /// Retained chains evicted because the FIFO was full.
  [[nodiscard]] std::uint64_t retained_evicted() const;

  [[nodiscard]] TraceSamplerConfig config() const { return config_; }

 private:
  struct NameAgg;  // span-name aggregate (histogram-backed)

  void retain_locked(const FrameTrace& frame, RetainReason reason);

  const TraceSamplerConfig config_;
  mutable std::mutex mutex_;
  std::set<std::uint64_t> marked_;  ///< ids flagged, consumed at ingest
  std::deque<RetainedFrame> retained_;
  std::vector<std::unique_ptr<NameAgg>> aggs_;  ///< sorted by span name
  std::uint64_t frames_seen_ = 0;
  std::uint64_t frames_retained_ = 0;
  std::uint64_t spans_seen_ = 0;
  std::uint64_t retained_evicted_ = 0;
};

}  // namespace avd::obs
