// Lighting conditions and the ambient rendering parameters attached to them.
//
// The paper defines three environmental lighting categories — day, dusk,
// dark (§III) — and switches the vehicle-detection algorithm between them.
// The synthetic scene generator keys every appearance decision off these
// parameters so the domain shift between conditions (which Table I measures)
// is explicit and controllable.
#pragma once

#include <cstdint>
#include <string>

namespace avd::data {

enum class LightingCondition : std::uint8_t { Day = 0, Dusk = 1, Dark = 2 };

[[nodiscard]] std::string to_string(LightingCondition c);

/// Ambient parameters controlling scene appearance in one condition.
struct AmbientParams {
  double ambient = 1.0;         ///< global illumination multiplier [0,1]
  double noise_sigma = 3.0;     ///< Gaussian sensor noise (gray levels)
  bool taillights_lit = false;  ///< rear lights of vehicles switched on
  bool road_lights_on = false;  ///< street lighting present
  double shadow_strength = 0.6; ///< darkness of shadow under the car (day cue)
  double body_contrast = 1.0;   ///< vehicle-body vs road contrast multiplier
  std::uint8_t sky_top = 150;
  std::uint8_t sky_horizon = 210;
};

/// Canonical ambient parameters of each condition.
[[nodiscard]] AmbientParams ambient_for(LightingCondition c);

/// Continuous ambient light level (lux-like, 0..1) representative of a
/// condition; used to script light-sensor traces for the adaptive runs.
[[nodiscard]] double nominal_light_level(LightingCondition c);

/// Inverse of nominal_light_level with the thresholds the paper's external
/// light-intensity signal would use (>0.55 day, >0.18 dusk, else dark).
[[nodiscard]] LightingCondition condition_for_light_level(double level);

}  // namespace avd::data
