// Scripted driving sequences: frames plus an ambient-light trace.
//
// Used by the adaptive-system experiments (C3 in DESIGN.md): a drive that
// passes from day through dusk into dark (and through a tunnel) triggers the
// partial reconfigurations whose cost the paper measures.
#pragma once

#include <vector>

#include "avd/datasets/scene.hpp"

namespace avd::data {

/// Driving environment of a segment (paper §I: features like animal
/// detection matter on countryside roads, not in urban driving).
enum class RoadType : std::uint8_t { Urban = 0, Countryside = 1 };

/// One segment of a scripted drive.
struct DriveSegment {
  LightingCondition condition = LightingCondition::Day;
  int n_frames = 50;
  /// Optional override of the sensor reading; negative = use
  /// nominal_light_level(condition).
  double light_level = -1.0;
  RoadType road = RoadType::Urban;
};

struct SequenceSpec {
  img::Size frame_size{640, 360};
  std::vector<DriveSegment> segments;
  int vehicles_per_frame = 2;
  int pedestrians_per_frame = 1;
  int animals_per_frame = 1;  ///< only on Countryside segments
  std::uint64_t seed = 2024;
  /// Coherent motion: within a segment the same vehicles persist and drift
  /// smoothly frame to frame (for tracking experiments). Off by default:
  /// each frame is an independent draw (for detection statistics).
  bool coherent_motion = false;
};

/// One generated frame with ground truth.
struct SequenceFrame {
  SceneSpec scene;             ///< full ground truth (boxes, lights)
  double light_level = 0.0;    ///< simulated ambient light sensor reading
  LightingCondition condition = LightingCondition::Day;
  RoadType road = RoadType::Urban;  ///< navigation-derived signal
};

/// Generates frames lazily; frame contents are deterministic in (seed, index).
class DriveSequence {
 public:
  explicit DriveSequence(SequenceSpec spec);

  [[nodiscard]] int frame_count() const;
  /// Ground truth + sensor reading of frame `index` (no pixels rendered).
  [[nodiscard]] SequenceFrame frame(int index) const;
  /// Rendered pixels of frame `index`.
  [[nodiscard]] img::RgbImage render(int index) const;

  /// A canonical day->dusk->dark->dusk script with a tunnel passage, the
  /// scenario discussed at the end of paper §IV-B.
  [[nodiscard]] static SequenceSpec canonical_drive(img::Size frame_size,
                                                    int frames_per_segment);

 private:
  SequenceSpec spec_;
  std::vector<int> segment_start_;  // prefix sums of segment lengths
};

}  // namespace avd::data
