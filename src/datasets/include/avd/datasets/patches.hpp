// Window-classification datasets: the synthetic stand-ins for the UPM (day)
// and SYSU (dusk/dark) vehicle sets and for a pedestrian training set.
//
// Table I of the paper is an image-level classification experiment: positive
// images contain a vehicle, negative images do not, and each SVM model is
// scored by TP/TN/FP/FN over a held-out test set. These builders produce
// exactly that: labelled grayscale patches rendered under a condition.
#pragma once

#include <vector>

#include "avd/datasets/scene.hpp"

namespace avd::data {

/// One labelled example for the HOG+SVM classifiers.
struct LabeledPatch {
  img::ImageU8 gray;     ///< grayscale patch (HOG input)
  int label = -1;        ///< +1 = contains target, -1 = background
  bool very_dark = false;  ///< rendered in Dark condition (SYSU dark subset)
};

struct PatchDataset {
  std::vector<LabeledPatch> patches;
  LightingCondition condition = LightingCondition::Day;

  [[nodiscard]] std::size_t size() const { return patches.size(); }
  [[nodiscard]] std::size_t positives() const;
  [[nodiscard]] std::size_t negatives() const;
  /// Copy without the very_dark patches (the paper's "subset of SYSU").
  [[nodiscard]] PatchDataset without_very_dark() const;
  /// Concatenate (for the paper's "combined" training set).
  [[nodiscard]] static PatchDataset concat(const PatchDataset& a,
                                           const PatchDataset& b);
};

struct VehiclePatchSpec {
  LightingCondition condition = LightingCondition::Day;
  img::Size patch_size{64, 64};
  int n_positive = 400;
  int n_negative = 400;
  /// Fraction of positives rendered under Dark instead of `condition`:
  /// models the very-dark images embedded in the SYSU dusk test set.
  double dark_fraction = 0.0;
  std::uint64_t seed = 1234;
};

/// Vehicle/background patches under the given condition.
[[nodiscard]] PatchDataset make_vehicle_patches(const VehiclePatchSpec& spec);

struct PedestrianPatchSpec {
  LightingCondition condition = LightingCondition::Day;
  img::Size patch_size{32, 64};
  int n_positive = 300;
  int n_negative = 300;
  std::uint64_t seed = 4321;
};

/// Pedestrian/background patches (for the static-partition detector).
[[nodiscard]] PatchDataset make_pedestrian_patches(const PedestrianPatchSpec& spec);

struct AnimalPatchSpec {
  LightingCondition condition = LightingCondition::Day;
  img::Size patch_size{64, 48};
  int n_positive = 300;
  int n_negative = 300;
  std::uint64_t seed = 5678;
};

/// Animal/background patches for the countryside extension (paper §I: animal
/// detection as a feature worth swapping in on countryside roads).
[[nodiscard]] PatchDataset make_animal_patches(const AnimalPatchSpec& spec);

/// Render a single positive vehicle patch (exposed for examples/tests).
[[nodiscard]] img::ImageU8 render_vehicle_patch(LightingCondition condition,
                                                img::Size patch_size,
                                                ml::Rng& rng);

/// Render a single negative (background/clutter) patch.
[[nodiscard]] img::ImageU8 render_negative_patch(LightingCondition condition,
                                                 img::Size patch_size,
                                                 ml::Rng& rng);

}  // namespace avd::data
