// Dataset persistence: write a PatchDataset to a directory as PGM files plus
// a text index, and read it back. The on-disk layout mirrors what the public
// vehicle datasets (UPM/SYSU) look like after preprocessing — a folder of
// fixed-size grayscale crops and a labels file — so users can swap in real
// imagery without touching the training code.
//
// Layout:
//   <dir>/index.txt      one line per patch: "<filename> <label> <very_dark>"
//   <dir>/patch_00000.pgm ...
#pragma once

#include <string>

#include "avd/datasets/patches.hpp"

namespace avd::data {

/// Write every patch and the index. Creates the directory if needed.
/// Throws std::runtime_error on I/O failure.
void save_dataset(const PatchDataset& dataset, const std::string& dir);

/// Read a dataset previously written by save_dataset (or hand-assembled in
/// the same layout). Throws on malformed indexes, missing files or
/// inconsistent patch sizes.
[[nodiscard]] PatchDataset load_dataset(const std::string& dir);

}  // namespace avd::data
