// Training data for the taillight DBN: 9x9 binary windows labelled with the
// taillight size/shape class (paper §III-B: 81 visible inputs, 4 output
// nodes "which determine the size and shape class of taillights").
//
// Class semantics used throughout the library:
//   0 = NotTaillight : noise specks, streaks, fragments of street lights
//   1 = SmallRound   : distant taillight (1-2 px blob)
//   2 = LargeRound   : mid-distance round lamp
//   3 = WideBar      : near full-width light bar / large lamp cluster
#pragma once

#include <vector>

#include "avd/image/image.hpp"
#include "avd/ml/rng.hpp"

namespace avd::data {

inline constexpr int kTaillightWindow = 9;           ///< window side (paper: 9x9)
inline constexpr int kTaillightInputs = 81;          ///< DBN visible units
inline constexpr int kTaillightClasses = 4;          ///< DBN output nodes

enum class TaillightClass : int {
  NotTaillight = 0,
  SmallRound = 1,
  LargeRound = 2,
  WideBar = 3,
};

[[nodiscard]] const char* to_string(TaillightClass c);

/// One training window, flattened row-major into 81 binary (0/1) floats.
struct TaillightWindow {
  std::vector<float> pixels;  ///< 81 values in {0,1}
  int label = 0;              ///< TaillightClass as int
};

struct TaillightWindowSpec {
  int per_class = 250;
  double flip_noise = 0.03;   ///< probability of flipping each pixel
  std::uint64_t seed = 99;
};

/// Balanced, shuffled dataset of all four classes.
[[nodiscard]] std::vector<TaillightWindow> make_taillight_windows(
    const TaillightWindowSpec& spec);

/// Draw one window of class `cls` into a 9x9 binary image (no noise applied);
/// exposed so tests can verify the class geometry invariants.
[[nodiscard]] img::ImageU8 render_taillight_shape(TaillightClass cls, ml::Rng& rng);

/// Flatten a binary 9x9 image into 81 floats in {0,1}.
[[nodiscard]] std::vector<float> flatten_window(const img::ImageU8& window);

}  // namespace avd::data
