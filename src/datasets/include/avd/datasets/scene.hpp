// Procedural road-scene renderer.
//
// Stands in for the UPM [15], SYSU [4] and iROADS [18] imagery the paper
// evaluates on (DESIGN.md §2). The renderer draws rear views of vehicles on a
// road under a given LightingCondition; ground-truth boxes and taillight
// positions are carried alongside the pixels so detectors can be scored.
#pragma once

#include <optional>
#include <vector>

#include "avd/datasets/lighting.hpp"
#include "avd/image/image.hpp"
#include "avd/ml/rng.hpp"

namespace avd::data {

/// One vehicle, rear view. All geometry in frame pixels.
struct VehicleSpec {
  img::Rect body;            ///< bounding box of the car body
  img::RgbPixel paint{120, 30, 30};  ///< daylight body color
  bool taillights_lit = false;       ///< overrides ambient default when forced
  bool force_lights = false;
  double light_intensity = 1.0;      ///< taillight brightness (brake = ~1.3)
  /// Extra body-contrast multiplier: how well this particular vehicle is lit
  /// (under a street lamp vs in shadow). 1.0 in daylight.
  double body_visibility = 1.0;
  /// Defective left lamp: the vehicle shows a single taillight at night —
  /// the pairing stage cannot confirm it (a deliberate hard case).
  bool left_light_broken = false;

  /// Taillight boxes derived from the body geometry (left, right).
  [[nodiscard]] std::pair<img::Rect, img::Rect> taillight_boxes() const;
};

/// A light source that is NOT a vehicle taillight (distractor).
struct DistractorLight {
  img::Point position;
  int radius = 6;
  img::RgbPixel color{255, 240, 200};  ///< white-yellow: street/headlight
};

/// Simple upright pedestrian figure.
struct PedestrianSpec {
  img::Rect body;  ///< full-figure bounding box
};

/// Quadruped animal, side view (deer/livestock on countryside roads — the
/// paper's §I motivation for swappable detection features).
struct AnimalSpec {
  img::Rect body;  ///< full-figure bounding box (body + legs + head)
  img::RgbPixel coat{110, 85, 60};
};

/// Static rectangular clutter (buildings, signs, parked trailers).
struct ClutterSpec {
  img::Rect box;
  img::RgbPixel color{90, 90, 95};
};

/// Wet-road reflection streak of a red light source: passes the chroma
/// threshold like a taillight but has the wrong shape. A size heuristic is
/// fooled; the shape-aware DBN is not (ablation A2).
struct StreakSpec {
  img::Rect box;                      ///< tall, thin
  img::RgbPixel color{220, 50, 35};   ///< bright enough for the luma gate
};

/// Full description of one frame.
struct SceneSpec {
  LightingCondition condition = LightingCondition::Day;
  img::Size frame_size{640, 360};
  int horizon_y = 150;  ///< sky/road boundary
  std::vector<VehicleSpec> vehicles;
  std::vector<DistractorLight> distractors;
  std::vector<StreakSpec> streaks;  ///< drawn only when road lights are on
  std::vector<PedestrianSpec> pedestrians;
  std::vector<AnimalSpec> animals;
  std::vector<ClutterSpec> clutter;             ///< drawn behind vehicles
  std::vector<ClutterSpec> foreground_clutter;  ///< drawn over vehicles (occluders)
  std::uint64_t noise_seed = 42;
  /// When set, replaces ambient_for(condition) — for intermediate lighting
  /// levels and ablation sweeps.
  std::optional<AmbientParams> ambient_override;
};

/// Render the scene to an RGB frame.
[[nodiscard]] img::RgbImage render_scene(const SceneSpec& spec);

/// Randomised scene construction with plausible geometry.
class SceneGenerator {
 public:
  SceneGenerator(LightingCondition condition, std::uint64_t seed)
      : condition_(condition), rng_(seed) {}

  /// Random scene with `n_vehicles` vehicles and condition-appropriate
  /// distractors/clutter.
  [[nodiscard]] SceneSpec random_scene(img::Size frame, int n_vehicles,
                                       int n_pedestrians = 0);

  /// A random vehicle whose apparent size corresponds to a distance draw.
  [[nodiscard]] VehicleSpec random_vehicle(img::Size frame, int horizon_y);

  /// A random roadside/on-road animal (countryside scenes).
  [[nodiscard]] AnimalSpec random_animal(img::Size frame, int horizon_y);

  [[nodiscard]] ml::Rng& rng() { return rng_; }
  [[nodiscard]] LightingCondition condition() const { return condition_; }

 private:
  LightingCondition condition_;
  ml::Rng rng_;
};

/// Named scenario presets for quick experiment setup.
enum class ScenarioPreset {
  EmptyRoad,       ///< no traffic — false-positive testing
  LightTraffic,    ///< 1-2 vehicles
  DenseTraffic,    ///< 4-6 vehicles, pedestrians
  CountrysideRoad, ///< 1-2 vehicles, animals, no street clutter
};

/// Build a scene for a preset at the given condition/seed.
[[nodiscard]] SceneSpec make_scenario(ScenarioPreset preset,
                                      LightingCondition condition,
                                      img::Size frame, std::uint64_t seed);

}  // namespace avd::data
