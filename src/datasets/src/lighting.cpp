#include "avd/datasets/lighting.hpp"

#include <stdexcept>

namespace avd::data {

std::string to_string(LightingCondition c) {
  switch (c) {
    case LightingCondition::Day:
      return "day";
    case LightingCondition::Dusk:
      return "dusk";
    case LightingCondition::Dark:
      return "dark";
  }
  throw std::invalid_argument("to_string: bad LightingCondition");
}

AmbientParams ambient_for(LightingCondition c) {
  switch (c) {
    case LightingCondition::Day:
      return {.ambient = 1.0,
              .noise_sigma = 5.0,
              .taillights_lit = false,
              .road_lights_on = false,
              .shadow_strength = 0.55,
              .body_contrast = 1.0,
              .sky_top = 150,
              .sky_horizon = 215};
    case LightingCondition::Dusk:
      // Modelled on the SYSU night-urban imagery the paper files under
      // "dusk": lights dominate, vehicle bodies are faint but present.
      return {.ambient = 0.32,
              .noise_sigma = 6.0,
              .taillights_lit = true,
              .road_lights_on = true,
              .shadow_strength = 0.05,
              .body_contrast = 0.45,
              .sky_top = 25,
              .sky_horizon = 55};
    case LightingCondition::Dark:
      return {.ambient = 0.08,
              .noise_sigma = 7.0,
              .taillights_lit = true,
              .road_lights_on = true,
              .shadow_strength = 0.0,
              .body_contrast = 0.12,
              .sky_top = 6,
              .sky_horizon = 12};
  }
  throw std::invalid_argument("ambient_for: bad LightingCondition");
}

double nominal_light_level(LightingCondition c) {
  switch (c) {
    case LightingCondition::Day:
      return 0.85;
    case LightingCondition::Dusk:
      return 0.35;
    case LightingCondition::Dark:
      return 0.05;
  }
  throw std::invalid_argument("nominal_light_level: bad LightingCondition");
}

LightingCondition condition_for_light_level(double level) {
  if (level > 0.55) return LightingCondition::Day;
  if (level > 0.18) return LightingCondition::Dusk;
  return LightingCondition::Dark;
}

}  // namespace avd::data
