#include "avd/datasets/scene.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "avd/image/draw.hpp"

namespace avd::data {
namespace {

using img::Rect;
using img::RgbImage;
using img::RgbPixel;

std::uint8_t scale_u8(std::uint8_t v, double k) {
  return static_cast<std::uint8_t>(
      std::clamp(std::lround(static_cast<double>(v) * k), 0L, 255L));
}

RgbPixel shade(RgbPixel p, double k) {
  return {scale_u8(p.r, k), scale_u8(p.g, k), scale_u8(p.b, k)};
}

void draw_background(RgbImage& frame, const SceneSpec& spec,
                     const AmbientParams& amb) {
  // Sky: vertical gradient, already pre-dimmed via AmbientParams sky values.
  for (int y = 0; y < std::min(spec.horizon_y, frame.height()); ++y) {
    const double t = spec.horizon_y > 1
                         ? static_cast<double>(y) / (spec.horizon_y - 1)
                         : 0.0;
    const auto v = static_cast<std::uint8_t>(
        std::lround(amb.sky_top + t * (amb.sky_horizon - amb.sky_top)));
    img::fill_rect(frame, {0, y, frame.width(), 1}, {v, v, v});
  }
  // Road: flat asphalt whose brightness follows ambient light.
  const auto road = static_cast<std::uint8_t>(
      std::lround(95.0 * std::max(amb.ambient, 0.04)));
  img::fill_rect(frame, {0, spec.horizon_y, frame.width(),
                         frame.height() - spec.horizon_y},
                 {road, road, road});

  // Dashed centre lane markings converging toward the vanishing point.
  const img::Point vanish{frame.width() / 2, spec.horizon_y};
  const RgbPixel lane = shade({200, 200, 190}, std::max(amb.ambient, 0.15));
  for (int lane_x : {frame.width() / 3, 2 * frame.width() / 3}) {
    const img::Point foot{lane_x, frame.height() - 1};
    // Sample dashes along the line from the bottom edge to the horizon.
    for (double t = 0.05; t < 0.95; t += 0.18) {
      const auto x0 = static_cast<int>(foot.x + (vanish.x - foot.x) * t);
      const auto y0 = static_cast<int>(foot.y + (vanish.y - foot.y) * t);
      const auto x1 = static_cast<int>(foot.x + (vanish.x - foot.x) * (t + 0.07));
      const auto y1 = static_cast<int>(foot.y + (vanish.y - foot.y) * (t + 0.07));
      img::draw_line(frame, {x0, y0}, {x1, y1}, lane);
    }
  }
}

void draw_clutter(RgbImage& frame, const SceneSpec& spec,
                  const AmbientParams& amb) {
  for (const ClutterSpec& c : spec.clutter)
    img::fill_rect(frame, c.box, shade(c.color, std::max(amb.ambient, 0.06)));
}

void draw_vehicle(RgbImage& frame, const VehicleSpec& v, const AmbientParams& amb) {
  const Rect& b = v.body;
  if (b.empty()) return;

  // Body brightness: interpolate the paint toward the road brightness as the
  // contrast multiplier drops — at dark, the body nearly vanishes.
  const double body_k = std::max(
      amb.ambient * amb.body_contrast * std::clamp(v.body_visibility, 0.0, 8.0),
      0.02);
  const RgbPixel body = shade(v.paint, body_k);

  // Shadow under the car: the classic daytime cue ("shadow under the car",
  // paper §II). Strength fades with ambient light.
  if (amb.shadow_strength > 0.01) {
    const Rect shadow{b.x - b.width / 16, b.bottom() - b.height / 10,
                      b.width + b.width / 8, b.height / 5};
    img::blend_rect(frame, shadow, {8, 8, 10},
                    static_cast<float>(amb.shadow_strength));
  }

  img::fill_rect(frame, b, body);

  // Rear window: darker band in the upper third.
  const Rect window{b.x + b.width / 8, b.y + b.height / 12, (3 * b.width) / 4,
                    b.height / 4};
  img::fill_rect(frame, window, shade(body, 0.35));

  // Bumper: lighter band near the bottom.
  const Rect bumper{b.x, b.bottom() - b.height / 5, b.width, b.height / 8};
  img::fill_rect(frame, bumper, shade(body, 1.35));

  // Wheels visible below the body corners.
  const int wheel_w = std::max(2, b.width / 8);
  const int wheel_h = std::max(2, b.height / 10);
  img::fill_rect(frame, {b.x + wheel_w / 2, b.bottom() - wheel_h, wheel_w, wheel_h},
                 {12, 12, 12});
  img::fill_rect(frame,
                 {b.right() - wheel_w - wheel_w / 2, b.bottom() - wheel_h,
                  wheel_w, wheel_h},
                 {12, 12, 12});

  // License plate between the taillights.
  const Rect plate{b.x + (3 * b.width) / 8, b.bottom() - b.height / 3,
                   b.width / 4, b.height / 8};
  img::fill_rect(frame, plate, shade({210, 210, 200}, std::max(amb.ambient, 0.1)));

  // Taillights.
  const auto [left, right] = v.taillight_boxes();
  const bool lit = v.force_lights ? v.taillights_lit : amb.taillights_lit;
  if (lit) {
    const double k = std::clamp(v.light_intensity, 0.3, 1.5);
    const RgbPixel hot = shade({255, 40, 28}, k);
    const int glow_r = std::max(3, (3 * left.width) / 2);
    const RgbPixel halo = shade({170, 20, 12}, k);
    if (!v.left_light_broken) {
      img::fill_ellipse(frame, left, hot);
      img::add_glow(frame, left.center(), glow_r, halo);
    }
    img::fill_ellipse(frame, right, hot);
    img::add_glow(frame, right.center(), glow_r, halo);
  } else {
    const RgbPixel off = shade({120, 18, 18}, std::max(amb.ambient, 0.08));
    img::fill_ellipse(frame, left, off);
    img::fill_ellipse(frame, right, off);
  }
}

void draw_pedestrian(RgbImage& frame, const PedestrianSpec& p,
                     const AmbientParams& amb) {
  const Rect& b = p.body;
  if (b.empty()) return;
  const double k = std::max(amb.ambient, 0.12);
  const RgbPixel skin = shade({190, 160, 140}, k);
  const RgbPixel coat = shade({60, 70, 120}, k);
  const RgbPixel legs = shade({40, 40, 50}, k);

  // Head (top fifth), torso (next two fifths), two legs (remainder).
  const int head_h = std::max(2, b.height / 5);
  img::fill_ellipse(frame,
                    {b.x + b.width / 4, b.y, b.width / 2, head_h}, skin);
  img::fill_rect(frame, {b.x, b.y + head_h, b.width, (2 * b.height) / 5}, coat);
  const int legs_y = b.y + head_h + (2 * b.height) / 5;
  const int leg_w = std::max(1, b.width / 3);
  img::fill_rect(frame, {b.x + leg_w / 2, legs_y, leg_w, b.bottom() - legs_y},
                 legs);
  img::fill_rect(frame,
                 {b.right() - leg_w - leg_w / 2, legs_y, leg_w,
                  b.bottom() - legs_y},
                 legs);
}

void draw_animal(RgbImage& frame, const AnimalSpec& a, const AmbientParams& amb) {
  const Rect& b = a.body;
  if (b.empty()) return;
  const double k = std::max(amb.ambient, 0.1);
  const RgbPixel coat = shade(a.coat, k);
  const RgbPixel dark_coat = shade(a.coat, k * 0.6);

  // Side view: torso ellipse over the upper half, head at the front-top,
  // four thin legs to the ground line. The silhouette (horizontal mass on
  // stilts) is what separates it from vehicles and pedestrians in HOG space.
  const int torso_h = std::max(3, (b.height * 45) / 100);
  const Rect torso{b.x, b.y + b.height / 5, (b.width * 4) / 5, torso_h};
  img::fill_ellipse(frame, torso, coat);

  const int head_d = std::max(2, b.height / 4);
  img::fill_ellipse(frame, {b.right() - head_d, b.y, head_d, head_d}, coat);
  img::fill_rect(frame,
                 {b.right() - head_d - 1, b.y + head_d / 2, head_d,
                  b.height / 4},
                 coat);

  const int leg_w = std::max(1, b.width / 12);
  const int legs_y = torso.bottom() - 1;
  for (const int lx : {b.x + leg_w, b.x + b.width / 3,
                       b.x + (2 * b.width) / 3 - leg_w,
                       b.x + (4 * b.width) / 5 - 2 * leg_w}) {
    img::fill_rect(frame, {lx, legs_y, leg_w, b.bottom() - legs_y}, dark_coat);
  }
}

void draw_distractors(RgbImage& frame, const SceneSpec& spec,
                      const AmbientParams& amb) {
  if (!amb.road_lights_on) return;
  for (const DistractorLight& d : spec.distractors) {
    const Rect core{d.position.x - d.radius / 2, d.position.y - d.radius / 2,
                    std::max(2, d.radius), std::max(2, d.radius)};
    img::fill_ellipse(frame, core, d.color);
    img::add_glow(frame, d.position, d.radius * 3,
                  shade(d.color, 0.55));
  }
  for (const StreakSpec& s : spec.streaks) img::fill_rect(frame, s.box, s.color);
}

void add_noise(RgbImage& frame, double sigma, std::uint64_t seed) {
  if (sigma <= 0.0) return;
  ml::Rng rng(seed);
  auto jitter = [&](img::ImageU8& plane) {
    for (auto& v : plane.pixels()) {
      const int n = static_cast<int>(std::lround(rng.gaussian(0.0, sigma)));
      v = static_cast<std::uint8_t>(std::clamp(static_cast<int>(v) + n, 0, 255));
    }
  };
  jitter(frame.r());
  jitter(frame.g());
  jitter(frame.b());
}

}  // namespace

std::pair<img::Rect, img::Rect> VehicleSpec::taillight_boxes() const {
  const int lw = std::max(2, body.width / 7);
  const int lh = std::max(2, body.height / 6);
  const int ly = body.bottom() - body.height / 3 - lh / 2;
  const Rect left{body.x + body.width / 16, ly, lw, lh};
  const Rect right{body.right() - body.width / 16 - lw, ly, lw, lh};
  return {left, right};
}

img::RgbImage render_scene(const SceneSpec& spec) {
  RgbImage frame(spec.frame_size);
  const AmbientParams amb = spec.ambient_override.value_or(
      ambient_for(spec.condition));

  draw_background(frame, spec, amb);
  draw_clutter(frame, spec, amb);
  draw_distractors(frame, spec, amb);

  // Far-to-near painter's order: smaller (farther) vehicles first.
  std::vector<const VehicleSpec*> order;
  order.reserve(spec.vehicles.size());
  for (const auto& v : spec.vehicles) order.push_back(&v);
  std::stable_sort(order.begin(), order.end(),
                   [](const VehicleSpec* a, const VehicleSpec* b) {
                     return a->body.width < b->body.width;
                   });
  for (const VehicleSpec* v : order) draw_vehicle(frame, *v, amb);

  for (const PedestrianSpec& p : spec.pedestrians) draw_pedestrian(frame, p, amb);
  for (const AnimalSpec& a : spec.animals) draw_animal(frame, a, amb);

  for (const ClutterSpec& c : spec.foreground_clutter)
    img::fill_rect(frame, c.box, shade(c.color, std::max(amb.ambient, 0.06)));

  add_noise(frame, amb.noise_sigma, spec.noise_seed);
  return frame;
}

VehicleSpec SceneGenerator::random_vehicle(img::Size frame, int horizon_y) {
  VehicleSpec v;
  // Distance draw: near vehicles are large and low in the frame.
  const double distance = rng_.uniform(0.15, 1.0);  // 1.0 = nearest
  const int w = static_cast<int>(std::lround(
      std::clamp(distance, 0.15, 1.0) * 0.42 * frame.width));
  const int h = static_cast<int>(std::lround(w * rng_.uniform(0.72, 0.88)));
  const int road_depth = frame.height - horizon_y;
  const int y_bottom = horizon_y + static_cast<int>(distance * road_depth * 0.95);
  const int x = rng_.uniform_int(0, std::max(0, frame.width - w - 1));
  v.body = {x, y_bottom - h, w, h};
  v.paint = {static_cast<std::uint8_t>(rng_.uniform_int(40, 200)),
             static_cast<std::uint8_t>(rng_.uniform_int(30, 160)),
             static_cast<std::uint8_t>(rng_.uniform_int(30, 170))};
  // A small share of vehicles drive with a defective taillight — the hard
  // false-negative case for any pairing-based night detector.
  v.left_light_broken = rng_.bernoulli(0.08);
  return v;
}

AnimalSpec SceneGenerator::random_animal(img::Size frame, int horizon_y) {
  AnimalSpec a;
  const double distance = rng_.uniform(0.25, 1.0);
  const int w =
      std::max(8, static_cast<int>(std::lround(distance * 0.22 * frame.width)));
  const int h = std::max(6, static_cast<int>(std::lround(w * rng_.uniform(0.7, 0.9))));
  const int road_depth = frame.height - horizon_y;
  const int y_bottom =
      horizon_y + static_cast<int>(distance * road_depth * 0.9);
  a.body = {rng_.uniform_int(0, std::max(0, frame.width - w - 1)),
            y_bottom - h, w, h};
  const auto shade_val = static_cast<std::uint8_t>(rng_.uniform_int(70, 140));
  a.coat = {shade_val, static_cast<std::uint8_t>((shade_val * 3) / 4),
            static_cast<std::uint8_t>(shade_val / 2)};
  return a;
}

SceneSpec make_scenario(ScenarioPreset preset, LightingCondition condition,
                        img::Size frame, std::uint64_t seed) {
  SceneGenerator gen(condition, seed);
  switch (preset) {
    case ScenarioPreset::EmptyRoad:
      return gen.random_scene(frame, 0, 0);
    case ScenarioPreset::LightTraffic:
      return gen.random_scene(frame, gen.rng().uniform_int(1, 2), 0);
    case ScenarioPreset::DenseTraffic:
      return gen.random_scene(frame, gen.rng().uniform_int(4, 6),
                              gen.rng().uniform_int(1, 2));
    case ScenarioPreset::CountrysideRoad: {
      SceneSpec spec = gen.random_scene(frame, gen.rng().uniform_int(1, 2), 0);
      spec.clutter.clear();  // open fields, not buildings
      const int n_animals = gen.rng().uniform_int(1, 2);
      for (int i = 0; i < n_animals; ++i)
        spec.animals.push_back(gen.random_animal(frame, spec.horizon_y));
      return spec;
    }
  }
  throw std::invalid_argument("make_scenario: bad preset");
}

SceneSpec SceneGenerator::random_scene(img::Size frame, int n_vehicles,
                                       int n_pedestrians) {
  SceneSpec spec;
  spec.condition = condition_;
  spec.frame_size = frame;
  spec.horizon_y = frame.height * 2 / 5 + rng_.uniform_int(-frame.height / 20,
                                                           frame.height / 20);
  spec.noise_seed = rng_.engine()();

  for (int i = 0; i < n_vehicles; ++i)
    spec.vehicles.push_back(random_vehicle(frame, spec.horizon_y));

  // Condition-appropriate distractor lights.
  const AmbientParams amb = ambient_for(condition_);
  if (amb.road_lights_on) {
    const int n_lights = rng_.uniform_int(2, 5);
    for (int i = 0; i < n_lights; ++i) {
      DistractorLight d;
      d.position = {rng_.uniform_int(0, frame.width - 1),
                    rng_.uniform_int(frame.height / 20, spec.horizon_y)};
      d.radius = rng_.uniform_int(3, 8);
      spec.distractors.push_back(d);
    }
    // Oncoming headlights: white pairs near the road surface.
    if (rng_.bernoulli(0.6)) {
      const int y = spec.horizon_y + rng_.uniform_int(10, frame.height / 4);
      const int x = rng_.uniform_int(frame.width / 12, frame.width / 3);
      const int gap = rng_.uniform_int(10, 24);
      spec.distractors.push_back({{x, y}, 5, {255, 250, 235}});
      spec.distractors.push_back({{x + gap, y}, 5, {255, 250, 235}});
    }
    // Red non-taillight lights: traffic signals above the road, wet-road
    // brake-light reflections. These pass the chroma gate and must be
    // rejected by the DBN shape classes or the pairing stage.
    if (rng_.bernoulli(0.5)) {
      DistractorLight red;
      red.position = {rng_.uniform_int(0, frame.width - 1),
                      rng_.uniform_int(frame.height / 10, frame.height - 1)};
      red.radius = rng_.uniform_int(2, 5);
      red.color = {255, 45, 30};
      std::vector<DistractorLight> reds{red};
      // Signal heads frequently come in same-height pairs — geometrically
      // indistinguishable from a taillight pair until shape/pairing checks.
      if (rng_.bernoulli(0.35)) {
        DistractorLight second = red;
        second.position.x =
            std::min(frame.width - 1,
                     red.position.x + rng_.uniform_int(20, 80));
        reds.push_back(second);
      }
      for (const DistractorLight& r : reds) {
        spec.distractors.push_back(r);
        // A wet road smears each light into a vertical streak below it.
        if (rng_.bernoulli(0.6)) {
          StreakSpec streak;
          const int w = rng_.uniform_int(2, 4);
          const int h = rng_.uniform_int(12, 28);
          streak.box = {r.position.x - w / 2, r.position.y + r.radius, w, h};
          spec.streaks.push_back(streak);
        }
      }
    }
  }

  // Static clutter above the horizon (buildings / signs), any condition.
  const int n_clutter = rng_.uniform_int(1, 4);
  for (int i = 0; i < n_clutter; ++i) {
    ClutterSpec c;
    const int w = rng_.uniform_int(frame.width / 16, frame.width / 5);
    const int h = rng_.uniform_int(frame.height / 12, frame.height / 4);
    c.box = {rng_.uniform_int(0, std::max(0, frame.width - w - 1)),
             std::max(0, spec.horizon_y - h), w, h};
    const auto g = static_cast<std::uint8_t>(rng_.uniform_int(60, 130));
    c.color = {g, g, static_cast<std::uint8_t>(g + 5)};
    spec.clutter.push_back(c);
  }

  for (int i = 0; i < n_pedestrians; ++i) {
    PedestrianSpec p;
    const int h = rng_.uniform_int(frame.height / 8, frame.height / 4);
    const int w = std::max(4, h / 3);
    const int y_bottom = rng_.uniform_int(spec.horizon_y + h,
                                          frame.height - 1);
    p.body = {rng_.uniform_int(0, std::max(0, frame.width - w - 1)),
              y_bottom - h, w, h};
    spec.pedestrians.push_back(p);
  }

  return spec;
}

}  // namespace avd::data
