#include "avd/datasets/taillight_windows.hpp"

#include <stdexcept>

#include "avd/image/draw.hpp"

namespace avd::data {

const char* to_string(TaillightClass c) {
  switch (c) {
    case TaillightClass::NotTaillight:
      return "not-taillight";
    case TaillightClass::SmallRound:
      return "small-round";
    case TaillightClass::LargeRound:
      return "large-round";
    case TaillightClass::WideBar:
      return "wide-bar";
  }
  throw std::invalid_argument("to_string: bad TaillightClass");
}

img::ImageU8 render_taillight_shape(TaillightClass cls, ml::Rng& rng) {
  img::ImageU8 win(kTaillightWindow, kTaillightWindow, 0);
  // Jitter matches deployment: the dark scan slides stride-2 windows whose
  // centres sweep the whole blob, so a lamp appears up to ~2 px off-centre
  // in real scan windows. Train with the same offset range or off-centre
  // covering windows systematically vote "not taillight" and dilute the
  // per-blob posterior average.
  const int cx = kTaillightWindow / 2 + rng.uniform_int(-2, 2);
  const int cy = kTaillightWindow / 2 + rng.uniform_int(-2, 2);

  switch (cls) {
    case TaillightClass::SmallRound: {
      // 1-2 px distant lamp.
      const int d = rng.uniform_int(1, 2);
      img::fill_ellipse(win, {cx - d / 2, cy - d / 2, d, d}, 255);
      break;
    }
    case TaillightClass::LargeRound: {
      // 3-5 px round lamp.
      const int d = rng.uniform_int(3, 5);
      img::fill_ellipse(win, {cx - d / 2, cy - d / 2, d, d}, 255);
      break;
    }
    case TaillightClass::WideBar: {
      // Wide, short bar: near light cluster.
      const int w = rng.uniform_int(6, 9);
      const int h = rng.uniform_int(2, 4);
      img::fill_rect(win, {cx - w / 2, cy - h / 2, w, h}, 255);
      break;
    }
    case TaillightClass::NotTaillight: {
      // Distractors the threshold stage lets through: thin vertical/diagonal
      // streaks (pole reflections), scattered specks, or window corners of a
      // larger non-lamp region.
      switch (rng.uniform_int(0, 2)) {
        case 0: {  // streak
          const int x = rng.uniform_int(1, kTaillightWindow - 2);
          for (int y = 0; y < kTaillightWindow; ++y)
            if (rng.bernoulli(0.8))
              win(std::clamp(x + rng.uniform_int(-1, 1), 0,
                             kTaillightWindow - 1),
                  y) = 255;
          break;
        }
        case 1: {  // scattered specks
          const int n = rng.uniform_int(2, 6);
          for (int i = 0; i < n; ++i)
            win(rng.uniform_int(0, kTaillightWindow - 1),
                rng.uniform_int(0, kTaillightWindow - 1)) = 255;
          break;
        }
        default: {  // corner of a large region entering from one side
          const int w = rng.uniform_int(3, 6);
          const int h = rng.uniform_int(5, 9);
          const bool left = rng.bernoulli(0.5);
          img::fill_rect(win, {left ? -1 : kTaillightWindow - w + 1,
                               rng.uniform_int(-2, 2), w, h},
                         255);
          break;
        }
      }
      break;
    }
  }
  return win;
}

std::vector<float> flatten_window(const img::ImageU8& window) {
  if (window.width() != kTaillightWindow || window.height() != kTaillightWindow)
    throw std::invalid_argument("flatten_window: expected 9x9 window");
  std::vector<float> out;
  out.reserve(kTaillightInputs);
  for (auto v : window.pixels()) out.push_back(v != 0 ? 1.0f : 0.0f);
  return out;
}

std::vector<TaillightWindow> make_taillight_windows(
    const TaillightWindowSpec& spec) {
  ml::Rng rng(spec.seed);
  std::vector<TaillightWindow> out;
  out.reserve(static_cast<std::size_t>(spec.per_class) * kTaillightClasses);

  for (int cls = 0; cls < kTaillightClasses; ++cls) {
    for (int i = 0; i < spec.per_class; ++i) {
      img::ImageU8 win =
          render_taillight_shape(static_cast<TaillightClass>(cls), rng);
      // Sensor/threshold noise: independent pixel flips.
      for (auto& v : win.pixels())
        if (rng.bernoulli(spec.flip_noise)) v = v != 0 ? 0 : 255;
      out.push_back({flatten_window(win), cls});
    }
  }
  rng.shuffle(out);
  return out;
}

}  // namespace avd::data
