#include "avd/datasets/sequence.hpp"

#include <algorithm>
#include <stdexcept>

namespace avd::data {

DriveSequence::DriveSequence(SequenceSpec spec) : spec_(std::move(spec)) {
  if (spec_.segments.empty())
    throw std::invalid_argument("DriveSequence: no segments");
  int total = 0;
  for (const DriveSegment& s : spec_.segments) {
    if (s.n_frames <= 0)
      throw std::invalid_argument("DriveSequence: segment with no frames");
    segment_start_.push_back(total);
    total += s.n_frames;
  }
  segment_start_.push_back(total);
}

int DriveSequence::frame_count() const { return segment_start_.back(); }

SequenceFrame DriveSequence::frame(int index) const {
  if (index < 0 || index >= frame_count())
    throw std::out_of_range("DriveSequence::frame");
  std::size_t seg = 0;
  while (index >= segment_start_[seg + 1]) ++seg;
  const DriveSegment& segment = spec_.segments[seg];

  SequenceFrame out;
  out.condition = segment.condition;
  out.road = segment.road;
  out.light_level = segment.light_level >= 0.0
                        ? segment.light_level
                        : nominal_light_level(segment.condition);

  const auto add_animals = [&](SceneSpec& scene, SceneGenerator& gen) {
    if (segment.road != RoadType::Countryside) return;
    for (int i = 0; i < spec_.animals_per_frame; ++i)
      scene.animals.push_back(
          gen.random_animal(spec_.frame_size, scene.horizon_y));
  };

  if (!spec_.coherent_motion) {
    // Deterministic per-frame seed: frames are independent of how many
    // frames were queried before them.
    SceneGenerator gen(
        segment.condition,
        spec_.seed * 1000003ULL + static_cast<std::uint64_t>(index));
    out.scene = gen.random_scene(spec_.frame_size, spec_.vehicles_per_frame,
                                 spec_.pedestrians_per_frame);
    add_animals(out.scene, gen);
    return out;
  }

  // Coherent mode: the segment's scene is drawn once (seeded by the segment
  // index), then every vehicle drifts with a constant per-vehicle velocity;
  // approaching vehicles also grow slightly. Noise stays per-frame.
  SceneGenerator gen(segment.condition,
                     spec_.seed * 1000003ULL + static_cast<std::uint64_t>(seg));
  out.scene = gen.random_scene(spec_.frame_size, spec_.vehicles_per_frame,
                               spec_.pedestrians_per_frame);
  add_animals(out.scene, gen);
  const int t = index - segment_start_[seg];
  for (data::VehicleSpec& v : out.scene.vehicles) {
    // Velocity derived from the generator stream: [-3, +3] px/frame lateral,
    // [-1, +1] px/frame vertical, growth every few frames when approaching.
    const int vx = gen.rng().uniform_int(-3, 3);
    const int vy = gen.rng().uniform_int(-1, 1);
    const int grow_period = gen.rng().uniform_int(4, 10);
    v.body.x += vx * t;
    v.body.y += vy * t;
    const int growth = vy > 0 ? t / grow_period : 0;
    v.body = img::inflated(v.body, growth);
    // Keep the body inside the frame horizontally.
    v.body.x = std::clamp(v.body.x, -v.body.width / 3,
                          spec_.frame_size.width - (2 * v.body.width) / 3);
  }
  out.scene.noise_seed =
      spec_.seed * 7919ULL + static_cast<std::uint64_t>(index);
  return out;
}

img::RgbImage DriveSequence::render(int index) const {
  return render_scene(frame(index).scene);
}

SequenceSpec DriveSequence::canonical_drive(img::Size frame_size,
                                            int frames_per_segment) {
  SequenceSpec spec;
  spec.frame_size = frame_size;
  // Day driving, tunnel entry (lit tunnel = dusk, per paper §IV-B: "the
  // tunnel environment is well lighted and is categorized as dusk"), back to
  // day, evening dusk, full night, then a lit urban stretch again.
  spec.segments = {
      {LightingCondition::Day, frames_per_segment, -1.0},
      {LightingCondition::Dusk, frames_per_segment, 0.30},  // tunnel
      {LightingCondition::Day, frames_per_segment, -1.0},
      {LightingCondition::Dusk, frames_per_segment, -1.0},
      {LightingCondition::Dark, frames_per_segment, -1.0},
      {LightingCondition::Dusk, frames_per_segment, -1.0},
  };
  return spec;
}

}  // namespace avd::data
