#include "avd/datasets/dataset_io.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "avd/image/io.hpp"

namespace avd::data {

void save_dataset(const PatchDataset& dataset, const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::ofstream index(dir + "/index.txt");
  if (!index) throw std::runtime_error("save_dataset: cannot open index");
  index << "avd-patches " << dataset.size() << ' '
        << to_string(dataset.condition) << '\n';

  char name[32];
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    std::snprintf(name, sizeof name, "patch_%05zu.pgm", i);
    img::write_pgm(dataset.patches[i].gray, dir + "/" + name);
    index << name << ' ' << dataset.patches[i].label << ' '
          << (dataset.patches[i].very_dark ? 1 : 0) << '\n';
  }
  if (!index) throw std::runtime_error("save_dataset: index write failed");
}

PatchDataset load_dataset(const std::string& dir) {
  std::ifstream index(dir + "/index.txt");
  if (!index) throw std::runtime_error("load_dataset: cannot open index");

  std::string magic, condition;
  std::size_t count = 0;
  if (!(index >> magic >> count >> condition) || magic != "avd-patches")
    throw std::runtime_error("load_dataset: bad index header");

  PatchDataset ds;
  if (condition == "day")
    ds.condition = LightingCondition::Day;
  else if (condition == "dusk")
    ds.condition = LightingCondition::Dusk;
  else if (condition == "dark")
    ds.condition = LightingCondition::Dark;
  else
    throw std::runtime_error("load_dataset: bad condition '" + condition + "'");

  ds.patches.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string name;
    int label = 0, very_dark = 0;
    if (!(index >> name >> label >> very_dark))
      throw std::runtime_error("load_dataset: truncated index");
    if (label != 1 && label != -1)
      throw std::runtime_error("load_dataset: bad label in index");
    LabeledPatch patch;
    patch.gray = img::read_pgm(dir + "/" + name);
    patch.label = label;
    patch.very_dark = very_dark != 0;
    if (!ds.patches.empty() &&
        patch.gray.size() != ds.patches.front().gray.size())
      throw std::runtime_error("load_dataset: inconsistent patch sizes");
    ds.patches.push_back(std::move(patch));
  }
  return ds;
}

}  // namespace avd::data
