#include "avd/datasets/patches.hpp"

#include <algorithm>
#include <cmath>

#include "avd/image/color.hpp"
#include "avd/image/resize.hpp"

namespace avd::data {
namespace {

// Background-only scene skeleton for a patch: sky/road split with clutter and
// (at night) distractor lights, but no vehicle.
SceneSpec patch_background(LightingCondition condition, img::Size size,
                           ml::Rng& rng) {
  SceneSpec spec;
  spec.condition = condition;
  spec.frame_size = size;
  spec.horizon_y = size.height / 5 + rng.uniform_int(-size.height / 12,
                                                     size.height / 12);
  spec.noise_seed = rng.engine()();

  if (rng.bernoulli(0.5)) {
    ClutterSpec c;
    const int w = rng.uniform_int(size.width / 5, size.width / 2);
    const int h = rng.uniform_int(size.height / 6, size.height / 2);
    c.box = {rng.uniform_int(-w / 2, size.width - w / 2),
             rng.uniform_int(0, size.height - h), w, h};
    const auto g = static_cast<std::uint8_t>(rng.uniform_int(50, 140));
    c.color = {g, g, static_cast<std::uint8_t>(std::min(255, g + 8))};
    spec.clutter.push_back(c);
  }

  const AmbientParams amb = ambient_for(condition);
  if (amb.road_lights_on && rng.bernoulli(0.7)) {
    // Unpaired white/yellow lights: street lamps or a single oncoming
    // headlight. These are the distractors the chroma threshold and the
    // pairing stage must reject.
    const int n = rng.uniform_int(1, 3);
    for (int i = 0; i < n; ++i) {
      DistractorLight d;
      d.position = {rng.uniform_int(2, size.width - 3),
                    rng.uniform_int(2, size.height - 3)};
      d.radius = rng.uniform_int(2, 5);
      spec.distractors.push_back(d);
    }
    // Red-ish lights that are NOT taillight pairs: traffic signals, wet-road
    // brake-light reflections. The hardest negatives for any detector that
    // keys on red lamps.
    if (rng.bernoulli(0.45)) {
      DistractorLight red;
      red.position = {rng.uniform_int(2, size.width - 3),
                      rng.uniform_int(2, size.height - 3)};
      red.radius = rng.uniform_int(2, 4);
      red.color = {255, 45, 30};
      spec.distractors.push_back(red);
    }
  }
  // Vehicle-like clutter in daylight: trailers, dumpsters, rectangular signs
  // with a shadow line — box-shaped, but no wheels, plate or lamps.
  if (!amb.road_lights_on && rng.bernoulli(0.35)) {
    ClutterSpec box;
    const int w = rng.uniform_int(size.width / 3, (3 * size.width) / 4);
    const int h = static_cast<int>(w * rng.uniform(0.5, 0.9));
    box.box = {rng.uniform_int(0, std::max(1, size.width - w)),
               rng.uniform_int(size.height / 3, std::max(size.height / 3 + 1,
                                                         size.height - h)),
               w, h};
    const auto g = static_cast<std::uint8_t>(rng.uniform_int(70, 170));
    box.color = {g, static_cast<std::uint8_t>(g - 10),
                 static_cast<std::uint8_t>(g - 15)};
    spec.clutter.push_back(box);
    // Grounded objects cast a shadow too — otherwise the shadow band alone
    // would separate vehicles from boxes and the day model would learn
    // nothing else.
    ClutterSpec shadow;
    shadow.box = {box.box.x - 2, box.box.bottom() - 2, box.box.width + 4,
                  std::max(3, box.box.height / 8)};
    shadow.color = {18, 18, 20};
    spec.clutter.push_back(shadow);
  }
  return spec;
}

}  // namespace

std::size_t PatchDataset::positives() const {
  return static_cast<std::size_t>(
      std::count_if(patches.begin(), patches.end(),
                    [](const LabeledPatch& p) { return p.label > 0; }));
}

std::size_t PatchDataset::negatives() const { return size() - positives(); }

PatchDataset PatchDataset::without_very_dark() const {
  PatchDataset out;
  out.condition = condition;
  for (const auto& p : patches)
    if (!p.very_dark) out.patches.push_back(p);
  return out;
}

PatchDataset PatchDataset::concat(const PatchDataset& a, const PatchDataset& b) {
  PatchDataset out = a;
  out.patches.insert(out.patches.end(), b.patches.begin(), b.patches.end());
  return out;
}

img::ImageU8 render_vehicle_patch(LightingCondition condition,
                                  img::Size patch_size, ml::Rng& rng) {
  SceneSpec spec = patch_background(condition, patch_size, rng);

  VehicleSpec v;
  // Very-dark captures are vehicles beyond the headlight range: distant,
  // small, with only their taillights standing out. This is why the paper's
  // HOG models miss nearly all of them and why excluding them ("subset of
  // SYSU") lifts every model's accuracy.
  const bool distant = condition == LightingCondition::Dark;
  const int w = static_cast<int>(std::lround(
      (distant ? rng.uniform(0.2, 0.45) : rng.uniform(0.55, 0.92)) *
      patch_size.width));
  const int h = static_cast<int>(std::lround(w * rng.uniform(0.72, 0.88)));
  const int cx = patch_size.width / 2 +
                 rng.uniform_int(-patch_size.width / 12, patch_size.width / 12);
  const int y_bottom = static_cast<int>(
      std::lround(patch_size.height * rng.uniform(0.78, 0.96)));
  v.body = {cx - w / 2, y_bottom - h, w, h};
  v.paint = {static_cast<std::uint8_t>(rng.uniform_int(40, 200)),
             static_cast<std::uint8_t>(rng.uniform_int(30, 160)),
             static_cast<std::uint8_t>(rng.uniform_int(30, 170))};
  v.light_intensity = rng.uniform(0.55, 1.35);  // lamp age / braking
  // At dusk the body is anywhere between street-lamp-lit and shadowed; this
  // spread is what lets a day-trained (shape-keyed) model still find the
  // well-lit fraction of dusk vehicles.
  if (condition == LightingCondition::Dusk)
    v.body_visibility = rng.uniform(0.15, 8.0);
  spec.vehicles.push_back(v);

  // Partial occlusion: another road user or roadside object clipping the
  // vehicle's silhouette (up to ~30% of the body width).
  if (rng.bernoulli(0.3)) {
    ClutterSpec occ;
    const int ow = rng.uniform_int(w / 6, w / 3);
    const int oh = rng.uniform_int(h / 3, h);
    const bool left = rng.bernoulli(0.5);
    occ.box = {left ? v.body.x - ow / 3 : v.body.right() - (2 * ow) / 3,
               v.body.bottom() - oh, ow, oh};
    const auto g = static_cast<std::uint8_t>(rng.uniform_int(40, 120));
    occ.color = {g, g, g};
    spec.foreground_clutter.push_back(occ);
  }

  return img::rgb_to_gray(render_scene(spec));
}

namespace {

// Hard negatives mined from full scenes: a random-position, random-scale crop
// of a vehicle-free road scene. Unlike patch_background() these windows can
// straddle the horizon, lane markings or clutter at any offset — exactly the
// windows a sliding-window detector scans and must reject.
img::ImageU8 scene_crop_negative(LightingCondition condition,
                                 img::Size patch_size, ml::Rng& rng) {
  const img::Size scene_size{patch_size.width * 4, patch_size.height * 3};
  SceneGenerator gen(condition, rng.engine()());
  SceneSpec spec = gen.random_scene(scene_size, /*n_vehicles=*/0);

  // Urban night scenes are full of parked, unlit vehicles — background, not
  // detections. Keeping them in the crops preserves the shape-without-lamps
  // negative evidence that the dedicated night datasets carry.
  if (ambient_for(condition).road_lights_on) {
    const int n_parked = rng.uniform_int(1, 2);
    for (int i = 0; i < n_parked; ++i) {
      VehicleSpec parked = gen.random_vehicle(scene_size, spec.horizon_y);
      parked.force_lights = true;
      parked.taillights_lit = false;
      parked.body_visibility = rng.uniform(0.15, 8.0);
      spec.vehicles.push_back(parked);
    }
  }
  const img::ImageU8 gray = img::rgb_to_gray(render_scene(spec));

  const int crop_w = std::min(
      scene_size.width,
      static_cast<int>(patch_size.width * rng.uniform(1.0, 2.5)));
  const int crop_h =
      std::min(scene_size.height,
               crop_w * patch_size.height / std::max(1, patch_size.width));
  const img::Rect roi{
      rng.uniform_int(0, std::max(0, scene_size.width - crop_w)),
      rng.uniform_int(0, std::max(0, scene_size.height - crop_h)), crop_w,
      crop_h};
  return img::resize_bilinear(gray.crop(roi), patch_size);
}

}  // namespace

img::ImageU8 render_negative_patch(LightingCondition condition,
                                   img::Size patch_size, ml::Rng& rng) {
  // A share of negatives are full-scene crops (hard negatives). At night the
  // centred parked-car negatives below carry the decisive signal, so crops
  // take a smaller share there.
  const double crop_fraction =
      ambient_for(condition).road_lights_on ? 0.25 : 0.4;
  if (rng.bernoulli(crop_fraction))
    return scene_crop_negative(condition, patch_size, rng);

  SceneSpec spec = patch_background(condition, patch_size, rng);

  // Night-time negatives frequently contain *parked, unlit* vehicles: they
  // are labelled background in nighttime datasets (nothing to detect), yet
  // they have exactly the silhouette a shape-keyed classifier fires on. This
  // is what makes the dusk-trained model treat shape-without-lamps as
  // negative evidence (Table I: the dusk model rejects almost every daylight
  // vehicle).
  if (ambient_for(condition).road_lights_on && rng.bernoulli(0.75)) {
    VehicleSpec parked;
    const int w = static_cast<int>(
        std::lround(rng.uniform(0.5, 0.85) * patch_size.width));
    const int h = static_cast<int>(std::lround(w * rng.uniform(0.72, 0.88)));
    const int cx = patch_size.width / 2 +
                   rng.uniform_int(-patch_size.width / 8, patch_size.width / 8);
    const int y_bottom = static_cast<int>(
        std::lround(patch_size.height * rng.uniform(0.8, 0.97)));
    parked.body = {cx - w / 2, y_bottom - h, w, h};
    parked.paint = {static_cast<std::uint8_t>(rng.uniform_int(40, 200)),
                    static_cast<std::uint8_t>(rng.uniform_int(30, 160)),
                    static_cast<std::uint8_t>(rng.uniform_int(30, 170))};
    parked.force_lights = true;
    parked.taillights_lit = false;
    parked.body_visibility = rng.uniform(0.15, 8.0);  // same spread as movers
    spec.vehicles.push_back(parked);
  }

  return img::rgb_to_gray(render_scene(spec));
}

PatchDataset make_vehicle_patches(const VehiclePatchSpec& spec) {
  PatchDataset ds;
  ds.condition = spec.condition;
  ml::Rng rng(spec.seed);

  const int n_dark = static_cast<int>(
      std::lround(spec.dark_fraction * spec.n_positive));
  for (int i = 0; i < spec.n_positive; ++i) {
    const bool dark = i < n_dark;
    const LightingCondition cond =
        dark ? LightingCondition::Dark : spec.condition;
    ds.patches.push_back(
        {render_vehicle_patch(cond, spec.patch_size, rng), +1, dark});
  }
  for (int i = 0; i < spec.n_negative; ++i) {
    ds.patches.push_back(
        {render_negative_patch(spec.condition, spec.patch_size, rng), -1, false});
  }
  return ds;
}

PatchDataset make_animal_patches(const AnimalPatchSpec& spec) {
  PatchDataset ds;
  ds.condition = spec.condition;
  ml::Rng rng(spec.seed);

  for (int i = 0; i < spec.n_positive; ++i) {
    SceneSpec scene = patch_background(spec.condition, spec.patch_size, rng);
    AnimalSpec a;
    const int w = static_cast<int>(
        std::lround(rng.uniform(0.6, 0.9) * spec.patch_size.width));
    const int h = static_cast<int>(std::lround(w * rng.uniform(0.65, 0.85)));
    const int cx = spec.patch_size.width / 2 +
                   rng.uniform_int(-spec.patch_size.width / 10,
                                   spec.patch_size.width / 10);
    const int y_bottom = static_cast<int>(
        std::lround(spec.patch_size.height * rng.uniform(0.82, 0.98)));
    a.body = {cx - w / 2, y_bottom - h, w, h};
    const auto shade_val = static_cast<std::uint8_t>(rng.uniform_int(70, 140));
    a.coat = {shade_val, static_cast<std::uint8_t>((shade_val * 3) / 4),
              static_cast<std::uint8_t>(shade_val / 2)};
    scene.animals.push_back(a);
    ds.patches.push_back({img::rgb_to_gray(render_scene(scene)), +1, false});
  }
  for (int i = 0; i < spec.n_negative; ++i) {
    // Hard negatives include vehicles and pedestrians: the animal model must
    // not fire on other road users.
    if (rng.bernoulli(0.3)) {
      ds.patches.push_back(
          {render_vehicle_patch(spec.condition, spec.patch_size, rng), -1,
           false});
    } else {
      ds.patches.push_back(
          {render_negative_patch(spec.condition, spec.patch_size, rng), -1,
           false});
    }
  }
  return ds;
}

PatchDataset make_pedestrian_patches(const PedestrianPatchSpec& spec) {
  PatchDataset ds;
  ds.condition = spec.condition;
  ml::Rng rng(spec.seed);

  for (int i = 0; i < spec.n_positive; ++i) {
    SceneSpec scene = patch_background(spec.condition, spec.patch_size, rng);
    PedestrianSpec p;
    const int h = static_cast<int>(
        std::lround(rng.uniform(0.68, 0.94) * spec.patch_size.height));
    const int w = std::max(4, static_cast<int>(h * rng.uniform(0.28, 0.4)));
    const int cx = spec.patch_size.width / 2 +
                   rng.uniform_int(-spec.patch_size.width / 10,
                                   spec.patch_size.width / 10);
    const int y_bottom = static_cast<int>(
        std::lround(spec.patch_size.height * rng.uniform(0.85, 0.99)));
    p.body = {cx - w / 2, y_bottom - h, w, h};
    scene.pedestrians.push_back(p);
    ds.patches.push_back({img::rgb_to_gray(render_scene(scene)), +1, false});
  }
  for (int i = 0; i < spec.n_negative; ++i) {
    ds.patches.push_back(
        {render_negative_patch(spec.condition, spec.patch_size, rng), -1, false});
  }
  return ds;
}

}  // namespace avd::data
