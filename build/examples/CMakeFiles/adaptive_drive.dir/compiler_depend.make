# Empty compiler generated dependencies file for adaptive_drive.
# This may be replaced when dependencies are built.
