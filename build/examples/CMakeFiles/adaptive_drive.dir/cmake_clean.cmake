file(REMOVE_RECURSE
  "CMakeFiles/adaptive_drive.dir/adaptive_drive.cpp.o"
  "CMakeFiles/adaptive_drive.dir/adaptive_drive.cpp.o.d"
  "adaptive_drive"
  "adaptive_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
