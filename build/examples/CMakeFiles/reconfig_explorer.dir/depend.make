# Empty dependencies file for reconfig_explorer.
# This may be replaced when dependencies are built.
