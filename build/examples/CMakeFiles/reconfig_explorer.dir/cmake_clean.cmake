file(REMOVE_RECURSE
  "CMakeFiles/reconfig_explorer.dir/reconfig_explorer.cpp.o"
  "CMakeFiles/reconfig_explorer.dir/reconfig_explorer.cpp.o.d"
  "reconfig_explorer"
  "reconfig_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
