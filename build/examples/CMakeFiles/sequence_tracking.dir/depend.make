# Empty dependencies file for sequence_tracking.
# This may be replaced when dependencies are built.
