file(REMOVE_RECURSE
  "CMakeFiles/sequence_tracking.dir/sequence_tracking.cpp.o"
  "CMakeFiles/sequence_tracking.dir/sequence_tracking.cpp.o.d"
  "sequence_tracking"
  "sequence_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
