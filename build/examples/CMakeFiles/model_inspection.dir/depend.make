# Empty dependencies file for model_inspection.
# This may be replaced when dependencies are built.
