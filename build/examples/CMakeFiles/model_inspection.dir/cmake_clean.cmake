file(REMOVE_RECURSE
  "CMakeFiles/model_inspection.dir/model_inspection.cpp.o"
  "CMakeFiles/model_inspection.dir/model_inspection.cpp.o.d"
  "model_inspection"
  "model_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
