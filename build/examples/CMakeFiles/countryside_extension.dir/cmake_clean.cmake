file(REMOVE_RECURSE
  "CMakeFiles/countryside_extension.dir/countryside_extension.cpp.o"
  "CMakeFiles/countryside_extension.dir/countryside_extension.cpp.o.d"
  "countryside_extension"
  "countryside_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/countryside_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
