# Empty compiler generated dependencies file for countryside_extension.
# This may be replaced when dependencies are built.
