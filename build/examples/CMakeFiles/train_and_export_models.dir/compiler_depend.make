# Empty compiler generated dependencies file for train_and_export_models.
# This may be replaced when dependencies are built.
