file(REMOVE_RECURSE
  "CMakeFiles/train_and_export_models.dir/train_and_export_models.cpp.o"
  "CMakeFiles/train_and_export_models.dir/train_and_export_models.cpp.o.d"
  "train_and_export_models"
  "train_and_export_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_export_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
