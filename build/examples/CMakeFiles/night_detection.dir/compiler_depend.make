# Empty compiler generated dependencies file for night_detection.
# This may be replaced when dependencies are built.
