file(REMOVE_RECURSE
  "CMakeFiles/night_detection.dir/night_detection.cpp.o"
  "CMakeFiles/night_detection.dir/night_detection.cpp.o.d"
  "night_detection"
  "night_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/night_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
