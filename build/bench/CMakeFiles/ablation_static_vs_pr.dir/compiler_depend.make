# Empty compiler generated dependencies file for ablation_static_vs_pr.
# This may be replaced when dependencies are built.
