file(REMOVE_RECURSE
  "CMakeFiles/ablation_static_vs_pr.dir/ablation_static_vs_pr.cpp.o"
  "CMakeFiles/ablation_static_vs_pr.dir/ablation_static_vs_pr.cpp.o.d"
  "ablation_static_vs_pr"
  "ablation_static_vs_pr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_static_vs_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
