# Empty compiler generated dependencies file for ablation_hog_params.
# This may be replaced when dependencies are built.
