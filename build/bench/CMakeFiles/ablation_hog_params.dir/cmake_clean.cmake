file(REMOVE_RECURSE
  "CMakeFiles/ablation_hog_params.dir/ablation_hog_params.cpp.o"
  "CMakeFiles/ablation_hog_params.dir/ablation_hog_params.cpp.o.d"
  "ablation_hog_params"
  "ablation_hog_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hog_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
