# Empty dependencies file for fig5_dark_accuracy.
# This may be replaced when dependencies are built.
