file(REMOVE_RECURSE
  "CMakeFiles/fig6_control_plane.dir/fig6_control_plane.cpp.o"
  "CMakeFiles/fig6_control_plane.dir/fig6_control_plane.cpp.o.d"
  "fig6_control_plane"
  "fig6_control_plane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_control_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
