# Empty compiler generated dependencies file for fig6_control_plane.
# This may be replaced when dependencies are built.
