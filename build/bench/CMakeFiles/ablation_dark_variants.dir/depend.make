# Empty dependencies file for ablation_dark_variants.
# This may be replaced when dependencies are built.
