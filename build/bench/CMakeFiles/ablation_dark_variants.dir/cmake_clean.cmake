file(REMOVE_RECURSE
  "CMakeFiles/ablation_dark_variants.dir/ablation_dark_variants.cpp.o"
  "CMakeFiles/ablation_dark_variants.dir/ablation_dark_variants.cpp.o.d"
  "ablation_dark_variants"
  "ablation_dark_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dark_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
