
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_dark_variants.cpp" "bench/CMakeFiles/ablation_dark_variants.dir/ablation_dark_variants.cpp.o" "gcc" "bench/CMakeFiles/ablation_dark_variants.dir/ablation_dark_variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/avd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/avd_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/avd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/avd_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/hog/CMakeFiles/avd_hog.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/avd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/avd_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
