file(REMOVE_RECURSE
  "CMakeFiles/table2_resources.dir/table2_resources.cpp.o"
  "CMakeFiles/table2_resources.dir/table2_resources.cpp.o.d"
  "table2_resources"
  "table2_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
