# Empty compiler generated dependencies file for table2_resources.
# This may be replaced when dependencies are built.
