# Empty dependencies file for fps_throughput.
# This may be replaced when dependencies are built.
