file(REMOVE_RECURSE
  "CMakeFiles/fps_throughput.dir/fps_throughput.cpp.o"
  "CMakeFiles/fps_throughput.dir/fps_throughput.cpp.o.d"
  "fps_throughput"
  "fps_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fps_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
