# Empty dependencies file for frame_eval.
# This may be replaced when dependencies are built.
