file(REMOVE_RECURSE
  "CMakeFiles/frame_eval.dir/frame_eval.cpp.o"
  "CMakeFiles/frame_eval.dir/frame_eval.cpp.o.d"
  "frame_eval"
  "frame_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
