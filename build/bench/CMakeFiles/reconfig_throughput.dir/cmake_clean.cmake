file(REMOVE_RECURSE
  "CMakeFiles/reconfig_throughput.dir/reconfig_throughput.cpp.o"
  "CMakeFiles/reconfig_throughput.dir/reconfig_throughput.cpp.o.d"
  "reconfig_throughput"
  "reconfig_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
