# Empty dependencies file for reconfig_throughput.
# This may be replaced when dependencies are built.
