file(REMOVE_RECURSE
  "CMakeFiles/fig4_dark_pipeline.dir/fig4_dark_pipeline.cpp.o"
  "CMakeFiles/fig4_dark_pipeline.dir/fig4_dark_pipeline.cpp.o.d"
  "fig4_dark_pipeline"
  "fig4_dark_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dark_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
