# Empty dependencies file for fig4_dark_pipeline.
# This may be replaced when dependencies are built.
