file(REMOVE_RECURSE
  "CMakeFiles/reconfig_frame_impact.dir/reconfig_frame_impact.cpp.o"
  "CMakeFiles/reconfig_frame_impact.dir/reconfig_frame_impact.cpp.o.d"
  "reconfig_frame_impact"
  "reconfig_frame_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_frame_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
