# Empty compiler generated dependencies file for reconfig_frame_impact.
# This may be replaced when dependencies are built.
