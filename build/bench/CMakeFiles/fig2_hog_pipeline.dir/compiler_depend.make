# Empty compiler generated dependencies file for fig2_hog_pipeline.
# This may be replaced when dependencies are built.
