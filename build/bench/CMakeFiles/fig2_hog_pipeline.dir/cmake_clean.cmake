file(REMOVE_RECURSE
  "CMakeFiles/fig2_hog_pipeline.dir/fig2_hog_pipeline.cpp.o"
  "CMakeFiles/fig2_hog_pipeline.dir/fig2_hog_pipeline.cpp.o.d"
  "fig2_hog_pipeline"
  "fig2_hog_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hog_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
