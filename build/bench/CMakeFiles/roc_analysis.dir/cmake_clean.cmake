file(REMOVE_RECURSE
  "CMakeFiles/roc_analysis.dir/roc_analysis.cpp.o"
  "CMakeFiles/roc_analysis.dir/roc_analysis.cpp.o.d"
  "roc_analysis"
  "roc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
