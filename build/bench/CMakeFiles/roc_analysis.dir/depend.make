# Empty dependencies file for roc_analysis.
# This may be replaced when dependencies are built.
