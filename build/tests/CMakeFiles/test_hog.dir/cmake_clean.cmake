file(REMOVE_RECURSE
  "CMakeFiles/test_hog.dir/hog/test_cell_grid.cpp.o"
  "CMakeFiles/test_hog.dir/hog/test_cell_grid.cpp.o.d"
  "CMakeFiles/test_hog.dir/hog/test_descriptor.cpp.o"
  "CMakeFiles/test_hog.dir/hog/test_descriptor.cpp.o.d"
  "CMakeFiles/test_hog.dir/hog/test_gradients.cpp.o"
  "CMakeFiles/test_hog.dir/hog/test_gradients.cpp.o.d"
  "CMakeFiles/test_hog.dir/hog/test_visualization.cpp.o"
  "CMakeFiles/test_hog.dir/hog/test_visualization.cpp.o.d"
  "test_hog"
  "test_hog.pdb"
  "test_hog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
