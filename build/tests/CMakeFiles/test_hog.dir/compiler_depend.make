# Empty compiler generated dependencies file for test_hog.
# This may be replaced when dependencies are built.
