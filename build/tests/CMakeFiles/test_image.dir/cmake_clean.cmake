file(REMOVE_RECURSE
  "CMakeFiles/test_image.dir/image/test_blobs.cpp.o"
  "CMakeFiles/test_image.dir/image/test_blobs.cpp.o.d"
  "CMakeFiles/test_image.dir/image/test_color.cpp.o"
  "CMakeFiles/test_image.dir/image/test_color.cpp.o.d"
  "CMakeFiles/test_image.dir/image/test_draw.cpp.o"
  "CMakeFiles/test_image.dir/image/test_draw.cpp.o.d"
  "CMakeFiles/test_image.dir/image/test_filter.cpp.o"
  "CMakeFiles/test_image.dir/image/test_filter.cpp.o.d"
  "CMakeFiles/test_image.dir/image/test_geometry.cpp.o"
  "CMakeFiles/test_image.dir/image/test_geometry.cpp.o.d"
  "CMakeFiles/test_image.dir/image/test_image.cpp.o"
  "CMakeFiles/test_image.dir/image/test_image.cpp.o.d"
  "CMakeFiles/test_image.dir/image/test_io.cpp.o"
  "CMakeFiles/test_image.dir/image/test_io.cpp.o.d"
  "CMakeFiles/test_image.dir/image/test_morphology.cpp.o"
  "CMakeFiles/test_image.dir/image/test_morphology.cpp.o.d"
  "CMakeFiles/test_image.dir/image/test_pyramid.cpp.o"
  "CMakeFiles/test_image.dir/image/test_pyramid.cpp.o.d"
  "CMakeFiles/test_image.dir/image/test_resize.cpp.o"
  "CMakeFiles/test_image.dir/image/test_resize.cpp.o.d"
  "CMakeFiles/test_image.dir/image/test_stats.cpp.o"
  "CMakeFiles/test_image.dir/image/test_stats.cpp.o.d"
  "CMakeFiles/test_image.dir/image/test_threshold.cpp.o"
  "CMakeFiles/test_image.dir/image/test_threshold.cpp.o.d"
  "test_image"
  "test_image.pdb"
  "test_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
