
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/image/test_blobs.cpp" "tests/CMakeFiles/test_image.dir/image/test_blobs.cpp.o" "gcc" "tests/CMakeFiles/test_image.dir/image/test_blobs.cpp.o.d"
  "/root/repo/tests/image/test_color.cpp" "tests/CMakeFiles/test_image.dir/image/test_color.cpp.o" "gcc" "tests/CMakeFiles/test_image.dir/image/test_color.cpp.o.d"
  "/root/repo/tests/image/test_draw.cpp" "tests/CMakeFiles/test_image.dir/image/test_draw.cpp.o" "gcc" "tests/CMakeFiles/test_image.dir/image/test_draw.cpp.o.d"
  "/root/repo/tests/image/test_filter.cpp" "tests/CMakeFiles/test_image.dir/image/test_filter.cpp.o" "gcc" "tests/CMakeFiles/test_image.dir/image/test_filter.cpp.o.d"
  "/root/repo/tests/image/test_geometry.cpp" "tests/CMakeFiles/test_image.dir/image/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/test_image.dir/image/test_geometry.cpp.o.d"
  "/root/repo/tests/image/test_image.cpp" "tests/CMakeFiles/test_image.dir/image/test_image.cpp.o" "gcc" "tests/CMakeFiles/test_image.dir/image/test_image.cpp.o.d"
  "/root/repo/tests/image/test_io.cpp" "tests/CMakeFiles/test_image.dir/image/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_image.dir/image/test_io.cpp.o.d"
  "/root/repo/tests/image/test_morphology.cpp" "tests/CMakeFiles/test_image.dir/image/test_morphology.cpp.o" "gcc" "tests/CMakeFiles/test_image.dir/image/test_morphology.cpp.o.d"
  "/root/repo/tests/image/test_pyramid.cpp" "tests/CMakeFiles/test_image.dir/image/test_pyramid.cpp.o" "gcc" "tests/CMakeFiles/test_image.dir/image/test_pyramid.cpp.o.d"
  "/root/repo/tests/image/test_resize.cpp" "tests/CMakeFiles/test_image.dir/image/test_resize.cpp.o" "gcc" "tests/CMakeFiles/test_image.dir/image/test_resize.cpp.o.d"
  "/root/repo/tests/image/test_stats.cpp" "tests/CMakeFiles/test_image.dir/image/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_image.dir/image/test_stats.cpp.o.d"
  "/root/repo/tests/image/test_threshold.cpp" "tests/CMakeFiles/test_image.dir/image/test_threshold.cpp.o" "gcc" "tests/CMakeFiles/test_image.dir/image/test_threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/avd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/avd_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/avd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/avd_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/hog/CMakeFiles/avd_hog.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/avd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/avd_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
