
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/soc/test_axi.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_axi.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_axi.cpp.o.d"
  "/root/repo/tests/soc/test_axi_lite.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_axi_lite.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_axi_lite.cpp.o.d"
  "/root/repo/tests/soc/test_bitstream.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_bitstream.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_bitstream.cpp.o.d"
  "/root/repo/tests/soc/test_crc.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_crc.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_crc.cpp.o.d"
  "/root/repo/tests/soc/test_dma_core.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_dma_core.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_dma_core.cpp.o.d"
  "/root/repo/tests/soc/test_event_log.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_event_log.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_event_log.cpp.o.d"
  "/root/repo/tests/soc/test_frame_scheduler.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_frame_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_frame_scheduler.cpp.o.d"
  "/root/repo/tests/soc/test_hw_pipeline.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_hw_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_hw_pipeline.cpp.o.d"
  "/root/repo/tests/soc/test_interrupts.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_interrupts.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_interrupts.cpp.o.d"
  "/root/repo/tests/soc/test_power.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_power.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_power.cpp.o.d"
  "/root/repo/tests/soc/test_reconfig.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_reconfig.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_reconfig.cpp.o.d"
  "/root/repo/tests/soc/test_resources.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_resources.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_resources.cpp.o.d"
  "/root/repo/tests/soc/test_sim_time.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_sim_time.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_sim_time.cpp.o.d"
  "/root/repo/tests/soc/test_trace_export.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_trace_export.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_trace_export.cpp.o.d"
  "/root/repo/tests/soc/test_zynq.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_zynq.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_zynq.cpp.o.d"
  "/root/repo/tests/soc/test_zynq_system.cpp" "tests/CMakeFiles/test_soc.dir/soc/test_zynq_system.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/test_zynq_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/avd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/avd_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/avd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/avd_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/hog/CMakeFiles/avd_hog.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/avd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/avd_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
