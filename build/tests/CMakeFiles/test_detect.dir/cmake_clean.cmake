file(REMOVE_RECURSE
  "CMakeFiles/test_detect.dir/detect/test_bootstrap.cpp.o"
  "CMakeFiles/test_detect.dir/detect/test_bootstrap.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/test_dark_detector.cpp.o"
  "CMakeFiles/test_detect.dir/detect/test_dark_detector.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/test_dark_training.cpp.o"
  "CMakeFiles/test_detect.dir/detect/test_dark_training.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/test_detection.cpp.o"
  "CMakeFiles/test_detect.dir/detect/test_detection.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/test_evaluation.cpp.o"
  "CMakeFiles/test_detect.dir/detect/test_evaluation.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/test_hog_svm_detector.cpp.o"
  "CMakeFiles/test_detect.dir/detect/test_hog_svm_detector.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/test_multi_model_scan.cpp.o"
  "CMakeFiles/test_detect.dir/detect/test_multi_model_scan.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/test_tracker.cpp.o"
  "CMakeFiles/test_detect.dir/detect/test_tracker.cpp.o.d"
  "test_detect"
  "test_detect.pdb"
  "test_detect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
