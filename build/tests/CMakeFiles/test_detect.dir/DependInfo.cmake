
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/detect/test_bootstrap.cpp" "tests/CMakeFiles/test_detect.dir/detect/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/test_detect.dir/detect/test_bootstrap.cpp.o.d"
  "/root/repo/tests/detect/test_dark_detector.cpp" "tests/CMakeFiles/test_detect.dir/detect/test_dark_detector.cpp.o" "gcc" "tests/CMakeFiles/test_detect.dir/detect/test_dark_detector.cpp.o.d"
  "/root/repo/tests/detect/test_dark_training.cpp" "tests/CMakeFiles/test_detect.dir/detect/test_dark_training.cpp.o" "gcc" "tests/CMakeFiles/test_detect.dir/detect/test_dark_training.cpp.o.d"
  "/root/repo/tests/detect/test_detection.cpp" "tests/CMakeFiles/test_detect.dir/detect/test_detection.cpp.o" "gcc" "tests/CMakeFiles/test_detect.dir/detect/test_detection.cpp.o.d"
  "/root/repo/tests/detect/test_evaluation.cpp" "tests/CMakeFiles/test_detect.dir/detect/test_evaluation.cpp.o" "gcc" "tests/CMakeFiles/test_detect.dir/detect/test_evaluation.cpp.o.d"
  "/root/repo/tests/detect/test_hog_svm_detector.cpp" "tests/CMakeFiles/test_detect.dir/detect/test_hog_svm_detector.cpp.o" "gcc" "tests/CMakeFiles/test_detect.dir/detect/test_hog_svm_detector.cpp.o.d"
  "/root/repo/tests/detect/test_multi_model_scan.cpp" "tests/CMakeFiles/test_detect.dir/detect/test_multi_model_scan.cpp.o" "gcc" "tests/CMakeFiles/test_detect.dir/detect/test_multi_model_scan.cpp.o.d"
  "/root/repo/tests/detect/test_tracker.cpp" "tests/CMakeFiles/test_detect.dir/detect/test_tracker.cpp.o" "gcc" "tests/CMakeFiles/test_detect.dir/detect/test_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/avd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/avd_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/avd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/avd_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/hog/CMakeFiles/avd_hog.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/avd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/avd_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
