file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_adaptive_system.cpp.o"
  "CMakeFiles/test_core.dir/core/test_adaptive_system.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_lighting_classifier.cpp.o"
  "CMakeFiles/test_core.dir/core/test_lighting_classifier.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_system_models.cpp.o"
  "CMakeFiles/test_core.dir/core/test_system_models.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
