file(REMOVE_RECURSE
  "CMakeFiles/test_datasets.dir/datasets/test_dataset_io.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/test_dataset_io.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/test_lighting.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/test_lighting.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/test_patches.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/test_patches.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/test_scene.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/test_scene.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/test_sequence.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/test_sequence.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/test_taillight_windows.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/test_taillight_windows.cpp.o.d"
  "test_datasets"
  "test_datasets.pdb"
  "test_datasets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
