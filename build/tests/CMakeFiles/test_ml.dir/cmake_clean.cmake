file(REMOVE_RECURSE
  "CMakeFiles/test_ml.dir/ml/test_calibration.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_calibration.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_cross_validation.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_cross_validation.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_dbn.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_dbn.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_metrics.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_metrics.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_rbm.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_rbm.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_rng.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_rng.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_roc.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_roc.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_standardizer.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_standardizer.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_svm.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_svm.cpp.o.d"
  "test_ml"
  "test_ml.pdb"
  "test_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
