
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/test_calibration.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_calibration.cpp.o.d"
  "/root/repo/tests/ml/test_cross_validation.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_cross_validation.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_cross_validation.cpp.o.d"
  "/root/repo/tests/ml/test_dbn.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_dbn.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_dbn.cpp.o.d"
  "/root/repo/tests/ml/test_metrics.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_metrics.cpp.o.d"
  "/root/repo/tests/ml/test_rbm.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_rbm.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_rbm.cpp.o.d"
  "/root/repo/tests/ml/test_rng.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_rng.cpp.o.d"
  "/root/repo/tests/ml/test_roc.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_roc.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_roc.cpp.o.d"
  "/root/repo/tests/ml/test_standardizer.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_standardizer.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_standardizer.cpp.o.d"
  "/root/repo/tests/ml/test_svm.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_svm.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/avd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/avd_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/avd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/avd_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/hog/CMakeFiles/avd_hog.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/avd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/avd_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
