# Empty compiler generated dependencies file for avd_soc.
# This may be replaced when dependencies are built.
