file(REMOVE_RECURSE
  "CMakeFiles/avd_soc.dir/src/axi.cpp.o"
  "CMakeFiles/avd_soc.dir/src/axi.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/axi_lite.cpp.o"
  "CMakeFiles/avd_soc.dir/src/axi_lite.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/bitstream.cpp.o"
  "CMakeFiles/avd_soc.dir/src/bitstream.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/crc.cpp.o"
  "CMakeFiles/avd_soc.dir/src/crc.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/dma_core.cpp.o"
  "CMakeFiles/avd_soc.dir/src/dma_core.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/event_log.cpp.o"
  "CMakeFiles/avd_soc.dir/src/event_log.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/frame_scheduler.cpp.o"
  "CMakeFiles/avd_soc.dir/src/frame_scheduler.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/hw_pipeline.cpp.o"
  "CMakeFiles/avd_soc.dir/src/hw_pipeline.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/interrupts.cpp.o"
  "CMakeFiles/avd_soc.dir/src/interrupts.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/power.cpp.o"
  "CMakeFiles/avd_soc.dir/src/power.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/reconfig.cpp.o"
  "CMakeFiles/avd_soc.dir/src/reconfig.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/resources.cpp.o"
  "CMakeFiles/avd_soc.dir/src/resources.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/trace_export.cpp.o"
  "CMakeFiles/avd_soc.dir/src/trace_export.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/zynq.cpp.o"
  "CMakeFiles/avd_soc.dir/src/zynq.cpp.o.d"
  "CMakeFiles/avd_soc.dir/src/zynq_system.cpp.o"
  "CMakeFiles/avd_soc.dir/src/zynq_system.cpp.o.d"
  "libavd_soc.a"
  "libavd_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
