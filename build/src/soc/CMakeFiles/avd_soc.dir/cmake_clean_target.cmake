file(REMOVE_RECURSE
  "libavd_soc.a"
)
