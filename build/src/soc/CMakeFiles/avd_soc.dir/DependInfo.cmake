
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/src/axi.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/axi.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/axi.cpp.o.d"
  "/root/repo/src/soc/src/axi_lite.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/axi_lite.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/axi_lite.cpp.o.d"
  "/root/repo/src/soc/src/bitstream.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/bitstream.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/bitstream.cpp.o.d"
  "/root/repo/src/soc/src/crc.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/crc.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/crc.cpp.o.d"
  "/root/repo/src/soc/src/dma_core.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/dma_core.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/dma_core.cpp.o.d"
  "/root/repo/src/soc/src/event_log.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/event_log.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/event_log.cpp.o.d"
  "/root/repo/src/soc/src/frame_scheduler.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/frame_scheduler.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/frame_scheduler.cpp.o.d"
  "/root/repo/src/soc/src/hw_pipeline.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/hw_pipeline.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/hw_pipeline.cpp.o.d"
  "/root/repo/src/soc/src/interrupts.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/interrupts.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/interrupts.cpp.o.d"
  "/root/repo/src/soc/src/power.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/power.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/power.cpp.o.d"
  "/root/repo/src/soc/src/reconfig.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/reconfig.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/reconfig.cpp.o.d"
  "/root/repo/src/soc/src/resources.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/resources.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/resources.cpp.o.d"
  "/root/repo/src/soc/src/trace_export.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/trace_export.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/trace_export.cpp.o.d"
  "/root/repo/src/soc/src/zynq.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/zynq.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/zynq.cpp.o.d"
  "/root/repo/src/soc/src/zynq_system.cpp" "src/soc/CMakeFiles/avd_soc.dir/src/zynq_system.cpp.o" "gcc" "src/soc/CMakeFiles/avd_soc.dir/src/zynq_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/avd_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
