file(REMOVE_RECURSE
  "libavd_hog.a"
)
