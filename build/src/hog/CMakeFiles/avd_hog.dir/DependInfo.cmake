
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hog/src/hog.cpp" "src/hog/CMakeFiles/avd_hog.dir/src/hog.cpp.o" "gcc" "src/hog/CMakeFiles/avd_hog.dir/src/hog.cpp.o.d"
  "/root/repo/src/hog/src/visualization.cpp" "src/hog/CMakeFiles/avd_hog.dir/src/visualization.cpp.o" "gcc" "src/hog/CMakeFiles/avd_hog.dir/src/visualization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/avd_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
