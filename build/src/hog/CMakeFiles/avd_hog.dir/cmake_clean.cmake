file(REMOVE_RECURSE
  "CMakeFiles/avd_hog.dir/src/hog.cpp.o"
  "CMakeFiles/avd_hog.dir/src/hog.cpp.o.d"
  "CMakeFiles/avd_hog.dir/src/visualization.cpp.o"
  "CMakeFiles/avd_hog.dir/src/visualization.cpp.o.d"
  "libavd_hog.a"
  "libavd_hog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_hog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
