# Empty compiler generated dependencies file for avd_hog.
# This may be replaced when dependencies are built.
