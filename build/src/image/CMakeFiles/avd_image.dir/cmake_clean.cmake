file(REMOVE_RECURSE
  "CMakeFiles/avd_image.dir/src/blobs.cpp.o"
  "CMakeFiles/avd_image.dir/src/blobs.cpp.o.d"
  "CMakeFiles/avd_image.dir/src/color.cpp.o"
  "CMakeFiles/avd_image.dir/src/color.cpp.o.d"
  "CMakeFiles/avd_image.dir/src/draw.cpp.o"
  "CMakeFiles/avd_image.dir/src/draw.cpp.o.d"
  "CMakeFiles/avd_image.dir/src/filter.cpp.o"
  "CMakeFiles/avd_image.dir/src/filter.cpp.o.d"
  "CMakeFiles/avd_image.dir/src/io.cpp.o"
  "CMakeFiles/avd_image.dir/src/io.cpp.o.d"
  "CMakeFiles/avd_image.dir/src/morphology.cpp.o"
  "CMakeFiles/avd_image.dir/src/morphology.cpp.o.d"
  "CMakeFiles/avd_image.dir/src/pyramid.cpp.o"
  "CMakeFiles/avd_image.dir/src/pyramid.cpp.o.d"
  "CMakeFiles/avd_image.dir/src/resize.cpp.o"
  "CMakeFiles/avd_image.dir/src/resize.cpp.o.d"
  "CMakeFiles/avd_image.dir/src/stats.cpp.o"
  "CMakeFiles/avd_image.dir/src/stats.cpp.o.d"
  "CMakeFiles/avd_image.dir/src/threshold.cpp.o"
  "CMakeFiles/avd_image.dir/src/threshold.cpp.o.d"
  "libavd_image.a"
  "libavd_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
