# Empty dependencies file for avd_image.
# This may be replaced when dependencies are built.
