file(REMOVE_RECURSE
  "libavd_image.a"
)
