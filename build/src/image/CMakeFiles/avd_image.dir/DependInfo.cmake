
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/src/blobs.cpp" "src/image/CMakeFiles/avd_image.dir/src/blobs.cpp.o" "gcc" "src/image/CMakeFiles/avd_image.dir/src/blobs.cpp.o.d"
  "/root/repo/src/image/src/color.cpp" "src/image/CMakeFiles/avd_image.dir/src/color.cpp.o" "gcc" "src/image/CMakeFiles/avd_image.dir/src/color.cpp.o.d"
  "/root/repo/src/image/src/draw.cpp" "src/image/CMakeFiles/avd_image.dir/src/draw.cpp.o" "gcc" "src/image/CMakeFiles/avd_image.dir/src/draw.cpp.o.d"
  "/root/repo/src/image/src/filter.cpp" "src/image/CMakeFiles/avd_image.dir/src/filter.cpp.o" "gcc" "src/image/CMakeFiles/avd_image.dir/src/filter.cpp.o.d"
  "/root/repo/src/image/src/io.cpp" "src/image/CMakeFiles/avd_image.dir/src/io.cpp.o" "gcc" "src/image/CMakeFiles/avd_image.dir/src/io.cpp.o.d"
  "/root/repo/src/image/src/morphology.cpp" "src/image/CMakeFiles/avd_image.dir/src/morphology.cpp.o" "gcc" "src/image/CMakeFiles/avd_image.dir/src/morphology.cpp.o.d"
  "/root/repo/src/image/src/pyramid.cpp" "src/image/CMakeFiles/avd_image.dir/src/pyramid.cpp.o" "gcc" "src/image/CMakeFiles/avd_image.dir/src/pyramid.cpp.o.d"
  "/root/repo/src/image/src/resize.cpp" "src/image/CMakeFiles/avd_image.dir/src/resize.cpp.o" "gcc" "src/image/CMakeFiles/avd_image.dir/src/resize.cpp.o.d"
  "/root/repo/src/image/src/stats.cpp" "src/image/CMakeFiles/avd_image.dir/src/stats.cpp.o" "gcc" "src/image/CMakeFiles/avd_image.dir/src/stats.cpp.o.d"
  "/root/repo/src/image/src/threshold.cpp" "src/image/CMakeFiles/avd_image.dir/src/threshold.cpp.o" "gcc" "src/image/CMakeFiles/avd_image.dir/src/threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
