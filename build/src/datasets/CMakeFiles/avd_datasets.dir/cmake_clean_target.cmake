file(REMOVE_RECURSE
  "libavd_datasets.a"
)
