# Empty compiler generated dependencies file for avd_datasets.
# This may be replaced when dependencies are built.
