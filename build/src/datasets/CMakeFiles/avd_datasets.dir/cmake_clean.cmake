file(REMOVE_RECURSE
  "CMakeFiles/avd_datasets.dir/src/dataset_io.cpp.o"
  "CMakeFiles/avd_datasets.dir/src/dataset_io.cpp.o.d"
  "CMakeFiles/avd_datasets.dir/src/lighting.cpp.o"
  "CMakeFiles/avd_datasets.dir/src/lighting.cpp.o.d"
  "CMakeFiles/avd_datasets.dir/src/patches.cpp.o"
  "CMakeFiles/avd_datasets.dir/src/patches.cpp.o.d"
  "CMakeFiles/avd_datasets.dir/src/scene.cpp.o"
  "CMakeFiles/avd_datasets.dir/src/scene.cpp.o.d"
  "CMakeFiles/avd_datasets.dir/src/sequence.cpp.o"
  "CMakeFiles/avd_datasets.dir/src/sequence.cpp.o.d"
  "CMakeFiles/avd_datasets.dir/src/taillight_windows.cpp.o"
  "CMakeFiles/avd_datasets.dir/src/taillight_windows.cpp.o.d"
  "libavd_datasets.a"
  "libavd_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
