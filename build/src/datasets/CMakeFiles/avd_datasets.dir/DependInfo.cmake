
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/src/dataset_io.cpp" "src/datasets/CMakeFiles/avd_datasets.dir/src/dataset_io.cpp.o" "gcc" "src/datasets/CMakeFiles/avd_datasets.dir/src/dataset_io.cpp.o.d"
  "/root/repo/src/datasets/src/lighting.cpp" "src/datasets/CMakeFiles/avd_datasets.dir/src/lighting.cpp.o" "gcc" "src/datasets/CMakeFiles/avd_datasets.dir/src/lighting.cpp.o.d"
  "/root/repo/src/datasets/src/patches.cpp" "src/datasets/CMakeFiles/avd_datasets.dir/src/patches.cpp.o" "gcc" "src/datasets/CMakeFiles/avd_datasets.dir/src/patches.cpp.o.d"
  "/root/repo/src/datasets/src/scene.cpp" "src/datasets/CMakeFiles/avd_datasets.dir/src/scene.cpp.o" "gcc" "src/datasets/CMakeFiles/avd_datasets.dir/src/scene.cpp.o.d"
  "/root/repo/src/datasets/src/sequence.cpp" "src/datasets/CMakeFiles/avd_datasets.dir/src/sequence.cpp.o" "gcc" "src/datasets/CMakeFiles/avd_datasets.dir/src/sequence.cpp.o.d"
  "/root/repo/src/datasets/src/taillight_windows.cpp" "src/datasets/CMakeFiles/avd_datasets.dir/src/taillight_windows.cpp.o" "gcc" "src/datasets/CMakeFiles/avd_datasets.dir/src/taillight_windows.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/avd_image.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/avd_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
