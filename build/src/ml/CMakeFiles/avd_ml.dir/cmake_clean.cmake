file(REMOVE_RECURSE
  "CMakeFiles/avd_ml.dir/src/calibration.cpp.o"
  "CMakeFiles/avd_ml.dir/src/calibration.cpp.o.d"
  "CMakeFiles/avd_ml.dir/src/cross_validation.cpp.o"
  "CMakeFiles/avd_ml.dir/src/cross_validation.cpp.o.d"
  "CMakeFiles/avd_ml.dir/src/dbn.cpp.o"
  "CMakeFiles/avd_ml.dir/src/dbn.cpp.o.d"
  "CMakeFiles/avd_ml.dir/src/metrics.cpp.o"
  "CMakeFiles/avd_ml.dir/src/metrics.cpp.o.d"
  "CMakeFiles/avd_ml.dir/src/rbm.cpp.o"
  "CMakeFiles/avd_ml.dir/src/rbm.cpp.o.d"
  "CMakeFiles/avd_ml.dir/src/roc.cpp.o"
  "CMakeFiles/avd_ml.dir/src/roc.cpp.o.d"
  "CMakeFiles/avd_ml.dir/src/standardizer.cpp.o"
  "CMakeFiles/avd_ml.dir/src/standardizer.cpp.o.d"
  "CMakeFiles/avd_ml.dir/src/svm.cpp.o"
  "CMakeFiles/avd_ml.dir/src/svm.cpp.o.d"
  "libavd_ml.a"
  "libavd_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
