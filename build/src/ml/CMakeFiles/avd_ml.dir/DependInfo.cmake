
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/src/calibration.cpp" "src/ml/CMakeFiles/avd_ml.dir/src/calibration.cpp.o" "gcc" "src/ml/CMakeFiles/avd_ml.dir/src/calibration.cpp.o.d"
  "/root/repo/src/ml/src/cross_validation.cpp" "src/ml/CMakeFiles/avd_ml.dir/src/cross_validation.cpp.o" "gcc" "src/ml/CMakeFiles/avd_ml.dir/src/cross_validation.cpp.o.d"
  "/root/repo/src/ml/src/dbn.cpp" "src/ml/CMakeFiles/avd_ml.dir/src/dbn.cpp.o" "gcc" "src/ml/CMakeFiles/avd_ml.dir/src/dbn.cpp.o.d"
  "/root/repo/src/ml/src/metrics.cpp" "src/ml/CMakeFiles/avd_ml.dir/src/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/avd_ml.dir/src/metrics.cpp.o.d"
  "/root/repo/src/ml/src/rbm.cpp" "src/ml/CMakeFiles/avd_ml.dir/src/rbm.cpp.o" "gcc" "src/ml/CMakeFiles/avd_ml.dir/src/rbm.cpp.o.d"
  "/root/repo/src/ml/src/roc.cpp" "src/ml/CMakeFiles/avd_ml.dir/src/roc.cpp.o" "gcc" "src/ml/CMakeFiles/avd_ml.dir/src/roc.cpp.o.d"
  "/root/repo/src/ml/src/standardizer.cpp" "src/ml/CMakeFiles/avd_ml.dir/src/standardizer.cpp.o" "gcc" "src/ml/CMakeFiles/avd_ml.dir/src/standardizer.cpp.o.d"
  "/root/repo/src/ml/src/svm.cpp" "src/ml/CMakeFiles/avd_ml.dir/src/svm.cpp.o" "gcc" "src/ml/CMakeFiles/avd_ml.dir/src/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
