# Empty dependencies file for avd_ml.
# This may be replaced when dependencies are built.
