file(REMOVE_RECURSE
  "libavd_ml.a"
)
