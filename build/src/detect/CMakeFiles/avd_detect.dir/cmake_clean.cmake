file(REMOVE_RECURSE
  "CMakeFiles/avd_detect.dir/src/bootstrap.cpp.o"
  "CMakeFiles/avd_detect.dir/src/bootstrap.cpp.o.d"
  "CMakeFiles/avd_detect.dir/src/dark_detector.cpp.o"
  "CMakeFiles/avd_detect.dir/src/dark_detector.cpp.o.d"
  "CMakeFiles/avd_detect.dir/src/dark_training.cpp.o"
  "CMakeFiles/avd_detect.dir/src/dark_training.cpp.o.d"
  "CMakeFiles/avd_detect.dir/src/detection.cpp.o"
  "CMakeFiles/avd_detect.dir/src/detection.cpp.o.d"
  "CMakeFiles/avd_detect.dir/src/evaluation.cpp.o"
  "CMakeFiles/avd_detect.dir/src/evaluation.cpp.o.d"
  "CMakeFiles/avd_detect.dir/src/hog_svm_detector.cpp.o"
  "CMakeFiles/avd_detect.dir/src/hog_svm_detector.cpp.o.d"
  "CMakeFiles/avd_detect.dir/src/multi_model_scan.cpp.o"
  "CMakeFiles/avd_detect.dir/src/multi_model_scan.cpp.o.d"
  "CMakeFiles/avd_detect.dir/src/tracker.cpp.o"
  "CMakeFiles/avd_detect.dir/src/tracker.cpp.o.d"
  "libavd_detect.a"
  "libavd_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
