file(REMOVE_RECURSE
  "libavd_detect.a"
)
