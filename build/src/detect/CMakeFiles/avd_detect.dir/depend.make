# Empty dependencies file for avd_detect.
# This may be replaced when dependencies are built.
