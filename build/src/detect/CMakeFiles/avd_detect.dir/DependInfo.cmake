
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/src/bootstrap.cpp" "src/detect/CMakeFiles/avd_detect.dir/src/bootstrap.cpp.o" "gcc" "src/detect/CMakeFiles/avd_detect.dir/src/bootstrap.cpp.o.d"
  "/root/repo/src/detect/src/dark_detector.cpp" "src/detect/CMakeFiles/avd_detect.dir/src/dark_detector.cpp.o" "gcc" "src/detect/CMakeFiles/avd_detect.dir/src/dark_detector.cpp.o.d"
  "/root/repo/src/detect/src/dark_training.cpp" "src/detect/CMakeFiles/avd_detect.dir/src/dark_training.cpp.o" "gcc" "src/detect/CMakeFiles/avd_detect.dir/src/dark_training.cpp.o.d"
  "/root/repo/src/detect/src/detection.cpp" "src/detect/CMakeFiles/avd_detect.dir/src/detection.cpp.o" "gcc" "src/detect/CMakeFiles/avd_detect.dir/src/detection.cpp.o.d"
  "/root/repo/src/detect/src/evaluation.cpp" "src/detect/CMakeFiles/avd_detect.dir/src/evaluation.cpp.o" "gcc" "src/detect/CMakeFiles/avd_detect.dir/src/evaluation.cpp.o.d"
  "/root/repo/src/detect/src/hog_svm_detector.cpp" "src/detect/CMakeFiles/avd_detect.dir/src/hog_svm_detector.cpp.o" "gcc" "src/detect/CMakeFiles/avd_detect.dir/src/hog_svm_detector.cpp.o.d"
  "/root/repo/src/detect/src/multi_model_scan.cpp" "src/detect/CMakeFiles/avd_detect.dir/src/multi_model_scan.cpp.o" "gcc" "src/detect/CMakeFiles/avd_detect.dir/src/multi_model_scan.cpp.o.d"
  "/root/repo/src/detect/src/tracker.cpp" "src/detect/CMakeFiles/avd_detect.dir/src/tracker.cpp.o" "gcc" "src/detect/CMakeFiles/avd_detect.dir/src/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/avd_image.dir/DependInfo.cmake"
  "/root/repo/build/src/hog/CMakeFiles/avd_hog.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/avd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/avd_datasets.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
