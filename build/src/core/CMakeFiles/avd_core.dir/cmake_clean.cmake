file(REMOVE_RECURSE
  "CMakeFiles/avd_core.dir/src/adaptive_system.cpp.o"
  "CMakeFiles/avd_core.dir/src/adaptive_system.cpp.o.d"
  "CMakeFiles/avd_core.dir/src/lighting_classifier.cpp.o"
  "CMakeFiles/avd_core.dir/src/lighting_classifier.cpp.o.d"
  "CMakeFiles/avd_core.dir/src/system_models.cpp.o"
  "CMakeFiles/avd_core.dir/src/system_models.cpp.o.d"
  "libavd_core.a"
  "libavd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
