file(REMOVE_RECURSE
  "libavd_core.a"
)
