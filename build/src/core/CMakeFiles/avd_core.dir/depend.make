# Empty dependencies file for avd_core.
# This may be replaced when dependencies are built.
