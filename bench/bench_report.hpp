// Shared bench-report harness: every bench that wants machine-readable
// output builds one BenchReport and write()s it as BENCH_<name>.json next to
// the human-readable stdout tables. CI uploads these as artifacts; trend
// tooling diffs them across commits.
//
// One schema for every bench ("avd-bench-v1"):
//   {
//     "schema": "avd-bench-v1",
//     "bench": "<name>",
//     "metrics": {
//       "<metric>": {"value": <number>, "unit": "<unit>",
//                     "better": "higher"|"lower"}
//     },
//     "checks": {"<acceptance check>": true|false},
//     "notes": {"<key>": "<string>"}
//   }
// Parses with obs::json (tests/bench rely on this). Metric names use dotted
// lowercase; checks are the bench's acceptance criteria, so a report with
// every check true is a passing bench.
//
// Output directory: $AVD_BENCH_DIR when set, else the working directory.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>

namespace avd::bench {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void metric(const std::string& name, double value, const std::string& unit,
              const std::string& better = "higher") {
    metrics_[name] = Metric{value, unit, better};
  }
  void check(const std::string& name, bool pass) { checks_[name] = pass; }
  void note(const std::string& name, const std::string& text) {
    notes_[name] = text;
  }

  [[nodiscard]] bool all_checks_pass() const {
    for (const auto& [_, pass] : checks_)
      if (!pass) return false;
    return true;
  }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{\"schema\":\"avd-bench-v1\",\"bench\":\"" +
                      escape(name_) + "\"";
    out += ",\"metrics\":{";
    bool first = true;
    for (const auto& [name, m] : metrics_) {
      if (!first) out += ',';
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", m.value);
      out += '"' + escape(name) + "\":{\"value\":" + buf + ",\"unit\":\"" +
             escape(m.unit) + "\",\"better\":\"" + escape(m.better) + "\"}";
    }
    out += "},\"checks\":{";
    first = true;
    for (const auto& [name, pass] : checks_) {
      if (!first) out += ',';
      first = false;
      out += '"' + escape(name) + "\":" + (pass ? "true" : "false");
    }
    out += "},\"notes\":{";
    first = true;
    for (const auto& [name, text] : notes_) {
      if (!first) out += ',';
      first = false;
      out += '"' + escape(name) + "\":\"" + escape(text) + '"';
    }
    out += "}}";
    return out;
  }

  /// Write BENCH_<name>.json into $AVD_BENCH_DIR (or cwd) and say so on
  /// stdout. Throws std::runtime_error on I/O failure.
  void write() const {
    const char* dir = std::getenv("AVD_BENCH_DIR");
    const std::string path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string()) +
        "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) throw std::runtime_error("BenchReport: cannot open " + path);
    out << to_json() << '\n';
    if (!out) throw std::runtime_error("BenchReport: write failed: " + path);
    std::printf("bench report: %s\n", path.c_str());
  }

 private:
  struct Metric {
    double value = 0.0;
    std::string unit;
    std::string better;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  }

  std::string name_;
  std::map<std::string, Metric> metrics_;
  std::map<std::string, bool> checks_;
  std::map<std::string, std::string> notes_;
};

}  // namespace avd::bench
