// §IV-B reproduction (experiment C3): frame impact of partial
// reconfiguration. Runs the full adaptive system (control plane) over the
// canonical day->tunnel->day->dusk->dark->dusk drive and reports, per
// delivery method: reconfiguration count, dropped vehicle frames, pedestrian
// frames processed and vehicle-engine availability.
//
// Paper: a 20 ms reconfiguration at 50 fps is "equivalent to missing one
// frame", while "the pedestrian detection module continues its work".
#include <cstdio>

#include "avd/core/adaptive_system.hpp"

int main() {
  using namespace avd;
  std::printf("=== bench: reconfig_frame_impact ===\n\n");

  core::TrainingBudget budget;
  budget.vehicle_pos = budget.vehicle_neg = 60;
  budget.pedestrian_pos = budget.pedestrian_neg = 40;
  budget.dbn_windows_per_class = 80;
  budget.pairing_scenes = 40;
  const core::SystemModels models = core::build_system_models(budget);

  const auto spec = data::DriveSequence::canonical_drive({480, 270}, 100);
  const data::DriveSequence drive(spec);
  std::printf(
      "drive: %d frames at 50 fps (%.1f s), segments "
      "day/tunnel/day/dusk/dark/dusk\n\n",
      drive.frame_count(), drive.frame_count() / 50.0);

  std::printf("%-14s %9s %9s %10s %13s %13s\n", "method", "reconfigs",
              "dropped", "ped-frames", "availability", "reconfig-ms");
  for (soc::ReconfigMethod method :
       {soc::ReconfigMethod::AxiHwicap, soc::ReconfigMethod::Pcap,
        soc::ReconfigMethod::ZyCap, soc::ReconfigMethod::PlDmaIcap}) {
    core::AdaptiveSystemConfig cfg;
    cfg.method = method;
    cfg.run_detectors = false;  // control-plane simulation
    core::AdaptiveSystem system(models, cfg);
    const core::AdaptiveRunReport report = system.run(drive);

    double reconfig_ms = 0.0;
    for (const auto& r : report.reconfigs) reconfig_ms = r.duration().as_ms();
    std::printf("%-14s %9d %9d %10d %12.4f%% %13.2f\n", to_string(method),
                report.reconfig_count(), report.dropped_vehicle_frames(),
                report.pedestrian_frames_processed(),
                100.0 * report.vehicle_availability(), reconfig_ms);
  }

  std::printf(
      "\npaper reference: pr-controller drops exactly 1 frame per "
      "reconfiguration (20 ms at 50 fps);\n"
      "pedestrian detection processes every frame regardless of method.\n");

  // Per-event log of the paper's method.
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  core::AdaptiveSystem system(models, cfg);
  const auto report = system.run(drive);
  std::printf("\npr-controller event log:\n%s",
              report.log.to_string().c_str());

  // Where the dropped frames sit relative to the lighting transitions.
  std::printf("\ndropped frames: ");
  for (const auto& f : report.frames)
    if (!f.vehicle_processed) std::printf("%d ", f.index);
  std::printf("\nreconfig triggers at frames: ");
  for (const auto& f : report.frames)
    if (f.reconfig_triggered) std::printf("%d ", f.index);
  std::printf("\n");
  return 0;
}
