// Ablation A4: what does partial reconfiguration actually buy over simply
// configuring *both* vehicle pipelines statically?
//
// The paper's claim (§V): PR keeps utilisation flat so "more free resources
// [are] available ... for the other complex features of ADS". This bench
// quantifies that claim per resource, and adds the first-order power view —
// plus the honest counterpoint the resource model exposes: the PR partition
// must reserve for the *largest* configuration, so for resources where the
// two configurations are unbalanced (DSPs) the reservation can exceed the
// sum of both.
#include <cstdio>

#include "avd/soc/power.hpp"

int main() {
  using namespace avd::soc;
  std::printf("=== bench: ablation_static_vs_pr ===\n\n");

  const DeviceResources device;
  const ModuleResources static_part = sum_modules(static_design_blocks());
  const ModuleResources day_dusk = sum_modules(day_dusk_blocks());
  const ModuleResources dark = sum_modules(dark_blocks());
  const ModuleResources partition =
      floorplan_partition(dark_blocks(), device, {});

  const ModuleResources pr_total = static_part + partition;
  const ModuleResources all_static = static_part + day_dusk + dark;

  auto pct = [&](long used, long avail) {
    return 100.0 * static_cast<double>(used) / static_cast<double>(avail);
  };

  std::printf("%-28s %8s %8s %8s %8s\n", "design", "LUT", "FF", "BRAM", "DSP");
  auto row = [&](const char* name, const ModuleResources& r) {
    std::printf("%-28s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", name,
                pct(r.lut, device.lut), pct(r.ff, device.ff),
                pct(r.bram, device.bram), pct(r.dsp, device.dsp));
  };
  row("PR design (paper)", pr_total);
  row("all-static alternative", all_static);

  std::printf("\nfreed by PR (all-static minus PR), percentage points:\n");
  std::printf("  LUT %+.1f  FF %+.1f  BRAM %+.1f  DSP %+.1f\n",
              pct(all_static.lut - pr_total.lut, device.lut),
              pct(all_static.ff - pr_total.ff, device.ff),
              pct(all_static.bram - pr_total.bram, device.bram),
              pct(all_static.dsp - pr_total.dsp, device.dsp));
  std::printf(
      "  (negative = the PR reservation exceeds the sum of both configs:\n"
      "   the partition must cover the largest configuration per resource,\n"
      "   so unbalanced resources like DSP can be cheaper all-static.)\n");

  // Power view: only the loaded configuration toggles in the PR design;
  // all-static clock-gates the idle pipeline but pays leakage + clock tree.
  std::printf("\nfirst-order power (day operating mode):\n");
  std::printf("%-32s %10s %9s %10s %9s\n", "scenario", "dynamic", "clock",
              "leakage", "total");
  for (const DesignPower& d :
       {pr_design_power("day-dusk"), static_design_power("day-dusk")}) {
    std::printf("%-32s %7.1f mW %6.1f mW %7.1f mW %6.1f mW\n",
                d.scenario.c_str(), d.power.dynamic_mw, d.power.clock_mw,
                d.power.leakage_mw, d.power.total_mw());
  }
  std::printf("\nfirst-order power (dark operating mode):\n");
  std::printf("%-32s %10s %9s %10s %9s\n", "scenario", "dynamic", "clock",
              "leakage", "total");
  for (const DesignPower& d :
       {pr_design_power("dark"), static_design_power("dark")}) {
    std::printf("%-32s %7.1f mW %6.1f mW %7.1f mW %6.1f mW\n",
                d.scenario.c_str(), d.power.dynamic_mw, d.power.clock_mw,
                d.power.leakage_mw, d.power.total_mw());
  }

  const double pr_day = pr_design_power("day-dusk").power.total_mw();
  const double st_day = static_design_power("day-dusk").power.total_mw();
  std::printf("\nPR saves %.1f%% total fabric power in day mode "
              "(the common case)\n",
              100.0 * (st_day - pr_day) / st_day);

  // And the PR tax: 2 reconfigurations per day/night cycle at ~21.5 ms each
  // of ICAP activity — utterly negligible energy against continuous
  // operation; printed for completeness.
  std::printf("PR tax: ~21.5 ms of configuration traffic per lighting "
              "transition (a few per day)\n");
  return 0;
}
