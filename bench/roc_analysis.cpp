// ROC analysis of every classifier in the system: the full threshold
// trade-off behind Table I's single operating points, plus the calibrated
// operating-threshold suggestion each detection module would program into
// its AXI-Lite parameter register.
#include <cstdio>

#include "avd/detect/hog_svm_detector.hpp"
#include "avd/ml/roc.hpp"

namespace {

using avd::data::LightingCondition;

struct Scored {
  std::vector<double> decisions;
  std::vector<int> labels;
};

Scored score(const avd::det::HogSvmModel& model,
             const avd::data::PatchDataset& ds) {
  Scored s;
  for (const auto& p : ds.patches) {
    s.decisions.push_back(model.decision(p.gray));
    s.labels.push_back(p.label);
  }
  return s;
}

void report(const char* name, const Scored& s) {
  const avd::ml::RocCurve curve = avd::ml::roc_curve(s.decisions, s.labels);
  std::printf("%-22s AUC %.3f   best threshold %+.3f   (%zu points)\n", name,
              curve.auc(), curve.best_threshold(), curve.points.size());
  // A compact 5-point sketch of the curve for the log.
  std::printf("    FPR/TPR:");
  const std::size_t n = curve.points.size();
  for (std::size_t k = 0; k < 5; ++k) {
    const auto& p = curve.points[(k * (n - 1)) / 4];
    std::printf("  %.2f/%.2f", p.false_positive_rate, p.true_positive_rate);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== bench: roc_analysis ===\n\n");

  avd::data::VehiclePatchSpec day_tr{LightingCondition::Day, {64, 64}, 150,
                                     150, 0.0, 51001};
  avd::data::VehiclePatchSpec dusk_tr{LightingCondition::Dusk, {64, 64}, 150,
                                      150, 0.0, 51002};
  const auto day_train = avd::data::make_vehicle_patches(day_tr);
  const auto dusk_train = avd::data::make_vehicle_patches(dusk_tr);
  const auto m_day = avd::det::train_hog_svm(day_train, "day");
  const auto m_dusk = avd::det::train_hog_svm(dusk_train, "dusk");
  const auto m_comb = avd::det::train_hog_svm(
      avd::data::PatchDataset::concat(day_train, dusk_train), "combined");

  avd::data::VehiclePatchSpec day_te = day_tr;
  day_te.seed = 51011;
  avd::data::VehiclePatchSpec dusk_te = dusk_tr;
  dusk_te.seed = 51012;
  const auto day_test = avd::data::make_vehicle_patches(day_te);
  const auto dusk_test = avd::data::make_vehicle_patches(dusk_te);

  std::printf("on the DAY test set:\n");
  report("day model", score(m_day, day_test));
  report("dusk model", score(m_dusk, day_test));
  report("combined model", score(m_comb, day_test));

  std::printf("\non the DUSK test set:\n");
  report("day model", score(m_day, dusk_test));
  report("dusk model", score(m_dusk, dusk_test));
  report("combined model", score(m_comb, dusk_test));

  std::printf(
      "\nreading: Table I fixes threshold 0; AUC shows how much of the\n"
      "cross-condition loss is rank damage (low AUC: no threshold saves the\n"
      "model) vs threshold misplacement (high AUC, bad accuracy at 0).\n");
  return 0;
}
