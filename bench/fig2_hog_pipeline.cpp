// Figs. 1-2 reproduction: the HOG+SVM pipeline, stage by stage.
//
// Prints the hardware model's per-stage structure (fill latency / line
// buffers — the "intermediate temporary storage" of Fig. 2), then measures
// the software model of each stage with google-benchmark: gradient + cell
// histogram generation, block normalisation (window descriptor assembly) and
// SVM classification.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "avd/detect/hog_svm_detector.hpp"
#include "avd/image/color.hpp"
#include "avd/soc/hw_pipeline.hpp"

namespace {

void print_stage_table() {
  using namespace avd::soc;
  std::printf("=== bench: fig2_hog_pipeline ===\n\n");
  const HwPipelineModel m = day_dusk_pipeline_model();
  std::printf("Pipeline stages (Fig. 2), fabric %llu MHz:\n",
              static_cast<unsigned long long>(m.fabric_mhz));
  std::printf("%-26s %16s %14s\n", "stage", "fill latency", "line buffers");
  for (const PipelineStage& s : m.stages) {
    std::printf("%-26s %10llu cyc %14d\n", s.name.c_str(),
                static_cast<unsigned long long>(s.fill_latency_cycles),
                s.line_buffers);
  }
  std::printf("total fill latency: %llu cycles (%.2f us)\n",
              static_cast<unsigned long long>(m.fill_latency_cycles()),
              Duration::cycles(m.fill_latency_cycles(), m.fabric_mhz).as_us());
  std::printf("HDTV frame time: %.2f ms -> %.1f fps\n\n",
              m.frame_time(kHdtvFrame).as_ms(), m.max_fps(kHdtvFrame));
}

const avd::img::ImageU8& frame() {
  static const avd::img::ImageU8 f = [] {
    avd::data::SceneGenerator gen(avd::data::LightingCondition::Day, 3);
    return avd::img::rgb_to_gray(
        avd::data::render_scene(gen.random_scene({640, 360}, 2)));
  }();
  return f;
}

const avd::det::HogSvmModel& model() {
  static const avd::det::HogSvmModel m = [] {
    avd::data::VehiclePatchSpec spec;
    spec.n_positive = spec.n_negative = 60;
    return avd::det::train_hog_svm(avd::data::make_vehicle_patches(spec),
                                   "day");
  }();
  return m;
}

void BM_Stage1_GradientAndHistogram(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(avd::hog::compute_cell_grid(frame(), {}));
  }
}
BENCHMARK(BM_Stage1_GradientAndHistogram)->Unit(benchmark::kMillisecond);

void BM_Stage2_BlockNormalization(benchmark::State& state) {
  const avd::hog::CellGrid grid = avd::hog::compute_cell_grid(frame(), {});
  const avd::hog::HogParams params;
  std::vector<float> desc;
  for (auto _ : state) {
    for (int cy = 0; cy + 8 <= grid.cells_y(); cy += 4)
      for (int cx = 0; cx + 8 <= grid.cells_x(); cx += 4)
        avd::hog::window_descriptor(grid, params, cx, cy, 8, 8, desc);
    benchmark::DoNotOptimize(desc);
  }
}
BENCHMARK(BM_Stage2_BlockNormalization)->Unit(benchmark::kMillisecond);

void BM_Stage3_SvmClassification(benchmark::State& state) {
  const avd::hog::CellGrid grid = avd::hog::compute_cell_grid(frame(), {});
  const avd::hog::HogParams params;
  std::vector<float> desc;
  avd::hog::window_descriptor(grid, params, 0, 0, 8, 8, desc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model().svm.decision(desc));
  }
}
BENCHMARK(BM_Stage3_SvmClassification);

void BM_FullPipeline_SingleWindow(benchmark::State& state) {
  const avd::img::ImageU8 patch = frame().crop({100, 100, 64, 64});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model().decision(patch));
  }
}
BENCHMARK(BM_FullPipeline_SingleWindow)->Unit(benchmark::kMicrosecond);

void BM_FullPipeline_MultiscaleFrame(benchmark::State& state) {
  avd::det::SlidingWindowParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        avd::det::detect_multiscale(frame(), model(), params));
  }
}
BENCHMARK(BM_FullPipeline_MultiscaleFrame)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_stage_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
