// Many-stream soak: the sharded front door's scaling story (ISSUE 10).
//
// 256 synthetic camera streams (AVD_SOAK_STREAMS overrides; CI runs 64)
// served three ways over the same drive sequences:
//
//   A  baseline   one StreamServer, 4 detect workers, no batching
//   B  sharded    ShardedServer, M = 4 shards x 1 detect coordinator,
//                 cross-stream batching fanning scans onto one shared
//                 16-thread pool
//   C  paced      part B's topology under real-time pacing, each stream
//                 offered 1.6x its admitted budget, with per-shard
//                 admission (token buckets + SLO ladder + cross-shard
//                 fleet pressure) protecting admitted-frame latency
//
// Capacity model: detection is simulated_accel_ms = 2 ms of accelerator
// occupancy per frame (sleep-bound, host-independent — the same model as
// overload_soak). The baseline's 4 workers give ~2000 fps aggregate; the
// sharded fleet fans batches onto 16 pool threads for ~8000 fps. The
// headline is the aggregate-throughput ratio B/A, guarded at >= 1.5x
// (structural headroom: the capacity ratio is 4x).
//
// Part C guards the admitted-p99 headline: a small DropOldest detect queue
// plus per-stream buckets bound how long any admitted frame waits, so p99
// stays inside the paper's 20 ms budget while every stream is offered 1.6x
// its admitted budget. Paced sources need a thread per stream, so at the
// full 256-stream scale the process runs ~370 threads; on a small host
// (this container has one core) the OS scheduler itself adds a flat
// tens-of-ms wakeup tail that has nothing to do with the admission plane
// (measured: 64 streams -> p99 7.6 ms, 256 streams -> p99 ~30 ms with an
// unchanged p50 of ~3.5 ms). The self-check therefore enforces the 20 ms
// budget at <= 64 streams (the CI lane) and a 100 ms sanity bound above
// that; the p99 headline itself is tracked by bench_diff either way.
//
// Telemetry reconciliation rides along: after part B the shard= rollup
// marginals of runtime.frames must sum to exactly the frames the sharded
// serve produced — the same invariant the front door's /metricsz exports.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "avd/obs/metrics.hpp"
#include "avd/runtime/sharded_server.hpp"
#include "avd/runtime/thread_pool.hpp"
#include "bench_report.hpp"

namespace {

using Clock = std::chrono::steady_clock;

avd::core::TrainingBudget tiny_budget() {
  avd::core::TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 30;
  b.pedestrian_pos = b.pedestrian_neg = 20;
  b.dbn_windows_per_class = 40;
  b.pairing_scenes = 20;
  return b;
}

int stream_count_from_env() {
  if (const char* env = std::getenv("AVD_SOAK_STREAMS"))
    if (const int n = std::atoi(env); n > 0) return std::clamp(n, 8, 1024);
  return 256;
}

/// Real-time source: frame i is released no earlier than epoch + i * period
/// (phase staggers the fleet so arrivals are not synchronized bursts).
class PacedFrameSource final : public avd::runtime::FrameSource {
 public:
  PacedFrameSource(avd::data::DriveSequence sequence,
                   std::chrono::microseconds period,
                   std::chrono::microseconds phase)
      : sequence_(std::move(sequence)), period_(period), phase_(phase) {}

  [[nodiscard]] int frame_count() const override {
    return sequence_.frame_count();
  }

  [[nodiscard]] std::optional<avd::data::SequenceFrame> next() override {
    if (next_ >= sequence_.frame_count()) return std::nullopt;
    if (next_ == 0) epoch_ = Clock::now() + phase_;
    std::this_thread::sleep_until(epoch_ + next_ * period_);
    return sequence_.frame(next_++);
  }

 private:
  avd::data::DriveSequence sequence_;
  std::chrono::microseconds period_;
  std::chrono::microseconds phase_;
  Clock::time_point epoch_;
  int next_ = 0;
};

}  // namespace

int main() {
  std::printf("=== bench: many_stream_soak ===\n\n");

  const int kStreams = stream_count_from_env();
  constexpr int kFramesPerSegment = 2;  // canonical_drive: 6 segments -> 12
  constexpr double kAccelMs = 2.0;
  constexpr int kShards = 4;
  constexpr int kPoolThreads = 16;
  constexpr int kBaselineWorkers = 4;

  std::printf("training models (tiny budget)...\n");
  avd::core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;  // control plane + accelerator occupancy
  const avd::core::AdaptiveSystem system(
      avd::core::build_system_models(tiny_budget()), cfg);

  std::printf("generating %d drive sequences...\n", kStreams);
  std::vector<avd::data::DriveSequence> seqs;
  std::uint64_t total_frames = 0;
  for (int i = 0; i < kStreams; ++i) {
    avd::data::SequenceSpec spec = avd::data::DriveSequence::canonical_drive(
        {240, 136}, kFramesPerSegment);
    spec.seed = 77000 + static_cast<std::uint64_t>(i);
    seqs.emplace_back(spec);
    total_frames += static_cast<std::uint64_t>(seqs.back().frame_count());
  }

  const auto count_frames =
      [](const std::vector<avd::runtime::StreamResult>& results) {
        std::uint64_t n = 0;
        for (const auto& r : results) n += r.report.frames.size();
        return n;
      };

  // --- part A: baseline, one server, no batching ------------------------
  avd::runtime::StreamServerConfig base_sc;
  base_sc.ingest_workers = 4;
  base_sc.control_workers = 2;
  base_sc.detect_workers = kBaselineWorkers;
  base_sc.queue_capacity = 32;
  base_sc.simulated_accel_ms = kAccelMs;
  std::printf("\n[A] baseline: 1 server, %d detect workers, no batching, "
              "%d streams x %d frames...\n",
              kBaselineWorkers, kStreams,
              static_cast<int>(total_frames) / kStreams);
  avd::runtime::StreamServer baseline(system, base_sc);
  Clock::time_point t0 = Clock::now();
  const auto base_results = baseline.serve_sequences(seqs);
  const double base_s = std::chrono::duration<double>(Clock::now() - t0).count();
  const std::uint64_t base_frames = count_frames(base_results);
  const double base_fps = static_cast<double>(base_frames) / base_s;
  std::printf("[A] %.2f s wall, %llu frames -> %.0f fps aggregate\n", base_s,
              static_cast<unsigned long long>(base_frames), base_fps);

  // --- part B: sharded + cross-stream batching --------------------------
  avd::runtime::ThreadPool pool(kPoolThreads);
  avd::runtime::ShardedServerConfig fc;
  fc.shards = kShards;
  fc.shard.ingest_workers = 4;
  fc.shard.control_workers = 2;
  fc.shard.detect_workers = 1;  // one batch coordinator per shard
  fc.shard.queue_capacity = 32;
  fc.shard.scan_pool = &pool;
  fc.shard.cross_stream_batching = true;
  fc.shard.detect_batch_max = kPoolThreads;
  fc.shard.simulated_accel_ms = kAccelMs;
  std::printf("\n[B] sharded: %d shards x 1 coordinator, batching onto a "
              "shared %d-thread pool...\n", kShards, kPoolThreads);
  avd::runtime::ShardedServer sharded(system, fc);
  t0 = Clock::now();
  const auto shard_results = sharded.serve_sequences(seqs);
  const double shard_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const std::uint64_t shard_frames = count_frames(shard_results);
  const double shard_fps = static_cast<double>(shard_frames) / shard_s;
  const double speedup = shard_fps / base_fps;
  std::printf("[B] %.2f s wall, %llu frames -> %.0f fps aggregate "
              "(%.2fx baseline)\n", shard_s,
              static_cast<unsigned long long>(shard_frames), shard_fps,
              speedup);

  // Telemetry reconciliation: the shard= marginals rollup() derived must
  // sum to exactly the frames part B served (part C's series carry an extra
  // phase= label, so they fold into their own marginals, not these).
  avd::obs::MetricsRegistry& registry = avd::obs::MetricsRegistry::global();
  double marginal_sum = 0.0;
  for (int m = 0; m < kShards; ++m)
    marginal_sum += static_cast<double>(
        registry.counter("runtime.frames", {{"shard", std::to_string(m)}})
            .value());
  const bool marginals_ok =
      marginal_sum == static_cast<double>(shard_frames);
  std::printf("[B] shard= rollup marginals: %.0f frames (%s)\n", marginal_sum,
              marginals_ok ? "reconciled" : "MISMATCH");

  // --- part C: paced sharded fleet under admission ----------------------
  // Real-time pacing is sized per STREAM, not against the sleep-model
  // detect capacity: the paced fleet's true bottleneck on a small host is
  // control-plane CPU (decide/evaluate/collect are real work, only the
  // accelerator is a sleep), so the aggregate offered rate must stay in
  // CPU budget on a single core. Each stream offers 8 fps against a 5 fps
  // admitted budget — 1.6x per-stream overload for the buckets to shed —
  // while the detect plane keeps ample headroom, so the admitted-p99
  // headline measures the admission plane, not host scheduling stalls.
  constexpr double kOfferedPerStreamFps = 8.0;
  constexpr double kAdmittedPerStreamFps = 5.0;
  const double per_stream_fps = kOfferedPerStreamFps;
  const double offered_fps = per_stream_fps * kStreams;
  const auto period = std::chrono::microseconds(
      static_cast<std::int64_t>(1e6 / per_stream_fps));
  avd::runtime::ShardedServerConfig pc = fc;
  pc.shard.metric_labels = {{"phase", "paced"}};  // keep B's series clean
  // Paced sources sleep in next(): give each shard enough ingest workers
  // for its expected share plus hash-placement skew, so no source waits
  // behind another's pacing sleep.
  pc.shard.ingest_workers = kStreams / kShards + 24;
  // The control stage must never be the choke point: an ingest worker
  // blocked pushing into a full control queue has already stamped the
  // frame's latency clock, so a control backlog reads as admitted tail
  // latency. Four workers per shard keep control drain above the offered
  // rate; the intended bottleneck is the accelerator behind DropOldest.
  pc.shard.control_workers = 4;
  // Bounded admitted wait: an 8-deep DropOldest queue in front of a
  // coordinator that fans 8-frame batches onto the pool (~4 ms/cycle)
  // keeps any admitted frame's queue time in single-digit milliseconds;
  // overflow becomes explicit backpressure-drop reports, never tail
  // latency.
  pc.shard.queue_capacity = 8;
  pc.shard.detect_batch_max = 8;
  pc.shard.detect_policy = avd::runtime::OverflowPolicy::DropOldest;
  pc.shard.slo.enabled = true;
  pc.shard.slo.frame_budget_ms = 20.0;
  pc.shard.slo.telemetry_period = std::chrono::milliseconds(100);
  pc.shard.slo.deadline_miss_degraded = 0.05;
  pc.shard.slo.deadline_miss_unhealthy = 2.0;  // never: no health level 3
  pc.shard.slo.drop_rate_degraded = 0.02;
  pc.shard.slo.drop_rate_unhealthy = 2.0;      // never
  // Fleet admission: per-stream buckets shed the raw excess; the ladder
  // (capped at level 2) and the cross-shard fleet-pressure signal handle
  // sustained distress.
  pc.shard.admission.enabled = true;
  pc.shard.admission.bucket.rate_fps = kAdmittedPerStreamFps;
  pc.shard.admission.bucket.burst = 2;
  pc.shard.admission.ladder.skip_modulus = 3;
  pc.shard.admission.ladder.escalate_after_windows = 5;
  pc.shard.admission.ladder.max_degraded_level = 2;
  pc.shard.admission.ladder.recover_after_windows = 100000;
  pc.fleet_pressure_fraction = 0.5;

  std::printf("\n[C] paced: %d streams at %.1f fps each (%.0f fps offered, "
              "%.0f fps/stream admitted budget), per-shard admission...\n",
              kStreams, per_stream_fps, offered_fps, kAdmittedPerStreamFps);
  std::vector<avd::runtime::NamedStream> paced;
  for (int i = 0; i < kStreams; ++i)
    paced.push_back({"s" + std::to_string(i),
                     std::make_unique<PacedFrameSource>(
                         seqs[static_cast<std::size_t>(i)], period,
                         i * period / kStreams)});
  avd::runtime::ShardedServer paced_front(system, pc);
  t0 = Clock::now();
  const auto paced_results = paced_front.serve(std::move(paced));
  const double paced_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::uint64_t paced_frames = count_frames(paced_results);
  std::uint64_t shed = 0, drops = 0;
  int streams_level3 = 0;
  for (const auto& r : paced_results) {
    shed += r.shed_frames;
    drops += r.backpressure_drops;
    if (r.degrade_level == avd::runtime::DegradeLevel::Shed) ++streams_level3;
  }
  double p50_ms = 0.0, p99_ms = 0.0;
  for (int m = 0; m < kShards; ++m) {
    const auto& h = registry.histogram(
        "runtime.frame.admitted_latency_ns",
        {{"phase", "paced"}, {"shard", std::to_string(m)}});
    const double shard_p50 = static_cast<double>(h.percentile_ns(0.50)) / 1e6;
    const double shard_p99 = static_cast<double>(h.percentile_ns(0.99)) / 1e6;
    std::printf("[C]   shard %d: admitted p50 %.3f ms, p99 %.3f ms\n", m,
                shard_p50, shard_p99);
    p50_ms = std::max(p50_ms, shard_p50);
    p99_ms = std::max(p99_ms, shard_p99);
  }
  const double admitted_fps =
      static_cast<double>(paced_frames - shed) / paced_s;
  std::printf("[C] %.2f s wall, %llu frames (%llu shed, %llu dropped), "
              "admitted p99 %.3f ms (budget 20 ms, worst shard)\n", paced_s,
              static_cast<unsigned long long>(paced_frames),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(drops), p99_ms);

  avd::bench::BenchReport report("many_stream_soak");
  report.metric("many_stream.baseline_fps", base_fps, "fps", "higher");
  report.metric("many_stream.sharded_fps", shard_fps, "fps", "higher");
  report.metric("many_stream.aggregate_speedup_x", speedup, "x", "higher");
  report.metric("many_stream.admitted_p99_ms", p99_ms, "ms", "lower");
  report.metric("many_stream.admitted_fps", admitted_fps, "fps", "higher");
  report.check("aggregate_speedup_ge_1p5x", speedup >= 1.5);
  report.check("all_frames_accounted_baseline", base_frames == total_frames);
  report.check("all_frames_accounted_sharded", shard_frames == total_frames);
  report.check("all_frames_accounted_paced", paced_frames == total_frames);
  report.check("shard_marginals_reconcile", marginals_ok);
  // 20 ms is the paper budget; it is enforceable up to ~64 paced streams
  // (one thread each). Beyond that, single-core scheduler wakeup jitter
  // dominates the tail (see the header comment), so the check degrades to
  // a sanity bound while bench_diff still tracks the headline value.
  const double p99_bound_ms = kStreams <= 64 ? 20.0 : 100.0;
  report.check("admitted_p99_bounded", p99_ms < p99_bound_ms);
  report.check("no_stream_dropped", streams_level3 == 0);
  report.note("load_model",
              std::to_string(kStreams) +
                  " streams; baseline 4 workers x 2 ms accel (~2000 fps); "
                  "sharded 4x1 coordinators batching onto 16 pool threads "
                  "(~8000 fps); paced part offers 8 fps/stream against a "
                  "5 fps/stream admitted budget with per-shard admission");
  report.write();
  return 0;
}
