// Table II reproduction: resource utilisation of the static design, the
// floor-planned reconfigurable partition, the two partial configurations and
// the total. Also runs ablation A3: floor-plan margin sweep vs fit.
#include <cstdio>

#include "avd/soc/bitstream.hpp"
#include "avd/soc/resources.hpp"

int main() {
  using namespace avd::soc;
  std::printf("=== bench: table2_resources ===\n\n");

  const DeviceResources device;
  std::printf("Available Resources: LUT %ld  FF %ld  BRAM %ld  DSP48 %ld\n\n",
              device.lut, device.ff, device.bram, device.dsp);

  std::printf("%-26s %6s %6s %6s %6s\n", "Design", "LUT", "FF", "BRAM",
              "DSP48");
  for (const UtilizationRow& r : table2_rows()) {
    std::printf("%-26s %5d%% %5d%% %5d%% %5d%%\n", r.name.c_str(), r.lut_pct,
                r.ff_pct, r.bram_pct, r.dsp_pct);
  }
  std::printf(
      "\nPaper Table II:            LUT    FF    BRAM  DSP48\n"
      "  Static Design             21%%   10%%    12%%    1%%\n"
      "  Reconfigurable Partition  45%%   45%%    40%%   40%%\n"
      "  Day and Dusk Design       19%%    9%%    11%%    1%%\n"
      "  Dark Design               40%%   23%%    19%%   29%%\n"
      "  Total Usage               66%%   55%%    52%%   41%%\n");

  // Per-block inventory behind the rows.
  auto dump_blocks = [](const char* title,
                        const std::vector<ModuleResources>& blocks) {
    std::printf("\n%s\n", title);
    for (const ModuleResources& b : blocks)
      std::printf("  %-24s LUT %6ld  FF %6ld  BRAM %4ld  DSP %4ld\n",
                  b.name.c_str(), b.lut, b.ff, b.bram, b.dsp);
  };
  dump_blocks("Static partition blocks:", static_design_blocks());
  dump_blocks("Day/dusk configuration blocks:", day_dusk_blocks());
  dump_blocks("Dark configuration blocks:", dark_blocks());

  // Ablation A3: margin sweep. The paper allocates "about 1.2 times" the
  // largest configuration; smaller margins eventually fail to fit.
  std::printf(
      "\nAblation A3: floor-plan margin vs fit and bitstream size\n"
      "%8s %10s %12s %14s %14s\n",
      "margin", "fits-dark", "fits-daydusk", "partition-LUT%", "bitstream-MB");
  for (double margin : {0.85, 0.95, 1.0, 1.05, 1.125, 1.2, 1.35, 1.5}) {
    FloorplanParams params;
    params.logic_margin = margin;
    const ModuleResources part =
        floorplan_partition(dark_blocks(), device, params);
    const PartialBitstream bits =
        make_partial_bitstream("dark", part, device, {});
    std::printf("%8.3f %10s %12s %13.1f%% %13.2f\n", margin,
                fits(sum_modules(dark_blocks()), part) ? "yes" : "NO",
                fits(sum_modules(day_dusk_blocks()), part) ? "yes" : "NO",
                100.0 * static_cast<double>(part.lut) / device.lut,
                bits.megabytes());
  }
  return 0;
}
