// Figs. 3-4 reproduction: the dark-condition pipeline stage by stage —
// chroma/luma threshold + AND merge, downsample, closing, sliding DBN,
// spatial correlation & matching.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "avd/detect/dark_training.hpp"
#include "avd/image/color.hpp"
#include "avd/image/morphology.hpp"
#include "avd/image/resize.hpp"
#include "avd/image/threshold.hpp"
#include "avd/soc/hw_pipeline.hpp"

namespace {

void print_stage_table() {
  using namespace avd::soc;
  std::printf("=== bench: fig4_dark_pipeline ===\n\n");
  const HwPipelineModel m = dark_pipeline_model();
  std::printf("Pipeline stages (Fig. 4), fabric %llu MHz:\n",
              static_cast<unsigned long long>(m.fabric_mhz));
  std::printf("%-26s %16s %14s\n", "stage", "fill latency", "line buffers");
  for (const PipelineStage& s : m.stages)
    std::printf("%-26s %10llu cyc %14d\n", s.name.c_str(),
                static_cast<unsigned long long>(s.fill_latency_cycles),
                s.line_buffers);
  std::printf("HDTV frame time: %.2f ms -> %.1f fps\n\n",
              m.frame_time(kHdtvFrame).as_ms(), m.max_fps(kHdtvFrame));
}

const avd::det::DarkVehicleDetector& detector() {
  static const avd::det::DarkVehicleDetector d = [] {
    avd::det::DarkTrainingSpec spec;
    spec.windows.per_class = 120;
    spec.dbn.pretrain.epochs = 12;
    spec.dbn.finetune_epochs = 30;
    spec.pairing_scenes = 60;
    return avd::det::train_dark_detector(spec);
  }();
  return d;
}

const avd::img::RgbImage& frame() {
  static const avd::img::RgbImage f = [] {
    avd::data::SceneGenerator gen(avd::data::LightingCondition::Dark, 4);
    return avd::data::render_scene(gen.random_scene({1920, 1080}, 3));
  }();
  return f;
}

void BM_Stage1_SplitAndThreshold(benchmark::State& state) {
  for (auto _ : state) {
    const avd::img::YcbcrImage ycc = avd::img::rgb_to_ycbcr(frame());
    benchmark::DoNotOptimize(avd::img::taillight_roi_mask(ycc));
  }
}
BENCHMARK(BM_Stage1_SplitAndThreshold)->Unit(benchmark::kMillisecond);

void BM_Stage2_Downsample(benchmark::State& state) {
  const avd::img::ImageU8 mask =
      avd::img::taillight_roi_mask(avd::img::rgb_to_ycbcr(frame()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(avd::img::downsample_or(mask, 3));
  }
}
BENCHMARK(BM_Stage2_Downsample)->Unit(benchmark::kMillisecond);

void BM_Stage3_Closing(benchmark::State& state) {
  const avd::img::ImageU8 ds = avd::img::downsample_or(
      avd::img::taillight_roi_mask(avd::img::rgb_to_ycbcr(frame())), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(avd::img::close(ds, {3, 3}));
  }
}
BENCHMARK(BM_Stage3_Closing)->Unit(benchmark::kMillisecond);

void BM_Stage4_SlidingDbn(benchmark::State& state) {
  const avd::img::ImageU8 binary = detector().preprocess(frame());
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector().detect_taillights(binary));
  }
}
BENCHMARK(BM_Stage4_SlidingDbn)->Unit(benchmark::kMillisecond);

void BM_Stage5_SpatialMatching(benchmark::State& state) {
  const auto lights =
      detector().detect_taillights(detector().preprocess(frame()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector().pair_taillights(lights));
  }
}
BENCHMARK(BM_Stage5_SpatialMatching)->Unit(benchmark::kMicrosecond);

void BM_FullDarkPipeline_Hdtv(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector().detect(frame()));
  }
}
BENCHMARK(BM_FullDarkPipeline_Hdtv)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_stage_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
