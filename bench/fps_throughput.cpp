// Experiment C4: the 50 fps / HDTV / 125 MHz claim (abstract, §V).
//
// Part 1 prints the hardware-model throughput of each accelerator (cycles
// per frame at the fabric clock) across resolutions — the numbers the paper
// reports. Part 2 measures the *software models* of the same pipelines with
// google-benchmark, for users running this library on a CPU.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "avd/core/system_models.hpp"
#include "avd/image/color.hpp"
#include "avd/soc/hw_pipeline.hpp"
#include "bench_report.hpp"

namespace {

void print_hw_table(avd::bench::BenchReport& report) {
  using namespace avd::soc;
  std::printf("=== bench: fps_throughput ===\n\n");
  std::printf("Hardware-model throughput (fabric at 125 MHz, 1 px/cycle):\n");
  std::printf("%-20s %12s %12s %10s %8s\n", "pipeline", "resolution",
              "frame time", "max fps", ">=50fps");
  for (const HwPipelineModel& model :
       {day_dusk_pipeline_model(), dark_pipeline_model(),
        pedestrian_pipeline_model()}) {
    for (const avd::img::Size res :
         {kHdtvFrame, avd::img::Size{1280, 720}, avd::img::Size{640, 360}}) {
      std::printf("%-20s %6dx%-5d %9.2f ms %10.1f %8s\n", model.name.c_str(),
                  res.width, res.height, model.frame_time(res).as_ms(),
                  model.max_fps(res),
                  model.meets_rate(res, kTargetFps) ? "yes" : "NO");
    }
    report.metric(model.name + ".hdtv_max_fps", model.max_fps(kHdtvFrame),
                  "fps");
    report.check(model.name + ".hdtv_meets_50fps",
                 model.meets_rate(kHdtvFrame, kTargetFps));
  }

  // Clock sweep: where the 50 fps target breaks.
  std::printf("\nFabric-clock sweep (HDTV, day/dusk pipeline):\n");
  std::printf("%10s %10s %8s\n", "clock MHz", "max fps", ">=50fps");
  for (std::uint64_t mhz : {80, 100, 105, 110, 125, 150, 200}) {
    HwPipelineModel m = day_dusk_pipeline_model();
    m.fabric_mhz = mhz;
    std::printf("%10llu %10.1f %8s\n", static_cast<unsigned long long>(mhz),
                m.max_fps(kHdtvFrame),
                m.meets_rate(kHdtvFrame, kTargetFps) ? "yes" : "NO");
  }
  std::printf("\npaper reference: 50 fps on 1080x1920 at 125 MHz\n\n");
}

// --- Software-model timings (the CPU reference implementation) ---

const avd::core::SystemModels& models() {
  static const avd::core::SystemModels m = [] {
    avd::core::TrainingBudget b;
    b.vehicle_pos = b.vehicle_neg = 50;
    b.pedestrian_pos = b.pedestrian_neg = 35;
    b.dbn_windows_per_class = 60;
    b.pairing_scenes = 30;
    return avd::core::build_system_models(b);
  }();
  return m;
}

const avd::img::RgbImage& day_frame() {
  static const avd::img::RgbImage f = [] {
    avd::data::SceneGenerator gen(avd::data::LightingCondition::Day, 1);
    return avd::data::render_scene(gen.random_scene({640, 360}, 2));
  }();
  return f;
}

const avd::img::RgbImage& dark_frame() {
  static const avd::img::RgbImage f = [] {
    avd::data::SceneGenerator gen(avd::data::LightingCondition::Dark, 2);
    return avd::data::render_scene(gen.random_scene({640, 360}, 2));
  }();
  return f;
}

void BM_SoftwareHogSvmFrame(benchmark::State& state) {
  const avd::img::ImageU8 gray = avd::img::rgb_to_gray(day_frame());
  avd::det::SlidingWindowParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        avd::det::detect_multiscale(gray, models().day, params));
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SoftwareHogSvmFrame)->Unit(benchmark::kMillisecond);

void BM_SoftwareDarkFrame(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(models().dark.detect(dark_frame()));
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SoftwareDarkFrame)->Unit(benchmark::kMillisecond);

void BM_SoftwareDarkPreprocessOnly(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(models().dark.preprocess(dark_frame()));
  }
}
BENCHMARK(BM_SoftwareDarkPreprocessOnly)->Unit(benchmark::kMillisecond);

void BM_SoftwarePedestrianFrame(benchmark::State& state) {
  const avd::img::ImageU8 gray = avd::img::rgb_to_gray(day_frame());
  avd::det::SlidingWindowParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        avd::det::detect_multiscale(gray, models().pedestrian, params));
  }
}
BENCHMARK(BM_SoftwarePedestrianFrame)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  avd::bench::BenchReport report("fps_throughput");
  report.note("paper", "50 fps on 1080x1920 at 125 MHz (abstract, SV)");
  print_hw_table(report);
  report.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
