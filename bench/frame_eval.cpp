// Frame-level detection quality across conditions and distance bins.
//
// Table I is a patch-classification experiment; this bench measures what a
// deployment actually cares about: full-frame detection recall/precision,
// broken down by target distance (the far bin is the hard tail — the same
// physics behind the paper's "very dark subset" exclusion).
#include <cstdio>

#include "avd/datasets/patches.hpp"
#include "avd/detect/bootstrap.hpp"
#include "avd/detect/dark_training.hpp"
#include "avd/detect/hog_svm_detector.hpp"
#include "avd/detect/evaluation.hpp"
#include "avd/image/color.hpp"

namespace {

using avd::data::LightingCondition;

void report(const char* name, const avd::det::FrameEvalResult& r) {
  std::printf(
      "%-28s recall %5.1f%%  precision %5.1f%%  F1 %5.1f%%  FP/frame %.2f\n",
      name, 100.0 * r.recall(), 100.0 * r.precision(), 100.0 * r.f1(),
      static_cast<double>(r.false_positives) / std::max(1, r.frames));
  const char* bins[] = {"near", "mid", "far"};
  std::printf("  by distance:");
  for (int b = 0; b < 3; ++b)
    std::printf("  %s %4.0f%% (%d/%d)", bins[b], 100.0 * r.by_bin[b].recall(),
                r.by_bin[b].hits, r.by_bin[b].truth);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== bench: frame_eval ===\n\n");

  // HOG day detector on day frames.
  avd::data::VehiclePatchSpec day_tr{LightingCondition::Day, {64, 64}, 150,
                                     150, 0.0, 61001};
  const auto day_model =
      avd::det::train_hog_svm(avd::data::make_vehicle_patches(day_tr), "day");
  avd::det::SlidingWindowParams scan;
  scan.score_threshold = 0.3;

  avd::det::FrameEvalSpec day_spec;
  day_spec.condition = LightingCondition::Day;
  day_spec.n_frames = 60;
  report("HOG+SVM day, day frames",
         avd::det::evaluate_frames(
             [&](const avd::img::RgbImage& f) {
               return avd::det::detect_multiscale(avd::img::rgb_to_gray(f),
                                                  day_model, scan);
             },
             day_spec));

  // Same model with two rounds of hard-negative mining (bootstrap.hpp):
  // scanning-specific false positives the patch sampler never shows.
  avd::det::BootstrapSpec mine;
  mine.rounds = 2;
  mine.scenes_per_round = 40;
  mine.scan.score_threshold = 0.0;
  const auto mined_model = avd::det::bootstrap_train_hog_svm(
      avd::data::make_vehicle_patches(day_tr), "day-mined", mine);
  report("  + hard-negative mining",
         avd::det::evaluate_frames(
             [&](const avd::img::RgbImage& f) {
               return avd::det::detect_multiscale(avd::img::rgb_to_gray(f),
                                                  mined_model, scan);
             },
             day_spec));

  // Dark detector on dark frames.
  avd::det::DarkTrainingSpec dark_spec;
  dark_spec.windows.per_class = 150;
  dark_spec.pairing_scenes = 80;
  const auto dark_detector = avd::det::train_dark_detector(dark_spec);

  avd::det::FrameEvalSpec dark_eval;
  dark_eval.condition = LightingCondition::Dark;
  dark_eval.n_frames = 60;
  report("DBN dark pipeline, dark frames",
         avd::det::evaluate_frames(
             [&](const avd::img::RgbImage& f) { return dark_detector.detect(f); },
             dark_eval));

  // Cross-condition mismatch: the day model on dark frames — the failure
  // the adaptive system exists to prevent.
  avd::det::FrameEvalSpec mismatch = dark_eval;
  report("HOG+SVM day, DARK frames",
         avd::det::evaluate_frames(
             [&](const avd::img::RgbImage& f) {
               return avd::det::detect_multiscale(avd::img::rgb_to_gray(f),
                                                  day_model, scan);
             },
             mismatch));

  std::printf(
      "\nreading: the far bin carries most of the misses in every row; the\n"
      "day-model-on-dark row is the catastrophic mismatch the lighting-"
      "adaptive\nreconfiguration eliminates.\n");
  return 0;
}
