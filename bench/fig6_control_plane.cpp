// Fig. 6 reproduction: the system-level control plane. What the ARM software
// does per frame (DMA register programming, accelerator kicks, completion
// interrupts), what it costs, and whether the high-performance ports can
// carry the video traffic the figure routes through them.
#include <cstdio>

#include "avd/soc/zynq_system.hpp"

int main() {
  using namespace avd::soc;
  std::printf("=== bench: fig6_control_plane ===\n\n");

  ZynqSystem system;
  const VideoFormat& video = system.video();
  std::printf("video: %dx%d, %d B/px, %.0f fps -> %.1f MB/s per stream\n\n",
              video.frame.width, video.frame.height, video.bytes_per_pixel,
              video.fps, video.bandwidth_mbps());

  // HP-port bandwidth budget.
  const HpBudget budget = system.hp_budget();
  std::printf("HP-port budget (capacity %.0f MB/s per port):\n",
              budget.port_capacity_mbps);
  for (const HpStream& s : budget.streams)
    std::printf("  HP%d %-24s %8.1f MB/s (port load %.1f MB/s, %.1f%%)\n",
                s.hp_port, s.name.c_str(), s.mbps, budget.port_load(s.hp_port),
                100.0 * budget.port_load(s.hp_port) /
                    budget.port_capacity_mbps);
  std::printf("feasible: %s, worst port utilisation %.1f%%\n\n",
              budget.feasible() ? "yes" : "NO",
              100.0 * budget.worst_utilization());

  // One software-driven frame cycle.
  const FrameCycleReport report = system.process_frame({0});
  std::printf("per-frame software cycle (both detectors):\n");
  std::printf("  register accesses : %d (%.2f us of AXI-Lite time)\n",
              report.register_accesses, report.control_time.as_us());
  std::printf("  frame-in DMA      : %.2f ms\n", report.input_dma_time.as_ms());
  std::printf("  detection         : %.2f ms\n", report.detect_time.as_ms());
  std::printf("  results-out DMA   : %.3f ms\n",
              report.output_dma_time.as_ms());
  std::printf("  IRQs serviced     : %d\n", report.irqs_serviced);
  std::printf("  end-to-end        : %.2f ms (budget: 2 frame periods = 40 "
              "ms, pipelined)\n\n",
              report.total_latency({0}).as_ms());

  // Resolution sweep: where the control plane + streaming stops fitting.
  std::printf("resolution sweep (50 fps):\n%12s %14s %12s %10s\n",
              "resolution", "cycle latency", "HP worst", "fits");
  for (const avd::img::Size res :
       {avd::img::Size{640, 360}, avd::img::Size{1280, 720},
        avd::img::Size{1920, 1080}, avd::img::Size{3840, 2160}}) {
    ZynqSystem sys(default_platform(), VideoFormat{res, 2, 50.0});
    const FrameCycleReport r = sys.process_frame({0});
    const HpBudget b = sys.hp_budget();
    std::printf("%6dx%-5d %11.2f ms %11.1f%% %10s\n", res.width, res.height,
                r.total_latency({0}).as_ms(), 100.0 * b.worst_utilization(),
                (sys.meets_frame_budget() && b.feasible()) ? "yes" : "NO");
  }

  // Model swap vs reconfiguration: the day<->dusk switch is one register
  // write on the AXI-Lite bus.
  ZynqSystem swap_sys;
  swap_sys.select_vehicle_model(1, {0});
  std::printf("\nday->dusk model swap: 1 register write (%.0f ns) — no "
              "reconfiguration, no dropped frame\n",
              swap_sys.bus().access_latency().as_ns());
  return 0;
}
