// Ablation A2: the design choices inside the dark pipeline (§III-B).
//   1. chroma+luma threshold vs luma-only (does the chroma gate matter?)
//   2. morphological closing vs none
//   3. sliding DBN vs a direct blob-size heuristic (no learning)
//   4. DBN confidence threshold sweep
// Each variant is scored with the frame-level protocol of fig5_dark_accuracy.
#include <cstdio>

#include "avd/detect/dark_training.hpp"

namespace {

using namespace avd;

// Blob-heuristic baseline: replaces the DBN with the geometric size rule.
// Uses the library's stages directly — preprocess, blobs, size rule, pairing.
ml::BinaryCounts evaluate_blob_heuristic(const det::DarkVehicleDetector& ref,
                                         int n_pos, int n_neg,
                                         std::uint64_t seed) {
  ml::BinaryCounts counts;
  data::SceneGenerator gen(data::LightingCondition::Dark, seed);
  for (int i = 0; i < n_pos + n_neg; ++i) {
    const bool truth = i < n_pos;
    const data::SceneSpec scene =
        gen.random_scene({480, 270}, truth ? gen.rng().uniform_int(1, 2) : 0);
    const img::RgbImage frame = data::render_scene(scene);
    const img::ImageU8 mask = ref.preprocess(frame);

    std::vector<det::TaillightDetection> lights;
    for (const img::Blob& blob : img::find_blobs(mask)) {
      det::TaillightDetection t;
      t.center = {static_cast<int>(blob.centroid_x),
                  static_cast<int>(blob.centroid_y)};
      t.blob_box = blob.bbox;
      t.blob_area = blob.area;
      t.cls = det::taillight_class_for_size(blob.bbox.width, blob.bbox.height);
      t.confidence = 1.0;  // the heuristic is always "sure"
      lights.push_back(t);
    }
    const bool predicted = !ref.pair_taillights(lights).empty();
    counts.record(truth, predicted);
  }
  return counts;
}

void report(const char* name, const ml::BinaryCounts& c) {
  std::printf("%-34s acc %6.1f%%  TP %4llu  TN %4llu  FP %4llu  FN %4llu\n",
              name, 100.0 * c.accuracy(),
              static_cast<unsigned long long>(c.tp),
              static_cast<unsigned long long>(c.tn),
              static_cast<unsigned long long>(c.fp),
              static_cast<unsigned long long>(c.fn));
}

}  // namespace

int main() {
  std::printf("=== bench: ablation_dark_variants ===\n\n");

  det::DarkTrainingSpec base_spec;
  base_spec.windows.per_class = 200;
  base_spec.dbn.pretrain.epochs = 15;
  base_spec.dbn.finetune_epochs = 40;
  base_spec.pairing_scenes = 80;

  constexpr int kPos = 120, kNeg = 120;
  constexpr std::uint64_t kSeed = 97531;

  // Full pipeline (reference).
  const det::DarkVehicleDetector full = det::train_dark_detector(base_spec);
  report("full pipeline (paper design)",
         det::evaluate_dark_frames(full, kPos, kNeg, {480, 270}, kSeed));

  // 1. Luma-only threshold: chroma gates disabled. Red distractors and
  //    head-/street-lights now enter the candidate mask.
  {
    det::DarkTrainingSpec spec = base_spec;
    spec.config.threshold.cr_min = 0;
    spec.config.threshold.cb_max = 255;
    const auto variant = det::train_dark_detector(spec);
    report("luma-only threshold (no chroma)",
           det::evaluate_dark_frames(variant, kPos, kNeg, {480, 270}, kSeed));
  }

  // 2. No morphological closing.
  {
    det::DarkTrainingSpec spec = base_spec;
    spec.config.closing = {1, 1};  // identity
    const auto variant = det::train_dark_detector(spec);
    report("no closing",
           det::evaluate_dark_frames(variant, kPos, kNeg, {480, 270}, kSeed));
  }

  // 2b. Median despeckle prefilter enabled (Fig. 3 noise-reduction block).
  {
    det::DarkTrainingSpec spec = base_spec;
    spec.config.median_prefilter = true;
    const auto variant = det::train_dark_detector(spec);
    report("with median despeckle prefilter",
           det::evaluate_dark_frames(variant, kPos, kNeg, {480, 270}, kSeed));
  }

  // 3. Blob-size heuristic instead of the DBN.
  report("blob heuristic instead of DBN",
         evaluate_blob_heuristic(full, kPos, kNeg, kSeed));

  // 4. DBN confidence threshold sweep.
  std::printf("\nDBN confidence threshold sweep:\n");
  for (double conf : {0.3, 0.45, 0.55, 0.7, 0.85, 0.95}) {
    det::DarkDetectorConfig cfg = full.config();
    cfg.dbn_min_confidence = conf;
    const det::DarkVehicleDetector variant(full.dbn(), full.pairing_svm(), cfg);
    char label[64];
    std::snprintf(label, sizeof label, "  min confidence %.2f", conf);
    report(label,
           det::evaluate_dark_frames(variant, kPos, kNeg, {480, 270}, kSeed));
  }

  // 5. Downsample factor sweep (Fig. 4 fixes 3; what if?).
  std::printf("\nDownsample factor sweep:\n");
  for (int f : {1, 2, 3, 5}) {
    det::DarkTrainingSpec spec = base_spec;
    spec.config.downsample_factor = f;
    const auto variant = det::train_dark_detector(spec);
    char label[64];
    std::snprintf(label, sizeof label, "  downsample x%d", f);
    report(label,
           det::evaluate_dark_frames(variant, kPos, kNeg, {480, 270}, kSeed));
  }
  return 0;
}
