// §IV-A reproduction (experiment C2): reconfiguration throughput of the four
// bitstream-delivery methods — AXI HWICAP, PCAP, ZyCAP and the paper's PR
// controller — on the 8 MB partial bitstream, plus a bitstream-size sweep
// (the figure-style series) and a burst-size ablation for the PR controller.
#include <cstdio>

#include "avd/soc/reconfig.hpp"
#include "bench_report.hpp"

int main() {
  using namespace avd::soc;
  std::printf("=== bench: reconfig_throughput ===\n\n");
  avd::bench::BenchReport benchreport("reconfig_throughput");

  const ZynqPlatform platform = default_platform();
  const DeviceResources device;
  const PartialBitstream bits = make_partial_bitstream(
      "dark", floorplan_partition(dark_blocks(), device, {}), device, {});

  std::printf("Partial bitstream: %.2f MB (paper: 8 MB)\n", bits.megabytes());
  std::printf("Configuration-port ceiling: %.0f MB/s\n\n",
              config_port_ceiling_mbps(platform));

  std::printf("%-14s %12s %12s %12s   paper MB/s\n", "method",
              "throughput", "reconfig", "% ceiling");
  const double paper[] = {19.0, 145.0, 382.0, 390.0};
  const auto rows = compare_methods(platform, bits);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-14s %8.1f MB/s %9.2f ms %10.1f%%   %10.0f\n",
                to_string(rows[i].method), rows[i].throughput_mbps,
                rows[i].reconfig_time.as_ms(), rows[i].pct_of_ceiling,
                paper[i]);
  }
  const double pr_speedup = rows[3].throughput_mbps / rows[1].throughput_mbps;
  std::printf("\nspeed-up of pr-controller over pcap: %.2fx (paper: >2.6x)\n",
              pr_speedup);
  for (const auto& r : rows)
    benchreport.metric(std::string(to_string(r.method)) + ".throughput",
                       r.throughput_mbps, "MB/s");
  benchreport.metric("pr_controller_vs_pcap_speedup", pr_speedup, "x");
  benchreport.check("pr_controller_speedup_over_2.6x", pr_speedup > 2.6);
  benchreport.note("paper", "SIV-A: 19/145/382/390 MB/s on the 8 MB bitstream");

  // Figure-style series: reconfiguration time vs bitstream size per method.
  std::printf("\nReconfiguration time (ms) vs partial bitstream size:\n");
  std::printf("%10s", "size MB");
  for (const auto& r : rows) std::printf(" %14s", to_string(r.method));
  std::printf("\n");
  for (std::uint64_t mb : {1, 2, 4, 8, 12, 16}) {
    std::printf("%10llu", static_cast<unsigned long long>(mb));
    for (ReconfigMethod m :
         {ReconfigMethod::AxiHwicap, ReconfigMethod::Pcap,
          ReconfigMethod::ZyCap, ReconfigMethod::PlDmaIcap}) {
      const TransferRecord rec =
          model_transfer(reconfig_path(platform, m), mb << 20);
      std::printf(" %14.2f", rec.elapsed.as_ms());
    }
    std::printf("\n");
  }

  // Ablation: DMA burst length of the PR controller path. Shows why the
  // word-based HWICAP is doomed and where the knee sits.
  std::printf("\nPR-controller burst-length ablation (8 MB bitstream):\n");
  std::printf("%12s %14s %12s\n", "burst bytes", "throughput", "% ceiling");
  for (std::uint32_t burst : {4u, 16u, 64u, 256u, 1024u, 4096u}) {
    TransferPath path = reconfig_path(platform, ReconfigMethod::PlDmaIcap);
    path.burst_bytes = burst;
    const TransferRecord rec = model_transfer(path, bits.bytes);
    std::printf("%12u %9.1f MB/s %11.1f%%\n", burst, rec.throughput(),
                100.0 * rec.throughput() / config_port_ceiling_mbps(platform));
  }

  // Sensitivity analysis: the whole §IV-A story hinges on the PS central
  // interconnect's per-burst arbitration cost. Sweep it and watch PCAP sink
  // while the PL-side paths (which never touch it) hold still.
  std::printf(
      "\nPS central-interconnect latency sensitivity (MB/s on 8 MB):\n"
      "%14s %10s %10s %14s\n",
      "latency ns", "pcap", "zycap", "pr-controller");
  for (const std::uint64_t ns : {60ull, 120ull, 180ull, 360ull, 720ull}) {
    ZynqPlatform p = default_platform();
    p.ps_central_interconnect.txn_latency = Duration::from_ns(ns);
    std::printf("%14llu", static_cast<unsigned long long>(ns));
    for (ReconfigMethod m : {ReconfigMethod::Pcap, ReconfigMethod::ZyCap,
                             ReconfigMethod::PlDmaIcap}) {
      const TransferRecord rec =
          model_transfer(reconfig_path(p, m), bits.bytes);
      std::printf(" %10.1f", rec.throughput());
    }
    std::printf("\n");
  }

  // One-time staging cost of the PR controller (PS DDR -> PL DDR).
  ReconfigController ctrl(platform, ReconfigMethod::PlDmaIcap);
  const Duration staging = ctrl.stage(bits);
  std::printf(
      "\nOne-time staging of the bitstream into PL DDR: %.2f ms "
      "(off the critical path; done at boot)\n",
      staging.as_ms());
  benchreport.write();
  return 0;
}
