// Runtime scaling: aggregate throughput of the avd::runtime StreamServer
// as the detect worker pool grows, at 1/2/4/8 concurrent camera streams.
//
// The detect stage models a blocking dispatch to the PL accelerator
// (simulated_accel_ms): on the paper's Zynq the fabric processes one frame
// per 20 ms and the ARM core's job is to keep it fed. Worker scaling here
// therefore measures what the serving layer controls — how well concurrent
// streams overlap accelerator occupancy — independent of host CPU count.
// A second section reports the host-CPU-bound mode (run_detectors = true)
// for machines with real cores to spare.
//
// Acceptance (ISSUE 1): >1.8x aggregate throughput from 1 -> 4 workers on
// >= 2 streams, with per-stream results bit-identical to the sequential
// AdaptiveSystem::run() path.
#include <chrono>
#include <cstdio>
#include <vector>

#include "avd/obs/metrics.hpp"
#include "avd/runtime/stream_server.hpp"
#include "bench_report.hpp"

namespace {

using avd::core::AdaptiveRunReport;
using Clock = std::chrono::steady_clock;

avd::core::TrainingBudget tiny_budget() {
  avd::core::TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 30;
  b.pedestrian_pos = b.pedestrian_neg = 20;
  b.dbn_windows_per_class = 40;
  b.pairing_scenes = 20;
  return b;
}

std::vector<avd::data::DriveSequence> make_streams(int n, int frames_per_segment) {
  std::vector<avd::data::DriveSequence> seqs;
  for (int i = 0; i < n; ++i) {
    avd::data::SequenceSpec spec =
        avd::data::DriveSequence::canonical_drive({240, 136}, frames_per_segment);
    spec.seed = 7000 + static_cast<std::uint64_t>(i);
    seqs.emplace_back(spec);
  }
  return seqs;
}

bool reports_identical(const AdaptiveRunReport& a, const AdaptiveRunReport& b) {
  if (a.frames.size() != b.frames.size()) return false;
  if (a.reconfigs.size() != b.reconfigs.size()) return false;
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    const auto& x = a.frames[i];
    const auto& y = b.frames[i];
    if (x.sensed != y.sensed || x.active_config != y.active_config ||
        x.vehicle_processed != y.vehicle_processed ||
        x.light_level != y.light_level ||
        x.vehicle_match.true_positives != y.vehicle_match.true_positives ||
        x.vehicle_match.false_positives != y.vehicle_match.false_positives)
      return false;
  }
  for (std::size_t i = 0; i < a.reconfigs.size(); ++i)
    if (a.reconfigs[i].start.ps != b.reconfigs[i].start.ps ||
        a.reconfigs[i].end.ps != b.reconfigs[i].end.ps)
      return false;
  return true;
}

struct Measurement {
  double fps = 0.0;
  bool identical = true;
};

Measurement measure(const avd::core::AdaptiveSystem& system, int n_streams,
                    int detect_workers, int frames_per_segment,
                    double accel_ms, bool check_identical) {
  const std::vector<avd::data::DriveSequence> streams =
      make_streams(n_streams, frames_per_segment);
  int total_frames = 0;
  for (const auto& s : streams) total_frames += s.frame_count();

  avd::runtime::StreamServerConfig sc;
  sc.ingest_workers = 2;
  sc.control_workers = 2;
  sc.detect_workers = detect_workers;
  sc.queue_capacity = 16;
  sc.simulated_accel_ms = accel_ms;
  avd::runtime::StreamServer server(system, sc);

  const Clock::time_point t0 = Clock::now();
  const std::vector<avd::runtime::StreamResult> results =
      server.serve_sequences(streams);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  Measurement m;
  m.fps = static_cast<double>(total_frames) / seconds;
  if (check_identical) {
    for (std::size_t s = 0; s < streams.size(); ++s)
      m.identical = m.identical &&
                    reports_identical(results[s].report, system.run(streams[s]));
  }
  return m;
}

void run_table(const avd::core::AdaptiveSystem& system, const char* title,
               int frames_per_segment, double accel_ms, bool check_identical,
               avd::bench::BenchReport* report = nullptr) {
  std::printf("%s\n", title);
  std::printf("%8s | %10s %10s %10s %10s | %11s %10s\n", "streams",
              "1 worker", "2 workers", "4 workers", "8 workers", "4w/1w",
              "identical");
  bool accept = false;
  for (const int n_streams : {1, 2, 4, 8}) {
    double fps1 = 0.0, fps4 = 0.0;
    bool identical = true;
    std::printf("%8d |", n_streams);
    for (const int workers : {1, 2, 4, 8}) {
      const Measurement m = measure(system, n_streams, workers,
                                    frames_per_segment, accel_ms,
                                    check_identical);
      identical = identical && m.identical;
      if (workers == 1) fps1 = m.fps;
      if (workers == 4) fps4 = m.fps;
      std::printf(" %10.1f", m.fps);
    }
    const double speedup = fps1 > 0.0 ? fps4 / fps1 : 0.0;
    std::printf(" | %10.2fx %10s\n", speedup,
                check_identical ? (identical ? "yes" : "NO") : "-");
    if (n_streams >= 2 && speedup > 1.8) accept = true;
    if (report != nullptr) {
      char key[64];
      std::snprintf(key, sizeof key, "accel.streams%d.speedup_1w_to_4w",
                    n_streams);
      report->metric(key, speedup, "x");
      if (check_identical)
        report->check("accel.streams" + std::to_string(n_streams) +
                          ".identical_to_sequential",
                      identical);
    }
  }
  std::printf("  (aggregate frames/s; identical = per-stream reports match "
              "sequential run())\n");
  if (check_identical) {
    std::printf("  acceptance >1.8x at 1->4 workers on >=2 streams: %s\n\n",
                accept ? "PASS" : "FAIL");
    if (report != nullptr)
      report->check("accel.speedup_over_1.8x_on_2plus_streams", accept);
  } else {
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("=== bench: runtime_scaling ===\n\n");
  std::printf("training models (tiny budget)...\n");
  avd::bench::BenchReport report("runtime_scaling");
  const avd::core::SystemModels models =
      avd::core::build_system_models(tiny_budget());

  // Part 1 — serving-layer scaling with the accelerator model. Each frame
  // occupies its detect worker for 4 ms (a 5x-sped-up stand-in for the
  // paper's 20 ms PL frame time), so throughput is bounded by how many
  // accelerator dispatches the runtime keeps in flight, not by host cores.
  {
    avd::core::AdaptiveSystemConfig cfg;
    cfg.run_detectors = false;  // control plane + accelerator occupancy
    avd::core::AdaptiveSystem system(models, cfg);
    run_table(system,
              "-- accelerator-occupancy mode (4 ms/frame PL model) --", 25,
              4.0, true, &report);
  }

  // Part 2 — host-CPU-bound mode: the software detectors do the pixel work
  // on the host. Scaling here tracks physical core count (on a 1-core
  // container it stays flat — that is the machine, not the runtime).
  {
    avd::core::AdaptiveSystemConfig cfg;
    cfg.run_detectors = true;
    avd::core::AdaptiveSystem system(models, cfg);
    run_table(system, "-- host-CPU detection mode (software pipelines) --", 3,
              0.0, false);
  }

  // Stage metrics for one loaded configuration, through the runtime's
  // JSON summary (the same numbers ride soc::write_chrome_trace).
  {
    avd::core::AdaptiveSystemConfig cfg;
    cfg.run_detectors = false;
    avd::core::AdaptiveSystem system(models, cfg);
    avd::runtime::StreamServerConfig sc;
    sc.detect_workers = 4;
    sc.simulated_accel_ms = 4.0;
    avd::runtime::StreamServer server(system, sc);
    (void)server.serve_sequences(make_streams(4, 25));
    std::printf("stage metrics (4 streams x 4 workers):\n%s\n",
                avd::runtime::metrics_to_json(server.metrics()).c_str());
  }
  // Tail latency over every frame the benchmark served, from the always-on
  // telemetry histogram the runtime feeds per frame. This is the headline
  // latency number scripts/bench_diff guards against regressions.
  const double p99_ms =
      static_cast<double>(avd::obs::MetricsRegistry::global()
                              .histogram("runtime.frame.latency_ns")
                              .percentile_ns(0.99)) /
      1e6;
  std::printf("frame latency p99 (all served frames): %.3f ms\n\n", p99_ms);
  report.metric("runtime.frame.latency_p99_ms", p99_ms, "ms", "lower");
  report.note("accel_model", "4 ms/frame simulated PL dispatch, 25 frames/segment");
  report.write();
  return 0;
}
