// Multiscale scan throughput: the block-grid scanner against the scalar
// reference path.
//
// Three configurations over the same two-model (vehicle + animal) scan:
//   reference    — per-window descriptor assembly + full-length dot product
//                  (the pre-block-grid scan path, kept as the oracle)
//   blockgrid_1t — precomputed normalised block grid, sliced dot products,
//                  single-threaded
//   blockgrid_4t — same, with pyramid levels and row bands on a 4-thread
//                  avd::runtime::ThreadPool
//
// The block grid removes the per-window L2-hys renormalisation (each
// overlapping block was normalised up to ~49 times per 64x64 window); the
// pool adds core scaling on top. Acceptance (ISSUE 5): >= 3x throughput at
// 4 threads vs the single-thread reference, with detections identical across
// all three configurations.
#include <chrono>
#include <cstdio>
#include <vector>

#include "avd/detect/multi_model_scan.hpp"
#include "avd/image/color.hpp"
#include "avd/runtime/thread_pool.hpp"
#include "bench_report.hpp"

namespace {

using avd::det::Detection;
using avd::det::HogSvmModel;
using avd::det::SlidingWindowParams;
using Clock = std::chrono::steady_clock;

avd::img::ImageU8 make_frame() {
  avd::data::SceneSpec scene;
  scene.condition = avd::data::LightingCondition::Day;
  scene.frame_size = {320, 200};
  scene.horizon_y = 60;
  avd::data::VehicleSpec v;
  v.body = {48, 90, 84, 66};
  scene.vehicles.push_back(v);
  avd::data::AnimalSpec a;
  a.body = {210, 100, 72, 54};
  scene.animals.push_back(a);
  scene.noise_seed = 5;
  return avd::img::rgb_to_gray(avd::data::render_scene(scene));
}

bool detections_identical(const std::vector<Detection>& a,
                          const std::vector<Detection>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i].box == b[i].box) || a[i].score != b[i].score ||
        a[i].class_id != b[i].class_id)
      return false;
  return true;
}

/// Scans per second: repeat until ~1.5 s of wall clock (at least 3 reps).
template <typename Fn>
double measure(const Fn& scan, std::vector<Detection>* out) {
  *out = scan();  // warm-up + canonical result
  int reps = 0;
  const Clock::time_point t0 = Clock::now();
  double seconds = 0.0;
  do {
    (void)scan();
    ++reps;
    seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (reps < 3 || seconds < 1.5);
  return reps / seconds;
}

}  // namespace

int main() {
  std::printf("=== bench: scan_throughput ===\n\n");
  avd::bench::BenchReport report("scan_throughput");

  std::printf("training models (vehicle + animal)...\n");
  avd::data::VehiclePatchSpec vspec;
  vspec.n_positive = vspec.n_negative = 80;
  vspec.seed = 11;
  const HogSvmModel vehicle =
      avd::det::train_hog_svm(avd::data::make_vehicle_patches(vspec), "vehicle");
  avd::data::AnimalPatchSpec aspec;
  aspec.n_positive = aspec.n_negative = 80;
  aspec.seed = 12;
  avd::det::HogSvmTrainOptions aopts;
  aopts.class_id = avd::det::kClassAnimal;
  const HogSvmModel animal =
      avd::det::train_hog_svm(avd::data::make_animal_patches(aspec), "animal", aopts);
  const HogSvmModel* models[] = {&vehicle, &animal};

  const avd::img::ImageU8 frame = make_frame();
  SlidingWindowParams params;
  params.score_threshold = 0.0;

  std::vector<Detection> ref_dets, bg1_dets, bg4_dets;
  const double ref_sps = measure(
      [&] {
        return avd::det::detect_multiscale_multi_reference(frame, models,
                                                           params);
      },
      &ref_dets);
  const double bg1_sps = measure(
      [&] { return avd::det::detect_multiscale_multi(frame, models, params); },
      &bg1_dets);
  avd::runtime::ThreadPool pool(4);
  params.pool = &pool;
  const double bg4_sps = measure(
      [&] { return avd::det::detect_multiscale_multi(frame, models, params); },
      &bg4_dets);

  const double speedup_1t = ref_sps > 0.0 ? bg1_sps / ref_sps : 0.0;
  const double speedup_4t = ref_sps > 0.0 ? bg4_sps / ref_sps : 0.0;
  const bool identical = detections_identical(ref_dets, bg1_dets) &&
                         detections_identical(ref_dets, bg4_dets);

  std::printf("\n%-14s | %10s | %8s | %9s\n", "configuration", "scans/s",
              "speedup", "identical");
  std::printf("%-14s | %10.2f | %8s | %9s\n", "reference", ref_sps, "1.00x",
              "-");
  std::printf("%-14s | %10.2f | %7.2fx | %9s\n", "blockgrid_1t", bg1_sps,
              speedup_1t, detections_identical(ref_dets, bg1_dets) ? "yes" : "NO");
  std::printf("%-14s | %10.2f | %7.2fx | %9s\n", "blockgrid_4t", bg4_sps,
              speedup_4t, detections_identical(ref_dets, bg4_dets) ? "yes" : "NO");
  std::printf("  (320x200 frame, 2 models, %zu detections)\n\n",
              ref_dets.size());
  std::printf("acceptance >=3x at 4 threads vs reference: %s\n",
              speedup_4t >= 3.0 ? "PASS" : "FAIL");

  report.metric("reference.scans_per_s", ref_sps, "1/s");
  report.metric("blockgrid_1t.scans_per_s", bg1_sps, "1/s");
  report.metric("blockgrid_4t.scans_per_s", bg4_sps, "1/s");
  report.metric("blockgrid_1t.speedup", speedup_1t, "x");
  report.metric("blockgrid_4t.speedup", speedup_4t, "x");
  report.check("detections_identical_across_configs", identical);
  report.check("speedup_4t_at_least_3x", speedup_4t >= 3.0);
  report.note("workload",
              "320x200 day scene, vehicle+animal models, score_threshold 0, "
              "default 1.25-step pyramid");
  report.write();
  return identical ? 0 : 1;
}
