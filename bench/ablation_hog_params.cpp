// Ablation A5: HOG hyper-parameters of the day/dusk pipeline.
//
// The paper fixes the classic Dalal-Triggs parameters (8x8 cells, 9 bins,
// 2x2 blocks); this bench sweeps them on the day task and reports accuracy,
// descriptor length (block-RAM pressure of the "Trained Model" store in
// Fig. 2) and a 5-fold cross-validated C grid search.
#include <cstdio>

#include "avd/detect/hog_svm_detector.hpp"
#include "avd/ml/cross_validation.hpp"

namespace {

using avd::data::LightingCondition;

avd::ml::SvmProblem hog_problem(const avd::data::PatchDataset& ds,
                                const avd::hog::HogParams& params) {
  avd::ml::SvmProblem problem;
  for (const auto& p : ds.patches)
    problem.add(avd::hog::compute_descriptor(p.gray, params), p.label);
  return problem;
}

}  // namespace

int main() {
  std::printf("=== bench: ablation_hog_params ===\n\n");

  avd::data::VehiclePatchSpec train_spec{LightingCondition::Day, {64, 64},
                                         150, 150, 0.0, 71001};
  avd::data::VehiclePatchSpec test_spec{LightingCondition::Day, {64, 64},
                                        150, 150, 0.0, 71002};
  const auto train = avd::data::make_vehicle_patches(train_spec);
  const auto test = avd::data::make_vehicle_patches(test_spec);

  std::printf("cell/bins sweep (train 300, test 300 day patches):\n");
  std::printf("%6s %6s %12s %12s\n", "cell", "bins", "descriptor", "accuracy");
  for (int cell : {4, 8, 16}) {
    for (int bins : {6, 9, 12}) {
      avd::hog::HogParams params;
      params.cell_size = cell;
      params.bins = bins;
      avd::det::HogSvmTrainOptions opts;
      opts.hog = params;
      const auto model = avd::det::train_hog_svm(train, "sweep", opts);
      const auto counts = avd::det::evaluate_patches(model, test);
      std::printf("%6d %6d %12zu %11.1f%%\n", cell, bins,
                  model.svm.dimension(), 100.0 * counts.accuracy());
    }
  }

  // Soft-margin cost grid search by stratified 5-fold CV at the paper's
  // parameters.
  std::printf("\nC grid search (5-fold stratified CV, default HOG):\n");
  const avd::ml::SvmProblem problem = hog_problem(train, {});
  const avd::ml::GridSearchResult grid = avd::ml::grid_search_c(
      problem, {0.01, 0.1, 1.0, 10.0}, 5);
  for (const auto& [c, acc] : grid.tried)
    std::printf("  C = %-7g mean CV accuracy %.1f%%%s\n", c, 100.0 * acc,
                c == grid.best_c ? "   <- selected" : "");

  // Fold variance at the chosen C.
  avd::ml::SvmTrainParams best;
  best.c = grid.best_c;
  const avd::ml::CrossValidationResult cv =
      avd::ml::cross_validate(problem, 5, best);
  std::printf("selected C = %g: CV accuracy %.1f%% +- %.1f%% (pooled "
              "precision %.3f, recall %.3f)\n",
              grid.best_c, 100.0 * cv.mean_accuracy(),
              100.0 * cv.stddev_accuracy(), cv.pooled.precision(),
              cv.pooled.recall());
  return 0;
}
