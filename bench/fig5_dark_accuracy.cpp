// Fig. 5 + §III-B claim reproduction (experiment C1/F5): dark-condition
// detection accuracy (the paper reports 95% on the SYSU very-dark subset)
// and qualitative sample frames with detections drawn in, written as PPM
// (pass an output directory as argv[1]; default: skip image dump).
#include <cstdio>
#include <string>

#include "avd/detect/dark_training.hpp"
#include "avd/image/draw.hpp"
#include "avd/image/io.hpp"

int main(int argc, char** argv) {
  using namespace avd;
  std::printf("=== bench: fig5_dark_accuracy ===\n\n");

  det::DarkTrainingSpec spec;
  spec.windows.per_class = 200;
  spec.dbn.pretrain.epochs = 15;
  spec.dbn.finetune_epochs = 40;
  spec.pairing_scenes = 100;
  const det::DarkVehicleDetector detector = det::train_dark_detector(spec);

  // DBN window-classification quality (held-out windows).
  {
    data::TaillightWindowSpec held_out;
    held_out.per_class = 150;
    held_out.seed = 111222;
    const auto test = data::make_taillight_windows(held_out);
    ml::ConfusionMatrix confusion(data::kTaillightClasses);
    for (const auto& w : test)
      confusion.record(w.label, detector.dbn().predict(w.pixels));
    std::printf("taillight DBN (81-20-8-4) held-out accuracy: %.1f%%\n",
                100.0 * confusion.accuracy());
    std::printf("%s\n", confusion.to_string().c_str());
  }

  // Frame-level accuracy, the paper's protocol: 200 positive + 200 negative
  // very-dark frames.
  const ml::BinaryCounts counts =
      det::evaluate_dark_frames(detector, 200, 200, {480, 270}, 424242);
  std::printf(
      "dark frame-level: accuracy %.1f%%  (TP %llu  TN %llu  FP %llu  FN "
      "%llu)\n",
      100.0 * counts.accuracy(), static_cast<unsigned long long>(counts.tp),
      static_cast<unsigned long long>(counts.tn),
      static_cast<unsigned long long>(counts.fp),
      static_cast<unsigned long long>(counts.fn));
  std::printf("paper reference: 95%% on the SYSU very-dark subset\n");
  std::printf("precision %.3f  recall %.3f  F1 %.3f\n", counts.precision(),
              counts.recall(), counts.f1());

  // Qualitative Fig. 5-style sample frames.
  if (argc > 1) {
    const std::string dir = argv[1];
    data::SceneGenerator gen(data::LightingCondition::Dark, 777);
    for (int i = 0; i < 4; ++i) {
      const data::SceneSpec scene =
          gen.random_scene({640, 360}, 1 + i % 2);
      img::RgbImage frame = data::render_scene(scene);
      const auto dets = detector.detect(frame);
      for (std::size_t d = 0; d < dets.size(); ++d) {
        img::draw_rect(frame, dets[d].box, {0, 255, 60}, 2);
        img::draw_number(frame, {dets[d].box.x, dets[d].box.y - 12}, d,
                         {0, 255, 60}, 2);
      }
      const std::string path = dir + "/fig5_sample_" + std::to_string(i) +
                               ".ppm";
      img::write_ppm(frame, path);
      std::printf("wrote %s (%zu detections, %zu vehicles in truth)\n",
                  path.c_str(), dets.size(), scene.vehicles.size());
    }
  } else {
    std::printf("(pass an output directory to dump Fig. 5-style samples)\n");
  }
  return 0;
}
