// bench: obs_overhead — what instrumentation costs.
//
// Part 1 measures the instrumented detect pipeline (the heaviest span/counter
// consumer) with tracing disabled vs enabled and prints the relative
// overhead. Targets: disabled within measurement noise, enabled < 3 %.
// Part 2 measures the always-on TelemetryExporter: the same workload with a
// background sampler snapshotting the global registry every 5 ms (4x the
// default rate) vs no sampler. Target: < 1 % on the detect hot path.
// Part 3 microbenchmarks the primitives (ScopedSpan, Counter::inc,
// Histogram::record_ns) with google-benchmark.
// Part 4 measures the fleet-scale additions at 64 synthetic streams: the
// labeled registry (per-stream counter/histogram updates + rollup) and the
// tail-based TraceSampler (every chain ingested, few retained). Target:
// < 1 % on the detect hot path — the same budget the exporter lives under.
// Part 5 measures the on-demand span-sampling profiler (/profilez) at its
// default 97 Hz against a live multi-stream serve: the same serve with the
// profiler stopped vs running, interleaved medians. Target: < 3 % on frame
// throughput — an operator can profile a production fleet without moving it.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "avd/core/adaptive_system.hpp"
#include "avd/core/system_models.hpp"
#include "avd/image/color.hpp"
#include "avd/obs/frame_trace.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/sample_profiler.hpp"
#include "avd/obs/telemetry.hpp"
#include "avd/obs/trace.hpp"
#include "avd/obs/trace_sampler.hpp"
#include "avd/runtime/stream_server.hpp"
#include "bench_report.hpp"

namespace {

const avd::core::SystemModels& models() {
  static const avd::core::SystemModels m = [] {
    avd::core::TrainingBudget b;
    b.vehicle_pos = b.vehicle_neg = 50;
    b.pedestrian_pos = b.pedestrian_neg = 35;
    b.dbn_windows_per_class = 60;
    b.pairing_scenes = 30;
    return avd::core::build_system_models(b);
  }();
  return m;
}

const avd::img::RgbImage& dark_frame() {
  static const avd::img::RgbImage f = [] {
    avd::data::SceneGenerator gen(avd::data::LightingCondition::Dark, 2);
    return avd::data::render_scene(gen.random_scene({640, 360}, 2));
  }();
  return f;
}

const avd::img::ImageU8& day_gray() {
  static const avd::img::ImageU8 g = [] {
    avd::data::SceneGenerator gen(avd::data::LightingCondition::Day, 1);
    return avd::img::rgb_to_gray(
        avd::data::render_scene(gen.random_scene({640, 360}, 2)));
  }();
  return g;
}

// One instrumented workload unit: a HOG+SVM frame plus a dark frame — every
// span and counter added by avd::obs fires at least once.
void workload() {
  avd::det::SlidingWindowParams params;
  benchmark::DoNotOptimize(
      avd::det::detect_multiscale(day_gray(), models().day, params));
  benchmark::DoNotOptimize(models().dark.detect(dark_frame()));
}

double time_workload_ms() {
  const auto begin = std::chrono::steady_clock::now();
  workload();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

void print_overhead_table(avd::bench::BenchReport& report) {
  std::printf("=== bench: obs_overhead ===\n\n");
  avd::obs::Tracer& tracer = avd::obs::Tracer::global();

  // Interleave disabled/enabled samples so thermal or frequency drift hits
  // both sides equally; compare medians.
  constexpr int kSamples = 15;
  std::vector<double> off_ms, on_ms;
  workload();  // warm up caches and lazy statics
  workload();
  for (int i = 0; i < kSamples; ++i) {
    tracer.set_enabled(false);
    off_ms.push_back(time_workload_ms());
    tracer.set_enabled(true);
    on_ms.push_back(time_workload_ms());
  }
  tracer.set_enabled(false);
  tracer.clear();
  avd::obs::MetricsRegistry::global().reset_values();

  const double off = median(off_ms);
  const double on = median(on_ms);
  const double overhead_pct = 100.0 * (on - off) / off;
  std::printf("instrumented detect frame (HOG+SVM day + dark pipeline):\n");
  std::printf("  tracing disabled : %8.3f ms (median of %d)\n", off, kSamples);
  std::printf("  tracing enabled  : %8.3f ms (median of %d)\n", on, kSamples);
  std::printf("  overhead         : %+7.2f %%  (target < 3 %%)  [%s]\n\n",
              overhead_pct, overhead_pct < 3.0 ? "ok" : "OVER");
  report.metric("tracing.workload_off_ms", off, "ms", "lower");
  report.metric("tracing.workload_on_ms", on, "ms", "lower");
  report.metric("tracing.overhead_pct", overhead_pct, "%", "lower");
  report.check("tracing_overhead_under_3pct", overhead_pct < 3.0);
}

void print_exporter_overhead(avd::bench::BenchReport& report) {
  // Same interleaved-median protocol, now toggling the background telemetry
  // sampler instead of the tracer. 5 ms period = 4x the default 50 Hz rate,
  // so a pass here bounds the always-on configuration comfortably.
  constexpr int kSamples = 15;
  std::vector<double> off_ms, on_ms;
  workload();
  for (int i = 0; i < kSamples; ++i) {
    off_ms.push_back(time_workload_ms());
    avd::obs::TelemetryConfig tc;
    tc.period = std::chrono::milliseconds(5);
    avd::obs::TelemetryExporter exporter(avd::obs::MetricsRegistry::global(),
                                         tc);
    exporter.start();
    on_ms.push_back(time_workload_ms());
    exporter.stop();
  }
  avd::obs::MetricsRegistry::global().reset_values();

  const double off = median(off_ms);
  const double on = median(on_ms);
  const double overhead_pct = 100.0 * (on - off) / off;
  std::printf("always-on telemetry exporter (5 ms sampling, detect workload):\n");
  std::printf("  exporter stopped : %8.3f ms (median of %d)\n", off, kSamples);
  std::printf("  exporter running : %8.3f ms (median of %d)\n", on, kSamples);
  std::printf("  overhead         : %+7.2f %%  (target < 1 %%)  [%s]\n\n",
              overhead_pct, overhead_pct < 1.0 ? "ok" : "OVER");
  report.metric("telemetry.workload_off_ms", off, "ms", "lower");
  report.metric("telemetry.workload_on_ms", on, "ms", "lower");
  report.metric("telemetry.overhead_pct", overhead_pct, "%", "lower");
  report.check("exporter_overhead_under_1pct", overhead_pct < 1.0);
}

void print_fleet_overhead(avd::bench::BenchReport& report) {
  // Part 4: what serving 64 streams adds per frame. One "fleet tick"
  // performs everything the runtime's fleet substrate does for one frame on
  // each of 64 streams — labeled counter + histogram updates against cached
  // pointers, one registry rollup (a telemetry window), and the tail
  // sampler ingesting one synthetic ingest->report chain per stream.
  constexpr int kStreams = 64;
  avd::obs::MetricsRegistry reg;
  std::vector<avd::obs::Counter*> frames;
  std::vector<avd::obs::Histogram*> latency;
  for (int s = 0; s < kStreams; ++s) {
    const avd::obs::Labels labels{{"stream", std::to_string(s)}};
    frames.push_back(&reg.counter("runtime.frames", labels));
    latency.push_back(&reg.histogram("runtime.frame.latency_ns", labels));
  }
  avd::obs::TraceSamplerConfig sampler_config;
  sampler_config.deadline_ns = 33'000'000;
  sampler_config.head_sample_every = 64;
  avd::obs::TraceSampler sampler(sampler_config);

  std::vector<avd::obs::FrameTrace> chains(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    avd::obs::FrameTrace& f = chains[static_cast<std::size_t>(s)];
    f.trace_id = static_cast<std::uint64_t>(s) + 1;
    f.stream = s;
    f.begin_ns = 0;
    f.end_ns = 2'000'000;  // healthy: aggregated, not retained
    avd::obs::SpanRecord span;
    span.name = "detect_frame";
    span.trace_id = f.trace_id;
    span.end_ns = f.end_ns;
    f.spans = {span, span, span};  // ~pipeline depth worth of spans
  }

  std::uint64_t lat_ns = 1'000'000;
  const auto fleet_tick = [&] {
    for (int s = 0; s < kStreams; ++s) {
      frames[static_cast<std::size_t>(s)]->inc();
      latency[static_cast<std::size_t>(s)]->record_ns(lat_ns);
      lat_ns = lat_ns * 1664525 + 1013904223;
      lat_ns &= (1ull << 25) - 1;
    }
    reg.rollup();
    sampler.ingest(chains);
  };

  constexpr int kSamples = 15;
  std::vector<double> off_ms, on_ms;
  workload();
  for (int i = 0; i < kSamples; ++i) {
    off_ms.push_back(time_workload_ms());
    const auto begin = std::chrono::steady_clock::now();
    workload();
    fleet_tick();
    const auto end = std::chrono::steady_clock::now();
    on_ms.push_back(
        std::chrono::duration<double, std::milli>(end - begin).count());
  }

  const double off = median(off_ms);
  const double on = median(on_ms);
  // One tick is the whole fleet's bookkeeping for one frame interval, but
  // the workload is ONE stream's detect — a 64-stream deployment runs 64
  // detects per tick, so the per-stream-frame overhead is the tick's share
  // divided across the fleet.
  const double tick_ms = on - off;
  const double overhead_pct =
      100.0 * (tick_ms / kStreams) / off;
  std::printf(
      "fleet substrate at %d streams (labeled registry + rollup + tail "
      "sampler):\n",
      kStreams);
  std::printf("  workload alone     : %8.3f ms (median of %d)\n", off,
              kSamples);
  std::printf("  + fleet tick       : %8.3f ms (median of %d)\n", on,
              kSamples);
  std::printf("  tick cost          : %8.3f ms for %d streams (%.1f us per "
              "stream-frame)\n",
              tick_ms, kStreams, 1000.0 * tick_ms / kStreams);
  std::printf("  overhead per frame : %+7.2f %%  (target < 1 %%)  [%s]\n",
              overhead_pct, overhead_pct < 1.0 ? "ok" : "OVER");
  std::printf(
      "  sampler: %llu frames seen, %llu retained (tail sampling holds "
      "O(interesting), not O(frames))\n\n",
      static_cast<unsigned long long>(sampler.frames_seen()),
      static_cast<unsigned long long>(sampler.frames_retained()));
  report.metric("fleet.workload_off_ms", off, "ms", "lower");
  report.metric("fleet.tick_ms", tick_ms, "ms", "lower");
  report.metric("fleet.overhead_pct", overhead_pct, "%", "lower");
  report.check("fleet_overhead_under_1pct", overhead_pct < 1.0);
  report.check("sampler_retained_is_sublinear",
               sampler.frames_retained() * 10 < sampler.frames_seen());
}

void print_profiler_overhead(avd::bench::BenchReport& report) {
  // Part 5: what /profilez costs while it runs. A live multi-stream serve
  // (real detectors, 2 workers, tracing on — the profiler only makes sense
  // on a traced process) is timed with the profiler stopped vs running at
  // its default 97 Hz, interleaved medians. 97 Hz is prime, so the timer
  // never phase-locks to a frame cadence.
  avd::obs::Tracer& tracer = avd::obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  const avd::core::AdaptiveSystem system(models(), {});
  avd::runtime::StreamServerConfig sc;
  sc.detect_workers = 2;
  avd::runtime::StreamServer server(system, sc);

  std::uint64_t seed = 7000;
  std::uint64_t frames = 0;
  const auto serve_ms = [&] {
    std::vector<avd::data::DriveSequence> seqs;
    for (int s = 0; s < 4; ++s) {
      avd::data::SequenceSpec spec =
          avd::data::DriveSequence::canonical_drive({240, 136}, 1);
      spec.seed = seed++;
      seqs.emplace_back(spec);
    }
    const auto begin = std::chrono::steady_clock::now();
    const auto results = server.serve_sequences(seqs);
    const auto end = std::chrono::steady_clock::now();
    for (const auto& r : results) frames += r.report.frames.size();
    return std::chrono::duration<double, std::milli>(end - begin).count();
  };

  avd::obs::SampleProfiler profiler;  // default config: 97 Hz
  constexpr int kSamples = 9;
  std::vector<double> off_ms, on_ms;
  std::uint64_t profiled_samples = 0;
  std::uint64_t profiled_ns = 0;
  (void)serve_ms();  // warm up
  for (int i = 0; i < kSamples; ++i) {
    off_ms.push_back(serve_ms());
    profiler.start();
    on_ms.push_back(serve_ms());
    const avd::obs::ProfileReport window = profiler.stop();
    profiled_samples += window.samples;
    profiled_ns += window.duration_ns;
  }
  tracer.set_enabled(false);
  tracer.clear();
  avd::obs::MetricsRegistry::global().reset_values();

  const double off = median(off_ms);
  const double on = median(on_ms);
  const double overhead_pct = 100.0 * (on - off) / off;
  const double achieved_hz =
      profiled_ns == 0 ? 0.0 : 1e9 * static_cast<double>(profiled_samples) /
                                   static_cast<double>(profiled_ns);
  std::printf("span-sampling profiler at 97 Hz (4-stream serve, %llu frames "
              "total):\n",
              static_cast<unsigned long long>(frames));
  std::printf("  profiler stopped : %8.3f ms per serve (median of %d)\n", off,
              kSamples);
  std::printf("  profiler running : %8.3f ms per serve (median of %d)\n", on,
              kSamples);
  std::printf("  samples captured : %llu (%.1f stacks/s across the windows)\n",
              static_cast<unsigned long long>(profiled_samples), achieved_hz);
  std::printf("  overhead         : %+7.2f %%  (target < 3 %%)  [%s]\n\n",
              overhead_pct, overhead_pct < 3.0 ? "ok" : "OVER");
  report.metric("profilez.serve_off_ms", off, "ms", "lower");
  report.metric("profilez.serve_on_ms", on, "ms", "lower");
  report.metric("profilez.overhead_pct", overhead_pct, "%", "lower");
  report.check("profilez_overhead_under_3pct", overhead_pct < 3.0);
  report.check("profilez_saw_samples", profiled_samples > 0);
}

void BM_ScopedSpanDisabled(benchmark::State& state) {
  avd::obs::Tracer::global().set_enabled(false);
  for (auto _ : state) {
    avd::obs::ScopedSpan span("bench", "bench/obs");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ScopedSpanDisabled);

void BM_ScopedSpanEnabled(benchmark::State& state) {
  avd::obs::Tracer::global().set_enabled(true);
  for (auto _ : state) {
    avd::obs::ScopedSpan span("bench", "bench/obs");
    benchmark::DoNotOptimize(&span);
  }
  avd::obs::Tracer::global().set_enabled(false);
  avd::obs::Tracer::global().clear();
}
BENCHMARK(BM_ScopedSpanEnabled);

void BM_CounterInc(benchmark::State& state) {
  avd::obs::Counter c;
  for (auto _ : state) c.inc();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramRecord(benchmark::State& state) {
  avd::obs::Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record_ns(v);
    v = v * 1664525 + 1013904223;  // spread across bins
    v &= (1ull << 30) - 1;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_RegistryLookup(benchmark::State& state) {
  avd::obs::MetricsRegistry reg;
  for (auto _ : state)
    benchmark::DoNotOptimize(&reg.counter("bench.lookup"));
}
BENCHMARK(BM_RegistryLookup);

}  // namespace

int main(int argc, char** argv) {
  avd::bench::BenchReport report("obs_overhead");
  print_overhead_table(report);
  print_exporter_overhead(report);
  print_fleet_overhead(report);
  print_profiler_overhead(report);
  report.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
