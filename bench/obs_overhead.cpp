// bench: obs_overhead — what instrumentation costs.
//
// Part 1 measures the instrumented detect pipeline (the heaviest span/counter
// consumer) with tracing disabled vs enabled and prints the relative
// overhead. Targets: disabled within measurement noise, enabled < 3 %.
// Part 2 measures the always-on TelemetryExporter: the same workload with a
// background sampler snapshotting the global registry every 5 ms (4x the
// default rate) vs no sampler. Target: < 1 % on the detect hot path.
// Part 3 microbenchmarks the primitives (ScopedSpan, Counter::inc,
// Histogram::record_ns) with google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "avd/core/system_models.hpp"
#include "avd/image/color.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/telemetry.hpp"
#include "avd/obs/trace.hpp"
#include "bench_report.hpp"

namespace {

const avd::core::SystemModels& models() {
  static const avd::core::SystemModels m = [] {
    avd::core::TrainingBudget b;
    b.vehicle_pos = b.vehicle_neg = 50;
    b.pedestrian_pos = b.pedestrian_neg = 35;
    b.dbn_windows_per_class = 60;
    b.pairing_scenes = 30;
    return avd::core::build_system_models(b);
  }();
  return m;
}

const avd::img::RgbImage& dark_frame() {
  static const avd::img::RgbImage f = [] {
    avd::data::SceneGenerator gen(avd::data::LightingCondition::Dark, 2);
    return avd::data::render_scene(gen.random_scene({640, 360}, 2));
  }();
  return f;
}

const avd::img::ImageU8& day_gray() {
  static const avd::img::ImageU8 g = [] {
    avd::data::SceneGenerator gen(avd::data::LightingCondition::Day, 1);
    return avd::img::rgb_to_gray(
        avd::data::render_scene(gen.random_scene({640, 360}, 2)));
  }();
  return g;
}

// One instrumented workload unit: a HOG+SVM frame plus a dark frame — every
// span and counter added by avd::obs fires at least once.
void workload() {
  avd::det::SlidingWindowParams params;
  benchmark::DoNotOptimize(
      avd::det::detect_multiscale(day_gray(), models().day, params));
  benchmark::DoNotOptimize(models().dark.detect(dark_frame()));
}

double time_workload_ms() {
  const auto begin = std::chrono::steady_clock::now();
  workload();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

void print_overhead_table(avd::bench::BenchReport& report) {
  std::printf("=== bench: obs_overhead ===\n\n");
  avd::obs::Tracer& tracer = avd::obs::Tracer::global();

  // Interleave disabled/enabled samples so thermal or frequency drift hits
  // both sides equally; compare medians.
  constexpr int kSamples = 15;
  std::vector<double> off_ms, on_ms;
  workload();  // warm up caches and lazy statics
  workload();
  for (int i = 0; i < kSamples; ++i) {
    tracer.set_enabled(false);
    off_ms.push_back(time_workload_ms());
    tracer.set_enabled(true);
    on_ms.push_back(time_workload_ms());
  }
  tracer.set_enabled(false);
  tracer.clear();
  avd::obs::MetricsRegistry::global().reset_values();

  const double off = median(off_ms);
  const double on = median(on_ms);
  const double overhead_pct = 100.0 * (on - off) / off;
  std::printf("instrumented detect frame (HOG+SVM day + dark pipeline):\n");
  std::printf("  tracing disabled : %8.3f ms (median of %d)\n", off, kSamples);
  std::printf("  tracing enabled  : %8.3f ms (median of %d)\n", on, kSamples);
  std::printf("  overhead         : %+7.2f %%  (target < 3 %%)  [%s]\n\n",
              overhead_pct, overhead_pct < 3.0 ? "ok" : "OVER");
  report.metric("tracing.workload_off_ms", off, "ms", "lower");
  report.metric("tracing.workload_on_ms", on, "ms", "lower");
  report.metric("tracing.overhead_pct", overhead_pct, "%", "lower");
  report.check("tracing_overhead_under_3pct", overhead_pct < 3.0);
}

void print_exporter_overhead(avd::bench::BenchReport& report) {
  // Same interleaved-median protocol, now toggling the background telemetry
  // sampler instead of the tracer. 5 ms period = 4x the default 50 Hz rate,
  // so a pass here bounds the always-on configuration comfortably.
  constexpr int kSamples = 15;
  std::vector<double> off_ms, on_ms;
  workload();
  for (int i = 0; i < kSamples; ++i) {
    off_ms.push_back(time_workload_ms());
    avd::obs::TelemetryConfig tc;
    tc.period = std::chrono::milliseconds(5);
    avd::obs::TelemetryExporter exporter(avd::obs::MetricsRegistry::global(),
                                         tc);
    exporter.start();
    on_ms.push_back(time_workload_ms());
    exporter.stop();
  }
  avd::obs::MetricsRegistry::global().reset_values();

  const double off = median(off_ms);
  const double on = median(on_ms);
  const double overhead_pct = 100.0 * (on - off) / off;
  std::printf("always-on telemetry exporter (5 ms sampling, detect workload):\n");
  std::printf("  exporter stopped : %8.3f ms (median of %d)\n", off, kSamples);
  std::printf("  exporter running : %8.3f ms (median of %d)\n", on, kSamples);
  std::printf("  overhead         : %+7.2f %%  (target < 1 %%)  [%s]\n\n",
              overhead_pct, overhead_pct < 1.0 ? "ok" : "OVER");
  report.metric("telemetry.workload_off_ms", off, "ms", "lower");
  report.metric("telemetry.workload_on_ms", on, "ms", "lower");
  report.metric("telemetry.overhead_pct", overhead_pct, "%", "lower");
  report.check("exporter_overhead_under_1pct", overhead_pct < 1.0);
}

void BM_ScopedSpanDisabled(benchmark::State& state) {
  avd::obs::Tracer::global().set_enabled(false);
  for (auto _ : state) {
    avd::obs::ScopedSpan span("bench", "bench/obs");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ScopedSpanDisabled);

void BM_ScopedSpanEnabled(benchmark::State& state) {
  avd::obs::Tracer::global().set_enabled(true);
  for (auto _ : state) {
    avd::obs::ScopedSpan span("bench", "bench/obs");
    benchmark::DoNotOptimize(&span);
  }
  avd::obs::Tracer::global().set_enabled(false);
  avd::obs::Tracer::global().clear();
}
BENCHMARK(BM_ScopedSpanEnabled);

void BM_CounterInc(benchmark::State& state) {
  avd::obs::Counter c;
  for (auto _ : state) c.inc();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramRecord(benchmark::State& state) {
  avd::obs::Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record_ns(v);
    v = v * 1664525 + 1013904223;  // spread across bins
    v &= (1ull << 30) - 1;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_RegistryLookup(benchmark::State& state) {
  avd::obs::MetricsRegistry reg;
  for (auto _ : state)
    benchmark::DoNotOptimize(&reg.counter("bench.lookup"));
}
BENCHMARK(BM_RegistryLookup);

}  // namespace

int main(int argc, char** argv) {
  avd::bench::BenchReport report("obs_overhead");
  print_overhead_table(report);
  print_exporter_overhead(report);
  report.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
