// Table I reproduction: detection accuracy and TP/TN/FP/FN of the day, dusk
// and combined SVM models on (a) the day test set, (b) the dusk test set and
// (c) the dusk test set with the very-dark images excluded.
//
// The synthetic day/dusk sets stand in for UPM [15] and SYSU [4]
// (DESIGN.md §2); test-set compositions match the paper's column totals:
//   day  test: 200 positives +  25 negatives  (= 225 images)
//   dusk test: 1063 positives + 752 negatives (= 1815 images; 100 positives
//              are very-dark and are excluded in the subset columns)
//
// Also runs ablation A1 (training-set size sweep) when --sweep is passed.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "avd/detect/hog_svm_detector.hpp"

namespace {

using avd::data::LightingCondition;

struct TestSets {
  avd::data::PatchDataset day;
  avd::data::PatchDataset dusk;
  avd::data::PatchDataset dusk_subset;
};

TestSets make_test_sets() {
  avd::data::VehiclePatchSpec day_spec{LightingCondition::Day, {64, 64}, 200,
                                       25, 0.0, 900001};
  // 100 of the 1063 dusk positives are very dark (the paper's excluded
  // subset): dark_fraction = 100/1063.
  avd::data::VehiclePatchSpec dusk_spec{LightingCondition::Dusk, {64, 64},
                                        1063, 752, 100.0 / 1063.0, 900002};
  TestSets sets;
  sets.day = avd::data::make_vehicle_patches(day_spec);
  sets.dusk = avd::data::make_vehicle_patches(dusk_spec);
  sets.dusk_subset = sets.dusk.without_very_dark();
  return sets;
}

void print_row(const char* model, const avd::ml::BinaryCounts& day,
               const avd::ml::BinaryCounts& dusk,
               const avd::ml::BinaryCounts& subset) {
  auto cell = [](const avd::ml::BinaryCounts& c) {
    std::printf("%7.2f%% %5llu %5llu %4llu %5llu |", 100.0 * c.accuracy(),
                static_cast<unsigned long long>(c.tp),
                static_cast<unsigned long long>(c.tn),
                static_cast<unsigned long long>(c.fp),
                static_cast<unsigned long long>(c.fn));
  };
  std::printf("%-9s |", model);
  cell(day);
  cell(dusk);
  cell(subset);
  std::printf("\n");
}

void run_table(int train_pos, int train_neg, const TestSets& sets) {
  avd::data::VehiclePatchSpec day_tr{LightingCondition::Day, {64, 64},
                                     train_pos, train_neg, 0.0, 800001};
  avd::data::VehiclePatchSpec dusk_tr{LightingCondition::Dusk, {64, 64},
                                      train_pos, train_neg, 0.0, 800002};
  const auto day_train = avd::data::make_vehicle_patches(day_tr);
  const auto dusk_train = avd::data::make_vehicle_patches(dusk_tr);
  const auto combined_train =
      avd::data::PatchDataset::concat(day_train, dusk_train);

  const auto m_day = avd::det::train_hog_svm(day_train, "day");
  const auto m_dusk = avd::det::train_hog_svm(dusk_train, "dusk");
  const auto m_comb = avd::det::train_hog_svm(combined_train, "combined");

  std::printf(
      "\nTable I (train: %d pos / %d neg per condition)\n"
      "          |        Day test (225 imgs)       |"
      "       Dusk test (1815 imgs)      |"
      "    Dusk subset (1715 imgs)       |\n"
      "SVM Model |  Accuracy    TP    TN   FP    FN |"
      "  Accuracy    TP    TN   FP    FN |"
      "  Accuracy    TP    TN   FP    FN |\n",
      train_pos, train_neg);
  for (const auto* m : {&m_day, &m_dusk, &m_comb}) {
    print_row(m->name.c_str(), avd::det::evaluate_patches(*m, sets.day),
              avd::det::evaluate_patches(*m, sets.dusk),
              avd::det::evaluate_patches(*m, sets.dusk_subset));
  }
  std::printf(
      "Paper     |  day 96.00 / dusk 73.78 / subset 77.55 (day model)\n"
      "reference |  day 20.89 / dusk 82.37 / subset 86.88 (dusk model)\n"
      "          |  day 91.56 / dusk 85.34 / subset 90.09 (combined)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool sweep = argc > 1 && std::strcmp(argv[1], "--sweep") == 0;
  std::printf("=== bench: table1_svm_models ===\n");
  const TestSets sets = make_test_sets();
  run_table(400, 400, sets);
  if (sweep) {
    // Ablation A1: how training-set size moves the cross-condition gaps.
    for (int n : {50, 100, 200}) run_table(n, n, sets);
  }
  return 0;
}
