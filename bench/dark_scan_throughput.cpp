// Dark-scan throughput: the GEMM-backed batched taillight scan against the
// per-window reference path.
//
// Three configurations over the same trained dark detector and the same set
// of procedural night masks:
//   reference — one Dbn::posterior call per 9x9 window (the retained
//               correctness oracle, detect_taillights_reference)
//   batch_1t  — gather every blob's windows into one packed patch matrix,
//               score through Dbn::posterior_batch (one GEMM per layer),
//               scatter back per blob; single-threaded
//   batch_4t  — same, with gather and batch scoring on a 4-thread
//               avd::runtime::ThreadPool
//
// Batching replaces per-window weight-matrix traversals (81x20 + 20x8 + 8x4
// loads per window) with per-batch ones, so the weights stream from cache
// once per chunk instead of once per window. Acceptance (ISSUE 6): >= 3x
// throughput over the reference, with detections identical across every
// configuration and batch_windows value (the batched forward is bit-exact
// per row, so this is an equality check, not a tolerance).
#include <chrono>
#include <cstdio>
#include <vector>

#include "avd/detect/dark_training.hpp"
#include "avd/runtime/thread_pool.hpp"
#include "bench_report.hpp"

namespace {

using avd::det::DarkVehicleDetector;
using avd::det::TaillightDetection;
using Clock = std::chrono::steady_clock;

std::vector<avd::img::ImageU8> make_masks(const DarkVehicleDetector& det) {
  // Eight busy night scenes: multi-vehicle 640x360 frames (the paper's
  // downsampled dark resolution) whose blob population mixes true lamps,
  // streaks and noise specks like a dense urban drive — the workload the
  // batched scan exists for.
  std::vector<avd::img::ImageU8> masks;
  avd::data::SceneGenerator gen(avd::data::LightingCondition::Dark, 321);
  for (int i = 0; i < 8; ++i) {
    const int vehicles = 2 + i % 4;  // 2-5 per frame
    masks.push_back(det.preprocess(
        avd::data::render_scene(gen.random_scene({640, 360}, vehicles))));
  }
  return masks;
}

bool lights_identical(const std::vector<TaillightDetection>& a,
                      const std::vector<TaillightDetection>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i].center == b[i].center) || a[i].cls != b[i].cls ||
        a[i].confidence != b[i].confidence ||  // exact: bit-identical forward
        !(a[i].blob_box == b[i].blob_box) || a[i].blob_area != b[i].blob_area)
      return false;
  return true;
}

/// Full-mask-set passes per second, best of five ~0.4 s windows (each at
/// least 3 reps). The best-window estimator discards noisy-neighbour
/// slowdowns — on a shared core a single long window measures the
/// neighbours as much as the scan. `out` receives the per-mask detections
/// of one pass for equality checks.
template <typename Fn>
double measure(const std::vector<avd::img::ImageU8>& masks, const Fn& scan,
               std::vector<std::vector<TaillightDetection>>* out) {
  out->clear();
  for (const auto& m : masks) out->push_back(scan(m));  // warm-up + canonical
  double best = 0.0;
  for (int window = 0; window < 5; ++window) {
    int reps = 0;
    const Clock::time_point t0 = Clock::now();
    double seconds = 0.0;
    do {
      for (const auto& m : masks) (void)scan(m);
      ++reps;
      seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (reps < 3 || seconds < 0.4);
    best = std::max(best, reps * static_cast<double>(masks.size()) / seconds);
  }
  return best;
}

bool all_identical(const std::vector<std::vector<TaillightDetection>>& a,
                   const std::vector<std::vector<TaillightDetection>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!lights_identical(a[i], b[i])) return false;
  return true;
}

}  // namespace

int main() {
  std::printf("=== bench: dark_scan_throughput ===\n\n");
  avd::bench::BenchReport report("dark_scan_throughput");

  std::printf("training dark detector (DBN + pairing SVM)...\n");
  avd::det::DarkTrainingSpec spec;
  spec.windows.per_class = 120;
  spec.dbn.pretrain.epochs = 12;
  spec.dbn.finetune_epochs = 30;
  spec.pairing_scenes = 60;
  DarkVehicleDetector detector = avd::det::train_dark_detector(spec);
  const std::vector<avd::img::ImageU8> masks = make_masks(detector);

  std::size_t total_windows = 0, total_blobs = 0;
  for (const auto& m : masks) {
    for (const auto& blob : avd::img::find_blobs(
             m, avd::img::Connectivity::Eight,
             detector.config().min_blob_area)) {
      ++total_blobs;
      const avd::img::Rect region = avd::img::inflated(blob.bbox, 4);
      total_windows +=
          avd::det::dark_window_anchors(region.x, region.right(), 9, 2).size() *
          avd::det::dark_window_anchors(region.y, region.bottom(), 9, 2).size();
    }
  }

  std::vector<std::vector<TaillightDetection>> ref, b1, b4;
  const double ref_sps = measure(
      masks,
      [&](const avd::img::ImageU8& m) {
        return detector.detect_taillights_reference(m);
      },
      &ref);
  const double b1_sps = measure(
      masks,
      [&](const avd::img::ImageU8& m) { return detector.detect_taillights(m); },
      &b1);
  avd::runtime::ThreadPool pool(4);
  detector.set_scan_pool(&pool);
  const double b4_sps = measure(
      masks,
      [&](const avd::img::ImageU8& m) { return detector.detect_taillights(m); },
      &b4);
  detector.set_scan_pool(nullptr);

  // Chunk-size sweep: detections must be identical for every batch_windows.
  bool identical_across_batches = true;
  for (const int batch : {1, 64, 4096}) {
    avd::det::DarkDetectorConfig cfg = detector.config();
    cfg.batch_windows = batch;
    const DarkVehicleDetector swept(detector.dbn(), detector.pairing_svm(),
                                    cfg);
    for (std::size_t i = 0; i < masks.size(); ++i)
      identical_across_batches &=
          lights_identical(swept.detect_taillights(masks[i]), ref[i]);
  }

  const double speedup_1t = ref_sps > 0.0 ? b1_sps / ref_sps : 0.0;
  const double speedup_4t = ref_sps > 0.0 ? b4_sps / ref_sps : 0.0;
  const bool identical = all_identical(ref, b1) && all_identical(ref, b4) &&
                         identical_across_batches;
  const double best = std::max(speedup_1t, speedup_4t);

  std::printf("\n%-10s | %10s | %8s | %9s\n", "config", "masks/s", "speedup",
              "identical");
  std::printf("%-10s | %10.2f | %8s | %9s\n", "reference", ref_sps, "1.00x",
              "-");
  std::printf("%-10s | %10.2f | %7.2fx | %9s\n", "batch_1t", b1_sps, speedup_1t,
              all_identical(ref, b1) ? "yes" : "NO");
  std::printf("%-10s | %10.2f | %7.2fx | %9s\n", "batch_4t", b4_sps, speedup_4t,
              all_identical(ref, b4) ? "yes" : "NO");
  std::printf("  (%zu masks, %zu blobs, %zu windows/pass, batch sweep %s)\n\n",
              masks.size(), total_blobs, total_windows,
              identical_across_batches ? "identical" : "DIVERGED");
  std::printf("acceptance >=3x vs per-window reference: %s\n",
              best >= 3.0 ? "PASS" : "FAIL");

  report.metric("reference.masks_per_s", ref_sps, "1/s");
  report.metric("batch_1t.masks_per_s", b1_sps, "1/s");
  report.metric("batch_4t.masks_per_s", b4_sps, "1/s");
  report.metric("batch_1t.speedup", speedup_1t, "x");
  report.metric("batch_4t.speedup", speedup_4t, "x");
  report.metric("windows_per_pass", static_cast<double>(total_windows),
                "windows");
  report.check("detections_identical_across_configs", identical);
  report.check("speedup_at_least_3x", best >= 3.0);
  report.note("workload",
              "8 procedural 640x360 night masks (2-5 vehicles each), trained "
              "81-20-8-4 DBN, stride-2 9x9 windows, batch_windows sweep "
              "{1,64,4096}");
  report.write();
  return identical ? 0 : 1;
}
