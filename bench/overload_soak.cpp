// Overload soak: 64 paced camera streams offered at 2x the accelerator's
// aggregate capacity, served through the overload-control plane (ISSUE 9).
//
// Capacity model: detect_workers = 4 at simulated_accel_ms = 4 ms/frame
// gives the fleet 1000 fps of full-fidelity scan throughput (sleep-bound,
// so the number holds on any host core count, exactly like
// runtime_scaling's accelerator-occupancy mode). Each of the 64 sources
// paces itself to 31.25 fps — 2000 fps offered, 2x capacity.
//
// What keeps admitted latency inside the budget is the admission plane,
// and that is what this bench guards:
//   * the per-stream token bucket (20 fps) sheds the raw excess at the
//     control stage before it can queue;
//   * a small DropOldest detect queue bounds how long any admitted frame
//     can wait behind the accelerator (the overflow surfaces as
//     backpressure drops, never as tail latency);
//   * those drops breach the queue_drops SLO rule, walking the degradation
//     ladder down to level 2 (skip-frame + tracker coast), tripling
//     effective capacity so the admitted load fits and the drops stop;
//   * fast-worsen / slow-recover hysteresis (recover_after_windows is set
//     beyond the soak's horizon) means the ladder settles instead of
//     flapping.
//
// Acceptance (guarded via bench_report checks -> scripts/bench_diff):
//   - p99 ingest->report latency of ADMITTED frames < 20 ms (one 50 fps
//     frame, the paper's budget) while the fleet is offered 2x capacity;
//   - shedding and the degradation ladder both actually engaged;
//   - no stream collapsed to level 3 (drop) and no ladder flapping
//     (bounded transitions per stream).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "avd/obs/metrics.hpp"
#include "avd/runtime/stream_server.hpp"
#include "bench_report.hpp"

namespace {

using Clock = std::chrono::steady_clock;

avd::core::TrainingBudget tiny_budget() {
  avd::core::TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 30;
  b.pedestrian_pos = b.pedestrian_neg = 20;
  b.dbn_windows_per_class = 40;
  b.pairing_scenes = 20;
  return b;
}

/// A camera that produces frames in real time: next() releases frame i no
/// earlier than epoch + i * period. When the pipeline backpressures the
/// ingest worker, pending frames queue *at the source* (sleep_until in the
/// past returns immediately), so admitted-frame latency measures pipeline
/// time, not source pacing.
class PacedFrameSource final : public avd::runtime::FrameSource {
 public:
  /// `phase` staggers this camera against the rest of the fleet. Without
  /// it every source fires on the same tick and the fleet arrives as
  /// synchronized 64-frame bursts — which saturates any finite queue at
  /// every tick no matter how low the average load is.
  PacedFrameSource(avd::data::DriveSequence sequence,
                   std::chrono::microseconds period,
                   std::chrono::microseconds phase)
      : sequence_(std::move(sequence)), period_(period), phase_(phase) {}

  [[nodiscard]] int frame_count() const override {
    return sequence_.frame_count();
  }

  [[nodiscard]] std::optional<avd::data::SequenceFrame> next() override {
    if (next_ >= sequence_.frame_count()) return std::nullopt;
    if (next_ == 0) epoch_ = Clock::now() + phase_;
    std::this_thread::sleep_until(epoch_ + next_ * period_);
    return sequence_.frame(next_++);
  }

 private:
  avd::data::DriveSequence sequence_;
  std::chrono::microseconds period_;
  std::chrono::microseconds phase_;
  Clock::time_point epoch_;
  int next_ = 0;
};

}  // namespace

int main() {
  std::printf("=== bench: overload_soak ===\n\n");

  constexpr int kStreams = 64;
  constexpr int kFramesPerSegment = 20;  // canonical_drive: 6 segments -> 120
  constexpr int kDetectWorkers = 4;
  constexpr double kAccelMs = 4.0;       // fleet capacity: 4 / 4ms = 1000 fps
  constexpr double kOverload = 2.0;      // offered load vs capacity
  const double capacity_fps = kDetectWorkers * 1000.0 / kAccelMs;
  const double offered_fps = kOverload * capacity_fps;
  const double per_stream_fps = offered_fps / kStreams;
  const auto period = std::chrono::microseconds(
      static_cast<std::int64_t>(1e6 / per_stream_fps));

  std::printf("training models (tiny budget)...\n");
  avd::core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;  // control plane + accelerator occupancy
  const avd::core::AdaptiveSystem system(
      avd::core::build_system_models(tiny_budget()), cfg);

  std::vector<std::unique_ptr<avd::runtime::FrameSource>> sources;
  int total_frames = 0;
  for (int i = 0; i < kStreams; ++i) {
    avd::data::SequenceSpec spec = avd::data::DriveSequence::canonical_drive(
        {240, 136}, kFramesPerSegment);
    spec.seed = 9000 + static_cast<std::uint64_t>(i);
    avd::data::DriveSequence seq(spec);
    total_frames += seq.frame_count();
    sources.push_back(std::make_unique<PacedFrameSource>(
        std::move(seq), period, i * period / kStreams));
  }

  avd::runtime::StreamServerConfig sc;
  sc.ingest_workers = kStreams;  // one paced source per worker, no HOL block
  sc.control_workers = 2;
  sc.detect_workers = kDetectWorkers;
  // The latency contract is enforced structurally: four workers drain the
  // detect queue at ~1 ms/slot, so an 8-deep DropOldest queue bounds an
  // admitted frame's wait at ~8 ms before its own 4 ms dispatch — inside
  // the 20 ms budget even while the ladder is still reacting. Overflow
  // becomes low-latency backpressure-drop reports (vehicle_processed =
  // false) instead of tail latency — and keeps ingest unblocked, so the
  // token bucket sees the true 2x offered rate rather than a backpressured
  // trickle.
  sc.queue_capacity = 8;
  sc.detect_policy = avd::runtime::OverflowPolicy::DropOldest;
  sc.simulated_accel_ms = kAccelMs;
  // SLO plane: 100 ms windows so each 31 fps stream has ~3 frames per
  // window (tight windows would mostly be empty and the health signal
  // noise). The unhealthy thresholds are unreachable on purpose:
  // health-driven level 3 is out of bounds for this soak.
  sc.slo.enabled = true;
  sc.slo.frame_budget_ms = 20.0;
  sc.slo.telemetry_period = std::chrono::milliseconds(100);
  sc.slo.hysteresis.clears_to_recover = 2;
  sc.slo.deadline_miss_degraded = 0.05;
  sc.slo.deadline_miss_unhealthy = 2.0;  // never: level 3 is not an option
  sc.slo.drop_rate_degraded = 0.02;      // the ladder's trigger under load
  sc.slo.drop_rate_unhealthy = 2.0;      // never
  // Admission plane: each stream may admit 20 fps (64 x 20 = 1280 fps of
  // admitted load; at level 2 only 1/3 of those are scans, comfortably
  // under the 1000 fps accelerator). The escalation dwell (5 windows) must
  // exceed the health machine's recovery lag (clears_to_recover = 2: a
  // stream whose drops just stopped still *reports* Degraded for 2 more
  // windows), otherwise the lag reads as continued distress. Degraded
  // escalation is capped at level 2: level 3 (drop the stream) is reserved
  // for UNHEALTHY/watchdog/fault-plan events, so the residual drop noise
  // of a shared 88%-utilized queue can never push an unlucky stream into
  // shedding everything. Recovery is pushed past the soak's horizon so the
  // ladder settles once and stays — the no-flapping check.
  sc.admission.enabled = true;
  sc.admission.bucket.rate_fps = 20.0;
  sc.admission.bucket.burst = 4;
  sc.admission.ladder.skip_modulus = 3;
  sc.admission.ladder.escalate_after_windows = 5;
  sc.admission.ladder.max_degraded_level = 2;
  sc.admission.ladder.recover_after_windows = 100000;

  avd::runtime::StreamServer server(system, sc);

  std::printf("serving %d streams x %d frames at %.1f fps each "
              "(%.0f fps offered vs %.0f fps capacity)...\n",
              kStreams, total_frames / kStreams, per_stream_fps, offered_fps,
              capacity_fps);
  const Clock::time_point t0 = Clock::now();
  const std::vector<avd::runtime::StreamResult> results =
      server.serve(std::move(sources));
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // --- accounting -------------------------------------------------------
  std::uint64_t shed = 0, coasted = 0, degraded_scans = 0, frames = 0;
  std::uint64_t drops = 0;
  int max_level = 0;
  std::size_t max_transitions = 0;
  int streams_coasting = 0, streams_level3 = 0;
  bool watchdog = false, source_failed = false;
  for (const auto& r : results) {
    shed += r.shed_frames;
    drops += r.backpressure_drops;
    coasted += r.coasted_frames;
    degraded_scans += r.degraded_scans;
    frames += r.report.frames.size();
    max_level = std::max(max_level, static_cast<int>(r.degrade_level));
    max_transitions = std::max(max_transitions, r.degrade_transitions.size());
    if (r.coasted_frames > 0) ++streams_coasting;
    if (r.degrade_level == avd::runtime::DegradeLevel::Shed) ++streams_level3;
    watchdog = watchdog || r.watchdog_fired;
    source_failed = source_failed || r.source_failed;
  }
  std::uint64_t shed_by_bucket = 0;
  int level_histogram[4] = {0, 0, 0, 0};
  if (const avd::runtime::AdmissionController* ac = server.admission()) {
    for (int s = 0; s < kStreams; ++s)
      shed_by_bucket += ac->stats(s).shed_by_bucket;
  }
  for (const auto& r : results)
    ++level_histogram[std::clamp(static_cast<int>(r.degrade_level), 0, 3)];
  const double admitted = static_cast<double>(frames - shed);
  const double shed_rate = 100.0 * static_cast<double>(shed) /
                           static_cast<double>(frames);
  const double coast_rate = 100.0 * static_cast<double>(coasted) /
                            static_cast<double>(frames);
  const auto pct_ms = [](double p) {
    return static_cast<double>(
               avd::obs::MetricsRegistry::global()
                   .histogram("runtime.frame.admitted_latency_ns")
                   .percentile_ns(p)) /
           1e6;
  };
  const double p50_ms = pct_ms(0.50);
  const double p99_ms = pct_ms(0.99);

  std::printf("\nsoak: %.2f s wall, %llu frames (%llu shed, %llu dropped, "
              "%llu coasted, %llu degraded scans)\n",
              seconds, static_cast<unsigned long long>(frames),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(drops),
              static_cast<unsigned long long>(coasted),
              static_cast<unsigned long long>(degraded_scans));
  std::printf("admitted-frame latency: p50 %.3f ms, p99 %.3f ms "
              "(budget 20 ms)\n", p50_ms, p99_ms);
  std::printf("ladder: %d/%d streams coasting at level 2, max level %d, "
              "max transitions/stream %zu\n",
              streams_coasting, kStreams, max_level, max_transitions);
  std::printf("final levels: %d full / %d coarse / %d skip-coast / %d shed; "
              "%llu of %llu sheds were the token bucket\n",
              level_histogram[0], level_histogram[1], level_histogram[2],
              level_histogram[3],
              static_cast<unsigned long long>(shed_by_bucket),
              static_cast<unsigned long long>(shed));

  avd::bench::BenchReport report("overload_soak");
  report.metric("overload.admitted_latency_p99_ms", p99_ms, "ms", "lower");
  report.metric("overload.admitted_latency_p50_ms", p50_ms, "ms", "lower");
  report.metric("overload.shed_rate_pct", shed_rate, "%", "lower");
  report.metric("overload.drop_rate_pct",
                100.0 * static_cast<double>(drops) /
                    static_cast<double>(frames),
                "%", "lower");
  report.metric("overload.coast_rate_pct", coast_rate, "%", "higher");
  report.metric("overload.max_transitions_per_stream",
                static_cast<double>(max_transitions), "transitions", "lower");
  report.metric("overload.admitted_fps", admitted / seconds, "fps", "higher");
  report.check("admitted_p99_under_20ms", p99_ms < 20.0);
  report.check("shed_engaged", shed > 0);
  // Equilibrium needs only ~1/3 of the fleet coasting (see the config
  // comment); a quarter is the floor below which the ladder plainly never
  // engaged.
  report.check("ladder_engaged", streams_coasting >= kStreams / 4);
  report.check("no_stream_dropped",
               streams_level3 == 0 && !watchdog && !source_failed);
  report.check("no_flapping", max_transitions <= 4);
  report.check("all_frames_accounted",
               frames == static_cast<std::uint64_t>(total_frames));
  report.note("load_model",
              "64 paced streams, 2x accelerator capacity (4 workers x 4 ms), "
              "20 fps/stream token bucket, SLO ladder to level 2");
  report.write();
  return 0;
}
