#include "avd/ml/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace avd::ml {
namespace {

// Deterministic pseudo-random fill (xorshift) so the GEMM tests exercise
// irregular values without depending on ml::Rng.
std::vector<float> random_values(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  std::uint64_t s = seed * 2654435761u + 1;
  for (auto& x : v) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    x = static_cast<float>(static_cast<double>(s % 20001) / 10000.0 - 1.0);
  }
  return v;
}

void expect_gemm_matches_reference(std::size_t m, std::size_t k,
                                   std::size_t n, bool with_bias) {
  const std::vector<float> a = random_values(m * k, 11 + m);
  const std::vector<float> b = random_values(n * k, 23 + n);
  const std::vector<float> bias =
      with_bias ? random_values(n, 37 + k) : std::vector<float>{};
  std::vector<float> want(m * n, -123.0f), got(m * n, 321.0f);
  gemm_reference(a, m, k, b, n, bias, want);
  gemm(a, m, k, b, n, bias, got);
  for (std::size_t i = 0; i < want.size(); ++i) {
    // Bit-for-bit, not approximately: the blocked kernel must preserve the
    // reference op sequence per element.
    EXPECT_EQ(want[i], got[i]) << "element " << i << " of " << m << "x" << k
                               << "x" << n;
  }
}

TEST(Gemm, ReferenceComputesBiasPlusRowDots) {
  // 2x3 times (2x3)^T: hand-checkable.
  const std::vector<float> a{1, 2, 3, 4, 5, 6};
  const std::vector<float> b{1, 0, 1, 0, 1, 0};
  const std::vector<float> bias{10, 20};
  std::vector<float> c(4);
  gemm_reference(a, 2, 3, b, 2, bias, c);
  EXPECT_FLOAT_EQ(c[0], 10 + 1 + 3);  // bias[0] + a0.b0
  EXPECT_FLOAT_EQ(c[1], 20 + 2);      // bias[1] + a0.b1
  EXPECT_FLOAT_EQ(c[2], 10 + 4 + 6);
  EXPECT_FLOAT_EQ(c[3], 20 + 5);
}

TEST(Gemm, EmptyBiasMeansZero) {
  const std::vector<float> a{2, 3};
  const std::vector<float> b{4, 5};
  std::vector<float> c(1, 99.0f);
  gemm(a, 1, 2, b, 1, {}, c);
  EXPECT_FLOAT_EQ(c[0], 2 * 4 + 3 * 5);
}

TEST(Gemm, BitIdenticalToReferenceAcrossShapes) {
  // Shapes straddling the tile boundaries (kMc/kNc = 64, kKc = 256):
  // smaller, exact multiples, and ragged remainders in every dimension.
  expect_gemm_matches_reference(1, 1, 1, true);
  expect_gemm_matches_reference(3, 81, 20, true);    // dark-scan layer 0 shape
  expect_gemm_matches_reference(64, 64, 64, true);   // exact tiles
  expect_gemm_matches_reference(65, 257, 66, true);  // ragged in all dims
  expect_gemm_matches_reference(7, 300, 5, false);   // k spans two panels
  expect_gemm_matches_reference(130, 19, 3, true);   // many row tiles
}

TEST(Gemm, SizeMismatchThrows) {
  std::vector<float> a(6), b(6), bias(2), c(4);
  EXPECT_THROW(gemm(std::span<const float>(a).subspan(1), 2, 3, b, 2, bias, c),
               std::invalid_argument);
  EXPECT_THROW(gemm(a, 2, 3, std::span<const float>(b).first(5), 2, bias, c),
               std::invalid_argument);
  EXPECT_THROW(gemm(a, 2, 3, b, 2, std::span<const float>(bias).first(1), c),
               std::invalid_argument);
  EXPECT_THROW(gemm(a, 2, 3, b, 2, bias, std::span<float>(c).first(3)),
               std::invalid_argument);
  EXPECT_THROW(gemm_reference(a, 2, 3, b, 2, bias,
                              std::span<float>(c).first(3)),
               std::invalid_argument);
}

TEST(SigmoidInplace, MatchesScalarSigmoid) {
  std::vector<float> v = random_values(100, 5);
  const std::vector<float> orig = v;
  sigmoid_inplace(v);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(v[i], sigmoidf(orig[i]));
  std::vector<float> empty;
  sigmoid_inplace(empty);  // no-op, no crash
}

TEST(SoftmaxRows, MatchesPerRowSoftmax) {
  std::vector<float> batch = random_values(6 * 4, 9);
  std::vector<float> rows = batch;
  softmax_rows(batch, 4);
  for (std::size_t r = 0; r < 6; ++r) {
    std::span<float> row(rows.data() + r * 4, 4);
    softmax(row);
    double sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(batch[r * 4 + c], row[c]);
      sum += batch[r * 4 + c];
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxRows, ValidatesShape) {
  std::vector<float> v(7);
  EXPECT_THROW(softmax_rows(v, 0), std::invalid_argument);
  EXPECT_THROW(softmax_rows(v, 4), std::invalid_argument);  // 7 % 4 != 0
  std::vector<float> empty;
  softmax_rows(empty, 3);  // zero rows is fine
}

}  // namespace
}  // namespace avd::ml
