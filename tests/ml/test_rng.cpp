#include "avd/ml/rng.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace avd::ml {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) same += a.uniform() == b.uniform();
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_NE(v, sorted);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // Child stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 50; ++i) same += parent.uniform() == child.uniform();
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(29), b(29);
  Rng ca = a.fork(), cb = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(ca.uniform(), cb.uniform());
}

}  // namespace
}  // namespace avd::ml
