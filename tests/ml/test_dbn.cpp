#include "avd/ml/dbn.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace avd::ml {
namespace {

// Four one-hot-quadrant patterns in a 4x4 grid, with flip noise: a trivially
// learnable 4-class problem shaped like the taillight-window task.
struct QuadrantData {
  std::vector<std::vector<float>> inputs;
  std::vector<int> labels;
};

QuadrantData quadrant_data(int per_class, std::uint64_t seed,
                           double flip = 0.05) {
  Rng rng(seed);
  QuadrantData d;
  for (int cls = 0; cls < 4; ++cls) {
    for (int i = 0; i < per_class; ++i) {
      std::vector<float> v(16, 0.0f);
      const int ox = (cls % 2) * 2;
      const int oy = (cls / 2) * 2;
      for (int y = 0; y < 2; ++y)
        for (int x = 0; x < 2; ++x) v[(oy + y) * 4 + ox + x] = 1.0f;
      for (auto& x : v)
        if (rng.bernoulli(flip)) x = 1.0f - x;
      d.inputs.push_back(std::move(v));
      d.labels.push_back(cls);
    }
  }
  return d;
}

DbnTrainParams fast_params() {
  DbnTrainParams p;
  p.pretrain.epochs = 8;
  p.finetune_epochs = 40;
  return p;
}

TEST(Dbn, ConstructionShape) {
  const Dbn dbn({81, 20, 8}, 4);
  EXPECT_EQ(dbn.input_size(), 81);
  EXPECT_EQ(dbn.classes(), 4);
  EXPECT_EQ(dbn.hidden_layers(), 2u);
  EXPECT_EQ(dbn.rbm(0).visible(), 81);
  EXPECT_EQ(dbn.rbm(0).hidden(), 20);
  EXPECT_EQ(dbn.rbm(1).visible(), 20);
  EXPECT_EQ(dbn.rbm(1).hidden(), 8);
}

TEST(Dbn, BadConstructionThrows) {
  EXPECT_THROW(Dbn({81}, 4), std::invalid_argument);
  EXPECT_THROW(Dbn({81, 20}, 1), std::invalid_argument);
}

TEST(Dbn, PosteriorSumsToOne) {
  const Dbn dbn({16, 6, 4}, 4);
  const auto p = dbn.posterior(std::vector<float>(16, 0.5f));
  ASSERT_EQ(p.size(), 4u);
  double sum = 0.0;
  for (float v : p) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(Dbn, InputDimensionMismatchThrows) {
  const Dbn dbn({16, 6, 4}, 4);
  EXPECT_THROW((void)dbn.posterior(std::vector<float>(15, 0.0f)),
               std::invalid_argument);
}

TEST(Dbn, LearnsQuadrantTask) {
  const QuadrantData train = quadrant_data(120, 101);
  Dbn dbn({16, 10, 6}, 4, 5);
  const DbnTrainReport report = dbn.train(train.inputs, train.labels,
                                          fast_params());
  EXPECT_GT(report.final_train_accuracy, 0.95);

  const QuadrantData test = quadrant_data(40, 202);
  int correct = 0;
  for (std::size_t i = 0; i < test.inputs.size(); ++i)
    correct += dbn.predict(test.inputs[i]) == test.labels[i];
  EXPECT_GT(static_cast<double>(correct) / test.inputs.size(), 0.9);
}

TEST(Dbn, FinetuneLossDecreases) {
  const QuadrantData train = quadrant_data(80, 33);
  Dbn dbn({16, 8, 6}, 4, 9);
  const DbnTrainReport report = dbn.train(train.inputs, train.labels,
                                          fast_params());
  ASSERT_GE(report.finetune_loss.size(), 2u);
  EXPECT_LT(report.finetune_loss.back(), report.finetune_loss.front());
}

TEST(Dbn, PretrainReportsPerLayerErrors) {
  const QuadrantData train = quadrant_data(60, 44);
  Dbn dbn({16, 8, 5}, 4, 11);
  DbnTrainParams params = fast_params();
  DbnTrainReport report;
  dbn.pretrain(train.inputs, params, report);
  ASSERT_EQ(report.pretrain_errors.size(), 2u);  // one per hidden layer
  EXPECT_EQ(report.pretrain_errors[0].size(),
            static_cast<std::size_t>(params.pretrain.epochs));
}

TEST(Dbn, FinetuneLabelValidation) {
  Dbn dbn({16, 6, 4}, 4);
  std::vector<std::vector<float>> x{std::vector<float>(16, 0.0f)};
  DbnTrainReport report;
  std::vector<int> bad{4};
  EXPECT_THROW(dbn.finetune(x, bad, fast_params(), report),
               std::invalid_argument);
  std::vector<int> negative{-1};
  EXPECT_THROW(dbn.finetune(x, negative, fast_params(), report),
               std::invalid_argument);
  std::vector<int> short_labels{};
  EXPECT_THROW(dbn.finetune(x, short_labels, fast_params(), report),
               std::invalid_argument);
}

TEST(Dbn, DeterministicTraining) {
  const QuadrantData train = quadrant_data(50, 77);
  Dbn a({16, 8, 5}, 4, 21), b({16, 8, 5}, 4, 21);
  const DbnTrainParams params = fast_params();
  a.train(train.inputs, train.labels, params);
  b.train(train.inputs, train.labels, params);
  for (std::size_t i = 0; i < train.inputs.size(); ++i) {
    const auto pa = a.posterior(train.inputs[i]);
    const auto pb = b.posterior(train.inputs[i]);
    for (std::size_t c = 0; c < pa.size(); ++c) EXPECT_FLOAT_EQ(pa[c], pb[c]);
  }
}

TEST(Dbn, SaveLoadRoundTripPreservesPredictions) {
  const QuadrantData train = quadrant_data(60, 88);
  Dbn dbn({16, 8, 5}, 4, 31);
  dbn.train(train.inputs, train.labels, fast_params());

  std::stringstream ss;
  dbn.save(ss);
  const Dbn back = Dbn::load(ss);

  EXPECT_EQ(back.input_size(), 16);
  EXPECT_EQ(back.classes(), 4);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto pa = dbn.posterior(train.inputs[i]);
    const auto pb = back.posterior(train.inputs[i]);
    for (std::size_t c = 0; c < pa.size(); ++c)
      EXPECT_NEAR(pa[c], pb[c], 2e-4);
  }
}

TEST(Dbn, LoadBadHeaderThrows) {
  std::stringstream ss("nope 3 4");
  EXPECT_THROW(Dbn::load(ss), std::runtime_error);
}

TEST(Dbn, PosteriorBatchBitEqualsPerWindowPosterior) {
  const QuadrantData train = quadrant_data(60, 55);
  Dbn dbn({16, 8, 5}, 4, 13);
  dbn.train(train.inputs, train.labels, fast_params());

  for (const int batch : {1, 2, 7, 60}) {
    std::vector<float> xs;
    for (int r = 0; r < batch; ++r)
      xs.insert(xs.end(), train.inputs[r].begin(), train.inputs[r].end());
    const std::vector<float> out = dbn.posterior_batch(xs, batch);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(batch) * 4);
    for (int r = 0; r < batch; ++r) {
      const auto want = dbn.posterior(train.inputs[r]);
      for (std::size_t c = 0; c < want.size(); ++c)
        EXPECT_EQ(out[r * 4 + c], want[c])
            << "batch " << batch << " row " << r << " class " << c;
    }
  }
}

TEST(Dbn, PosteriorBatchScratchReuseAcrossBatchSizes) {
  const Dbn dbn({16, 6, 4}, 4, 3);
  DbnBatchScratch scratch;
  for (const int batch : {5, 1, 9}) {  // shrink and grow the same scratch
    const std::vector<float> xs(static_cast<std::size_t>(batch) * 16, 0.25f);
    std::vector<float> out(static_cast<std::size_t>(batch) * 4);
    dbn.posterior_batch(xs, batch, scratch, out);
    const auto want = dbn.posterior(std::vector<float>(16, 0.25f));
    for (int r = 0; r < batch; ++r)
      for (std::size_t c = 0; c < want.size(); ++c)
        EXPECT_EQ(out[r * 4 + c], want[c]);
  }
}

TEST(Dbn, PosteriorBatchValidatesSizes) {
  const Dbn dbn({16, 6, 4}, 4);
  DbnBatchScratch scratch;
  std::vector<float> out(8);
  const std::vector<float> xs(32, 0.0f);
  EXPECT_THROW(dbn.posterior_batch(xs, -1, scratch, out),
               std::invalid_argument);
  EXPECT_THROW(dbn.posterior_batch(std::span<const float>(xs).first(31), 2,
                                   scratch, out),
               std::invalid_argument);
  EXPECT_THROW(dbn.posterior_batch(xs, 2, scratch,
                                   std::span<float>(out).first(7)),
               std::invalid_argument);
  // Zero rows is a valid no-op.
  std::vector<float> empty_out;
  dbn.posterior_batch({}, 0, scratch, empty_out);
  EXPECT_TRUE(dbn.posterior_batch({}, 0).empty());
}

TEST(Dbn, PaperShapedNetworkTrains) {
  // The exact architecture of §III-B: 81 -> 20 -> 8 -> 4.
  Dbn dbn({81, 20, 8}, 4, 7);
  Rng rng(7);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 80; ++i) {
    std::vector<float> v(81, 0.0f);
    const int cls = i % 4;
    for (int j = cls * 20; j < cls * 20 + 20; ++j) v[j] = 1.0f;
    x.push_back(std::move(v));
    y.push_back(cls);
  }
  DbnTrainParams p = fast_params();
  const DbnTrainReport report = dbn.train(x, y, p);
  EXPECT_GT(report.final_train_accuracy, 0.9);
}

}  // namespace
}  // namespace avd::ml
