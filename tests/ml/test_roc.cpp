#include "avd/ml/roc.hpp"

#include <gtest/gtest.h>

#include "avd/ml/rng.hpp"

namespace avd::ml {
namespace {

TEST(Roc, PerfectSeparationGivesAucOne) {
  const std::vector<double> d{3.0, 2.0, 1.0, -1.0, -2.0, -3.0};
  const std::vector<int> y{1, 1, 1, -1, -1, -1};
  const RocCurve curve = roc_curve(d, y);
  EXPECT_NEAR(curve.auc(), 1.0, 1e-12);
}

TEST(Roc, InvertedScoresGiveAucZero) {
  const std::vector<double> d{-3.0, -2.0, -1.0, 1.0, 2.0, 3.0};
  const std::vector<int> y{1, 1, 1, -1, -1, -1};
  EXPECT_NEAR(roc_curve(d, y).auc(), 0.0, 1e-12);
}

TEST(Roc, RandomScoresNearHalf) {
  Rng rng(1);
  std::vector<double> d;
  std::vector<int> y;
  for (int i = 0; i < 2000; ++i) {
    d.push_back(rng.gaussian());
    y.push_back(i % 2 == 0 ? 1 : -1);
  }
  EXPECT_NEAR(roc_curve(d, y).auc(), 0.5, 0.05);
}

TEST(Roc, CurveStartsAtOriginEndsAtOne) {
  const std::vector<double> d{1.0, 0.5, -0.5, -1.0};
  const std::vector<int> y{1, -1, 1, -1};
  const RocCurve curve = roc_curve(d, y);
  ASSERT_GE(curve.points.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.points.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.points.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.points.back().true_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.points.back().false_positive_rate, 1.0);
}

TEST(Roc, RatesMonotoneNonDecreasing) {
  Rng rng(2);
  std::vector<double> d;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    const bool pos = rng.bernoulli(0.4);
    d.push_back(rng.gaussian(pos ? 0.8 : -0.8, 1.0));
    y.push_back(pos ? 1 : -1);
  }
  const RocCurve curve = roc_curve(d, y);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].true_positive_rate,
              curve.points[i - 1].true_positive_rate);
    EXPECT_GE(curve.points[i].false_positive_rate,
              curve.points[i - 1].false_positive_rate);
    EXPECT_LE(curve.points[i].threshold, curve.points[i - 1].threshold);
  }
}

TEST(Roc, TiedScoresShareOnePoint) {
  const std::vector<double> d{1.0, 1.0, 1.0, -1.0};
  const std::vector<int> y{1, -1, 1, -1};
  const RocCurve curve = roc_curve(d, y);
  // Points: start, the tie block, the final value.
  EXPECT_EQ(curve.points.size(), 3u);
}

TEST(Roc, BestThresholdSeparatesCleanData) {
  const std::vector<double> d{2.0, 1.5, 1.0, -1.0, -1.5, -2.0};
  const std::vector<int> y{1, 1, 1, -1, -1, -1};
  const double t = roc_curve(d, y).best_threshold();
  // Any threshold in [ -1, 1 ] classifies perfectly; best point is at the
  // last positive (threshold 1.0).
  EXPECT_GE(t, -1.0);
  EXPECT_LE(t, 1.0 + 1e-12);
}

TEST(Roc, SeparationQualityOrdersAuc) {
  Rng rng(3);
  auto auc_for_margin = [&](double margin) {
    std::vector<double> d;
    std::vector<int> y;
    for (int i = 0; i < 400; ++i) {
      const bool pos = i % 2 == 0;
      d.push_back(rng.gaussian(pos ? margin : -margin, 1.0));
      y.push_back(pos ? 1 : -1);
    }
    return roc_curve(d, y).auc();
  };
  EXPECT_GT(auc_for_margin(2.0), auc_for_margin(0.5));
}

TEST(Roc, InputValidation) {
  std::vector<double> d{1.0, 2.0};
  std::vector<int> all_pos{1, 1};
  EXPECT_THROW((void)roc_curve(d, all_pos), std::invalid_argument);
  std::vector<int> bad{1, 0};
  EXPECT_THROW((void)roc_curve(d, bad), std::invalid_argument);
  EXPECT_THROW((void)roc_curve({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace avd::ml
