#include "avd/ml/rbm.hpp"

#include <gtest/gtest.h>

namespace avd::ml {
namespace {

// Two prototype patterns with small flip noise — an easily compressible
// distribution a tiny RBM can learn.
std::vector<std::vector<float>> two_prototype_data(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> data;
  for (int i = 0; i < n; ++i) {
    std::vector<float> v(16, 0.0f);
    const bool left = rng.bernoulli(0.5);
    for (int j = 0; j < 8; ++j) v[left ? j : 8 + j] = 1.0f;
    for (auto& x : v)
      if (rng.bernoulli(0.05)) x = 1.0f - x;
    data.push_back(std::move(v));
  }
  return data;
}

TEST(Rbm, ConstructionShapes) {
  const Rbm rbm(81, 20);
  EXPECT_EQ(rbm.visible(), 81);
  EXPECT_EQ(rbm.hidden(), 20);
  EXPECT_EQ(rbm.weights().rows(), 20u);
  EXPECT_EQ(rbm.weights().cols(), 81u);
}

TEST(Rbm, BadShapesThrow) {
  EXPECT_THROW(Rbm(0, 5), std::invalid_argument);
  EXPECT_THROW(Rbm(5, -1), std::invalid_argument);
}

TEST(Rbm, HiddenProbsAreProbabilities) {
  const Rbm rbm(16, 8, 3);
  std::vector<float> v(16, 1.0f), h(8);
  rbm.hidden_probs(v, h);
  for (float p : h) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(Rbm, DimensionMismatchThrows) {
  const Rbm rbm(16, 8);
  std::vector<float> v(15), h(8);
  EXPECT_THROW(rbm.hidden_probs(v, h), std::invalid_argument);
  std::vector<float> v2(16), h2(7);
  EXPECT_THROW(rbm.hidden_probs(v2, h2), std::invalid_argument);
  EXPECT_THROW(rbm.visible_probs(h2, v2), std::invalid_argument);
}

TEST(Rbm, ZeroWeightsGiveHalfProbabilities) {
  Rbm rbm(4, 3, 1);
  for (auto& w : rbm.weights().data()) w = 0.0f;
  std::vector<float> v(4, 1.0f), h(3);
  rbm.hidden_probs(v, h);
  for (float p : h) EXPECT_FLOAT_EQ(p, 0.5f);
}

TEST(Rbm, TrainingReducesReconstructionError) {
  const auto data = two_prototype_data(200, 17);
  Rbm rbm(16, 6, 23);
  RbmTrainParams params;
  params.epochs = 25;
  const std::vector<double> errors = rbm.train(data, params);
  ASSERT_EQ(errors.size(), 25u);
  EXPECT_LT(errors.back(), errors.front() * 0.7);
}

TEST(Rbm, TrainedModelReconstructsPrototypesBetterThanNoise) {
  const auto data = two_prototype_data(200, 29);
  Rbm rbm(16, 6, 31);
  RbmTrainParams params;
  params.epochs = 30;
  rbm.train(data, params);

  std::vector<float> proto(16, 0.0f);
  for (int j = 0; j < 8; ++j) proto[j] = 1.0f;
  std::vector<float> alternating(16, 0.0f);
  for (int j = 0; j < 16; j += 2) alternating[j] = 1.0f;

  EXPECT_LT(rbm.reconstruction_error(proto),
            rbm.reconstruction_error(alternating));
}

TEST(Rbm, TransformOutputsHiddenWidth) {
  const Rbm rbm(16, 5, 7);
  const auto h = rbm.transform(std::vector<float>(16, 0.5f));
  EXPECT_EQ(h.size(), 5u);
}

TEST(Rbm, TrainingIsDeterministicUnderSeed) {
  const auto data = two_prototype_data(80, 41);
  RbmTrainParams params;
  params.epochs = 5;
  params.seed = 99;
  Rbm a(16, 4, 11), b(16, 4, 11);
  const auto ea = a.train(data, params);
  const auto eb = b.train(data, params);
  EXPECT_EQ(ea, eb);
  for (std::size_t i = 0; i < a.weights().data().size(); ++i)
    EXPECT_FLOAT_EQ(a.weights().data()[i], b.weights().data()[i]);
}

TEST(Rbm, EmptyTrainingDataThrows) {
  Rbm rbm(4, 2);
  EXPECT_THROW(rbm.train({}, RbmTrainParams{}), std::invalid_argument);
}

TEST(Rbm, BatchWithWrongDimensionThrows) {
  Rbm rbm(4, 2);
  Rng rng(1);
  std::vector<std::vector<float>> batch{std::vector<float>(3, 0.0f)};
  EXPECT_THROW(rbm.train_batch(batch, RbmTrainParams{}, rng),
               std::invalid_argument);
}

TEST(Rbm, CdStepsGreaterThanOneStillLearn) {
  const auto data = two_prototype_data(150, 53);
  Rbm rbm(16, 6, 59);
  RbmTrainParams params;
  params.epochs = 20;
  params.cd_steps = 3;
  const auto errors = rbm.train(data, params);
  EXPECT_LT(errors.back(), errors.front());
}

}  // namespace
}  // namespace avd::ml
